#!/usr/bin/env python3
"""Statement-coverage measurement over ``src/repro`` with stdlib tracing.

The development image carries no ``coverage``/``pytest-cov``, so this tool
measures statement coverage with ``sys.settrace``: it runs pytest in-process
with a tracer recording every executed line under ``src/repro``, derives the
executable-line set from compiled code objects (``co_lines``), and reports
the percentage.  CI's ``coverage`` job uses real ``pytest-cov``; this tool
exists to *measure* the figure the job's ``--cov-fail-under`` gate is locked
to.  It is slightly conservative versus coverage.py (``# pragma: no cover``
blocks count as missed here, and forked worker processes are not traced), so
a gate derived from its floor is safe.

Usage:
    PYTHONPATH=src python tools/measure_coverage.py --out cov.json [pytest args...]
    python tools/measure_coverage.py --report cov.json [cov2.json ...]

``--out`` runs pytest and writes the executed-line sets; ``--report`` merges
one or more dumps and prints per-file and total statement coverage.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC_PREFIX = str(REPO / "src" / "repro") + os.sep


def _make_tracer(executed):
    add = executed.add

    def tracer(frame, event, arg):
        if event == "line":
            add((frame.f_code.co_filename, frame.f_lineno))
            return tracer
        if event == "call":
            code = frame.f_code
            if code.co_filename.startswith(SRC_PREFIX):
                add((code.co_filename, frame.f_lineno))
                return tracer
            return None
        return tracer

    return tracer


def run(pytest_args, out_path):
    import pytest

    executed = set()
    tracer = _make_tracer(executed)
    threading.settrace(tracer)
    sys.settrace(tracer)
    try:
        status = pytest.main(pytest_args)
    finally:
        sys.settrace(None)
        threading.settrace(None)
    per_file = {}
    for filename, line in executed:
        per_file.setdefault(filename, []).append(line)
    payload = {
        filename: sorted(set(lines)) for filename, lines in per_file.items()
    }
    Path(out_path).write_text(json.dumps(payload), encoding="utf-8")
    print(f"wrote {out_path} ({len(payload)} files)")
    return int(status)


def executable_lines(path: Path):
    """Line numbers bearing statements, from the compiled code objects."""
    source = path.read_text(encoding="utf-8")
    lines = set()
    stack = [compile(source, str(path), "exec")]
    code_type = type(stack[0])
    while stack:
        code = stack.pop()
        for _, _, line in code.co_lines():
            if line is not None:
                lines.add(line)
        for const in code.co_consts:
            if isinstance(const, code_type):
                stack.append(const)
    return lines


def report(dump_paths):
    executed = {}
    for dump in dump_paths:
        payload = json.loads(Path(dump).read_text(encoding="utf-8"))
        for filename, lines in payload.items():
            executed.setdefault(filename, set()).update(lines)
    total_statements = total_hit = 0
    rows = []
    for path in sorted((REPO / "src" / "repro").rglob("*.py")):
        statements = executable_lines(path)
        hit = statements & executed.get(str(path), set())
        total_statements += len(statements)
        total_hit += len(hit)
        percent = 100.0 * len(hit) / len(statements) if statements else 100.0
        rows.append((str(path.relative_to(REPO)), len(statements), len(hit), percent))
    for name, statements, hit, percent in rows:
        print(f"{name:60s} {hit:5d}/{statements:5d}  {percent:6.2f}%")
    total = 100.0 * total_hit / total_statements if total_statements else 100.0
    print(f"{'TOTAL':60s} {total_hit:5d}/{total_statements:5d}  {total:6.2f}%")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None, help="run pytest and dump executed lines")
    parser.add_argument(
        "--report", nargs="+", default=None, metavar="DUMP",
        help="merge dump files and print statement coverage",
    )
    args, pytest_args = parser.parse_known_args(argv)
    if args.report:
        return report(args.report)
    if not args.out:
        parser.error("pass --out to measure or --report to summarize")
    return run(pytest_args or ["-q"], args.out)


if __name__ == "__main__":
    sys.exit(main())
