#!/usr/bin/env python3
"""Generate the Markdown API reference under docs/api/ from live docstrings.

There is no Sphinx/mkdocs dependency in the image, so the reference pages
are plain Markdown rendered from the *imported* modules: what the docs say
is exactly what ``inspect.getdoc`` sees.  The pages are checked in;
``--check`` regenerates them to a scratch buffer and fails when the tree is
out of date, which CI and the tier-1 test suite run so docstring edits and
reference pages can never drift apart.

Usage:
    PYTHONPATH=src python tools/gen_api_docs.py           # (re)write docs/api/
    PYTHONPATH=src python tools/gen_api_docs.py --check   # verify, exit 1 on drift
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import sys
from pathlib import Path
from typing import Dict, List

REPO = Path(__file__).resolve().parent.parent
API_DIR = REPO / "docs" / "api"

#: Page name -> ordered module list.  Definition order inside each module is
#: preserved (CPython dicts iterate in insertion order), so the pages read
#: like the source files.
PAGES: Dict[str, List[str]] = {
    "sim": [
        "repro.sim.engine",
        "repro.sim.resources",
        "repro.sim.stats",
        "repro.sim.rng",
        "repro.sim.faults",
        "repro.sim.checkpoint",
        "repro.sim.convergence",
    ],
    "workloads": [
        "repro.workloads.trace",
        "repro.workloads.synthetic",
        "repro.workloads.catalog",
        "repro.workloads.mixes",
        "repro.workloads.ycsb",
        "repro.workloads.replay",
        "repro.workloads.formats",
        "repro.workloads.formats.base",
        "repro.workloads.formats.msr",
        "repro.workloads.formats.fio",
        "repro.workloads.formats.blkparse",
        "repro.workloads.formats.venice_csv",
    ],
    "experiments": [
        "repro.experiments.spec",
        "repro.experiments.executor",
        "repro.experiments.store",
        "repro.experiments.queue",
        "repro.experiments.worker",
        "repro.experiments.ftl",
    ],
    "ftl": [
        "repro.ftl.mapping",
        "repro.ftl.allocator",
        "repro.ftl.cache",
        "repro.ftl.gc",
        "repro.ftl.wear_leveling",
        "repro.ftl.ftl",
    ],
    "fleet": [
        "repro.fleet.placement",
        "repro.fleet.member",
        "repro.fleet.qos",
        "repro.fleet.spec",
        "repro.fleet.run",
    ],
    "qos": [
        "repro.fleet.qos",
        "repro.experiments.qos",
    ],
    "service": [
        "repro.service.schema",
        "repro.service.jobs",
        "repro.service.routes",
        "repro.service.server",
        "repro.service.dashboard",
    ],
}

PAGE_TITLES = {
    "sim": "API reference: simulation core (`repro.sim`)",
    "workloads": "API reference: workloads (`repro.workloads`)",
    "experiments": "API reference: experiment orchestration (`repro.experiments`)",
    "ftl": "API reference: the flash translation layer (`repro.ftl`)",
    "fleet": "API reference: fleet-scale simulation (`repro.fleet`)",
    "qos": "API reference: multi-tenant QoS (`repro.fleet.qos`, `repro.experiments.qos`)",
    "service": "API reference: the serve control plane (`repro.service`)",
}


def _doc_block(obj) -> List[str]:
    """Render an object's docstring as fenced plain text (verbatim)."""
    doc = inspect.getdoc(obj)
    if not doc:
        return ["*(no docstring)*", ""]
    return ["```text", *doc.splitlines(), "```", ""]


def _signature(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"


def _class_section(name: str, cls) -> List[str]:
    lines = [f"### class `{name}`", ""]
    lines += _doc_block(cls)
    members = []
    for attr, member in vars(cls).items():
        if attr.startswith("_"):
            continue
        if isinstance(member, property):
            summary = (inspect.getdoc(member.fget) or "").partition("\n")[0]
            members.append(f"- `{attr}` *(property)* — {summary}")
        elif inspect.isfunction(member):
            summary = (inspect.getdoc(member) or "").partition("\n")[0]
            members.append(f"- `{attr}{_signature(member)}` — {summary}")
        elif isinstance(member, classmethod):
            inner = member.__func__
            summary = (inspect.getdoc(inner) or "").partition("\n")[0]
            members.append(
                f"- `{attr}{_signature(inner)}` *(classmethod)* — {summary}"
            )
    if members:
        lines += ["Members:", "", *members, ""]
    return lines


def _module_section(module_name: str) -> List[str]:
    module = importlib.import_module(module_name)
    lines = [f"## `{module_name}`", ""]
    lines += _doc_block(module)
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-export; documented where it is defined
        if inspect.isclass(obj):
            lines += _class_section(name, obj)
        elif inspect.isfunction(obj):
            lines += [f"### `{name}{_signature(obj)}`", ""]
            lines += _doc_block(obj)
    return lines


def render_page(page: str) -> str:
    """Render one docs/api/<page>.md document."""
    lines = [
        f"# {PAGE_TITLES[page]}",
        "",
        "<!-- GENERATED FILE: edit the docstrings, then run"
        " `PYTHONPATH=src python tools/gen_api_docs.py`. -->",
        "",
        "Rendered from the live docstrings by"
        " [tools/gen_api_docs.py](../../tools/gen_api_docs.py);"
        " `--check` runs in CI so this page cannot drift from the code.",
        "",
    ]
    for module_name in PAGES[page]:
        lines += _module_section(module_name)
    return "\n".join(lines).rstrip() + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify docs/api/ matches the docstrings; exit 1 on drift",
    )
    args = parser.parse_args(argv)
    stale = []
    for page in PAGES:
        target = API_DIR / f"{page}.md"
        rendered = render_page(page)
        if args.check:
            current = target.read_text(encoding="utf-8") if target.exists() else None
            if current != rendered:
                stale.append(target)
        else:
            API_DIR.mkdir(parents=True, exist_ok=True)
            target.write_text(rendered, encoding="utf-8")
            print(f"wrote {target.relative_to(REPO)}")
    if stale:
        names = ", ".join(str(path.relative_to(REPO)) for path in stale)
        print(
            f"API reference out of date: {names}\n"
            "run: PYTHONPATH=src python tools/gen_api_docs.py",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
