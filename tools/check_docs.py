#!/usr/bin/env python3
"""Check every internal Markdown link in the documentation tree.

The docs "build" for this repo is plain Markdown (no mkdocs in the image),
so the strictness gate is this link checker: it walks ``docs/**/*.md`` plus
the top-level entry pages, extracts inline links and images, and fails when

* a relative link points at a file that does not exist,
* a ``#fragment`` names a heading that is not present in the target file
  (GitHub-style slugification), or
* a page under ``docs/`` is an *orphan* -- linked from no other checked
  page, so no reader can reach it from the entry points (a new guide must
  be cross-linked, at minimum from ``docs/index.md``).

External links (``http(s)://``, ``mailto:``) are not fetched -- CI must not
depend on the network.  Exit status: 0 clean, 1 broken links (listed).

Usage:  python tools/check_docs.py [root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Dict, List, Set

#: Top-level pages included in addition to docs/**/*.md.
ENTRY_PAGES = ("README.md", "DESIGN.md", "PAPER.md")

_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$")
_CODE_FENCE = re.compile(r"^\s*(```|~~~)")


def _slugify(heading: str) -> str:
    """GitHub-style anchor slug for a Markdown heading."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return re.sub(r" ", "-", text)


def _heading_slugs(path: Path) -> Set[str]:
    slugs: Dict[str, int] = {}
    out: Set[str] = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING.match(line)
        if not match:
            continue
        slug = _slugify(match.group(1))
        # GitHub dedupes repeated headings with -1, -2, ... suffixes.
        seen = slugs.get(slug, 0)
        slugs[slug] = seen + 1
        out.add(slug if seen == 0 else f"{slug}-{seen}")
    return out


def _links_in(path: Path) -> List[str]:
    links: List[str] = []
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        links.extend(match.group(1) for match in _LINK.finditer(line))
    return links


def check(root: Path) -> List[str]:
    """All broken internal links under ``root``, as printable messages."""
    docs_pages = (
        sorted((root / "docs").rglob("*.md"))
        if (root / "docs").is_dir()
        else []
    )
    pages = docs_pages + [
        root / name for name in ENTRY_PAGES if (root / name).is_file()
    ]
    errors: List[str] = []
    inbound: Dict[Path, Set[Path]] = {}
    for page in pages:
        for link in _links_in(page):
            if re.match(r"^[a-z][a-z0-9+.-]*:", link):  # http:, https:, mailto:
                continue
            target_part, _, fragment = link.partition("#")
            if target_part:
                target = (page.parent / target_part).resolve()
                if not target.exists():
                    errors.append(
                        f"{page.relative_to(root)}: broken link -> {link}"
                    )
                    continue
            else:
                target = page
            inbound.setdefault(target, set()).add(page)
            if fragment and target.suffix == ".md":
                if fragment not in _heading_slugs(target):
                    errors.append(
                        f"{page.relative_to(root)}: missing anchor -> {link}"
                    )
    # Orphan rule: every docs page must be linked from at least one *other*
    # checked page (index.md is the hub the entry pages point at, so a page
    # linked only from itself is unreachable for a reader).
    for page in docs_pages:
        if inbound.get(page.resolve(), set()) - {page}:
            continue
        errors.append(
            f"{page.relative_to(root)}: orphan page -- not linked from any "
            "other docs/entry page"
        )
    return errors


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    root = Path(argv[0]).resolve() if argv else Path(__file__).resolve().parent.parent
    errors = check(root)
    for error in errors:
        print(error, file=sys.stderr)
    if errors:
        print(f"{len(errors)} broken internal link(s)", file=sys.stderr)
        return 1
    print("docs links ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
