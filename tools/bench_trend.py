#!/usr/bin/env python3
"""Append one dated entry to the perf-trajectory file ``BENCH_trend.json``.

The scheduled ``bench-trend`` workflow runs the full (non ``--quick``)
``venice-sim bench``, downloads the prior trend artifact, appends a dated
entry distilled from the fresh ``BENCH_core.json``, and re-uploads -- so
the perf trajectory accumulates one point per night instead of staying an
empty promise.  This tool is the append step; keeping it out of the YAML
makes it testable and usable locally:

Usage:
    python tools/bench_trend.py --core BENCH_core.json --trend BENCH_trend.json \\
        [--sha COMMIT] [--date ISO8601]

The trend file is ``{"schema": 1, "entries": [...]}``, each entry holding
the timestamp, commit, and the headline metrics the CI perf gate also
watches (engine events/sec, per-design and aggregate requests/sec, peak
RSS).  Bootstrap is lenient where the loss is bounded and loud where it
is not: a missing, empty, or unparseable trend file starts a fresh
trajectory (with a warning -- a torn artifact download must not wedge the
nightly job forever), and individually malformed entries are skipped with
a warning; but a parseable file of the wrong schema still fails loudly,
because overwriting a future schema's history would silently destroy it.
"""

from __future__ import annotations

import argparse
import json
import sys
from datetime import datetime, timezone
from pathlib import Path

SCHEMA_VERSION = 1


def distill(core: dict, *, sha: str = "", date: str = "") -> dict:
    """One trend entry: the headline metrics of a ``BENCH_core.json``."""
    end_to_end = core.get("end_to_end", {})
    return {
        "date": date
        or datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "sha": sha,
        # run_bench emits mode: "quick"|"full"; the flag makes accidental
        # quick-run entries distinguishable in the trajectory.
        "quick": core.get("mode") == "quick",
        "events_per_sec": core["engine"]["events_per_sec"],
        "requests_per_sec": core["requests_per_sec"],
        "per_design_requests_per_sec": {
            design: stats["requests_per_sec"]
            for design, stats in end_to_end.items()
        },
        "peak_rss_kb": core.get("peak_rss_kb"),
    }


#: Keys every usable trend entry carries (the distill() output contract).
_ENTRY_KEYS = ("date", "events_per_sec", "requests_per_sec")


def _warn(message: str) -> None:
    print(f"bench_trend: warning: {message}", file=sys.stderr)


def load_trend(path: Path) -> dict:
    """Read the trend file; bootstraps leniently, refuses schema mismatches.

    Missing, empty, or unparseable files start a fresh trajectory (a torn
    artifact download loses at most the prior trajectory, which the CI
    artifact history still holds).  Malformed individual entries are
    dropped with a warning.  A parseable file whose schema is not ours
    raises ``ValueError`` -- that history belongs to another version.
    """
    if not path.exists() or path.stat().st_size == 0:
        return {"schema": SCHEMA_VERSION, "entries": []}
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        _warn(f"{path} is unparseable ({error}); starting a fresh trajectory")
        return {"schema": SCHEMA_VERSION, "entries": []}
    if (
        not isinstance(payload, dict)
        or payload.get("schema") != SCHEMA_VERSION
        or not isinstance(payload.get("entries"), list)
    ):
        raise ValueError(
            f"{path} is not a schema-{SCHEMA_VERSION} trend file; refusing "
            "to overwrite history"
        )
    kept = []
    for index, entry in enumerate(payload["entries"]):
        if isinstance(entry, dict) and all(key in entry for key in _ENTRY_KEYS):
            kept.append(entry)
        else:
            _warn(f"{path} entry {index} is malformed; skipping it")
    payload["entries"] = kept
    return payload


def append(core_path: Path, trend_path: Path, *, sha: str = "",
           date: str = "") -> dict:
    """Append one entry distilled from ``core_path`` to ``trend_path``."""
    core = json.loads(Path(core_path).read_text(encoding="utf-8"))
    trend = load_trend(Path(trend_path))
    trend["entries"].append(distill(core, sha=sha, date=date))
    Path(trend_path).write_text(
        json.dumps(trend, indent=1) + "\n", encoding="utf-8"
    )
    return trend


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--core", required=True, help="fresh BENCH_core.json")
    parser.add_argument(
        "--trend", required=True,
        help="trend file to append to (created when missing)",
    )
    parser.add_argument("--sha", default="", help="commit of the measured tree")
    parser.add_argument(
        "--date", default="",
        help="entry timestamp (default: now, UTC, ISO-8601)",
    )
    args = parser.parse_args(argv)
    trend = append(
        Path(args.core), Path(args.trend), sha=args.sha, date=args.date
    )
    latest = trend["entries"][-1]
    print(
        f"appended entry {len(trend['entries'])}: {latest['date']} "
        f"{latest['sha'][:12]} "
        f"engine={latest['events_per_sec']:,.0f} ev/s "
        f"aggregate={latest['requests_per_sec']:,.1f} req/s"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
