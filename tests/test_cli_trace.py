"""CLI tests for the ``trace`` subcommand and ``figure --trace``."""

import gzip
import json
from pathlib import Path

import pytest

from repro.cli import main

MSR = str(Path(__file__).parent / "workloads" / "data" / "msr_tiny.csv")
FIO = str(Path(__file__).parent / "workloads" / "data" / "fio_tiny.log")


def test_trace_inspect_table(capsys):
    assert main(["trace", "inspect", MSR]) == 0
    out = capsys.readouterr().out
    assert "msr" in out
    assert "records" in out
    assert "digest" in out


def test_trace_inspect_json_detects_each_fixture(capsys):
    assert main(["trace", "inspect", MSR, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["format"] == "msr"
    assert payload["records"] == 24
    assert len(payload["digest"]) == 64
    assert main(["trace", "inspect", FIO, "--json"]) == 0
    assert json.loads(capsys.readouterr().out)["format"] == "fio-log"


def test_trace_inspect_unknown_file_errors_cleanly(tmp_path, capsys):
    target = tmp_path / "opaque.bin"
    target.write_text("not a trace\n")
    assert main(["trace", "inspect", str(target)]) == 2
    assert "unrecognised trace format" in capsys.readouterr().err


def test_trace_replay_json(capsys):
    code = main(
        ["trace", "replay", MSR, "--design", "venice", "--requests", "24", "--json"]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["workload"] == "msr_tiny"
    assert payload["requests"] == 24
    assert payload["iops"] > 0


def test_trace_replay_warm_cache_is_identical(tmp_path, capsys):
    argv = [
        "trace", "replay", MSR, "--requests", "24", "--json",
        "--cache", str(tmp_path),
    ]
    assert main(argv) == 0
    cold = capsys.readouterr().out
    assert main(argv) == 0
    warm = capsys.readouterr().out
    assert warm == cold
    assert len(list(tmp_path.glob("*.json"))) == 1


def test_trace_replay_time_scale_changes_cache_identity(tmp_path, capsys):
    base = ["trace", "replay", MSR, "--requests", "24", "--cache", str(tmp_path)]
    assert main(base) == 0
    assert main(base + ["--time-scale", "0.5"]) == 0
    capsys.readouterr()
    assert len(list(tmp_path.glob("*.json"))) == 2


def test_trace_convert_round_trips_digest(tmp_path, capsys):
    out = tmp_path / "converted.csv"
    assert main(["trace", "convert", MSR, str(out)]) == 0
    assert "wrote 24 records" in capsys.readouterr().out
    assert main(["trace", "inspect", MSR, "--json"]) == 0
    original = json.loads(capsys.readouterr().out)
    assert main(["trace", "inspect", str(out), "--json"]) == 0
    converted = json.loads(capsys.readouterr().out)
    assert converted["format"] == "venice-csv"
    assert converted["digest"] == original["digest"]


def test_trace_convert_gzip_input(tmp_path, capsys):
    zipped = tmp_path / "msr_tiny.csv.gz"
    zipped.write_bytes(gzip.compress(Path(MSR).read_bytes()))
    out = tmp_path / "from_gz.csv"
    assert main(["trace", "convert", str(zipped), str(out)]) == 0
    assert "wrote 24 records" in capsys.readouterr().out


def test_figure_with_trace_files(capsys):
    code = main(
        ["figure", "fig11", "--requests", "24", "--trace", MSR, "--json"]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert list(payload["p99_ns"]) == ["msr_tiny"]


def test_figure_fig12_accepts_trace_files(capsys):
    code = main(
        ["figure", "fig12", "--requests", "24", "--trace", MSR, "--json"]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert list(payload["speedups"]) == ["msr_tiny"]


def test_trace_convert_failure_leaves_no_output(tmp_path, capsys):
    broken = tmp_path / "broken.csv"
    rows = Path(MSR).read_text().splitlines()
    rows.insert(10, "not,a,row")
    broken.write_text("\n".join(rows) + "\n")
    out = tmp_path / "out.csv"
    assert main(["trace", "convert", str(broken), str(out), "--format", "msr"]) == 2
    assert "row 11" in capsys.readouterr().err
    # No truncated-but-valid-looking CSV (and no temp file) left behind.
    assert not out.exists()
    assert list(tmp_path.glob("out.csv*")) == []


def test_figure_rejects_colliding_trace_stems(tmp_path, capsys):
    other = tmp_path / "msr_tiny.csv"  # same stem, different file
    other.write_text(Path(MSR).read_text().replace("Read", "Write"))
    code = main(["figure", "fig11", "--requests", "24",
                 "--trace", MSR, str(other)])
    assert code == 2
    assert "both reduce to workload name" in capsys.readouterr().err


def test_figure_accepts_same_file_listed_twice(capsys):
    code = main(
        ["figure", "fig11", "--requests", "24", "--trace", MSR, MSR, "--json"]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert list(payload["p99_ns"]) == ["msr_tiny"]


def test_figure_trace_and_workloads_are_exclusive(capsys):
    code = main(
        ["figure", "fig11", "--trace", MSR, "--workloads", "hm_0"]
    )
    assert code == 2
    assert "mutually exclusive" in capsys.readouterr().err


def test_figure_trace_missing_file_errors_cleanly(capsys):
    code = main(["figure", "fig11", "--trace", "/nonexistent/t.csv"])
    assert code == 2
    assert "cannot" in capsys.readouterr().err


def test_figure_empty_trace_flag_rejected(capsys):
    code = main(["figure", "fig11", "--trace"])
    assert code == 2
    assert "at least one file" in capsys.readouterr().err


def test_list_includes_formats(capsys):
    assert main(["list"]) == 0
    assert "msr" in capsys.readouterr().out
