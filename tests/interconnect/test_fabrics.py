"""Behavioural tests for the baseline, pSSD, pnSSD, NoSSD, and ideal fabrics."""

import pytest

from repro.config.presets import performance_optimized
from repro.config.ssd_config import DesignKind
from repro.errors import ConfigurationError
from repro.interconnect.ideal import IdealFabric
from repro.interconnect.nossd import NossdFabric
from repro.interconnect.pnssd import PnssdFabric
from repro.interconnect.shared_bus import BaselineFabric, PssdFabric
from repro.nand.address import ChipAddress
from repro.sim.engine import Engine


def config_small():
    return performance_optimized(blocks_per_plane=4, pages_per_block=4)


def run_transfers(fabric_cls, jobs):
    """jobs: list of (chip, payload); returns outcomes in job order."""
    engine = Engine()
    fabric = fabric_cls(engine, config_small())
    outcomes = [None] * len(jobs)

    def proc(index, chip, payload):
        outcome = yield from fabric.transfer(chip, payload)
        outcomes[index] = outcome

    for index, (chip, payload) in enumerate(jobs):
        engine.process(proc(index, chip, payload))
    engine.run()
    return fabric, outcomes


# --------------------------------------------------------------------- #
# Baseline
# --------------------------------------------------------------------- #


def test_baseline_same_channel_serializes():
    _, outcomes = run_transfers(
        BaselineFabric,
        [(ChipAddress(0, 0), 4096), (ChipAddress(0, 1), 4096)],
    )
    assert outcomes[0].end_ns <= outcomes[1].start_ns + outcomes[1].duration_ns
    assert not outcomes[0].conflicted
    assert outcomes[1].conflicted  # waited for the shared channel
    assert outcomes[1].waited


def test_baseline_different_channels_parallel():
    _, outcomes = run_transfers(
        BaselineFabric,
        [(ChipAddress(0, 0), 4096), (ChipAddress(1, 0), 4096)],
    )
    assert not outcomes[0].conflicted
    assert not outcomes[1].conflicted
    # Both finish within one transfer time: fully overlapped.
    assert max(o.end_ns for o in outcomes) < 4_500


def test_baseline_transfer_time_4kb():
    _, outcomes = run_transfers(BaselineFabric, [(ChipAddress(0, 0), 4096)])
    # 10 ns CMD + ~3413 ns transfer at 1.2 GB/s.
    assert outcomes[0].duration_ns == pytest.approx(3423, abs=5)


def test_baseline_channel_busy_accounting():
    fabric, _ = run_transfers(BaselineFabric, [(ChipAddress(0, 0), 4096)])
    assert fabric.stats.channel_busy_ns == pytest.approx(3423, abs=5)


# --------------------------------------------------------------------- #
# pSSD
# --------------------------------------------------------------------- #


def test_pssd_transfers_twice_as_fast():
    _, base = run_transfers(BaselineFabric, [(ChipAddress(0, 0), 16384)])
    _, fast = run_transfers(PssdFabric, [(ChipAddress(0, 0), 16384)])
    assert fast[0].duration_ns == pytest.approx(base[0].duration_ns / 2, rel=0.02)


def test_pssd_still_conflicts_on_shared_channel():
    _, outcomes = run_transfers(
        PssdFabric, [(ChipAddress(0, 0), 4096), (ChipAddress(0, 1), 4096)]
    )
    assert outcomes[1].conflicted


# --------------------------------------------------------------------- #
# pnSSD
# --------------------------------------------------------------------- #


def test_pnssd_requires_square_array():
    config = performance_optimized(blocks_per_plane=4, pages_per_block=4)
    rectangular = config.with_geometry(4, 16)
    with pytest.raises(ConfigurationError):
        PnssdFabric(Engine(), rectangular)


def test_pnssd_home_controller_preferred():
    fabric, outcomes = run_transfers(PnssdFabric, [(ChipAddress(2, 5), 4096)])
    assert outcomes[0].fc_index == 2
    assert fabric.row_transfers == 1
    assert fabric.col_transfers == 0


def test_pnssd_borrows_column_controller_under_backlog():
    # Enough queued work on the home controller to cross the borrow
    # threshold; the column controller should pick up some transfers.
    jobs = [(ChipAddress(0, way), 16384) for way in range(8)] * 2
    fabric, outcomes = run_transfers(PnssdFabric, jobs)
    assert fabric.col_transfers > 0
    assert fabric.row_transfers > 0


def test_pnssd_runs_at_packetized_bandwidth():
    _, outcomes = run_transfers(PnssdFabric, [(ChipAddress(0, 0), 16384)])
    _, base = run_transfers(BaselineFabric, [(ChipAddress(0, 0), 16384)])
    assert outcomes[0].duration_ns == pytest.approx(base[0].duration_ns / 2, rel=0.02)


# --------------------------------------------------------------------- #
# NoSSD
# --------------------------------------------------------------------- #


def test_nossd_static_controller_assignment():
    engine = Engine()
    fabric = NossdFabric(engine, config_small())
    chip = ChipAddress(3, 4)
    assert fabric._choose_fc(chip) == (3 + 4) % 8
    # Deterministic: same chip, same controller, always.
    assert fabric._choose_fc(chip) == fabric._choose_fc(chip)


def test_nossd_transfer_completes_and_releases_links():
    fabric, outcomes = run_transfers(NossdFabric, [(ChipAddress(2, 3), 4096)])
    assert outcomes[0].duration_ns > 4096
    for link in fabric.links.values():
        assert link.in_use == 0


def test_nossd_cut_through_pipelines_vs_store_and_forward():
    _, outcomes = run_transfers(NossdFabric, [(ChipAddress(7, 7), 4096)])
    # Virtual cut-through: latency ~ hops x hop_latency + serialization,
    # NOT hops x serialization (which would exceed 40 us here).
    assert outcomes[0].duration_ns < 3 * 4096


def test_nossd_same_chip_transfers_collide_on_their_deterministic_path():
    # Two transfers to the same chip share the same fixed XY path (that is
    # the deterministic-routing weakness): the second queues on the shared
    # links, which counts as a path conflict, before the ejection port.
    _, outcomes = run_transfers(
        NossdFabric, [(ChipAddress(1, 1), 4096), (ChipAddress(1, 1), 4096)]
    )
    waited = [o for o in outcomes if o.waited]
    assert len(waited) == 1
    assert max(o.end_ns for o in outcomes) > 8_000  # serialized end to end


# --------------------------------------------------------------------- #
# Ideal
# --------------------------------------------------------------------- #


def test_ideal_never_reports_conflicts():
    jobs = [(ChipAddress(0, way), 4096) for way in range(8)]
    _, outcomes = run_transfers(IdealFabric, jobs)
    assert all(not o.conflicted for o in outcomes)
    # A whole channel's worth of chips transfers in parallel.
    assert max(o.end_ns for o in outcomes) < 4_500


def test_ideal_same_chip_still_serializes():
    _, outcomes = run_transfers(
        IdealFabric, [(ChipAddress(0, 0), 4096), (ChipAddress(0, 0), 4096)]
    )
    assert max(o.end_ns for o in outcomes) > 6_000
    assert all(not o.conflicted for o in outcomes)  # chip busy, not conflict


def test_design_kinds():
    assert BaselineFabric.design is DesignKind.BASELINE
    assert PssdFabric.design is DesignKind.PSSD
    assert PnssdFabric.design is DesignKind.PNSSD
    assert NossdFabric.design is DesignKind.NOSSD
    assert IdealFabric.design is DesignKind.IDEAL
