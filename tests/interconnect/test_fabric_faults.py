"""Per-fabric degradation semantics under injected link/router faults."""

import pytest

from repro.config.presets import preset_by_name
from repro.config.ssd_config import DesignKind
from repro.interconnect.nossd import NossdFabric
from repro.interconnect.pnssd import PnssdFabric
from repro.interconnect.shared_bus import BaselineFabric, PssdFabric
from repro.nand.address import ChipAddress
from repro.sim.engine import Engine
from repro.ssd.factory import build_fabric


def small_config():
    return preset_by_name(
        "performance-optimized", blocks_per_plane=8, pages_per_block=8
    )


def run_transfer(engine, fabric, chip, payload=4096):
    """Drive one transfer to completion; returns the outcome or None."""
    box = {}

    def driver():
        outcome = yield from fabric.transfer(chip, payload)
        box["outcome"] = outcome

    engine.process(driver())
    engine.run()
    return box.get("outcome")


# --------------------------------------------------------------------- #
# baseline / pSSD: severed multi-drop bus
# --------------------------------------------------------------------- #

def test_baseline_blocks_chips_behind_a_severed_bus_segment():
    engine = Engine()
    fabric = BaselineFabric(engine, small_config())
    fabric.apply_link_fault((0, 3), (0, 4), down=True)
    assert fabric.chip_reachable(ChipAddress(0, 3))
    assert not fabric.chip_reachable(ChipAddress(0, 4))
    assert not fabric.chip_reachable(ChipAddress(0, 7))
    # Other channels are untouched.
    assert fabric.chip_reachable(ChipAddress(1, 7))

    blocked = run_transfer(engine, fabric, ChipAddress(0, 5))
    assert blocked is None  # parked forever: the bus cannot adapt
    assert fabric.stats.blocked_transfers == 1

    served = run_transfer(engine, fabric, ChipAddress(0, 2))
    assert served is not None and not served.waited


def test_baseline_vertical_link_faults_are_noops():
    engine = Engine()
    fabric = BaselineFabric(engine, small_config())
    fabric.apply_link_fault((0, 3), (1, 3), down=True)
    assert all(
        fabric.chip_reachable(ChipAddress(channel, way))
        for channel in range(8)
        for way in range(8)
    )
    assert run_transfer(engine, fabric, ChipAddress(0, 7)) is not None


def test_baseline_repair_resumes_blocked_transfers():
    engine = Engine()
    fabric = BaselineFabric(engine, small_config())
    fabric.apply_link_fault((2, 0), (2, 1), down=True)
    box = {}

    def driver():
        outcome = yield from fabric.transfer(ChipAddress(2, 5), 4096)
        box["outcome"] = outcome

    engine.process(driver())
    engine.schedule(10_000, lambda: fabric.apply_link_fault((2, 0), (2, 1), False))
    engine.run()
    outcome = box["outcome"]
    assert outcome.waited and outcome.conflicted
    assert outcome.start_ns == 0 and outcome.end_ns >= 10_000
    assert fabric.stats.blocked_transfers == 1


def test_pssd_inherits_bus_degradation():
    engine = Engine()
    fabric = PssdFabric(engine, small_config())
    fabric.apply_link_fault((1, 0), (1, 1), down=True)
    assert not fabric.chip_reachable(ChipAddress(1, 1))
    assert run_transfer(engine, fabric, ChipAddress(1, 4)) is None


# --------------------------------------------------------------------- #
# pnSSD: dual buses give partial resilience
# --------------------------------------------------------------------- #

def test_pnssd_serves_over_the_column_bus_when_the_row_is_severed():
    engine = Engine()
    fabric = PnssdFabric(engine, small_config())
    fabric.apply_link_fault((0, 3), (0, 4), down=True)  # row bus 0 cut
    outcome = run_transfer(engine, fabric, ChipAddress(0, 5))
    assert outcome is not None
    assert outcome.fc_index == 5  # column controller served it
    assert fabric.col_transfers == 1


def test_pnssd_blocks_only_when_both_buses_are_severed():
    engine = Engine()
    fabric = PnssdFabric(engine, small_config())
    fabric.apply_link_fault((1, 0), (1, 1), down=True)  # row bus 1 beyond way 0
    fabric.apply_link_fault((0, 5), (1, 5), down=True)  # column bus 5 beyond row 0
    assert run_transfer(engine, fabric, ChipAddress(1, 5)) is None
    assert fabric.stats.blocked_transfers == 1
    # Same row, different column: column bus 6 still reaches it.
    assert run_transfer(engine, fabric, ChipAddress(1, 6)) is not None


# --------------------------------------------------------------------- #
# NoSSD: deterministic XY routing cannot adapt
# --------------------------------------------------------------------- #

def test_nossd_blocks_when_the_xy_path_crosses_a_dead_link():
    engine = Engine()
    fabric = NossdFabric(engine, small_config())
    chip = ChipAddress(2, 5)  # fc = (2+5) % 8 = 7, XY path from (7,0)
    path, _ = fabric._route_for(7, (2, 5))
    a, b = path[1], path[2]
    fabric.apply_link_fault(a, b, down=True)
    assert run_transfer(engine, fabric, chip) is None
    assert fabric.stats.blocked_transfers == 1


def test_nossd_blocks_on_dead_routers_and_resumes_on_repair():
    engine = Engine()
    fabric = NossdFabric(engine, small_config())
    chip = ChipAddress(2, 5)
    path, _ = fabric._route_for(7, (2, 5))
    victim = path[1]
    fabric.apply_router_fault(victim, down=True)
    box = {}

    def driver():
        outcome = yield from fabric.transfer(chip, 4096)
        box["outcome"] = outcome

    engine.process(driver())
    engine.schedule(5_000, lambda: fabric.apply_router_fault(victim, False))
    engine.run()
    assert box["outcome"].conflicted
    assert box["outcome"].end_ns >= 5_000


def test_nossd_unaffected_paths_keep_flowing():
    engine = Engine()
    fabric = NossdFabric(engine, small_config())
    fabric.apply_link_fault((7, 6), (7, 7), down=True)
    # A chip whose XY path never touches (7,6)-(7,7).
    outcome = run_transfer(engine, fabric, ChipAddress(0, 1))
    assert outcome is not None and not outcome.waited


# --------------------------------------------------------------------- #
# shared hooks
# --------------------------------------------------------------------- #

@pytest.mark.parametrize(
    "design", [DesignKind.IDEAL]
)
def test_fault_hooks_default_to_noops(design):
    engine = Engine()
    fabric = build_fabric(engine, small_config(), design)
    fabric.apply_link_fault((0, 0), (0, 1), down=True)
    fabric.apply_router_fault((0, 0), down=True)
    assert run_transfer(engine, fabric, ChipAddress(0, 1)) is not None
    assert fabric.stats.blocked_transfers == 0
