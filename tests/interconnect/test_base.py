"""Fabric base-layer tests: outcomes and statistics accounting."""

import pytest

from repro.interconnect.base import FabricStats, TransferOutcome, make_outcome


def outcome(**overrides):
    defaults = dict(
        waited=False,
        conflicted=False,
        start_ns=0,
        end_ns=100,
        hops=1,
        fc_index=0,
    )
    defaults.update(overrides)
    return make_outcome(**defaults)


def test_outcome_duration():
    assert outcome(start_ns=50, end_ns=175).duration_ns == 125


def test_stats_counts_conflicts_and_waits():
    stats = FabricStats()
    stats.record(outcome(conflicted=True, waited=True), payload_bytes=4096)
    stats.record(outcome(), payload_bytes=4096)
    assert stats.transfers == 2
    assert stats.conflicted_transfers == 1
    assert stats.waited_transfers == 1
    assert stats.bytes_moved == 8192


def test_stats_per_fc_histogram():
    stats = FabricStats()
    stats.record(outcome(fc_index=3), 0)
    stats.record(outcome(fc_index=3), 0)
    stats.record(outcome(fc_index=5), 0)
    assert stats.per_fc_transfers == {3: 2, 5: 1}


def test_stats_scout_attempt_accumulation():
    stats = FabricStats()
    stats.record(outcome(scout_attempts=3), 0)
    stats.record(outcome(scout_attempts=1), 0)
    assert stats.scout_attempts_total == 4
