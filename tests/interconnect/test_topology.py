"""Mesh topology and XY routing tests."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError, RoutingError
from repro.interconnect.topology import (
    Direction,
    MeshTopology,
    edge_key,
    path_edges,
    xy_path,
)

MESH = MeshTopology(8, 8)


def test_edge_count_matches_paper():
    # "Venice requires 112 network links" for the 8x8 mesh (§6.6).
    assert MESH.edge_count == 112
    assert len(list(MESH.edges())) == 112


def test_edge_count_rectangular():
    assert MeshTopology(4, 16).edge_count == 4 * 15 + 3 * 16
    assert MeshTopology(16, 4).edge_count == 16 * 3 + 15 * 4


def test_degenerate_mesh_rejected():
    with pytest.raises(ConfigurationError):
        MeshTopology(0, 8)


def test_neighbors_interior_has_four():
    assert len(list(MESH.neighbors((3, 3)))) == 4


def test_neighbors_corner_has_two():
    assert len(list(MESH.neighbors((0, 0)))) == 2


def test_direction_deltas():
    assert MESH.neighbor((3, 3), Direction.RIGHT) == (3, 4)
    assert MESH.neighbor((3, 3), Direction.LEFT) == (3, 2)
    assert MESH.neighbor((3, 3), Direction.UP) == (2, 3)
    assert MESH.neighbor((3, 3), Direction.DOWN) == (4, 3)


def test_neighbor_off_edge_is_none():
    assert MESH.neighbor((0, 0), Direction.UP) is None
    assert MESH.neighbor((0, 0), Direction.LEFT) is None
    assert MESH.neighbor((7, 7), Direction.DOWN) is None


def test_opposites():
    assert Direction.RIGHT.opposite is Direction.LEFT
    assert Direction.UP.opposite is Direction.DOWN


def test_port_encoding_matches_figure7():
    assert Direction.RIGHT.value == 0b00
    assert Direction.UP.value == 0b01
    assert Direction.DOWN.value == 0b10
    assert Direction.LEFT.value == 0b11


def test_fc_attach_points():
    assert MESH.fc_attach_point(0) == (0, 0)
    assert MESH.fc_attach_point(7) == (7, 0)
    with pytest.raises(ConfigurationError):
        MESH.fc_attach_point(8)


def test_edge_key_symmetric():
    assert edge_key((0, 0), (0, 1)) == edge_key((0, 1), (0, 0))


def test_edge_key_self_loop_rejected():
    with pytest.raises(RoutingError):
        edge_key((1, 1), (1, 1))


def test_direction_between():
    assert MESH.direction_between((2, 2), (2, 3)) is Direction.RIGHT
    with pytest.raises(RoutingError):
        MESH.direction_between((0, 0), (5, 5))


coords = st.tuples(st.integers(0, 7), st.integers(0, 7))


@given(coords, coords)
def test_xy_path_properties(source, destination):
    path = xy_path(MESH, source, destination)
    assert path[0] == source
    assert path[-1] == destination
    # Dimension order: length equals Manhattan distance + 1 (minimal).
    assert len(path) == MESH.manhattan(source, destination) + 1
    # Consecutive nodes are neighbors; X moves come before Y moves.
    switched_to_y = False
    for a, b in zip(path, path[1:]):
        assert MESH.manhattan(a, b) == 1
        if a[0] != b[0]:
            switched_to_y = True
        else:
            assert not switched_to_y, "X move after a Y move violates XY order"


@given(coords, coords)
def test_path_edges_are_unique(source, destination):
    path = xy_path(MESH, source, destination)
    edges = path_edges(path)
    assert len(edges) == len(set(edges))


def test_xy_path_rejects_outside():
    with pytest.raises(RoutingError):
        xy_path(MESH, (0, 0), (9, 9))
