"""Metrics collector and RunResult tests."""

import pytest

from repro.errors import SimulationError
from repro.hil.request import IoKind, IoRequest
from repro.metrics.collector import MetricsCollector


def completed_request(arrival, completion, kind=IoKind.READ, conflict=False):
    request = IoRequest(
        kind=kind, offset_bytes=0, size_bytes=4096, arrival_ns=arrival
    )
    request.completed_ns = completion
    request.path_conflict = conflict
    return request


def test_execution_time_spans_first_arrival_to_last_completion():
    collector = MetricsCollector()
    collector.record_request(completed_request(100, 500))
    collector.record_request(completed_request(50, 2_000))
    assert collector.execution_time_ns == 1_950


def test_iops_computation():
    collector = MetricsCollector()
    for index in range(10):
        collector.record_request(completed_request(index * 100, index * 100 + 50))
    # 10 requests over 950 ns.
    assert collector.iops == pytest.approx(10 * 1e9 / 950)


def test_conflict_fraction():
    collector = MetricsCollector()
    collector.record_request(completed_request(0, 10, conflict=True))
    collector.record_request(completed_request(0, 10, conflict=False))
    assert collector.conflict_fraction == 0.5


def test_read_write_latency_split():
    collector = MetricsCollector()
    collector.record_request(completed_request(0, 100, kind=IoKind.READ))
    collector.record_request(completed_request(0, 300, kind=IoKind.WRITE))
    assert collector.read_latencies.mean == 100
    assert collector.write_latencies.mean == 300


def test_incomplete_request_rejected():
    collector = MetricsCollector()
    request = IoRequest(kind=IoKind.READ, offset_bytes=0, size_bytes=4096, arrival_ns=0)
    with pytest.raises(SimulationError):
        collector.record_request(request)


def test_finalize_builds_run_result():
    collector = MetricsCollector()
    for index in range(100):
        collector.record_request(
            completed_request(index * 10, index * 10 + 100 + index)
        )
    result = collector.finalize(
        "venice", "performance-optimized", "hm_0",
        energy_mj=12.5, average_power_mw=900.0, with_cdf=True,
    )
    assert result.design == "venice"
    assert result.requests_completed == 100
    assert result.p99_latency_ns >= result.mean_latency_ns
    assert result.energy_mj == 12.5
    assert result.latency_cdf
    assert result.tail_cdf[0][1] == pytest.approx(0.99)


def test_finalize_empty_rejected():
    with pytest.raises(SimulationError):
        MetricsCollector().finalize("x", "y", "z")


def test_speedup_over_baseline():
    fast = MetricsCollector()
    slow = MetricsCollector()
    fast.record_request(completed_request(0, 1_000))
    slow.record_request(completed_request(0, 4_000))
    fast_result = fast.finalize("venice", "c", "w")
    slow_result = slow.finalize("baseline", "c", "w")
    assert fast_result.speedup_over(slow_result) == pytest.approx(4.0)
    assert slow_result.speedup_over(fast_result) == pytest.approx(0.25)


def test_throughput_normalization():
    a = MetricsCollector()
    b = MetricsCollector()
    for index in range(10):
        a.record_request(completed_request(index * 100, index * 100 + 10))
        b.record_request(completed_request(index * 50, index * 50 + 10))
    ra = a.finalize("baseline", "c", "w")
    rb = b.finalize("ideal", "c", "w")
    assert ra.throughput_normalized_to(rb) == pytest.approx(ra.iops / rb.iops)


def test_finalized_result_round_trips_through_json():
    import json

    from repro.metrics.collector import RunResult

    collector = MetricsCollector()
    for index in range(50):
        collector.record_request(
            completed_request(index * 10, index * 10 + 100 + index)
        )
    result = collector.finalize(
        "venice", "performance-optimized", "hm_0",
        energy_mj=12.5, average_power_mw=900.0, with_cdf=True,
        extra={"fabric_transfers": 50.0},
    )
    rebuilt = RunResult.from_dict(json.loads(json.dumps(result.to_dict())))
    assert rebuilt == result
    assert rebuilt.tail_cdf == result.tail_cdf
    assert rebuilt.extra == result.extra
