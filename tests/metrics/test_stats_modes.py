"""Exact-vs-histogram equivalence at the device level.

The acceptance bar for the streaming-histogram migration: with exact stats
the run output is bit-identical to the historical recorder; in histogram
mode only the percentile/CDF fields may move, and only within the
documented relative bound.
"""

import pytest

from repro.config.ssd_config import DesignKind
from repro.experiments.spec import ExperimentScale, make_spec
from repro.metrics.collector import MetricsCollector
from repro.sim.stats import HISTOGRAM_RELATIVE_ERROR

TINY = ExperimentScale(
    requests=120,
    requests_per_mix_constituent=40,
    blocks_per_plane=8,
    pages_per_block=8,
)

# Fields allowed to differ between modes (and only within the bound).
APPROXIMATE_FIELDS = {"p99_latency_ns", "latency_cdf", "tail_cdf"}


def _run(design: DesignKind, exact: bool):
    spec = make_spec(
        design, "performance-optimized", "hm_0", TINY,
        with_cdf=True, exact_stats=exact,
    )
    return spec.execute()


@pytest.mark.parametrize("design", [DesignKind.BASELINE, DesignKind.VENICE])
def test_histogram_mode_matches_exact_mode_within_bound(design):
    exact = _run(design, exact=True).to_dict()
    hist = _run(design, exact=False).to_dict()
    # exact_stats rides in device_kwargs, so remove the knob's own echo.
    for field in exact:
        if field in APPROXIMATE_FIELDS:
            continue
        assert hist[field] == exact[field], field
    assert hist["p99_latency_ns"] == pytest.approx(
        exact["p99_latency_ns"], rel=HISTOGRAM_RELATIVE_ERROR
    )
    for (approx_latency, f1), (true_latency, f2) in zip(
        hist["latency_cdf"], exact["latency_cdf"]
    ):
        assert f1 == f2
        assert approx_latency == pytest.approx(
            true_latency, rel=HISTOGRAM_RELATIVE_ERROR
        )
    for (approx_latency, f1), (true_latency, f2) in zip(
        hist["tail_cdf"], exact["tail_cdf"]
    ):
        assert f1 == f2
        assert approx_latency == pytest.approx(
            true_latency, rel=HISTOGRAM_RELATIVE_ERROR
        )


def test_exact_mode_is_deterministic_across_runs():
    first = _run(DesignKind.BASELINE, exact=True).to_dict()
    second = _run(DesignKind.BASELINE, exact=True).to_dict()
    assert first == second


def test_collector_mode_flag_controls_recorders():
    exact = MetricsCollector(exact_stats=True)
    hist = MetricsCollector(exact_stats=False)
    assert exact.latencies.exact and exact.read_latencies.exact
    assert not hist.latencies.exact and not hist.write_latencies.exact


def test_env_switch_flips_collector_default(monkeypatch):
    monkeypatch.setenv("VENICE_EXACT_STATS", "1")
    assert MetricsCollector().exact_stats is True
    monkeypatch.delenv("VENICE_EXACT_STATS")
    assert MetricsCollector().exact_stats is False


def test_env_switch_is_resolved_at_spec_construction(monkeypatch):
    """The stats mode lives in the spec digest, not in execution-time env.

    A shared result store must never serve histogram-mode results to an
    exact-stats run (or vice versa), so make_spec folds VENICE_EXACT_STATS
    into device_kwargs and execute() pins the mode.
    """
    monkeypatch.delenv("VENICE_EXACT_STATS", raising=False)
    plain = make_spec(DesignKind.BASELINE, "performance-optimized", "hm_0", TINY)
    monkeypatch.setenv("VENICE_EXACT_STATS", "1")
    exact = make_spec(DesignKind.BASELINE, "performance-optimized", "hm_0", TINY)
    assert dict(exact.device_kwargs)["exact_stats"] is True
    assert "exact_stats" not in dict(plain.device_kwargs)
    assert plain.digest != exact.digest
    # Executing the mode-less spec under the env switch still runs in its
    # recorded (histogram) mode: the run is a pure function of the spec.
    hist_under_env = plain.execute().to_dict()
    monkeypatch.delenv("VENICE_EXACT_STATS")
    hist_plain = plain.execute().to_dict()
    assert hist_under_env == hist_plain
