"""LatencyRecorder payload round-trips and cross-device merging."""

import json

import pytest

from repro.errors import SimulationError
from repro.metrics.collector import RunResult
from repro.sim.stats import HISTOGRAM_RELATIVE_ERROR, LatencyRecorder


def _samples(seed, count, scale):
    # deterministic pseudo-latencies with a heavy tail
    values = []
    state = seed
    for _ in range(count):
        state = (state * 6364136223846793005 + 1442695040888963407) % (1 << 63)
        values.append(((state >> 16) % scale) + (state % 7 == 0) * scale * 10)
    return [float(v) for v in values]


def test_histogram_payload_round_trips_through_json():
    recorder = LatencyRecorder(exact=False)
    for value in _samples(1, 500, 100_000) + [0.0, 0.0]:
        recorder.record(value)
    payload = json.loads(json.dumps(recorder.to_payload()))
    rebuilt = LatencyRecorder.from_payload(payload)
    assert rebuilt.count == recorder.count
    assert rebuilt.mean == recorder.mean
    assert rebuilt.minimum == recorder.minimum
    assert rebuilt.maximum == recorder.maximum
    for fraction in (0.5, 0.99, 0.999):
        assert rebuilt.p(fraction) == recorder.p(fraction)


def test_exact_payload_round_trips():
    recorder = LatencyRecorder(exact=True)
    for value in _samples(2, 200, 50_000):
        recorder.record(value)
    rebuilt = LatencyRecorder.from_payload(
        json.loads(json.dumps(recorder.to_payload()))
    )
    assert rebuilt.exact
    assert rebuilt.samples == recorder.samples
    assert rebuilt.p99 == recorder.p99


def test_empty_recorder_round_trips():
    rebuilt = LatencyRecorder.from_payload(LatencyRecorder(exact=False).to_payload())
    assert rebuilt.count == 0
    assert rebuilt.mean == 0.0 and rebuilt.maximum == 0.0
    # and it still accepts samples afterwards
    rebuilt.record(42.0)
    assert rebuilt.count == 1 and rebuilt.p99 == pytest.approx(42.0, rel=0.01)


def test_unknown_payload_mode_rejected():
    with pytest.raises(SimulationError):
        LatencyRecorder.from_payload({"mode": "parquet"})


def test_merged_histograms_match_one_big_recorder_exactly():
    """Merging buckets is associative: same state as recording everything
    into a single recorder, so merged quantiles keep the 1% bound."""
    shards = [_samples(seed, 300, 80_000) for seed in range(4)]
    one = LatencyRecorder(exact=False)
    parts = []
    for shard in shards:
        part = LatencyRecorder(exact=False)
        for value in shard:
            one.record(value)
            part.record(value)
        parts.append(part)
    merged = LatencyRecorder.from_payload(parts[0].to_payload())
    for part in parts[1:]:
        merged.merge(LatencyRecorder.from_payload(part.to_payload()))
    assert merged.count == one.count
    assert merged.mean == pytest.approx(one.mean, rel=1e-12)
    assert merged.minimum == one.minimum and merged.maximum == one.maximum
    for fraction in (0.5, 0.9, 0.99, 0.999):
        assert merged.p(fraction) == one.p(fraction)


def test_merged_quantiles_stay_within_the_documented_bound():
    shards = [_samples(seed, 400, 60_000) for seed in range(3)]
    flat = sorted(value for shard in shards for value in shard)
    merged = LatencyRecorder(exact=False)
    for shard in shards:
        part = LatencyRecorder(exact=False)
        for value in shard:
            part.record(value)
        merged.merge(part)
    for fraction in (0.5, 0.99, 0.999):
        position = fraction * (len(flat) - 1)
        true_value = flat[int(round(position))]
        assert merged.p(fraction) == pytest.approx(
            true_value, rel=3 * HISTOGRAM_RELATIVE_ERROR, abs=1.0
        )


def test_exact_recorders_merge_by_concatenation():
    left, right = LatencyRecorder(exact=True), LatencyRecorder(exact=True)
    for value in (1.0, 5.0, 9.0):
        left.record(value)
    for value in (2.0, 4.0):
        right.record(value)
    left.merge(right)
    assert left.count == 5
    assert sorted(left.samples) == [1.0, 2.0, 4.0, 5.0, 9.0]


def test_mode_mismatch_refuses_to_merge():
    with pytest.raises(SimulationError):
        LatencyRecorder(exact=True).merge(LatencyRecorder(exact=False))


# --------------------------------------------------------------------- #
# RunResult integration
# --------------------------------------------------------------------- #

def _result(**overrides):
    payload = dict(
        design="venice", config_name="perf", workload="hm_0",
        requests_completed=3, execution_time_ns=300, iops=1e7,
        mean_latency_ns=100.0, p99_latency_ns=200.0,
        conflict_fraction=0.0, read_fraction=1.0,
    )
    payload.update(overrides)
    return RunResult(**payload)


def test_run_result_omits_absent_histogram():
    result = _result()
    assert "latency_histogram" not in result.to_dict()
    rebuilt = RunResult.from_dict(result.to_dict())
    assert rebuilt.latency_histogram is None


def test_run_result_round_trips_histogram_payload():
    recorder = LatencyRecorder(exact=False)
    for value in (100.0, 200.0, 300.0):
        recorder.record(value)
    result = _result(latency_histogram=recorder.to_payload())
    rebuilt = RunResult.from_dict(json.loads(json.dumps(result.to_dict())))
    assert rebuilt.latency_histogram is not None
    merged = LatencyRecorder.from_payload(rebuilt.latency_histogram)
    assert merged.count == 3 and merged.maximum == 300.0
