"""Per-tenant latency histograms: exact merging and round-tripping."""

from repro.experiments.executor import SerialExecutor, execute_specs
from repro.experiments.spec import ExperimentScale
from repro.fleet.run import merge_latency_payloads, merge_tenant_payloads
from repro.fleet.spec import make_fleet_spec
from repro.metrics.collector import RunResult
from repro.sim.stats import LatencyRecorder

SCALE = ExperimentScale(
    requests=120, requests_per_mix_constituent=50, seed=42
)


def _tenant_result():
    fleet = make_fleet_spec(
        "venice", "performance-optimized", "hm_0", SCALE,
        devices=1, tenants=3, burst="0x2",  # arms export_tenant_histograms
    )
    results = execute_specs(list(fleet.members), executor=SerialExecutor())
    return results[fleet.members[0]]


def test_merged_tenant_recorders_equal_one_combined_recorder():
    """The per-tenant split loses nothing: merging every tenant's recorder
    reproduces the member's overall latency histogram exactly."""
    result = _tenant_result()
    assert result.tenant_histograms and len(result.tenant_histograms) == 3
    merged = merge_latency_payloads(
        list(result.tenant_histograms.values())
    )
    combined = LatencyRecorder.from_payload(result.latency_histogram)
    assert merged.to_payload() == combined.to_payload()
    assert merged.count == combined.count
    assert merged.p99 == combined.p99


def test_tenant_histograms_round_trip_through_result_serialisation():
    result = _tenant_result()
    clone = RunResult.from_dict(result.to_dict())
    assert clone.tenant_histograms == result.tenant_histograms
    assert clone.to_dict() == result.to_dict()


def test_merge_tenant_payloads_merges_across_members():
    result = _tenant_result()
    # The same member twice stands in for two devices: every tenant's
    # merged recorder must hold both devices' samples.
    merged = merge_tenant_payloads([result, result])
    assert sorted(merged, key=int) == sorted(
        result.tenant_histograms, key=int
    )
    for tenant, recorder in merged.items():
        single = LatencyRecorder.from_payload(
            result.tenant_histograms[tenant]
        )
        assert recorder.count == 2 * single.count


def test_plain_specs_export_no_tenant_histograms():
    fleet = make_fleet_spec(
        "venice", "performance-optimized", "hm_0", SCALE,
        devices=1, tenants=3,  # no qos/burst: collector gate stays off
    )
    results = execute_specs(list(fleet.members), executor=SerialExecutor())
    result = results[fleet.members[0]]
    assert result.tenant_histograms is None
    assert merge_tenant_payloads([result]) == {}
