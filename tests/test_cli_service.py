"""CLI surface around the service: serve flag validation plus the
machine-readable contracts scripts and CI consume (`list --json`,
`queue status --json`)."""

from __future__ import annotations

import json

from repro.cli import main
from repro.experiments.queue import WorkQueue
from repro.experiments.runner import ExperimentScale, make_spec


def test_serve_rejects_bad_flags(tmp_path, capsys):
    state = str(tmp_path / "state")
    assert main(["serve", "--state", state, "--jobs", "0"]) == 2
    assert "--jobs" in capsys.readouterr().err
    assert main(["serve", "--state", state, "--timeout", "-1"]) == 2
    assert "--timeout" in capsys.readouterr().err


def test_list_json_is_the_machine_readable_catalog(capsys):
    assert main(["list", "--json"]) == 0
    catalog = json.loads(capsys.readouterr().out)
    assert sorted(catalog) == [
        "backends", "designs", "formats", "mixes", "placements",
        "presets", "qos", "workloads",
    ]
    assert "venice" in catalog["designs"]
    assert "hm_0" in catalog["workloads"]
    assert "mix1" in catalog["mixes"]
    assert all(
        isinstance(name, str) for names in catalog.values() for name in names
    )


def test_list_plain_output_matches_the_catalog(capsys):
    assert main(["list"]) == 0
    plain = capsys.readouterr().out
    assert main(["list", "--json"]) == 0
    catalog = json.loads(capsys.readouterr().out)
    for section, names in catalog.items():
        assert f"{section}:" in plain
        for name in names:
            assert name in plain


def test_queue_status_json_contract(tmp_path, capsys):
    queue_dir = tmp_path / "queue"
    queue = WorkQueue(
        queue_dir,
        store_dir=tmp_path / "store",
        lease_seconds=15.0,
        max_attempts=2,
    )
    spec = make_spec(
        "venice",
        "performance-optimized",
        "hm_0",
        ExperimentScale(requests=40),
    )
    queue.enqueue_specs([spec])

    assert main(
        ["queue", "status", "--queue", str(queue_dir), "--json"]
    ) == 0
    status = json.loads(capsys.readouterr().out)
    # The full machine-readable contract: policy and every task-state
    # counter, so dashboards and CI never have to parse human output.
    assert status["tasks"] == 1
    assert status["ready"] == 1
    assert status["done"] == 0
    assert status["claimed"] == 0
    assert status["dead"] == 0
    assert status["in_backoff"] == 0
    assert status["expired_leases"] == 0
    assert status["lease_seconds"] == 15.0
    assert status["max_attempts"] == 2
    assert status["store_backend"]
    assert status["directory"] == str(queue_dir)
