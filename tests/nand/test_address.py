"""Physical address arithmetic tests."""

import pytest
from hypothesis import given, strategies as st

from repro.config.ssd_config import NandGeometry
from repro.errors import ConfigurationError
from repro.nand.address import ChipAddress, PhysicalPageAddress

GEOMETRY = NandGeometry(
    channels=4,
    chips_per_channel=4,
    dies_per_chip=2,
    planes_per_die=2,
    blocks_per_plane=8,
    pages_per_block=16,
)


def test_chip_flat_round_trip():
    for index in range(GEOMETRY.total_chips):
        address = ChipAddress.from_flat(index, GEOMETRY)
        assert address.flat_index(GEOMETRY) == index


def test_chip_flat_is_row_major():
    assert ChipAddress(0, 0).flat_index(GEOMETRY) == 0
    assert ChipAddress(0, 3).flat_index(GEOMETRY) == 3
    assert ChipAddress(1, 0).flat_index(GEOMETRY) == 4


def test_chip_flat_out_of_range():
    with pytest.raises(ConfigurationError):
        ChipAddress.from_flat(GEOMETRY.total_chips, GEOMETRY)


def test_chip_validate_rejects_bad_way():
    with pytest.raises(ConfigurationError):
        ChipAddress(0, 99).validate(GEOMETRY)


@given(st.integers(min_value=0, max_value=GEOMETRY.total_pages - 1))
def test_page_flat_round_trip(index):
    address = PhysicalPageAddress.from_page_flat(index, GEOMETRY)
    address.validate(GEOMETRY)
    assert address.page_flat_index(GEOMETRY) == index


def test_page_flat_out_of_range():
    with pytest.raises(ConfigurationError):
        PhysicalPageAddress.from_page_flat(GEOMETRY.total_pages, GEOMETRY)


def test_page_flat_zero_is_origin():
    address = PhysicalPageAddress.from_page_flat(0, GEOMETRY)
    assert address == PhysicalPageAddress(ChipAddress(0, 0), 0, 0, 0, 0)


def test_validate_rejects_bad_block():
    address = PhysicalPageAddress(ChipAddress(0, 0), 0, 0, GEOMETRY.blocks_per_plane, 0)
    with pytest.raises(ConfigurationError):
        address.validate(GEOMETRY)


def test_same_plane_offset_detects_multi_plane_pairs():
    chip = ChipAddress(1, 2)
    a = PhysicalPageAddress(chip, 0, 0, 3, 7)
    b = PhysicalPageAddress(chip, 0, 1, 3, 7)
    assert a.same_plane_offset(b)


def test_same_plane_offset_rejects_different_offset():
    chip = ChipAddress(1, 2)
    a = PhysicalPageAddress(chip, 0, 0, 3, 7)
    b = PhysicalPageAddress(chip, 0, 1, 3, 8)
    assert not a.same_plane_offset(b)


def test_same_plane_offset_rejects_same_plane():
    chip = ChipAddress(1, 2)
    a = PhysicalPageAddress(chip, 0, 0, 3, 7)
    assert not a.same_plane_offset(a)


def test_plane_flat_index_distinct_per_plane():
    seen = set()
    for chip_flat in range(GEOMETRY.total_chips):
        chip = ChipAddress.from_flat(chip_flat, GEOMETRY)
        for die in range(GEOMETRY.dies_per_chip):
            for plane in range(GEOMETRY.planes_per_die):
                address = PhysicalPageAddress(chip, die, plane, 0, 0)
                seen.add(address.plane_flat_index(GEOMETRY))
    assert len(seen) == GEOMETRY.planes_total
    assert seen == set(range(GEOMETRY.planes_total))
