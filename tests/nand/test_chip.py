"""Die / chip / array behaviour tests."""

import pytest

from repro.config.ssd_config import NandGeometry, NandTimings
from repro.config.presets import performance_optimized
from repro.errors import NandProtocolError
from repro.nand.address import ChipAddress, PhysicalPageAddress
from repro.nand.array import FlashArray
from repro.nand.chip import FlashChip
from repro.nand.commands import FlashCommand, FlashCommandKind
from repro.sim.engine import Engine

GEOMETRY = NandGeometry(
    channels=2,
    chips_per_channel=2,
    dies_per_chip=1,
    planes_per_die=2,
    blocks_per_plane=4,
    pages_per_block=8,
)
TIMINGS = NandTimings(read_ns=3000, program_ns=100_000, erase_ns=1_000_000)


def make_chip():
    return FlashChip(Engine(), ChipAddress(0, 0), GEOMETRY, TIMINGS)


def address(plane=0, block=0, page=0):
    return PhysicalPageAddress(ChipAddress(0, 0), 0, plane, block, page)


def test_operation_latencies_follow_timings():
    die = make_chip().die(0)
    read = FlashCommand(FlashCommandKind.READ, [address()])
    program = FlashCommand(FlashCommandKind.PROGRAM, [address()])
    erase = FlashCommand(FlashCommandKind.ERASE, [address()])
    assert die.operation_latency_ns(read) == 3000
    assert die.operation_latency_ns(program) == 100_000
    assert die.operation_latency_ns(erase) == 1_000_000


def test_multi_plane_same_latency_as_single():
    die = make_chip().die(0)
    multi = FlashCommand(
        FlashCommandKind.PROGRAM, [address(plane=0), address(plane=1)]
    )
    assert die.operation_latency_ns(multi) == 100_000


def test_multi_plane_offset_rule_enforced():
    die = make_chip().die(0)
    bad = FlashCommand(
        FlashCommandKind.PROGRAM,
        [address(plane=0, page=0), address(plane=1, page=1)],
    )
    with pytest.raises(NandProtocolError):
        die.validate_command(bad)


def test_multi_plane_duplicate_plane_rejected():
    die = make_chip().die(0)
    bad = FlashCommand(
        FlashCommandKind.PROGRAM, [address(plane=0), address(plane=0)]
    )
    with pytest.raises(NandProtocolError):
        die.validate_command(bad)


def test_command_for_wrong_die_rejected():
    die = make_chip().die(0)
    wrong_chip = PhysicalPageAddress(ChipAddress(1, 0), 0, 0, 0, 0)
    with pytest.raises(NandProtocolError):
        die.validate_command(FlashCommand(FlashCommandKind.READ, [wrong_chip]))


def test_apply_program_then_read_then_erase():
    die = make_chip().die(0)
    die.apply_command(FlashCommand(FlashCommandKind.PROGRAM, [address()]))
    die.apply_command(FlashCommand(FlashCommandKind.READ, [address()]))
    die.apply_command(FlashCommand(FlashCommandKind.ERASE, [address()]))
    block = die.planes[0].block(0)
    assert block.is_erased
    assert block.erase_count == 1
    assert die.commands_executed == 3


def test_strict_read_of_unwritten_page_raises():
    die = make_chip().die(0)
    with pytest.raises(NandProtocolError):
        die.apply_command(
            FlashCommand(FlashCommandKind.READ, [address()]), strict_reads=True
        )


def test_multi_plane_program_applies_to_both_planes():
    die = make_chip().die(0)
    command = FlashCommand(
        FlashCommandKind.PROGRAM, [address(plane=0), address(plane=1)]
    )
    die.apply_command(command)
    assert die.planes[0].block(0).valid_count == 1
    assert die.planes[1].block(0).valid_count == 1
    assert die.planes[0].programs == 1
    assert die.planes[1].programs == 1


# --------------------------------------------------------------------- #
# FlashArray
# --------------------------------------------------------------------- #


def test_array_has_all_chips():
    config = performance_optimized(blocks_per_plane=2, pages_per_block=2)
    array = FlashArray(Engine(), config)
    assert len(array) == 64
    assert array.chip(ChipAddress(7, 7)).flat_index == 63


def test_array_lookup_consistency():
    config = performance_optimized(blocks_per_plane=2, pages_per_block=2)
    array = FlashArray(Engine(), config)
    target = PhysicalPageAddress(ChipAddress(3, 4), 0, 1, 1, 1)
    die = array.die_for(target)
    assert die.chip_address == ChipAddress(3, 4)
    plane = array.plane_for(target)
    assert plane.index == 1
    block = array.block_for(target)
    assert block.index == 1


def test_array_free_and_valid_counters():
    config = performance_optimized(blocks_per_plane=2, pages_per_block=2)
    array = FlashArray(Engine(), config)
    total = config.geometry.total_pages
    assert array.total_free_pages() == total
    assert array.total_valid_pages() == 0
    array.block_for(PhysicalPageAddress(ChipAddress(0, 0), 0, 0, 0, 0)).program_page(0)
    assert array.total_free_pages() == total - 1
    assert array.total_valid_pages() == 1


def test_array_iter_planes_count():
    config = performance_optimized(blocks_per_plane=2, pages_per_block=2)
    array = FlashArray(Engine(), config)
    assert sum(1 for _ in array.iter_planes()) == config.geometry.planes_total


class TestBlockRestore:
    """FlashBlock.restore: the checkpoint deserialization path."""

    def _block(self):
        return make_chip().die(0).planes[0].block(0)

    def test_restore_rebuilds_counters_and_plane_accounting(self):
        block = self._block()
        block.restore("vviv", erase_count=3)
        assert block.allocation_pointer == 4
        assert block.programmed_count == 4
        assert block.valid_count == 3
        assert block.invalid_count == 1
        assert block.erase_count == 3
        assert block.plane.allocated_pages == 4

    def test_restore_matches_the_equivalent_program_sequence(self):
        restored = self._block()
        restored.restore("vi", erase_count=0)
        programmed = self._block()
        programmed.program_page(0)
        programmed.program_page(1)
        programmed.invalidate_page(1)
        assert restored.page_states == programmed.page_states
        assert restored.valid_count == programmed.valid_count
        assert restored.invalid_count == programmed.invalid_count

    def test_restore_requires_a_pristine_block(self):
        block = self._block()
        block.program_page(0)
        with pytest.raises(NandProtocolError, match="non-pristine"):
            block.restore("v", erase_count=0)

    def test_restore_rejects_oversized_snapshots(self):
        with pytest.raises(NandProtocolError, match="holds"):
            self._block().restore("v" * (GEOMETRY.pages_per_block + 1), 0)

    def test_restore_rejects_bad_page_states(self):
        with pytest.raises(NandProtocolError, match="bad page states"):
            self._block().restore("vxv", erase_count=0)

    def test_restore_rejects_negative_erase_counts(self):
        with pytest.raises(NandProtocolError, match="negative"):
            self._block().restore("v", erase_count=-1)
