"""FlashBlock protocol tests: erase-before-write, ordering, reservations."""

import pytest

from repro.errors import NandProtocolError
from repro.nand.chip import FlashBlock, PageState


def test_new_block_is_erased_and_empty():
    block = FlashBlock(0, 8)
    assert block.is_erased
    assert block.free_pages == 8
    assert block.valid_count == 0
    assert not block.is_full


def test_direct_program_in_order():
    block = FlashBlock(0, 4)
    for page in range(4):
        block.program_page(page)
    assert block.is_full
    assert block.valid_count == 4


def test_direct_program_out_of_order_rejected():
    block = FlashBlock(0, 4)
    with pytest.raises(NandProtocolError):
        block.program_page(2)


def test_double_program_rejected_erase_before_write():
    block = FlashBlock(0, 4)
    block.program_page(0)
    with pytest.raises(NandProtocolError):
        block.program_page(0)


def test_reserve_then_program_any_completion_order():
    block = FlashBlock(0, 4)
    pages = [block.reserve_next_page() for _ in range(3)]
    assert pages == [0, 1, 2]
    # Programs complete out of order (different fabric latencies).
    block.program_page(2)
    block.program_page(0)
    block.program_page(1)
    assert block.valid_count == 3
    assert block.pending_programs == 0


def test_reserve_on_full_block_rejected():
    block = FlashBlock(0, 2)
    block.reserve_next_page()
    block.reserve_next_page()
    with pytest.raises(NandProtocolError):
        block.reserve_next_page()


def test_invalidate_valid_page():
    block = FlashBlock(0, 4)
    block.program_page(0)
    block.invalidate_page(0)
    assert block.page_states[0] is PageState.INVALID
    assert block.valid_count == 0
    assert block.invalid_count == 1


def test_invalidate_unwritten_unreserved_page_rejected():
    block = FlashBlock(0, 4)
    with pytest.raises(NandProtocolError):
        block.invalidate_page(0)


def test_early_invalidation_of_inflight_program():
    """Host overwrites a logical page while its program is still in flight."""
    block = FlashBlock(0, 4)
    page = block.reserve_next_page()
    block.invalidate_page(page)  # old copy superseded before landing
    block.program_page(page)  # the in-flight program finally lands
    assert block.page_states[page] is PageState.INVALID
    assert block.valid_count == 0
    assert block.pending_programs == 0


def test_erase_resets_everything():
    block = FlashBlock(0, 4)
    for page in range(4):
        block.program_page(page)
    block.invalidate_page(1)
    block.erase()
    assert block.is_erased
    assert block.valid_count == 0
    assert block.invalid_count == 0
    assert block.erase_count == 1
    assert all(state is PageState.FREE for state in block.page_states)


def test_erase_with_inflight_program_rejected():
    block = FlashBlock(0, 4)
    block.reserve_next_page()
    with pytest.raises(NandProtocolError):
        block.erase()


def test_read_strict_mode_rejects_unwritten():
    block = FlashBlock(0, 4)
    with pytest.raises(NandProtocolError):
        block.read_page(0, strict=True)
    block.program_page(0)
    assert block.read_page(0, strict=True) is PageState.VALID


def test_read_lenient_mode_returns_state():
    block = FlashBlock(0, 4)
    assert block.read_page(0) is PageState.FREE


def test_erase_count_accumulates():
    block = FlashBlock(0, 2)
    for _ in range(3):
        block.program_page(0)
        block.program_page(1)
        block.invalidate_page(0)
        block.invalidate_page(1)
        block.erase()
    assert block.erase_count == 3
