"""Documentation gates: links, API-reference freshness, docstring coverage.

These run in the tier-1 suite so a broken internal link, a stale generated
API page, or a public ``sim``/``workloads``/``ftl``/``fleet``/``service``
object without a docstring fails the build -- the acceptance bar for the
docs site.
"""

import importlib
import inspect
import pkgutil
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(REPO / "tools"))

import check_docs  # noqa: E402  (tools/ is not a package)
import gen_api_docs  # noqa: E402


def test_docs_tree_exists_with_expected_pages():
    docs = REPO / "docs"
    for page in (
        "index.md",
        "architecture.md",
        "run-specs.md",
        "trace-formats.md",
        "benchmarks.md",
        "examples.md",
        "faults.md",
        "fleet.md",
        "service.md",
        "ftl.md",
        "qos.md",
        "api/sim.md",
        "api/workloads.md",
        "api/experiments.md",
        "api/ftl.md",
        "api/fleet.md",
        "api/qos.md",
        "api/service.md",
    ):
        assert (docs / page).is_file(), f"missing docs page {page}"


def test_no_broken_internal_links():
    errors = check_docs.check(REPO)
    assert not errors, "\n".join(errors)


def test_api_reference_matches_docstrings():
    for page in gen_api_docs.PAGES:
        target = gen_api_docs.API_DIR / f"{page}.md"
        assert target.is_file(), f"missing generated page {target}"
        assert target.read_text(encoding="utf-8") == gen_api_docs.render_page(
            page
        ), (
            f"docs/api/{page}.md is stale; run "
            "PYTHONPATH=src python tools/gen_api_docs.py"
        )


# --------------------------------------------------------------------- #
# docstring coverage over the public repro.sim / repro.workloads /
# repro.fleet / repro.service surface
# --------------------------------------------------------------------- #

def _public_surface(package_name):
    """Yield (qualified name, object) for every public module / class /
    function / method / property defined inside ``package_name`` (a plain
    module yields just its own surface)."""
    package = importlib.import_module(package_name)
    modules = [package_name]
    if hasattr(package, "__path__"):
        modules += [
            name
            for _, name, _ in pkgutil.walk_packages(
                package.__path__, package_name + "."
            )
        ]
    for module_name in modules:
        module = importlib.import_module(module_name)
        yield module_name, module
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", None) != module_name:
                continue  # re-export: covered where defined
            yield f"{module_name}.{name}", obj
            if not inspect.isclass(obj):
                continue
            for attr, member in vars(obj).items():
                if attr.startswith("_"):
                    continue
                if isinstance(member, property):
                    yield f"{module_name}.{name}.{attr}", member.fget
                elif inspect.isfunction(member):
                    yield f"{module_name}.{name}.{attr}", member
                elif isinstance(member, classmethod):
                    yield f"{module_name}.{name}.{attr}", member.__func__


@pytest.mark.parametrize(
    "package",
    ["repro.sim", "repro.workloads", "repro.ftl", "repro.fleet",
     "repro.service", "repro.experiments.qos"],
)
def test_every_public_object_has_a_docstring(package):
    missing = [
        qualified
        for qualified, obj in _public_surface(package)
        if obj is None or not inspect.getdoc(obj)
    ]
    assert not missing, "missing docstrings:\n" + "\n".join(missing)
