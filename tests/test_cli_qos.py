"""CLI QoS surface: ``qos sweep``, ``fleet run --qos/--burst``, ``list``."""

import json

from repro.cli import main

TINY = [
    "qos", "sweep", "--requests", "100",
    "--designs", "venice",
    "--placements", "round-robin",
    "--levels", "1", "4",
    "--policies", "none", "token-bucket:1e6,16",
]


def test_qos_sweep_tables(capsys):
    assert main(TINY) == 0
    out = capsys.readouterr().out
    assert "victim p99 (us)" in out
    assert "none (arrival order)" in out
    assert "token-bucket (token-bucket:1e+06,16)" in out
    assert "round-robin" in out


def test_qos_sweep_json_and_cache(tmp_path, capsys):
    args = TINY + ["--json", "--cache", str(tmp_path / "store")]
    assert main(args) == 0
    cold = json.loads(capsys.readouterr().out)
    assert cold["experiment"] == "qos-sweep"
    assert cold["workload"] == "hm_0"
    assert cold["levels"] == [1.0, 4.0]
    assert main(args) == 0  # warm re-run served from the store
    warm = json.loads(capsys.readouterr().out)
    assert warm == cold


def test_qos_sweep_rejects_bad_policy(capsys):
    assert main(TINY + ["--policies", "warp-speed:9"]) == 2
    assert "policy" in capsys.readouterr().err


def test_fleet_run_accepts_qos_and_burst(capsys):
    code = main(
        [
            "fleet", "run", "--devices", "2", "--tenants", "4",
            "--requests", "100", "--json",
            "--qos", "wfq:1,4,4,4", "--burst", "0x4",
        ]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["qos"] == "wfq:1,4,4,4"
    assert payload["burst"] == "0x4"
    assert set(payload["tenant_latency"]) == {"0", "1", "2", "3"}


def test_fleet_run_without_qos_emits_no_qos_keys(capsys):
    assert main(
        ["fleet", "run", "--devices", "1", "--requests", "100", "--json"]
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    assert "qos" not in payload
    assert "burst" not in payload
    assert "tenant_latency" not in payload


def test_list_shows_qos_policy_grammar(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "qos:" in out
    assert "token-bucket:<rate>,<burst>" in out
    assert main(["list", "--json"]) == 0
    catalog = json.loads(capsys.readouterr().out)
    assert "none" in catalog["qos"]
