"""CLI fleet surface: ``fleet run``, ``fleet sweep``, ``list`` placements."""

import json

from repro.cli import main


def test_fleet_run_prints_roll_up_tables(capsys):
    code = main([
        "fleet", "run", "--devices", "2", "--tenants", "4",
        "--requests", "48",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "aggregate IOPS" in out
    assert "fleet p99 latency (us)" in out
    assert "per-device" in out
    assert "round-robin" in out


def test_fleet_run_json_and_warm_cache(tmp_path, capsys):
    args = [
        "fleet", "run", "--devices", "2", "--tenants", "4",
        "--requests", "48", "--json", "--cache", str(tmp_path / "store"),
    ]
    assert main(args) == 0
    cold = json.loads(capsys.readouterr().out)
    assert cold["devices"] == 2
    assert cold["requests_completed"] == 2 * 48
    assert main(args) == 0  # warm: served entirely from the store
    warm = json.loads(capsys.readouterr().out)
    assert warm == cold


def test_fleet_run_mixed_designs_and_member_fault(capsys):
    code = main([
        "fleet", "run", "--designs", "venice", "baseline",
        "--tenants", "2", "--requests", "48", "--json",
        "--faults", "1:0 link (0,2)-(0,3) down",
    ])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["member_designs"] == ["venice", "baseline"]


def test_fleet_fault_entries_compose_order_independently():
    """Bare schedules are the fleet-wide default; IDX: entries override —
    whatever order the flags arrive in."""
    from repro.cli import _parse_member_faults

    link = "1:0 link (0,2)-(0,3) down"
    router = "0 router (1,1) down"
    expected = ["0 router (1,1) down", "0 link (0,2)-(0,3) down"]
    assert _parse_member_faults([link, router], 2) == expected
    assert _parse_member_faults([router, link], 2) == expected
    assert _parse_member_faults([router], 2) == [router, router]
    assert _parse_member_faults([link], 2) == [None, "0 link (0,2)-(0,3) down"]
    assert _parse_member_faults(None, 2) is None


def test_fleet_run_rejects_bad_fault_index(capsys):
    code = main([
        "fleet", "run", "--devices", "2", "--requests", "48",
        "--faults", "7:0 link (0,2)-(0,3) down",
    ])
    assert code == 2
    assert "error:" in capsys.readouterr().err


def test_fleet_sweep_tables(capsys):
    code = main([
        "fleet", "sweep", "--devices", "1", "2", "--requests", "48",
        "--tenants", "4",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "aggregate IOPS" in out
    assert "p999 (us)" in out
    assert "round-robin" in out


def test_fleet_sweep_json_cache_and_jobs_determinism(tmp_path, capsys):
    base = [
        "fleet", "sweep", "--devices", "1", "2", "--requests", "48",
        "--tenants", "4", "--json",
    ]
    cold_args = base + ["--cache", str(tmp_path / "a")]
    assert main(cold_args) == 0
    cold = json.loads(capsys.readouterr().out)
    assert main(cold_args) == 0  # warm re-run: zero new simulations
    warm = json.loads(capsys.readouterr().out)
    assert warm == cold
    jobs_args = base + ["--cache", str(tmp_path / "b"), "--jobs", "4"]
    assert main(jobs_args) == 0  # cold parallel run, fresh store
    parallel = json.loads(capsys.readouterr().out)
    assert parallel == cold  # byte-identical across serial/parallel


def test_fleet_sweep_placement_axis(capsys):
    code = main([
        "fleet", "sweep", "--devices", "2", "--placements", "rr",
        "stripe:64KiB", "--requests", "48", "--tenants", "4", "--json",
    ])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["placements"] == ["round-robin", "stripe:65536"]
    assert set(payload["curve"]) == {"round-robin", "stripe:65536"}


def test_fleet_rejects_unknown_placement(capsys):
    code = main([
        "fleet", "run", "--devices", "2", "--requests", "48",
        "--placement", "teleport",
    ])
    assert code == 2
    assert "placement" in capsys.readouterr().err


def test_list_includes_placements(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "placements:" in out
    assert "hash-tenant" in out


def test_fleet_run_sample_flag(capsys):
    code = main([
        "fleet", "run", "--devices", "9", "--sample", "3",
        "--requests", "90", "--tenants", "2", "--json",
    ])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["devices"] == 9
    assert len(payload["sampled_member_indices"]) == 3
    assert payload["sample"]["devices_simulated"] == 3
    assert payload["sample"]["scale_factor"] == 3.0


def test_fleet_run_sample_table_shows_extrapolation(capsys):
    code = main([
        "fleet", "run", "--devices", "6", "--sample", "2",
        "--requests", "60", "--tenants", "2",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "sampled extrapolation" in out
    assert "95% CI" in out


def test_fleet_sweep_sample_flag(capsys):
    code = main([
        "fleet", "sweep", "--devices", "2", "4", "--sample", "2",
        "--requests", "60", "--tenants", "2", "--json",
    ])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["sample"] == 2
    assert payload["curve"]["round-robin"]["4"]["sample"][
        "devices_simulated"] == 2
