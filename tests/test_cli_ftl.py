"""CLI sustained-write surface: ``ftl sweep`` and the ``run`` FTL knobs."""

import json

from repro.cli import main

TINY = [
    "ftl", "sweep", "--requests", "120",
    "--fills", "0.5", "--op", "0.07", "--fill", "0.5",
]


def test_ftl_sweep_tables(capsys):
    assert main(TINY) == 0
    out = capsys.readouterr().out
    assert "write cliff: throughput (IOPS)" in out
    assert "write cliff: GC stall time (us)" in out
    assert "write amplification vs OP" in out
    assert "GC x faults" in out
    assert "venice" in out and "baseline" in out


def test_ftl_sweep_json_and_cache(tmp_path, capsys):
    args = TINY + ["--json", "--cache", str(tmp_path / "store")]
    assert main(args) == 0
    cold = json.loads(capsys.readouterr().out)
    assert cold["experiment"] == "ftl-sweep"
    assert cold["workload"] == "prxy_0"
    assert set(cold["write_cliff"]) == set(cold["designs"])
    assert main(args) == 0  # warm re-run served from the store
    warm = json.loads(capsys.readouterr().out)
    assert cold["write_cliff"] == warm["write_cliff"]
    assert cold["wa_op"] == warm["wa_op"]
    assert cold["gc_faults"] == warm["gc_faults"]


def test_ftl_sweep_rejects_bad_knob_values(capsys):
    assert main(TINY + ["--op", "0.9"]) == 2
    assert "over_provisioning" in capsys.readouterr().err


def test_run_accepts_ftl_knobs(capsys):
    code = main(
        [
            "run", "--requests", "100", "--json",
            "--wear-leveling", "--over-provisioning", "0.2",
            "--gc-threshold", "0.1", "--gc-stop", "0.15",
        ]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["requests"] == 100


def test_run_knob_flags_default_to_no_op(capsys):
    """A knob-free `run` must behave exactly as before the flags existed."""
    assert main(["run", "--requests", "100", "--json"]) == 0
    plain = json.loads(capsys.readouterr().out)
    assert main(["run", "--requests", "100", "--json"]) == 0
    again = json.loads(capsys.readouterr().out)
    assert plain == again
