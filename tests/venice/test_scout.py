"""Scout packet encoding tests (Figure 6)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import RoutingError
from repro.venice.scout import (
    FlitMode,
    FlitRole,
    ScoutFlit,
    ScoutPacket,
    required_dest_bits,
    required_fc_bits,
)


def test_packet_is_two_bytes():
    packet = ScoutPacket(destination_chip=42, source_fc=5)
    assert len(packet.encode()) == 2


def test_header_flit_layout():
    # type bits [header=0, reserve=1] then 6-bit destination.
    packet = ScoutPacket(destination_chip=42, source_fc=5)
    raw = packet.encode()[0]
    assert raw >> 6 == 0b01
    assert raw & 0b111111 == 42


def test_tail_flit_layout():
    # type bits [tail=1, reserve=1], 3-bit FC id, 3 unused zero bits.
    packet = ScoutPacket(destination_chip=42, source_fc=5)
    raw = packet.encode()[1]
    assert raw >> 6 == 0b11
    assert (raw >> 3) & 0b111 == 5
    assert raw & 0b111 == 0


def test_cancel_mode_flips_lsb_of_type():
    packet = ScoutPacket(destination_chip=1, source_fc=1, mode=FlitMode.CANCEL)
    assert packet.encode()[0] >> 6 == 0b00
    assert packet.encode()[1] >> 6 == 0b10


@given(st.integers(0, 63), st.integers(0, 7), st.sampled_from(list(FlitMode)))
def test_encode_decode_round_trip(dest, fc, mode):
    packet = ScoutPacket(destination_chip=dest, source_fc=fc, mode=mode)
    decoded = ScoutPacket.decode(packet.encode())
    assert decoded == packet


def test_packet_id_equals_source_fc():
    assert ScoutPacket(destination_chip=3, source_fc=6).packet_id == 6


def test_destination_width_enforced():
    with pytest.raises(RoutingError):
        ScoutPacket(destination_chip=64, source_fc=0)


def test_fc_width_enforced():
    with pytest.raises(RoutingError):
        ScoutPacket(destination_chip=0, source_fc=8)


def test_cancelled_keeps_identity():
    packet = ScoutPacket(destination_chip=9, source_fc=2)
    cancelled = packet.cancelled()
    assert cancelled.mode is FlitMode.CANCEL
    assert cancelled.destination_chip == 9
    assert cancelled.source_fc == 2


def test_decode_rejects_role_corruption():
    packet = ScoutPacket(destination_chip=1, source_fc=1)
    header, tail = packet.encode()
    with pytest.raises(RoutingError):
        ScoutPacket.decode(bytes([tail, header]))


def test_decode_rejects_mode_mismatch():
    reserve = ScoutPacket(destination_chip=1, source_fc=1).encode()
    cancel = ScoutPacket(destination_chip=1, source_fc=1, mode=FlitMode.CANCEL).encode()
    with pytest.raises(RoutingError):
        ScoutPacket.decode(bytes([reserve[0], cancel[1]]))


def test_decode_rejects_wrong_length():
    with pytest.raises(RoutingError):
        ScoutPacket.decode(b"\x00")


def test_flit_round_trip():
    flit = ScoutFlit(FlitRole.HEADER, FlitMode.RESERVE, 17)
    assert ScoutFlit.decode(flit.encode()) == flit


def test_required_bits_match_table1():
    # 64 chips -> 6 destination bits; 8 FCs -> 3 source bits (Figure 6).
    assert required_dest_bits(64) == 6
    assert required_fc_bits(8) == 3


def test_required_bits_other_geometries():
    assert required_dest_bits(65) == 7
    assert required_fc_bits(4) == 2
    assert required_fc_bits(16) == 4
    with pytest.raises(RoutingError):
        required_dest_bits(0)
