"""Property-based tests for Algorithm 1's pure decision function.

``routing.route_step`` is driven with randomized usable-port masks (a
seeded, hypothesis-style generator -- plain ``random.Random``, no new
runtime dependency) and checked against the properties the pseudocode
promises: forward steps never pick an unusable port, an arrived scout with
a free ejection port always ejects, and full blockage always backtracks.
"""

import random

from repro.interconnect.topology import Coord, Direction, MESH_DIRECTIONS
from repro.venice.routing import (
    RouteStep,
    StepKind,
    minimal_directions,
    route_step,
)

CASES = 500


def random_case(rng):
    """One random (current, destination, input_port, usable-mask) tuple."""
    rows = rng.randint(1, 6)
    cols = rng.randint(1, 6)
    current = (rng.randrange(rows), rng.randrange(cols))
    destination = (rng.randrange(rows), rng.randrange(cols))
    input_port = rng.choice([None, *MESH_DIRECTIONS])
    mask = {port: rng.random() < 0.5 for port in MESH_DIRECTIONS}
    mask[Direction.EJECT] = rng.random() < 0.5
    return current, destination, input_port, mask


def first_choice(candidates):
    return candidates[0]


def run_case(case):
    current, destination, input_port, mask = case
    return route_step(
        current=current,
        destination=destination,
        input_port=input_port,
        usable=mask.__getitem__,
        choose=first_choice,
    )


def test_forward_steps_never_pick_an_unusable_port():
    rng = random.Random(0xF417)
    forwards = 0
    for _ in range(CASES):
        case = random_case(rng)
        step = run_case(case)
        if step.kind is StepKind.FORWARD:
            forwards += 1
            assert case[3][step.output], f"unusable output in {case}"
            assert step.output is not Direction.EJECT
    assert forwards > CASES // 4  # the generator exercises the property


def test_minimal_forwards_lie_on_minimal_paths():
    rng = random.Random(0xF418)
    for _ in range(CASES):
        current, destination, input_port, mask = random_case(rng)
        step = run_case((current, destination, input_port, mask))
        if step.kind is StepKind.FORWARD and step.minimal:
            assert step.output in minimal_directions(current, destination)


def test_non_minimal_forwards_never_reuse_the_input_port():
    rng = random.Random(0xF419)
    seen = 0
    for _ in range(CASES):
        current, destination, input_port, mask = random_case(rng)
        step = run_case((current, destination, input_port, mask))
        if step.kind is StepKind.FORWARD and not step.minimal:
            seen += 1
            assert step.output is not input_port
            # A misroute only happens when every minimal port was unusable.
            for port in minimal_directions(current, destination):
                if port is not Direction.EJECT:
                    assert not mask[port]
    assert seen > 0


def test_arrived_scouts_with_free_ejection_always_eject():
    rng = random.Random(0xF41A)
    for _ in range(CASES):
        current, destination, input_port, mask = random_case(rng)
        if current != destination:
            continue
        mask = dict(mask)
        mask[Direction.EJECT] = True
        step = run_case((current, destination, input_port, mask))
        assert step.kind is StepKind.EJECT
        assert step.output is Direction.EJECT


def test_full_blockage_always_backtracks():
    rng = random.Random(0xF41B)
    for _ in range(CASES):
        current, destination, input_port, _ = random_case(rng)
        mask = {port: False for port in [*MESH_DIRECTIONS, Direction.EJECT]}
        step = run_case((current, destination, input_port, mask))
        assert step.kind is StepKind.BACKTRACK
        assert step.output is None


def test_blocked_ejection_falls_through_to_misroute_or_backtrack():
    rng = random.Random(0xF41C)
    for _ in range(CASES):
        current, destination, input_port, mask = random_case(rng)
        mask = dict(mask)
        mask[Direction.EJECT] = False
        step = run_case((current, destination, input_port, mask))
        if current == destination:
            usable_non_input = [
                port
                for port in MESH_DIRECTIONS
                if port is not input_port and mask[port]
            ]
            if usable_non_input:
                assert step.kind is StepKind.FORWARD and not step.minimal
            else:
                assert step.kind is StepKind.BACKTRACK


def test_choose_is_consulted_exactly_on_multi_candidate_lists():
    rng = random.Random(0xF41D)
    for _ in range(CASES):
        current, destination, input_port, mask = random_case(rng)
        calls = []

        def choose(candidates):
            calls.append(list(candidates))
            return candidates[0]

        step = route_step(
            current=current,
            destination=destination,
            input_port=input_port,
            usable=mask.__getitem__,
            choose=choose,
        )
        for candidates in calls:
            assert len(candidates) >= 2
        if step.kind is StepKind.FORWARD and step.candidates >= 2:
            assert len(calls) == 1
        else:
            assert not calls


def test_decisions_are_deterministic():
    rng = random.Random(0xF41E)
    for _ in range(CASES // 5):
        case = random_case(rng)
        assert run_case(case) == run_case(case)


def test_candidate_count_matches_the_usable_mask():
    rng = random.Random(0xF41F)
    for _ in range(CASES):
        current, destination, input_port, mask = random_case(rng)
        step = run_case((current, destination, input_port, mask))
        if step.kind is not StepKind.FORWARD:
            continue
        if step.minimal:
            expected = sum(
                1
                for port in minimal_directions(current, destination)
                if port is not Direction.EJECT and mask[port]
            )
        else:
            expected = sum(
                1
                for port in MESH_DIRECTIONS
                if port is not input_port and mask[port]
            )
        assert step.candidates == expected


def test_route_step_singletons_are_shared():
    eject = route_step(
        current=(0, 0),
        destination=(0, 0),
        input_port=None,
        usable=lambda port: True,
        choose=first_choice,
    )
    backtrack = route_step(
        current=(0, 0),
        destination=(0, 0),
        input_port=None,
        usable=lambda port: False,
        choose=first_choice,
    )
    assert isinstance(eject, RouteStep) and eject.kind is StepKind.EJECT
    assert backtrack.kind is StepKind.BACKTRACK
