"""VeniceFabric behaviour inside the event simulation."""

import pytest

from repro.config.presets import performance_optimized
from repro.config.ssd_config import DesignKind
from repro.nand.address import ChipAddress
from repro.sim.engine import Engine
from repro.venice.fabric import VeniceFabric


def make_fabric():
    engine = Engine()
    config = performance_optimized(blocks_per_plane=4, pages_per_block=4)
    return engine, VeniceFabric(engine, config)


def run_transfer(engine, fabric, chip, payload, include_command=True):
    holder = {}

    def proc():
        outcome = yield from fabric.transfer(chip, payload, include_command)
        holder["outcome"] = outcome

    engine.process(proc())
    engine.run()
    return holder["outcome"]


def test_single_transfer_completes_conflict_free():
    engine, fabric = make_fabric()
    outcome = run_transfer(engine, fabric, ChipAddress(2, 3), 4096)
    assert not outcome.conflicted
    assert outcome.scout_attempts == 1
    assert outcome.duration_ns > 4096  # Eq-1 serialization dominates
    assert fabric.network.links_in_use() == 0  # circuit torn down


def test_transfer_time_matches_equation_1():
    engine, fabric = make_fabric()
    outcome = run_transfer(engine, fabric, ChipAddress(0, 0), 4096, include_command=False)
    # Direct drop: total_hops=2, Eq 1 gives (2 + 4096) ns plus scout RTT.
    assert 4098 <= outcome.duration_ns <= 4098 + 64


def test_command_phase_is_packetized_not_reserved():
    engine, fabric = make_fabric()
    outcome = run_transfer(engine, fabric, ChipAddress(4, 5), 0)
    assert not outcome.conflicted
    assert outcome.duration_ns < 100  # flit-sized command, wire latency only
    assert fabric.network.reservations == 0


def test_concurrent_transfers_to_distinct_chips_overlap():
    engine, fabric = make_fabric()
    ends = {}

    def proc(tag, chip):
        outcome = yield from fabric.transfer(chip, 4096)
        ends[tag] = outcome

    engine.process(proc("a", ChipAddress(1, 1)))
    engine.process(proc("b", ChipAddress(2, 2)))
    engine.process(proc("c", ChipAddress(3, 3)))
    engine.run()
    # All three overlap: each takes ~4.1 us; serialized would be ~12 us.
    assert max(o.end_ns for o in ends.values()) < 6_000


def test_transfers_to_same_chip_serialize_without_conflict_flag():
    engine, fabric = make_fabric()
    outcomes = {}

    def proc(tag):
        outcome = yield from fabric.transfer(ChipAddress(5, 5), 4096)
        outcomes[tag] = outcome

    engine.process(proc("first"))
    engine.process(proc("second"))
    engine.run()
    spans = sorted((o.start_ns, o.end_ns) for o in outcomes.values())
    # Chip-busy wait is not a path conflict (§3.3 ideal-SSD distinction).
    assert sum(1 for o in outcomes.values() if o.conflicted) == 0
    assert sum(1 for o in outcomes.values() if o.waited) == 1
    assert max(o.end_ns for o in outcomes.values()) > 8_000  # serialized


def test_conflict_flag_set_when_first_scout_fails_on_links():
    engine, fabric = make_fabric()
    # Saturate row 0's drop points with long transfers, then send another.
    outcomes = []

    def proc(chip, payload):
        outcome = yield from fabric.transfer(chip, payload)
        outcomes.append(outcome)

    # Many large concurrent transfers across the mesh to induce link clashes.
    for way in range(8):
        engine.process(proc(ChipAddress(0, way), 65536))
        engine.process(proc(ChipAddress(1, way), 65536))
        engine.process(proc(ChipAddress(2, way), 65536))
    engine.run()
    assert fabric.stats.scout_failures_total > 0
    assert fabric.network.links_in_use() == 0


def test_fc_load_spreading_uses_multiple_controllers():
    engine, fabric = make_fabric()

    def proc(chip):
        yield from fabric.transfer(chip, 16384)

    for way in range(8):
        engine.process(proc(ChipAddress(4, way)))
    engine.run()
    assert len(fabric.stats.per_fc_transfers) >= 2  # not everything on FC 4


def test_fabric_stats_accumulate():
    engine, fabric = make_fabric()
    run_transfer(engine, fabric, ChipAddress(1, 2), 4096)
    assert fabric.stats.transfers == 1
    assert fabric.stats.bytes_moved == 4096
    assert fabric.mean_circuit_hops() >= 2.0
    assert fabric.first_try_success_fraction == 1.0


def test_design_kind():
    _, fabric = make_fabric()
    assert fabric.design is DesignKind.VENICE
