"""Router reservation table tests (Figure 7)."""

import pytest

from repro.errors import ReservationError
from repro.interconnect.topology import Direction
from repro.venice.router import (
    ReservationTable,
    Router,
    port_bits,
    port_from_bits,
)


def test_insert_and_lookup():
    table = ReservationTable(8)
    table.insert(5, Direction.LEFT, Direction.RIGHT)
    entry = table.lookup(5)
    assert entry is not None
    assert entry.entry_port is Direction.LEFT
    assert entry.exit_port is Direction.RIGHT
    assert entry.valid


def test_bidirectional_switching():
    """The circuit is bidirectional: forward for writes, backward for reads."""
    table = ReservationTable(8)
    table.insert(3, Direction.LEFT, Direction.DOWN)
    assert table.switch(3, Direction.LEFT) is Direction.DOWN
    assert table.switch(3, Direction.DOWN) is Direction.LEFT


def test_switch_on_unreserved_port_rejected():
    table = ReservationTable(8)
    table.insert(3, Direction.LEFT, Direction.DOWN)
    with pytest.raises(ReservationError):
        table.switch(3, Direction.UP)


def test_switch_without_entry_rejected():
    with pytest.raises(ReservationError):
        ReservationTable(8).switch(0, Direction.LEFT)


def test_capacity_bounds_rows():
    """The table has one row per flash controller (8 for Table 1)."""
    table = ReservationTable(2)
    table.insert(100, Direction.LEFT, Direction.RIGHT)
    assert table.has_room
    table.insert(200, Direction.UP, Direction.DOWN)
    assert not table.has_room
    with pytest.raises(ReservationError):
        table.insert(300, Direction.LEFT, Direction.UP)


def test_duplicate_id_rejected():
    table = ReservationTable(8)
    table.insert(1, Direction.LEFT, Direction.RIGHT)
    with pytest.raises(ReservationError):
        table.insert(1, Direction.UP, Direction.DOWN)


def test_entry_equals_exit_rejected():
    with pytest.raises(ReservationError):
        ReservationTable(8).insert(1, Direction.LEFT, Direction.LEFT)


def test_remove_invalidates_entry():
    table = ReservationTable(8)
    table.insert(1, Direction.LEFT, Direction.RIGHT)
    entry = table.remove(1)
    assert not entry.valid
    assert table.lookup(1) is None
    assert entry.connects(Direction.LEFT) is None


def test_remove_missing_rejected():
    with pytest.raises(ReservationError):
        ReservationTable(8).remove(7)


def test_router_cancel_path():
    router = Router((2, 3), fc_count=8)
    router.reserve(4, Direction.LEFT, Direction.RIGHT)
    assert router.has_reservation(4)
    router.cancel(4)
    assert not router.has_reservation(4)


def test_router_pick_output_single():
    router = Router((0, 0), fc_count=8)
    assert router.pick_output([Direction.UP]) is Direction.UP


def test_router_pick_output_uses_lfsr_for_ties():
    router = Router((0, 0), fc_count=8)
    picks = {router.pick_output([Direction.UP, Direction.RIGHT]) for _ in range(12)}
    assert picks == {Direction.UP, Direction.RIGHT}


def test_router_pick_output_empty_rejected():
    with pytest.raises(ReservationError):
        Router((0, 0), fc_count=8).pick_output([])


def test_port_bits_figure7_encoding():
    assert port_bits(Direction.RIGHT) == 0b00
    assert port_bits(Direction.UP) == 0b01
    assert port_bits(Direction.DOWN) == 0b10
    assert port_bits(Direction.LEFT) == 0b11
    for direction in (Direction.RIGHT, Direction.UP, Direction.DOWN, Direction.LEFT):
        assert port_from_bits(port_bits(direction)) is direction


def test_port_bits_reject_ejection():
    with pytest.raises(ReservationError):
        port_bits(Direction.EJECT)
    with pytest.raises(ReservationError):
        port_from_bits(7)
