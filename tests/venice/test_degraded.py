"""Degraded-mode Venice: routing around faults, partitions, repairs."""

import pytest

from repro.errors import RoutingError
from repro.venice.network import VeniceNetwork
from repro.venice.scout import FlitMode, ScoutPacket


def make_network(rows=4, cols=4, fc_count=4, **kwargs):
    return VeniceNetwork(rows, cols, fc_count, lfsr_seed=1, **kwargs)


def packet_for(fc, network):
    return ScoutPacket(
        destination_chip=0,
        source_fc=fc,
        mode=FlitMode.RESERVE,
        dest_bits=8,
        fc_bits=4,
    )


def test_scout_routes_around_a_dead_link():
    network = make_network()
    degraded = network.degraded_mode()
    # Kill the direct link from the nearest drop (1,3) toward... actually
    # kill every horizontal link of row 1 except the ejection column so the
    # walk must leave the row and come back (the Algorithm 1 detour).
    degraded.set_link((1, 2), (1, 3), down=True)
    result = network.try_reserve(packet_for(1, network), (1, 3))
    assert result.succeeded
    circuit = result.circuit
    assert all(
        edge not in network._dead_links for edge in circuit.edges
    ), "a committed circuit crossed a dead link"
    network.assert_consistent()
    network.release(circuit)


def test_dead_link_never_carries_a_circuit_under_saturation():
    network = make_network()
    network.degraded_mode().set_link((1, 1), (1, 2), down=True)
    network.degraded_mode().set_link((2, 2), (2, 3), down=True)
    circuits = []
    for fc in range(4):
        for col in range(4):
            result = network.try_reserve(packet_for(fc, network), (fc, col))
            if result.succeeded:
                circuits.append(result.circuit)
    assert circuits, "no circuit reserved at all"
    for circuit in circuits:
        assert all(edge not in network._dead_links for edge in circuit.edges)
    network.assert_consistent()
    for circuit in circuits:
        network.release(circuit)


def test_backtracking_unwinds_cleanly_when_faults_block_the_walk():
    """A failed walk against faults leaves zero reservations behind."""
    network = make_network(rows=2, cols=2, fc_count=2)
    degraded = network.degraded_mode()
    # Kill everything around (1,1) so reaching it from row 0 is impossible.
    degraded.set_link((0, 1), (1, 1), down=True)
    degraded.set_link((1, 0), (1, 1), down=True)
    # FC 1's own drops include (1,1) itself, so use FC 0 (row 0): its scout
    # cannot enter (1,1) and must fail without leaking state.
    result = network.try_reserve(packet_for(0, network), (1, 1))
    assert not result.succeeded
    assert result.failure_reason == "path"
    assert not network.link_owner and not network.ejection_owner
    network.assert_consistent()


def test_dead_destination_router_fails_reservation():
    network = make_network()
    network.degraded_mode().set_router((2, 2), down=True)
    result = network.try_reserve(packet_for(2, network), (2, 2))
    assert not result.succeeded
    assert result.failure_reason == "path"
    assert network.is_partitioned((2, 2))


def test_walk_avoids_dead_intermediate_routers():
    network = make_network()
    degraded = network.degraded_mode()
    degraded.set_router((1, 1), down=True)
    degraded.set_router((1, 2), down=True)
    result = network.try_reserve(packet_for(1, network), (1, 3))
    assert result.succeeded
    assert (1, 1) not in result.circuit.nodes
    assert (1, 2) not in result.circuit.nodes
    network.release(result.circuit)


def test_is_partitioned_false_on_pristine_and_connected_mesh():
    network = make_network()
    assert not network.is_partitioned((3, 3))
    network.degraded_mode().set_link((0, 0), (0, 1), down=True)
    for row in range(4):
        for col in range(4):
            assert not network.is_partitioned((row, col))


def test_link_repair_restores_routing_and_epoch_invalidates_cache():
    network = make_network()
    degraded = network.degraded_mode()
    degraded.set_router((3, 3), down=True)
    assert network.is_partitioned((3, 3))
    epoch_before = degraded.epoch
    degraded.set_router((3, 3), down=False)
    assert degraded.epoch == epoch_before + 1
    assert not network.is_partitioned((3, 3))
    result = network.try_reserve(packet_for(3, network), (3, 3))
    assert result.succeeded
    network.release(result.circuit)


def test_best_injection_skips_drops_in_foreign_components():
    """A drop cut into a different component is a dead end, not a choice."""
    network = make_network()
    degraded = network.degraded_mode()
    # Isolate drop (0,3): both of its links die.
    degraded.set_link((0, 2), (0, 3), down=True)
    degraded.set_link((0, 3), (1, 3), down=True)
    # Destination (1,3) is in the big component; the nearest drop by
    # coordinates would be (0,3), which can no longer reach it.
    drop = network.best_injection(0, (1, 3))
    assert drop != (0, 3)
    result = network.try_reserve(packet_for(0, network), (1, 3))
    assert result.succeeded
    network.release(result.circuit)
    # The isolated chip itself is still served -- via its own tap.
    assert network.best_injection(0, (0, 3)) == (0, 3)


def test_best_injection_returns_none_when_no_drop_can_reach():
    network = make_network()
    degraded = network.degraded_mode()
    for col in range(4):
        degraded.set_router((1, col), down=True)
    assert network.best_injection(1, (2, 2)) is None


def test_set_link_validates_topology():
    network = make_network()
    degraded = network.degraded_mode()
    with pytest.raises(RoutingError):
        degraded.set_link((0, 0), (0, 2), down=True)  # not neighbours
    with pytest.raises(RoutingError):
        degraded.set_link((0, 0), (9, 9), down=True)  # outside mesh
    with pytest.raises(RoutingError):
        degraded.set_router((9, 9), down=True)


def test_components_label_alive_connectivity():
    network = make_network()
    degraded = network.degraded_mode()
    # Cut column 3 off entirely (it has 4 vertical links of its own).
    for row in range(4):
        degraded.set_link((row, 2), (row, 3), down=True)
    labels = degraded.components()
    column = {labels[(row, 3)] for row in range(4)}
    rest = {labels[(row, col)] for row in range(4) for col in range(3)}
    assert len(column) == 1 and len(rest) == 1
    assert column != rest
    assert degraded.same_component((0, 3), (3, 3))
    assert not degraded.same_component((0, 0), (0, 3))


def test_fc_reachability_is_per_controller():
    network = make_network()
    degraded = network.degraded_mode()
    # Wall row 0 off from the rest of the mesh.
    for col in range(4):
        degraded.set_link((0, col), (1, col), down=True)
    assert degraded.fc_can_reach(0, (0, 2))
    assert not degraded.fc_can_reach(0, (2, 2))
    assert degraded.fc_can_reach(1, (2, 2))
    assert not degraded.fc_can_reach(1, (0, 2))
    # Globally nothing is partitioned: each side has its own controllers.
    assert not network.is_partitioned((0, 2))
    assert not network.is_partitioned((2, 2))
