"""Algorithm 1 decision-function tests."""

import pytest
from hypothesis import given, strategies as st

from repro.interconnect.topology import Direction, MESH_DIRECTIONS
from repro.venice.routing import (
    MAX_ROUTER_VISITS,
    RouteStep,
    StepKind,
    minimal_directions,
    route_step,
)


def pick_first(candidates):
    return candidates[0]


def all_usable(port):
    return True


def none_usable(port):
    return False


def test_minimal_directions_nine_cases():
    # The nine sign combinations of (Diff_x, Diff_y), Algorithm 1 lines 5-26.
    assert minimal_directions((3, 3), (3, 3)) == [Direction.EJECT]
    assert minimal_directions((3, 3), (3, 5)) == [Direction.RIGHT]
    assert minimal_directions((3, 3), (3, 1)) == [Direction.LEFT]
    assert minimal_directions((3, 3), (5, 3)) == [Direction.DOWN]
    assert minimal_directions((3, 3), (1, 3)) == [Direction.UP]
    assert set(minimal_directions((3, 3), (5, 5))) == {Direction.RIGHT, Direction.DOWN}
    assert set(minimal_directions((3, 3), (1, 5))) == {Direction.RIGHT, Direction.UP}
    assert set(minimal_directions((3, 3), (5, 1))) == {Direction.LEFT, Direction.DOWN}
    assert set(minimal_directions((3, 3), (1, 1))) == {Direction.LEFT, Direction.UP}


def test_arrival_ejects_when_chip_free():
    step = route_step(
        current=(2, 2),
        destination=(2, 2),
        input_port=Direction.LEFT,
        usable=lambda port: port is Direction.EJECT,
        choose=pick_first,
    )
    assert step.kind is StepKind.EJECT


def test_arrival_with_busy_chip_misroutes_or_backtracks():
    # Case 9 with a busy ejection port: the output list is empty, so the
    # scout misroutes via any free non-input port.
    step = route_step(
        current=(2, 2),
        destination=(2, 2),
        input_port=Direction.LEFT,
        usable=lambda port: port is Direction.UP,
        choose=pick_first,
    )
    assert step.kind is StepKind.FORWARD
    assert step.output is Direction.UP
    assert not step.minimal


def test_minimal_port_preferred():
    step = route_step(
        current=(0, 0),
        destination=(0, 5),
        input_port=None,
        usable=all_usable,
        choose=pick_first,
    )
    assert step.kind is StepKind.FORWARD
    assert step.output is Direction.RIGHT
    assert step.minimal


def test_two_minimal_candidates_tie_broken_by_chooser():
    chosen = []

    def record_choice(candidates):
        chosen.append(list(candidates))
        return candidates[-1]

    step = route_step(
        current=(0, 0),
        destination=(3, 3),
        input_port=None,
        usable=all_usable,
        choose=record_choice,
    )
    assert step.kind is StepKind.FORWARD
    assert step.candidates == 2
    assert set(chosen[0]) == {Direction.RIGHT, Direction.DOWN}


def test_misroute_when_minimal_blocked():
    # Minimal direction RIGHT is busy; UP is free: lines 33-45 misroute.
    step = route_step(
        current=(3, 3),
        destination=(3, 5),
        input_port=Direction.DOWN,
        usable=lambda port: port is Direction.UP,
        choose=pick_first,
    )
    assert step.kind is StepKind.FORWARD
    assert step.output is Direction.UP
    assert not step.minimal


def test_misroute_never_selects_input_port():
    # Only the input port is free: the scout must backtrack, not reuse it as
    # a misroute (lines 46-47).
    step = route_step(
        current=(3, 3),
        destination=(3, 5),
        input_port=Direction.LEFT,
        usable=lambda port: port is Direction.LEFT,
        choose=pick_first,
    )
    assert step.kind is StepKind.BACKTRACK


def test_backtrack_when_nothing_usable():
    step = route_step(
        current=(3, 3),
        destination=(0, 0),
        input_port=Direction.UP,
        usable=none_usable,
        choose=pick_first,
    )
    assert step.kind is StepKind.BACKTRACK


def test_forward_step_requires_output():
    with pytest.raises(Exception):
        RouteStep(kind=StepKind.FORWARD)


def test_max_router_visits_is_four():
    # Footnote 5: "four minus one" revisits => at most 4 total visits.
    assert MAX_ROUTER_VISITS == 4


coords = st.tuples(st.integers(0, 7), st.integers(0, 7))


@given(coords, coords)
def test_minimal_directions_reduce_manhattan(current, destination):
    if current == destination:
        return
    for direction in minimal_directions(current, destination):
        moved = (
            current[0] + direction.delta[0],
            current[1] + direction.delta[1],
        )
        before = abs(destination[0] - current[0]) + abs(destination[1] - current[1])
        after = abs(destination[0] - moved[0]) + abs(destination[1] - moved[1])
        assert after == before - 1


@given(coords, coords, st.sets(st.sampled_from(MESH_DIRECTIONS)))
def test_route_step_never_returns_unusable_port(current, destination, free):
    step = route_step(
        current=current,
        destination=destination,
        input_port=None,
        usable=lambda port: port in free,
        choose=pick_first,
    )
    if step.kind is StepKind.FORWARD:
        assert step.output in free
