"""Differential test: the inlined scout walk vs the pure Algorithm 1 reference.

``VeniceNetwork._step_at`` is a hand-inlined copy of
``routing.route_step`` (the property-tested reference).  This test proves
the two stay decision-for-decision identical by running complete
reservations on a thousand random (topology, fault-mask) cases twice:

* once through the real ``try_reserve`` (with every ``_step_at`` decision
  recorded), and
* once through a reference walker that re-implements the *stateful* part of
  the walk (stack, reservations, budgets) but takes every routing decision
  from ``route_step`` over an explicit ``usable()`` predicate.

Both walks run against identically-constructed networks (same LFSR seeds,
same dead links/routers), so any divergence -- an extra LFSR advance, a
different candidate order, a missed fault check -- shows up as a decision
or state mismatch.
"""

import random

from repro.interconnect.topology import Direction, MESH_DIRECTIONS
from repro.venice.network import VeniceNetwork, _WalkFrame
from repro.venice.routing import MAX_ROUTER_VISITS, StepKind, route_step
from repro.venice.scout import FlitMode, ScoutPacket


class RecordingNetwork(VeniceNetwork):
    """VeniceNetwork that logs every raw ``_step_at`` decision."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.decisions = []

    def _step_at(self, circuit_id, current, destination, input_port, used_ports, visits):
        output, minimal = super()._step_at(
            circuit_id, current, destination, input_port, used_ports, visits
        )
        self.decisions.append((current, input_port, output, minimal))
        return output, minimal


def reference_reserve(network, packet, destination, decisions):
    """``try_reserve`` re-implemented over the pure ``route_step`` reference.

    Mirrors the stateful walk (budgets, stack, reservations) line for line
    but delegates every routing decision to ``routing.route_step``.
    Returns the committed node list or ``None``; appends each decision as
    ``(current, input_port, output, minimal)`` to ``decisions``.
    """
    if not network.topology.contains(destination):
        raise AssertionError("cases only use in-mesh destinations")
    if network._dead_routers and destination in network._dead_routers:
        return None
    if destination in network.ejection_owner:
        return None
    circuit_id = network._next_circuit_id
    network._next_circuit_id += 1
    source = network.best_injection(packet.source_fc, destination)
    if source is None or source in network.injection_owner:
        return None
    if not network.routers[source].table.has_room:
        return None

    stack = []
    used_ports = {}
    visits = {source: 1}
    current = source
    input_port = None
    forward_moves = backtracks = misroutes = 0

    def decide():
        if visits.get(current, 0) > MAX_ROUTER_VISITS:
            return None, False  # livelock cap, checked before Algorithm 1

        def usable(port):
            if port is Direction.EJECT:
                return destination not in network.ejection_owner
            consumed = used_ports.get(current)
            if consumed is not None and port in consumed:
                return False
            neighbor = network._neighbors[current][port.value]
            if neighbor is None or neighbor in network._dead_routers:
                return False
            entries = network._tables[neighbor]._entries
            if circuit_id in entries or len(entries) >= network._table_capacity:
                return False
            edge = network._edges[current][port.value]
            return edge not in network.link_owner and edge not in network._dead_links

        step = route_step(
            current=current,
            destination=destination,
            input_port=input_port,
            usable=usable,
            choose=network.routers[current].pick_output,
        )
        if step.kind is StepKind.EJECT:
            return Direction.EJECT, True
        if step.kind is StepKind.BACKTRACK:
            return None, False
        return step.output, step.minimal

    while True:
        if forward_moves + backtracks > network.max_scout_steps:
            while stack:
                frame = stack.pop()
                del network.link_owner[frame.edge]
                network.routers[frame.node].cancel(circuit_id)
            return None

        output, minimal = decide()
        decisions.append((current, input_port, output, minimal))
        if output is not None and output is not Direction.EJECT:
            if not minimal and misroutes >= network.max_misroutes:
                output = None

        if output is Direction.EJECT:
            entry = input_port if input_port is not None else Direction.EJECT
            if entry is not Direction.EJECT:
                network.routers[current].reserve(circuit_id, entry, Direction.EJECT)
            network.ejection_owner[destination] = circuit_id
            network.injection_owner[source] = circuit_id
            nodes = [source]
            for frame in stack:
                nodes.append(network._neighbors[frame.node][frame.exit_port.value])
            # Register the circuit so later walks see identical table state.
            from repro.venice.network import ReservedCircuit

            network.circuits[circuit_id] = ReservedCircuit(
                circuit_id=circuit_id,
                packet_id=packet.packet_id,
                fc_index=packet.source_fc,
                destination=destination,
                nodes=nodes,
                edges=[frame.edge for frame in stack],
                minimal_hops=network.topology.manhattan(source, destination),
            )
            return nodes

        if output is not None:
            next_node = network._neighbors[current][output.value]
            edge = network._edges[current][output.value]
            network.link_owner[edge] = circuit_id
            used_ports.setdefault(current, set()).add(output)
            entry = input_port if input_port is not None else Direction.EJECT
            network.routers[current].reserve(circuit_id, entry, output)
            stack.append(_WalkFrame(current, input_port, output, edge))
            visits[next_node] = visits.get(next_node, 0) + 1
            input_port = output.opposite
            current = next_node
            forward_moves += 1
            if not minimal:
                misroutes += 1
            continue

        if not stack:
            return None
        frame = stack.pop()
        del network.link_owner[frame.edge]
        network.routers[frame.node].cancel(circuit_id)
        current = frame.node
        input_port = frame.entry_port
        backtracks += 1


def build_pair(rng):
    """Two identically-seeded networks with one random fault mask."""
    rows = rng.randint(2, 5)
    cols = rng.randint(2, 5)
    seed = rng.randint(1, 3)
    misroutes = rng.randint(0, 3)
    real = RecordingNetwork(rows, cols, rows, lfsr_seed=seed, max_misroutes=misroutes)
    reference = VeniceNetwork(rows, cols, rows, lfsr_seed=seed, max_misroutes=misroutes)
    link_p = rng.choice([0.0, 0.15, 0.35])
    for edge in list(real.topology.edges()):
        if rng.random() < link_p:
            a, b = sorted(edge)
            real.degraded_mode().set_link(a, b, down=True)
            reference.degraded_mode().set_link(a, b, down=True)
    for node in list(real.routers):
        if rng.random() < 0.08:
            real.degraded_mode().set_router(node, down=True)
            reference.degraded_mode().set_router(node, down=True)
    return real, reference


def test_walk_matches_route_step_reference_on_1k_random_fault_cases():
    rng = random.Random(0xD1FF)
    walks = 0
    while walks < 1000:
        real, reference = build_pair(rng)
        for _ in range(3):
            fc = rng.randrange(real.fc_count)
            destination = (
                rng.randrange(real.topology.rows),
                rng.randrange(real.topology.cols),
            )
            packet = ScoutPacket(
                destination_chip=0,
                source_fc=fc,
                mode=FlitMode.RESERVE,
                dest_bits=8,
                fc_bits=4,
            )
            real.decisions.clear()
            reference_decisions = []
            result = real.try_reserve(packet, destination)
            nodes = reference_reserve(
                reference, packet, destination, reference_decisions
            )
            context = (
                f"mesh {real.topology.rows}x{real.topology.cols} fc={fc} "
                f"dest={destination} dead_links={len(real._dead_links)} "
                f"dead_routers={sorted(real._dead_routers)}"
            )
            assert real.decisions == reference_decisions, context
            assert result.succeeded == (nodes is not None), context
            if result.succeeded:
                assert result.circuit.nodes == nodes, context
            # Reservation ground truth stays identical walk for walk.
            assert real.link_owner == reference.link_owner, context
            assert real.ejection_owner == reference.ejection_owner, context
            assert real.injection_owner == reference.injection_owner, context
            walks += 1
    assert walks >= 1000


def test_reference_and_walk_agree_on_pristine_mesh_decisions():
    """Fault-free sanity slice: decisions match with busy state from circuits."""
    rng = random.Random(0xD200)
    real = RecordingNetwork(4, 4, 4, lfsr_seed=2)
    reference = VeniceNetwork(4, 4, 4, lfsr_seed=2)
    for _ in range(60):
        fc = rng.randrange(4)
        destination = (rng.randrange(4), rng.randrange(4))
        packet = ScoutPacket(
            destination_chip=0, source_fc=fc, mode=FlitMode.RESERVE,
            dest_bits=8, fc_bits=4,
        )
        real.decisions.clear()
        reference_decisions = []
        result = real.try_reserve(packet, destination)
        nodes = reference_reserve(reference, packet, destination, reference_decisions)
        assert real.decisions == reference_decisions
        assert result.succeeded == (nodes is not None)
        assert real.link_owner == reference.link_owner
