"""VeniceNetwork reservation tests, including hypothesis invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReservationError
from repro.venice.network import VeniceNetwork
from repro.venice.scout import FlitMode, ScoutPacket


def make_network(rows=8, cols=8, fcs=8):
    return VeniceNetwork(rows, cols, fcs)


def packet(dest, fc, cols=8):
    return ScoutPacket(destination_chip=dest[0] * cols + dest[1], source_fc=fc)


def test_reserve_same_row_uses_drop_point():
    net = make_network()
    result = net.try_reserve(packet((3, 5), 3), (3, 5))
    assert result.succeeded
    circuit = result.circuit
    assert circuit.destination == (3, 5)
    assert circuit.nodes[0] in net.injection_points(3)
    net.assert_consistent()


def test_reserve_and_release_restores_clean_state():
    net = make_network()
    result = net.try_reserve(packet((2, 4), 2), (2, 4))
    assert result.succeeded
    net.release(result.circuit)
    assert net.links_in_use() == 0
    assert not net.ejection_owner
    assert not net.injection_owner
    net.assert_consistent()


def test_two_circuits_to_same_chip_conflict_as_chip_busy():
    net = make_network()
    first = net.try_reserve(packet((1, 1), 1), (1, 1))
    assert first.succeeded
    second = net.try_reserve(packet((1, 1), 2), (1, 1))
    assert not second.succeeded
    assert second.failed_on_chip


def test_cross_row_circuit_reserves_mesh_links():
    net = make_network()
    # FC 0 serving a chip in row 5: must cross rows via mesh links.
    result = net.try_reserve(packet((5, 3), 0), (5, 3))
    assert result.succeeded
    assert result.circuit.mesh_hops >= 5
    net.assert_consistent()


def test_failed_scout_leaves_no_residue():
    net = make_network(rows=2, cols=2, fcs=2)
    # Saturate the tiny mesh, then force a failure.
    results = []
    for fc in range(2):
        for col in range(2):
            outcome = net.try_reserve(packet((fc, col), fc, cols=2), (fc, col))
            results.append(outcome)
    links_before = net.links_in_use()
    blocked = net.try_reserve(packet((0, 0), 1, cols=2), (0, 0))
    assert not blocked.succeeded
    assert net.links_in_use() == links_before
    net.assert_consistent()


def test_release_unknown_circuit_rejected():
    net = make_network()
    result = net.try_reserve(packet((0, 1), 0), (0, 1))
    assert result.succeeded
    net.release(result.circuit)
    with pytest.raises(ReservationError):
        net.release(result.circuit)


def test_cancel_mode_scout_rejected():
    net = make_network()
    bad = ScoutPacket(destination_chip=0, source_fc=0, mode=FlitMode.CANCEL)
    with pytest.raises(ReservationError):
        net.try_reserve(bad, (0, 0))


def test_circuit_ids_are_unique_per_reservation():
    net = make_network()
    a = net.try_reserve(packet((0, 1), 0), (0, 1)).circuit
    b = net.try_reserve(packet((1, 1), 1), (1, 1)).circuit
    assert a.circuit_id != b.circuit_id


def test_one_fc_can_hold_multiple_circuits():
    """Multi-circuit controllers (see DESIGN.md): FC 0 holds several
    live circuits at once; only its scouts are serialised (by the fabric)."""
    net = make_network()
    circuits = []
    for col in (0, 2, 4):
        result = net.try_reserve(packet((0, col), 0), (0, col))
        assert result.succeeded
        circuits.append(result.circuit)
    net.assert_consistent()
    for circuit in circuits:
        net.release(circuit)
    assert net.links_in_use() == 0


def test_injection_points_stride():
    net = make_network()
    points = net.injection_points(2)
    assert all(row == 2 for row, _ in points)
    assert len(points) == 8 // VeniceNetwork.INJECTION_STRIDE


def test_total_hops_includes_injection_and_ejection():
    net = make_network()
    result = net.try_reserve(packet((0, 0), 0), (0, 0))
    assert result.succeeded
    # Direct drop at the destination: no mesh links, 2 hops (inject+eject).
    assert result.circuit.mesh_hops == 0
    assert result.circuit.total_hops == 2


# --------------------------------------------------------------------- #
# hypothesis: global invariants under arbitrary reserve/release interleaving
# --------------------------------------------------------------------- #


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(0, 7),  # destination row
            st.integers(0, 7),  # destination col
            st.integers(0, 7),  # source fc
            st.booleans(),  # release the oldest circuit first?
        ),
        min_size=1,
        max_size=60,
    )
)
def test_reservation_invariants_hold_under_interleaving(operations):
    net = make_network()
    live = []
    for row, col, fc, release_first in operations:
        if release_first and live:
            net.release(live.pop(0))
        result = net.try_reserve(packet((row, col), fc), (row, col))
        if result.succeeded:
            live.append(result.circuit)
        net.assert_consistent()
    for circuit in live:
        net.release(circuit)
    net.assert_consistent()
    assert net.links_in_use() == 0
    assert not net.ejection_owner


@settings(max_examples=20, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)), min_size=1, max_size=30))
def test_small_mesh_circuits_are_link_disjoint(destinations):
    net = make_network(rows=4, cols=4, fcs=4)
    for index, (row, col) in enumerate(destinations):
        pkt = ScoutPacket(destination_chip=row * 4 + col, source_fc=index % 4)
        net.try_reserve(pkt, (row, col))
    # assert_consistent checks pairwise link-disjointness (conflict freedom).
    net.assert_consistent()
