"""ECC engine and data randomizer tests."""

import pytest

from repro.controller.ecc import EccEngine
from repro.controller.randomizer import DataRandomizer
from repro.errors import ConfigurationError


def test_ecc_encode_decode_fixed_latency():
    ecc = EccEngine(200)
    assert ecc.encode_latency_ns() == 200
    assert ecc.decode_latency_ns() == 200
    assert ecc.encodes == 1
    assert ecc.decodes == 1


def test_ecc_multi_page_scales():
    ecc = EccEngine(100)
    assert ecc.encode_latency_ns(pages=4) == 400
    assert ecc.decode_latency_ns(pages=3) == 300


def test_ecc_zero_latency_allowed():
    ecc = EccEngine(0)
    assert ecc.decode_latency_ns() == 0


def test_ecc_retry_injection_increases_latency():
    ecc = EccEngine(100, decode_failure_rate=0.5, max_retries=3, seed=7)
    total = sum(ecc.decode_latency_ns() for _ in range(200))
    assert total > 200 * 100  # retries happened
    assert ecc.decode_retries > 0


def test_ecc_uncorrectable_counted():
    ecc = EccEngine(100, decode_failure_rate=0.95, max_retries=2, seed=7)
    for _ in range(200):
        ecc.decode_latency_ns()
    assert ecc.uncorrectable > 0


def test_ecc_validation():
    with pytest.raises(ConfigurationError):
        EccEngine(-1)
    with pytest.raises(ConfigurationError):
        EccEngine(10, decode_failure_rate=1.5)


def test_randomizer_round_trip():
    randomizer = DataRandomizer()
    data = bytes(range(256))
    scrambled = randomizer.scramble(data, page_flat_index=12345)
    assert scrambled != data
    assert randomizer.descramble(scrambled, page_flat_index=12345) == data


def test_randomizer_different_pages_different_patterns():
    randomizer = DataRandomizer()
    data = b"\x00" * 64
    a = randomizer.scramble(data, page_flat_index=1)
    b = randomizer.scramble(data, page_flat_index=2)
    assert a != b


def test_randomizer_breaks_worst_case_patterns():
    randomizer = DataRandomizer()
    # All-zero data (a worst-case cell pattern) becomes mixed bits.
    scrambled = randomizer.scramble(b"\x00" * 128, page_flat_index=9)
    ones = sum(bin(byte).count("1") for byte in scrambled)
    assert 0.25 < ones / (128 * 8) < 0.75


def test_randomizer_counters():
    randomizer = DataRandomizer()
    randomizer.scramble(b"ab", 0)
    randomizer.descramble(b"ab", 0)
    assert randomizer.scrambles == 1
    assert randomizer.descrambles == 1


def test_randomizer_rejects_zero_seed():
    with pytest.raises(ConfigurationError):
        DataRandomizer(base_seed=0)


def test_ecc_burst_raises_and_restores_the_failure_rate():
    engine = EccEngine(latency_ns=100, seed=3)
    assert engine.decode_failure_rate == 0.0
    engine.begin_burst(0.9)
    assert engine.decode_failure_rate == 0.9
    burst_latency = engine.decode_latency_ns(50)
    assert burst_latency > 50 * 100  # retries charged extra passes
    assert engine.decode_retries > 0
    engine.end_burst()
    assert engine.decode_failure_rate == 0.0
    assert engine.decode_latency_ns(1) == 100


def test_ecc_bursts_nest_lifo():
    engine = EccEngine(latency_ns=100, decode_failure_rate=0.05, seed=3)
    engine.begin_burst(0.5)
    engine.begin_burst(0.8)
    assert engine.decode_failure_rate == 0.8
    engine.end_burst()
    assert engine.decode_failure_rate == 0.5
    engine.end_burst()
    assert engine.decode_failure_rate == 0.05
    assert engine.bursts_started == 2


def test_ecc_burst_validation():
    engine = EccEngine(latency_ns=100)
    with pytest.raises(ConfigurationError):
        engine.begin_burst(1.0)
    with pytest.raises(ConfigurationError):
        engine.end_burst()
