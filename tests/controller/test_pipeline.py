"""Transaction pipeline timing tests (the Figure 3 service timeline)."""

import pytest

from repro.config.presets import performance_optimized
from repro.controller.pipeline import TransactionPipeline
from repro.controller.transaction import (
    FlashTransaction,
    TransactionKind,
    TransactionSource,
)
from repro.errors import ConfigurationError
from repro.interconnect.shared_bus import BaselineFabric
from repro.nand.address import ChipAddress, PhysicalPageAddress
from repro.nand.array import FlashArray
from repro.sim.engine import Engine


def make_pipeline(ecc_ns=0):
    config = performance_optimized(blocks_per_plane=4, pages_per_block=8)
    config = type(config)(
        name=config.name,
        geometry=config.geometry,
        timings=config.timings,
        interconnect=config.interconnect,
        ecc_latency_ns=ecc_ns,
        seed=config.seed,
    )
    engine = Engine()
    array = FlashArray(engine, config)
    fabric = BaselineFabric(engine, config)
    return engine, TransactionPipeline(engine, config, array, fabric), config


def address(channel=0, way=0, block=0, page=0, plane=0):
    return PhysicalPageAddress(ChipAddress(channel, way), 0, plane, block, page)


def run(engine, pipeline, transaction):
    engine.process(pipeline.service(transaction))
    engine.run()
    return transaction


def test_program_timeline():
    engine, pipeline, config = make_pipeline()
    transaction = FlashTransaction(
        kind=TransactionKind.PROGRAM, addresses=[address()], payload_bytes=4096
    )
    run(engine, pipeline, transaction)
    # CMD (10) + data (~3413) + tPROG (100_000)
    assert transaction.latency_ns == pytest.approx(103_423, abs=10)
    assert pipeline.programs_completed == 1


def test_read_timeline():
    engine, pipeline, config = make_pipeline()
    setup = FlashTransaction(
        kind=TransactionKind.PROGRAM, addresses=[address()], payload_bytes=4096
    )
    run(engine, pipeline, setup)
    transaction = FlashTransaction(
        kind=TransactionKind.READ, addresses=[address()], payload_bytes=4096
    )
    run(engine, pipeline, transaction)
    # CMD (10) + tR (3000) + data (~3413)
    assert transaction.latency_ns == pytest.approx(6_423, abs=10)


def test_erase_timeline():
    engine, pipeline, config = make_pipeline()
    setup = FlashTransaction(
        kind=TransactionKind.PROGRAM, addresses=[address()], payload_bytes=4096
    )
    run(engine, pipeline, setup)
    transaction = FlashTransaction(
        kind=TransactionKind.ERASE, addresses=[address()], payload_bytes=0
    )
    run(engine, pipeline, transaction)
    # CMD (10) + tBERS (1_000_000)
    assert transaction.latency_ns == pytest.approx(1_000_010, abs=10)
    assert pipeline.erases_completed == 1


def test_ecc_latency_added_to_reads_and_programs():
    engine, pipeline, config = make_pipeline(ecc_ns=500)
    program = FlashTransaction(
        kind=TransactionKind.PROGRAM, addresses=[address()], payload_bytes=4096
    )
    run(engine, pipeline, program)
    assert program.latency_ns == pytest.approx(103_923, abs=10)
    read = FlashTransaction(
        kind=TransactionKind.READ, addresses=[address()], payload_bytes=4096
    )
    run(engine, pipeline, read)
    assert read.latency_ns == pytest.approx(6_923, abs=10)


def test_two_reads_same_channel_show_figure3_conflict():
    """The motivating example: transfers serialize, flash reads overlap."""
    engine, pipeline, config = make_pipeline()
    for way in (0, 1):
        setup = FlashTransaction(
            kind=TransactionKind.PROGRAM,
            addresses=[address(way=way)],
            payload_bytes=4096,
        )
        run(engine, pipeline, setup)

    reads = [
        FlashTransaction(
            kind=TransactionKind.READ, addresses=[address(way=way)], payload_bytes=4096
        )
        for way in (0, 1)
    ]
    for read in reads:
        engine.process(pipeline.service(read))
    engine.run()
    finish = max(t.completed_at for t in reads)
    start = min(t.issued_at for t in reads)
    # Total ~= CMD + tR + 2 x transfer (not 2 x (CMD+tR+transfer)).
    assert finish - start == pytest.approx(10 + 3000 + 2 * 3413, abs=30)
    assert any(t.path_conflict for t in reads)


def test_two_reads_different_channels_fully_parallel():
    engine, pipeline, config = make_pipeline()
    for channel in (0, 1):
        run(
            engine,
            pipeline,
            FlashTransaction(
                kind=TransactionKind.PROGRAM,
                addresses=[address(channel=channel)],
                payload_bytes=4096,
            ),
        )
    reads = [
        FlashTransaction(
            kind=TransactionKind.READ,
            addresses=[address(channel=channel)],
            payload_bytes=4096,
        )
        for channel in (0, 1)
    ]
    for read in reads:
        engine.process(pipeline.service(read))
    engine.run()
    finish = max(t.completed_at for t in reads)
    start = min(t.issued_at for t in reads)
    assert finish - start == pytest.approx(10 + 3000 + 3413, abs=30)
    assert not any(t.path_conflict for t in reads)


def test_same_die_operations_serialize():
    engine, pipeline, config = make_pipeline()
    programs = [
        FlashTransaction(
            kind=TransactionKind.PROGRAM,
            addresses=[address(page=page)],
            payload_bytes=4096,
        )
        for page in (0, 1)
    ]
    for program in programs:
        engine.process(pipeline.service(program))
    engine.run()
    finish = max(t.completed_at for t in programs)
    # Two tPROGs on one die cannot overlap: > 200 us total.
    assert finish >= 200_000
    assert programs[1].die_wait_ns > 0


def test_multi_plane_program_counts_once_per_die_occupancy():
    engine, pipeline, config = make_pipeline()
    transaction = FlashTransaction(
        kind=TransactionKind.PROGRAM,
        addresses=[address(plane=0), address(plane=1)],
        payload_bytes=8192,
    )
    run(engine, pipeline, transaction)
    # One tPROG for both planes; data transfer is 2 pages.
    assert transaction.latency_ns == pytest.approx(10 + 6827 + 100_000, abs=20)


def test_transaction_validation():
    with pytest.raises(ConfigurationError):
        FlashTransaction(kind=TransactionKind.READ, addresses=[], payload_bytes=0)
    with pytest.raises(ConfigurationError):
        FlashTransaction(
            kind=TransactionKind.READ,
            addresses=[address(channel=0), address(channel=1)],
            payload_bytes=0,
        )
