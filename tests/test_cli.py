"""CLI smoke tests."""

import json

import pytest

from repro.cli import main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "venice" in out
    assert "hm_0" in out
    assert "mix6" in out


def test_run_command_table_output(capsys):
    code = main(
        ["run", "--design", "baseline", "--workload", "hm_0", "--requests", "60"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "IOPS" in out
    assert "baseline" in out


def test_run_command_json_output(capsys):
    code = main(
        ["run", "--design", "ideal", "--workload", "proj_3", "--requests", "60",
         "--json"]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["design"] == "ideal"
    assert payload["requests"] == 60
    assert payload["iops"] > 0


def test_compare_command(capsys):
    code = main(["compare", "--workload", "proj_3", "--requests", "60"])
    assert code == 0
    out = capsys.readouterr().out
    assert "speedup" in out
    assert "venice" in out


def test_figure_table4(capsys):
    code = main(["figure", "table4"])
    assert code == 0
    out = capsys.readouterr().out
    assert "0.241" in out


def test_figure_fig13_json(capsys):
    code = main(
        ["figure", "fig13", "--requests", "60", "--workloads", "proj_3", "--json"]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["figure"] == "fig13"
    assert "venice" in payload["average"]


def test_unknown_figure_rejected():
    with pytest.raises(SystemExit):
        main(["figure", "fig99"])
