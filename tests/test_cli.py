"""CLI smoke tests."""

import json

import pytest

from repro.cli import main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "venice" in out
    assert "hm_0" in out
    assert "mix6" in out


def test_run_command_table_output(capsys):
    code = main(
        ["run", "--design", "baseline", "--workload", "hm_0", "--requests", "60"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "IOPS" in out
    assert "baseline" in out


def test_run_command_json_output(capsys):
    code = main(
        ["run", "--design", "ideal", "--workload", "proj_3", "--requests", "60",
         "--json"]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["design"] == "ideal"
    assert payload["requests"] == 60
    assert payload["iops"] > 0


def test_compare_command(capsys):
    code = main(["compare", "--workload", "proj_3", "--requests", "60"])
    assert code == 0
    out = capsys.readouterr().out
    assert "speedup" in out
    assert "venice" in out


def test_figure_table4(capsys):
    code = main(["figure", "table4"])
    assert code == 0
    out = capsys.readouterr().out
    assert "0.241" in out


def test_figure_fig13_json(capsys):
    code = main(
        ["figure", "fig13", "--requests", "60", "--workloads", "proj_3", "--json"]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["figure"] == "fig13"
    assert "venice" in payload["average"]


def test_unknown_figure_rejected():
    with pytest.raises(SystemExit):
        main(["figure", "fig99"])


def test_figure_fig11_honors_workloads(capsys):
    code = main(
        ["figure", "fig11", "--requests", "60", "--workloads", "proj_3", "--json"]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["workloads"] == ["proj_3"]
    assert list(payload["p99_ns"]) == ["proj_3"]


def test_figure_fig12_honors_mix_names(capsys):
    code = main(
        ["figure", "fig12", "--requests", "60", "--workloads", "mix2", "--json"]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["mixes"] == ["mix2"]
    assert list(payload["speedups"]) == ["mix2"]


def test_figure_fig12_rejects_trace_names(capsys):
    code = main(["figure", "fig12", "--requests", "60", "--workloads", "hm_0"])
    assert code == 2
    assert "mix names" in capsys.readouterr().err


def test_figure_rejects_empty_workloads_flag(capsys):
    code = main(["figure", "fig13", "--requests", "60", "--workloads"])
    assert code == 2
    assert "at least one name" in capsys.readouterr().err
    code = main(["figure", "fig12", "--requests", "60", "--workloads"])
    assert code == 2
    assert "at least one name" in capsys.readouterr().err


def test_figure_table4_rejects_workloads(capsys):
    code = main(["figure", "table4", "--workloads", "hm_0"])
    assert code == 2
    assert "does not take --workloads" in capsys.readouterr().err


def test_figure_cache_rerun_is_identical(tmp_path, capsys):
    argv = [
        "figure", "fig13", "--requests", "60", "--workloads", "proj_3",
        "--json", "--cache", str(tmp_path),
    ]
    assert main(argv) == 0
    cold = capsys.readouterr().out
    assert main(argv) == 0
    warm = capsys.readouterr().out
    assert warm == cold
    assert len(list(tmp_path.glob("*.json"))) == 5  # fig13's five designs


def test_matrix_command_json(tmp_path, capsys):
    code = main(
        [
            "matrix", "--requests", "60", "--workloads", "proj_3",
            "--figures", "fig9a", "fig13", "table4",
            "--json", "--cache", str(tmp_path),
        ]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert set(payload) == {"fig9a", "fig13", "table4"}
    assert payload["fig9a"]["workloads"] == ["proj_3"]
    assert payload["table4"]["table"] == "table4"
    # fig13's runs are a subset of fig9a's matrix: only six specs on disk.
    assert len(list(tmp_path.glob("*.json"))) == 6


def test_cache_path_that_is_a_file_errors_cleanly(tmp_path, capsys):
    target = tmp_path / "not-a-dir"
    target.write_text("")
    code = main(
        ["run", "--workload", "hm_0", "--requests", "60", "--cache", str(target)]
    )
    assert code == 2
    assert "cache directory" in capsys.readouterr().err


def test_corrupt_cache_entry_errors_cleanly(tmp_path, capsys):
    import json as jsonlib

    argv = ["run", "--workload", "hm_0", "--requests", "60", "--json",
            "--cache", str(tmp_path)]
    assert main(argv) == 0
    capsys.readouterr()
    entry = next(tmp_path.glob("*.json"))
    payload = jsonlib.loads(entry.read_text())
    payload["spec"]["workload"] = "proj_3"
    entry.write_text(jsonlib.dumps(payload))
    assert main(argv) == 2
    assert "does not match its digest key" in capsys.readouterr().err


def test_run_command_with_cache(tmp_path, capsys):
    argv = [
        "run", "--design", "venice", "--workload", "hm_0",
        "--requests", "60", "--json", "--cache", str(tmp_path),
    ]
    assert main(argv) == 0
    cold = json.loads(capsys.readouterr().out)
    assert main(argv) == 0
    warm = json.loads(capsys.readouterr().out)
    assert warm == cold
    assert len(list(tmp_path.glob("*.json"))) == 1


def test_bench_command_writes_payload_and_gates(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    out_path = tmp_path / "BENCH_core.json"
    baseline_path = tmp_path / "baseline.json"
    # A generous baseline any machine beats; gate must pass.
    baseline_path.write_text(
        json.dumps({"events_per_sec": 1.0, "requests_per_sec": 1.0})
    )
    code = main(
        ["bench", "--quick", "--out", str(out_path), "--baseline", str(baseline_path)]
    )
    assert code == 0
    payload = json.loads(out_path.read_text())
    assert payload["events_per_sec"] > 0
    assert payload["requests_per_sec"] > 0
    assert "end_to_end" in payload
    out = capsys.readouterr().out
    assert "no regression" in out


def test_bench_command_fails_on_regression(tmp_path, capsys):
    out_path = tmp_path / "BENCH_core.json"
    baseline_path = tmp_path / "baseline.json"
    # An impossible baseline; the gate must trip with exit code 3.
    baseline_path.write_text(
        json.dumps({"events_per_sec": 1e15, "requests_per_sec": 1e15})
    )
    code = main(
        ["bench", "--quick", "--out", str(out_path), "--baseline", str(baseline_path)]
    )
    assert code == 3
    captured = capsys.readouterr()
    assert "PERF REGRESSION" in captured.err


def test_store_stats_command(tmp_path, capsys):
    assert main(["run", "--design", "baseline", "--workload", "hm_0",
                 "--requests", "60", "--cache", str(tmp_path)]) == 0
    capsys.readouterr()
    assert main(["store", "stats", "--cache", str(tmp_path), "--json"]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["entries"] == 1
    assert stats["bytes"] > 0
    assert stats["checkpoints"] == 0


def test_store_stats_rejects_missing_directory(tmp_path, capsys):
    code = main(["store", "stats", "--cache", str(tmp_path / "nope")])
    assert code == 2
    assert "not a result-store directory" in capsys.readouterr().err


def test_figure_accepts_amortization_flags(capsys):
    code = main([
        "figure", "fig13", "--requests", "120", "--workloads", "hm_0",
        "--warmup", "fill 0.3; steps 100",
        "--early-stop", "window 40; tolerance 0.05; min 80",
        "--json",
    ])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["figure"] == "fig13"


def test_figure_rejects_bad_warmup_grammar(capsys):
    code = main([
        "figure", "fig13", "--requests", "60", "--workloads", "hm_0",
        "--warmup", "fill lots",
    ])
    assert code == 2
    assert "warm-up" in capsys.readouterr().err
