"""CLI fault-injection surface: ``faults sweep``, ``faults check``,
``figure --faults``."""

import json

from repro.cli import main


def test_faults_check_echoes_canonical_form(capsys):
    assert main(["faults", "check", "100us link (0,2)-(0,1) down"]) == 0
    out = capsys.readouterr().out
    assert "events: 1" in out
    assert "100000ns link (0,1)-(0,2) down" in out


def test_faults_check_json(capsys):
    code = main(
        ["faults", "check", "0 die 1.2.0 down; 1ms die 1.2.0 up", "--json"]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["canonical"] == "0ns die 1.2.0 down; 1000000ns die 1.2.0 up"
    assert len(payload["events"]) == 2


def test_faults_check_rejects_bad_grammar(capsys):
    assert main(["faults", "check", "banana"]) == 2
    assert "error:" in capsys.readouterr().err


def test_faults_sweep_tables(capsys):
    code = main(
        ["faults", "sweep", "--requests", "48", "--link-counts", "0", "2"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "throughput (IOPS)" in out
    assert "p99 latency (us)" in out
    assert "completed fraction" in out
    assert "venice" in out and "nossd" in out


def test_faults_sweep_json_and_cache(tmp_path, capsys):
    args = [
        "faults", "sweep", "--requests", "48", "--link-counts", "0", "4",
        "--json", "--cache", str(tmp_path / "store"),
    ]
    assert main(args) == 0
    cold = json.loads(capsys.readouterr().out)
    assert cold["curve"]["4"]["venice"]["completed_fraction"] == 1.0
    assert main(args) == 0  # warm re-run served from the store
    warm = json.loads(capsys.readouterr().out)
    assert cold == warm


def test_figure_accepts_a_fault_schedule(capsys):
    code = main(
        [
            "figure", "fig13", "--requests", "48", "--workloads", "hm_0",
            "--faults", "0 link (0,2)-(0,3) down", "--json",
        ]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["figure"] == "fig13"
    assert "hm_0" in payload["conflict_fraction"]


def test_figure_rejects_bad_fault_schedules(capsys):
    code = main(
        ["figure", "fig13", "--requests", "48", "--faults", "0 nonsense"]
    )
    assert code == 2
    assert "fault clause" in capsys.readouterr().err
