"""Cross-design invariants: properties that must hold for *every* fabric.

These are the consistency checks that make the six-way comparison
meaningful: identical flash work, identical FTL behaviour, fabric-specific
timing only.
"""

import pytest

from repro.config.presets import performance_optimized
from repro.config.ssd_config import DesignKind
from repro.ssd.device import SsdDevice
from repro.ssd.factory import design_names
from repro.workloads.catalog import generate_workload

DESIGNS = [DesignKind.from_name(name) for name in design_names()]


@pytest.fixture(scope="module")
def shared_trace():
    config = performance_optimized(blocks_per_plane=8, pages_per_block=8)
    trace = generate_workload(
        "LUN0", count=120, footprint_bytes=config.geometry.capacity_bytes // 2,
        seed=7,
    )
    return config, trace


@pytest.fixture(scope="module")
def all_runs(shared_trace):
    config, trace = shared_trace
    runs = {}
    for design in DESIGNS:
        device = SsdDevice(config, design)
        result = device.run_trace(trace.requests, trace.name)
        runs[design.value] = (device, result)
    return runs


def test_all_designs_complete_every_request(all_runs):
    counts = {name: result.requests_completed for name, (_, result) in all_runs.items()}
    assert len(set(counts.values())) == 1, counts


def test_all_designs_perform_identical_flash_work(all_runs):
    """Same trace + same FTL => same flash operations, fabric-independent."""
    reads = {name: dev.pipeline.reads_completed for name, (dev, _) in all_runs.items()}
    programs = {
        name: dev.pipeline.programs_completed for name, (dev, _) in all_runs.items()
    }
    assert len(set(reads.values())) == 1, reads
    assert len(set(programs.values())) == 1, programs


def test_ftl_consistent_after_every_design(all_runs):
    for name, (device, _) in all_runs.items():
        device.ftl.assert_consistent()


def test_ideal_is_fastest_or_tied(all_runs):
    times = {name: result.execution_time_ns for name, (_, result) in all_runs.items()}
    assert times["ideal"] <= min(times.values()) * 1.001, times


def test_ideal_has_zero_conflicts(all_runs):
    _, result = all_runs["ideal"]
    assert result.conflict_fraction == 0.0


def test_venice_conflicts_below_bus_designs(all_runs):
    conflicts = {name: result.conflict_fraction for name, (_, result) in all_runs.items()}
    assert conflicts["venice"] <= conflicts["baseline"]
    assert conflicts["venice"] <= conflicts["pssd"]


def test_mean_latency_ordering_sane(all_runs):
    """No realizable design beats the ideal SSD's mean latency by >1%."""
    latencies = {name: result.mean_latency_ns for name, (_, result) in all_runs.items()}
    for name, latency in latencies.items():
        assert latency >= latencies["ideal"] * 0.99, (name, latencies)


def test_energy_positive_and_power_band(all_runs):
    for name, (_, result) in all_runs.items():
        assert result.energy_mj > 0
        assert 100 < result.average_power_mw < 10_000, name


def test_venice_network_fully_released_after_run(all_runs):
    device, _ = all_runs["venice"]
    assert device.fabric.network.links_in_use() == 0
    assert not device.fabric.network.ejection_owner
    assert not device.fabric.network.injection_owner
    assert not device.fabric.network.circuits


def test_all_engines_drained(all_runs):
    for name, (device, _) in all_runs.items():
        assert device.engine.pending_events == 0, name
