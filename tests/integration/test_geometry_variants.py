"""Geometry-variant integration tests (the Figure 15 configurations)."""

import pytest

from repro.config.presets import performance_optimized
from repro.config.ssd_config import DesignKind
from repro.ssd.device import SsdDevice
from repro.venice.network import VeniceNetwork
from repro.venice.scout import ScoutPacket
from repro.workloads.catalog import generate_workload


@pytest.mark.parametrize("channels,chips", [(4, 16), (8, 8), (16, 4)])
def test_venice_runs_on_all_fig15_geometries(channels, chips):
    config = performance_optimized(blocks_per_plane=4, pages_per_block=8)
    config = config.with_geometry(channels, chips)
    trace = generate_workload(
        "proj_3", count=80, footprint_bytes=config.geometry.capacity_bytes // 2,
        seed=3,
    )
    device = SsdDevice(config, DesignKind.VENICE)
    result = device.run_trace(trace.requests, "proj_3")
    assert result.requests_completed == 80
    assert device.fabric.network.links_in_use() == 0


@pytest.mark.parametrize("channels,chips", [(4, 16), (8, 8), (16, 4)])
def test_nossd_runs_on_all_fig15_geometries(channels, chips):
    config = performance_optimized(blocks_per_plane=4, pages_per_block=8)
    config = config.with_geometry(channels, chips)
    trace = generate_workload(
        "proj_3", count=80, footprint_bytes=config.geometry.capacity_bytes // 2,
        seed=3,
    )
    device = SsdDevice(config, DesignKind.NOSSD)
    result = device.run_trace(trace.requests, "proj_3")
    assert result.requests_completed == 80


@pytest.mark.parametrize("rows,cols,fcs", [(4, 16, 4), (16, 4, 16), (2, 2, 2)])
def test_venice_network_reservation_on_rectangles(rows, cols, fcs):
    net = VeniceNetwork(rows, cols, fcs)
    circuits = []
    for fc in range(fcs):
        dest = (fc % rows, (fc * 3) % cols)
        packet = ScoutPacket(
            destination_chip=dest[0] * cols + dest[1],
            source_fc=fc,
            dest_bits=max(6, (rows * cols - 1).bit_length()),
            fc_bits=max(3, (fcs - 1).bit_length()),
        )
        result = net.try_reserve(packet, dest)
        if result.succeeded:
            circuits.append(result.circuit)
        net.assert_consistent()
    assert circuits  # at least some reservations succeed on every shape
    for circuit in circuits:
        net.release(circuit)
    assert net.links_in_use() == 0


def test_scout_field_widths_adapt_to_geometry():
    config = performance_optimized(blocks_per_plane=2, pages_per_block=2)
    wide = config.with_geometry(16, 4)
    from repro.venice.fabric import VeniceFabric
    from repro.sim.engine import Engine

    fabric = VeniceFabric(Engine(), wide)
    assert fabric.fc_bits == 4  # 16 controllers need 4 bits
    assert fabric.dest_bits == 6  # still 64 chips
