"""Sustained-write behaviour: the write cliff, churn, wear leveling,
and the telemetry-emission convention for the new extras keys."""

import pytest

from repro.config.presets import performance_optimized
from repro.config.ssd_config import DesignKind
from repro.errors import GarbageCollectionError, MappingError
from repro.hil.request import IoKind, IoRequest
from repro.ssd.device import SsdDevice

NEW_KEYS = (
    "host_pages_written",
    "gc_pages_written",
    "gc_invocations",
    "gc_erases",
    "gc_write_stalls",
    "gc_stall_ns",
    "write_amplification",
    "wear_erase_min",
    "wear_erase_max",
    "wear_erase_mean",
    "wear_migrations",
)


def tiny_config(**overrides):
    kwargs = dict(blocks_per_plane=4, pages_per_block=4)
    kwargs.update(overrides)
    return performance_optimized(**kwargs)


def write_trace(count, span_pages=64, gap_ns=500):
    """Sustained overwrites of a small logical window.

    Each write consumes a fresh physical page and strands the previous
    copy, so occupancy stays at the preconditioned level while the free
    pool drains -- the quickest route to the cliff.
    """
    return [
        IoRequest(
            kind=IoKind.WRITE,
            offset_bytes=(index % span_pages) * 4096,
            size_bytes=4096,
            arrival_ns=index * gap_ns,
        )
        for index in range(count)
    ]


def read_trace(count=30):
    return [
        IoRequest(
            kind=IoKind.READ,
            offset_bytes=index * 4096,
            size_bytes=4096,
            arrival_ns=index * 5_000,
        )
        for index in range(count)
    ]


# --------------------------------------------------------------------- #
# the write cliff
# --------------------------------------------------------------------- #


def test_high_fill_sustained_writes_stall_then_complete():
    """Past the cliff the host throttles on GC but every write lands."""
    device = SsdDevice(tiny_config(), DesignKind.BASELINE)
    device.precondition(0.9)
    count = 450
    result = device.run_trace(write_trace(count), "sustained")
    assert result.requests_completed == count
    assert device.write_stalls > 0
    assert result.extra["gc_write_stalls"] > 0
    assert result.extra["gc_stall_ns"] > 0
    assert result.extra["gc_blocks_reclaimed"] > 0
    device.ftl.assert_consistent()


def test_stalled_writes_amplify():
    """GC migrations make total cells programmed exceed host writes."""
    device = SsdDevice(tiny_config(), DesignKind.BASELINE)
    device.precondition(0.9)
    result = device.run_trace(write_trace(450), "sustained")
    extra = result.extra
    assert extra["host_pages_written"] > 0
    assert extra["gc_pages_written"] > 0
    assert extra["write_amplification"] > 1.0
    assert extra["write_amplification"] == pytest.approx(
        (extra["host_pages_written"] + extra["gc_pages_written"])
        / extra["host_pages_written"]
    )


def test_low_fill_writes_never_stall():
    device = SsdDevice(tiny_config(), DesignKind.BASELINE)
    device.precondition(0.2)
    result = device.run_trace(write_trace(10), "easy")
    assert device.write_stalls == 0
    assert result.extra.get("gc_stall_ns", 0.0) == 0.0


def test_exhaustion_without_gc_raises_cleanly_after_bounded_retries():
    """With GC off nothing can free space: the stall loop must give up
    with the allocator's error after its bounded retries, not hang."""
    device = SsdDevice(tiny_config(), DesignKind.BASELINE, enable_gc=False)
    device._max_write_stall_retries = 3
    device.precondition(0.9)
    with pytest.raises(GarbageCollectionError):
        device.run_trace(write_trace(450), "doomed")
    assert device.write_stalls >= 3


# --------------------------------------------------------------------- #
# churn
# --------------------------------------------------------------------- #


def test_churn_of_an_empty_device_is_a_noop():
    device = SsdDevice(tiny_config(), DesignKind.BASELINE)
    assert device.churn(0.5) == 0
    device.ftl.assert_consistent()


def test_churn_preserves_ftl_consistency_and_reserve():
    device = SsdDevice(tiny_config(blocks_per_plane=8), DesignKind.BASELINE)
    device.precondition(0.85)
    rewritten = device.churn(0.5)
    assert rewritten > 0
    device.ftl.assert_consistent()
    allocator = device.ftl.allocator
    for plane_flat in range(allocator.plane_count()):
        assert (
            allocator.erased_block_count(plane_flat)
            >= allocator.gc_reserved_blocks
        )


def test_churn_rejects_bad_fractions():
    device = SsdDevice(tiny_config(), DesignKind.BASELINE)
    with pytest.raises(MappingError):
        device.churn(1.5)


# --------------------------------------------------------------------- #
# wear leveling
# --------------------------------------------------------------------- #


def test_skewed_wear_triggers_leveling_migrations():
    device = SsdDevice(
        tiny_config(blocks_per_plane=8),
        DesignKind.BASELINE,
        enable_wear_leveling=True,
    )
    device.precondition(0.5)  # leaves fully-valid (cold) closed blocks
    # Skew the erase-count distribution past the leveler's threshold.
    plane = device.ftl.allocator.plane(0)
    for block in plane.blocks:
        if block.is_erased:
            block.erase_count = 20
    result = device.run_trace(write_trace(20), "skewed")
    assert device.wear_leveler.migrations > 0
    assert result.extra["wear_migrations"] > 0
    assert result.extra["wear_erase_max"] >= 20.0
    device.ftl.assert_consistent()


def test_wear_leveling_disabled_never_migrates():
    device = SsdDevice(tiny_config(blocks_per_plane=8), DesignKind.BASELINE)
    device.precondition(0.5)
    plane = device.ftl.allocator.plane(0)
    for block in plane.blocks:
        if block.is_erased:
            block.erase_count = 20
    device.run_trace(write_trace(20), "skewed")
    assert device.wear_leveler.migrations == 0


# --------------------------------------------------------------------- #
# extras-emission convention
# --------------------------------------------------------------------- #


def test_quiet_run_omits_sustained_write_keys():
    """A read-only run on an armed-but-idle device keeps the historical
    key set: legacy GC counters stay (GC armed), new keys stay out."""
    device = SsdDevice(tiny_config(), DesignKind.BASELINE)
    result = device.run_trace(read_trace(), "reads")
    assert result.extra["gc_blocks_reclaimed"] == 0.0
    assert result.extra["gc_pages_migrated"] == 0.0
    for key in NEW_KEYS:
        assert key not in result.extra


def test_disarmed_gc_omits_legacy_gc_keys():
    """Like fault telemetry, GC counters appear only when GC is armed."""
    device = SsdDevice(tiny_config(), DesignKind.BASELINE, enable_gc=False)
    result = device.run_trace(read_trace(), "reads")
    assert "gc_blocks_reclaimed" not in result.extra
    assert "gc_pages_migrated" not in result.extra


def test_engaged_run_emits_every_sustained_write_key():
    device = SsdDevice(tiny_config(), DesignKind.BASELINE)
    device.precondition(0.9)
    result = device.run_trace(write_trace(450), "sustained")
    for key in NEW_KEYS:
        assert key in result.extra, key
