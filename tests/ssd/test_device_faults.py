"""Device-level fault injection: wiring, telemetry, and the strict no-op."""

import json

import pytest

from repro.config.presets import preset_by_name
from repro.config.ssd_config import DesignKind
from repro.errors import ConfigurationError, RoutingError
from repro.ssd.device import SsdDevice
from repro.workloads.synthetic import SyntheticGenerator, WorkloadSpec


def small_config():
    return preset_by_name(
        "performance-optimized", blocks_per_plane=16, pages_per_block=16
    )


def small_trace(config, count=60, read_pct=70.0, seed=7):
    spec = WorkloadSpec(
        name="faults-test",
        read_pct=read_pct,
        avg_size_kb=8.0,
        avg_interarrival_us=5.0,
    )
    footprint = config.geometry.capacity_bytes // 2
    return SyntheticGenerator(spec, seed=seed).generate(count, footprint)


def run_device(design, faults=None, count=60, config=None, **kwargs):
    config = config or small_config()
    device = SsdDevice(config, design, queue_pairs=2, faults=faults, **kwargs)
    trace = small_trace(config, count=count)
    result = device.run_trace(trace.requests, "faults-test")
    return device, result


def test_empty_schedule_is_bit_identical_to_no_argument():
    _, plain = run_device(DesignKind.VENICE)
    _, empty = run_device(DesignKind.VENICE, faults="")
    assert json.dumps(plain.to_dict(), sort_keys=True) == json.dumps(
        empty.to_dict(), sort_keys=True
    )
    assert "requests_stalled" not in plain.extra


def test_fault_telemetry_keys_appear_only_when_faulted():
    _, result = run_device(DesignKind.VENICE, faults="0 link (0,0)-(0,1) down")
    for key in (
        "fault_events",
        "requests_stalled",
        "blocked_transfers",
        "degraded_die_ops",
        "ecc_decode_retries",
        "ecc_uncorrectable",
    ):
        assert key in result.extra, key
    assert result.extra["fault_events"] == 1.0


def test_ecc_burst_drives_retries_into_metrics():
    device, result = run_device(
        DesignKind.BASELINE, faults="0 ecc-burst rate=0.6 for=10ms"
    )
    assert device.ecc.bursts_started == 1
    assert device.ecc.decode_failure_rate == 0.0  # restored after the burst
    assert result.extra["ecc_decode_retries"] > 0
    assert result.requests_completed == 60


def test_ecc_burst_latency_is_deterministic_and_slower():
    _, pristine = run_device(DesignKind.BASELINE)
    _, burst_a = run_device(
        DesignKind.BASELINE, faults="0 ecc-burst rate=0.6 for=100ms"
    )
    _, burst_b = run_device(
        DesignKind.BASELINE, faults="0 ecc-burst rate=0.6 for=100ms"
    )
    assert burst_a.to_dict() == burst_b.to_dict()
    assert burst_a.mean_latency_ns > pristine.mean_latency_ns


def test_die_failure_degrades_latency_and_counts_ops():
    device, result = run_device(
        DesignKind.BASELINE, faults="0 die 0.0.0 down"
    )
    assert device.array.failed_dies() == 1
    assert result.extra["degraded_die_ops"] > 0
    assert result.requests_completed == 60
    _, pristine = run_device(DesignKind.BASELINE)
    assert result.mean_latency_ns > pristine.mean_latency_ns


def test_die_repair_restores_pristine_service():
    device, _ = run_device(
        DesignKind.BASELINE, faults="0 die 0.0.0 down; 1ms die 0.0.0 up"
    )
    assert device.array.failed_dies() == 0


def test_out_of_range_fault_targets_fail_eagerly():
    config = small_config()
    with pytest.raises(ConfigurationError):
        SsdDevice(config, DesignKind.VENICE, faults="0 router (99,0) down")
    with pytest.raises(ConfigurationError):
        SsdDevice(config, DesignKind.VENICE, faults="0 die 0.0.9 down")
    with pytest.raises(ConfigurationError):
        SsdDevice(config, DesignKind.VENICE, faults="0 link (7,7)-(7,8) down")


def test_venice_partition_raises_routing_error():
    with pytest.raises(RoutingError):
        run_device(DesignKind.VENICE, faults="0 router (0,3) down")


def test_fully_stalled_faulted_run_finalizes_to_zero_result():
    # Sever every channel bus at its root: nothing can complete.
    schedule = "; ".join(f"0 link ({row},0)-({row},1) down" for row in range(8))
    device, result = run_device(DesignKind.BASELINE, faults=schedule, count=20)
    assert result.requests_completed < 20
    assert result.extra["requests_stalled"] > 0
    # Chips at way 0 are still reachable, so some requests may finish; a
    # zero-completion run must not raise either way.
    assert result.iops >= 0.0


def test_venice_completes_where_shared_bus_and_nossd_stall():
    """The headline: path diversity turns fatal faults into detours."""
    schedule = "0 link (0,2)-(0,3) down; 0 link (3,4)-(3,5) down"
    _, venice = run_device(DesignKind.VENICE, faults=schedule)
    _, baseline = run_device(DesignKind.BASELINE, faults=schedule)
    _, nossd = run_device(DesignKind.NOSSD, faults=schedule)
    assert venice.extra["requests_stalled"] == 0
    assert venice.requests_completed == 60
    assert baseline.extra["requests_stalled"] > 0
    assert nossd.extra["requests_stalled"] > 0
    assert venice.iops > 0
