"""End-to-end SSD device integration tests."""

import pytest

from repro.config.presets import cost_optimized, performance_optimized
from repro.config.ssd_config import DesignKind
from repro.errors import ConfigurationError
from repro.hil.request import IoKind, IoRequest
from repro.ssd.device import SsdDevice
from repro.ssd.factory import build_fabric, design_names, supports_geometry
from repro.sim.engine import Engine
from repro.workloads.catalog import generate_workload


def small_config():
    return performance_optimized(blocks_per_plane=8, pages_per_block=8)


def simple_trace(count=50, kind=IoKind.READ, gap_ns=5_000, size=8192):
    return [
        IoRequest(
            kind=kind,
            offset_bytes=(index * 16 + 3) * 4096,
            size_bytes=size,
            arrival_ns=index * gap_ns,
        )
        for index in range(count)
    ]


# --------------------------------------------------------------------- #
# factory
# --------------------------------------------------------------------- #


def test_factory_builds_every_design():
    config = small_config()
    for name in design_names():
        engine = Engine()
        fabric = build_fabric(engine, config, DesignKind.from_name(name))
        assert fabric.design is DesignKind.from_name(name)


def test_design_from_name_rejects_unknown():
    with pytest.raises(ConfigurationError):
        DesignKind.from_name("warp-drive")


def test_supports_geometry_pnssd_square_only():
    config = small_config()
    assert supports_geometry(DesignKind.PNSSD, config)
    assert not supports_geometry(DesignKind.PNSSD, config.with_geometry(4, 16))
    assert supports_geometry(DesignKind.VENICE, config.with_geometry(4, 16))


# --------------------------------------------------------------------- #
# end-to-end runs
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("design", design_names())
def test_every_design_completes_a_read_trace(design):
    device = SsdDevice(small_config(), DesignKind.from_name(design))
    result = device.run_trace(simple_trace(), "smoke")
    assert result.requests_completed == 50
    assert result.execution_time_ns > 0
    assert result.iops > 0
    assert result.energy_mj > 0


def test_write_trace_programs_flash():
    device = SsdDevice(small_config(), DesignKind.BASELINE)
    result = device.run_trace(simple_trace(kind=IoKind.WRITE), "writes")
    assert result.requests_completed == 50
    assert device.pipeline.programs_completed > 0
    device.ftl.assert_consistent()


def test_read_latency_has_floor_of_flash_read_plus_transfer():
    device = SsdDevice(small_config(), DesignKind.IDEAL)
    result = device.run_trace(
        simple_trace(count=5, gap_ns=1_000_000, size=4096), "sparse"
    )
    # Even uncontended: CMD + tR (3 us) + transfer (~3.4 us) + ECC.
    assert result.mean_latency_ns > 6_000


def test_mixed_queue_trace_round_robins():
    device = SsdDevice(small_config(), DesignKind.BASELINE, queue_pairs=2)
    requests = simple_trace(count=20)
    for index, request in enumerate(requests):
        request.queue_id = index % 2
    device.run_trace(requests, "multi-queue")
    assert device.queues[0].completed == 10
    assert device.queues[1].completed == 10


def test_queue_depth_limits_outstanding():
    config = small_config()
    config = type(config)(
        name=config.name, geometry=config.geometry, timings=config.timings,
        interconnect=config.interconnect, queue_depth=1, seed=config.seed,
    )
    device = SsdDevice(config, DesignKind.BASELINE)
    burst = [
        IoRequest(kind=IoKind.READ, offset_bytes=index * 65536,
                  size_bytes=4096, arrival_ns=0)
        for index in range(10)
    ]
    result = device.run_trace(burst, "qd1")
    # With QD=1 the ten requests serialize end-to-end.
    assert result.execution_time_ns > 9 * 6_000


def test_cost_optimized_is_slower_than_performance_optimized():
    trace = simple_trace(count=30, gap_ns=200_000)
    perf = SsdDevice(
        performance_optimized(blocks_per_plane=8, pages_per_block=8),
        DesignKind.BASELINE,
    ).run_trace([_clone(r) for r in trace], "perf")
    cost = SsdDevice(
        cost_optimized(blocks_per_plane=8, pages_per_block=8),
        DesignKind.BASELINE,
    ).run_trace([_clone(r) for r in trace], "cost")
    assert cost.mean_latency_ns > perf.mean_latency_ns


def _clone(request):
    return IoRequest(
        kind=request.kind,
        offset_bytes=request.offset_bytes,
        size_bytes=request.size_bytes,
        arrival_ns=request.arrival_ns,
        queue_id=request.queue_id,
    )


def test_rerunning_same_trace_objects_is_safe():
    """RunResult must not leak across devices sharing one trace list."""
    trace = simple_trace(count=20, gap_ns=1_000)
    first = SsdDevice(small_config(), DesignKind.BASELINE).run_trace(trace, "a")
    second = SsdDevice(small_config(), DesignKind.IDEAL).run_trace(trace, "b")
    assert second.conflict_fraction == 0.0
    assert first.requests_completed == second.requests_completed


def test_deterministic_given_seed():
    trace = generate_workload(
        "hm_0", count=60, footprint_bytes=small_config().geometry.capacity_bytes // 2
    )
    a = SsdDevice(small_config(), DesignKind.VENICE).run_trace(trace.requests, "a")
    b = SsdDevice(small_config(), DesignKind.VENICE).run_trace(trace.requests, "b")
    assert a.execution_time_ns == b.execution_time_ns
    assert a.mean_latency_ns == b.mean_latency_ns


def test_extra_metrics_present():
    device = SsdDevice(small_config(), DesignKind.VENICE)
    result = device.run_trace(simple_trace(count=10), "extra")
    assert "fabric_transfers" in result.extra
    assert "scout_attempts" in result.extra
    assert result.extra["fabric_transfers"] > 0
