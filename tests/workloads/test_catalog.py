"""Table 2 catalog and synthetic generator fidelity tests."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.catalog import (
    WORKLOAD_CATALOG,
    generate_workload,
    spec_by_name,
    workload_names,
)
from repro.workloads.synthetic import AddressPattern, SyntheticGenerator, WorkloadSpec

FOOTPRINT = 256 << 20  # 256 MiB


def test_catalog_has_all_nineteen_traces():
    assert len(WORKLOAD_CATALOG) == 19
    expected = {
        "hm_0", "mds_0", "proj_3", "prxy_0", "rsrch_0", "src1_0", "src2_1",
        "usr_0", "wdev_0", "web_1", "YCSB_B", "YCSB_D", "jenkins", "postgres",
        "LUN0", "LUN2", "LUN3", "ssd-00", "ssd-10",
    }
    assert set(workload_names()) == expected


def test_catalog_table2_values_spot_check():
    hm = spec_by_name("hm_0")
    assert (hm.read_pct, hm.avg_size_kb, hm.avg_interarrival_us) == (36, 8.8, 58)
    ycsb = spec_by_name("YCSB_B")
    assert (ycsb.read_pct, ycsb.avg_size_kb, ycsb.avg_interarrival_us) == (99, 65.7, 13)
    lun3 = spec_by_name("LUN3")
    assert (lun3.read_pct, lun3.avg_size_kb, lun3.avg_interarrival_us) == (7, 7.7, 3127)
    ssd10 = spec_by_name("ssd-10")
    assert (ssd10.read_pct, ssd10.avg_size_kb, ssd10.avg_interarrival_us) == (99, 11.5, 2)


def test_unknown_workload_rejected():
    with pytest.raises(WorkloadError):
        spec_by_name("nonexistent")


@pytest.mark.parametrize("name", ["hm_0", "proj_3", "YCSB_B", "ssd-00", "LUN3"])
def test_generated_trace_matches_published_read_fraction(name):
    trace = generate_workload(name, count=3000, footprint_bytes=FOOTPRINT, seed=1)
    spec = spec_by_name(name)
    assert trace.read_fraction == pytest.approx(spec.read_fraction, abs=0.04)


@pytest.mark.parametrize("name", ["hm_0", "src2_1", "YCSB_D", "LUN0"])
def test_generated_trace_matches_published_mean_size(name):
    trace = generate_workload(name, count=3000, footprint_bytes=FOOTPRINT, seed=1)
    spec = spec_by_name(name)
    assert trace.mean_size_bytes / 1024 == pytest.approx(spec.avg_size_kb, rel=0.15)


@pytest.mark.parametrize("name", ["hm_0", "proj_3", "jenkins"])
def test_generated_trace_matches_published_interarrival(name):
    # The ON-OFF process matches the published mean in expectation; a single
    # finite trace has few idle gaps (each burst is ~64 requests), so the
    # empirical mean is noisy -- average over seeds and allow slack.
    spec = spec_by_name(name)
    means = [
        generate_workload(
            name, count=4000, footprint_bytes=FOOTPRINT, seed=seed
        ).mean_interarrival_us
        for seed in (1, 2, 3, 4)
    ]
    average = sum(means) / len(means)
    assert average == pytest.approx(spec.avg_interarrival_us, rel=0.35)


def test_gap_process_mean_matches_spec_exactly_in_expectation():
    """Direct check of the ON-OFF gap process over many draws."""
    from repro.workloads.synthetic import SyntheticGenerator

    spec = spec_by_name("hm_0")
    generator = SyntheticGenerator(spec, seed=11)
    state = {"remaining": 0, "extent_base": 0, "extent_size": 4096}
    draws = 200_000
    total = sum(generator._next_gap_ns(state) for _ in range(draws))
    mean_us = total / draws / 1000
    assert mean_us == pytest.approx(spec.avg_interarrival_us, rel=0.06)


def test_generation_is_deterministic_per_seed():
    a = generate_workload("hm_0", count=100, footprint_bytes=FOOTPRINT, seed=9)
    b = generate_workload("hm_0", count=100, footprint_bytes=FOOTPRINT, seed=9)
    assert [(r.arrival_ns, r.offset_bytes, r.size_bytes) for r in a] == [
        (r.arrival_ns, r.offset_bytes, r.size_bytes) for r in b
    ]


def test_different_seeds_differ():
    a = generate_workload("hm_0", count=100, footprint_bytes=FOOTPRINT, seed=1)
    b = generate_workload("hm_0", count=100, footprint_bytes=FOOTPRINT, seed=2)
    assert [r.offset_bytes for r in a] != [r.offset_bytes for r in b]


def test_offsets_stay_inside_footprint():
    trace = generate_workload("src2_1", count=2000, footprint_bytes=FOOTPRINT, seed=3)
    for r in trace:
        assert 0 <= r.offset_bytes < FOOTPRINT


def test_arrivals_are_bursty():
    """The gap CV must exceed Poisson's (cv=1): bursts plus long idles."""
    trace = generate_workload("hm_0", count=4000, footprint_bytes=FOOTPRINT, seed=5)
    gaps = [
        b.arrival_ns - a.arrival_ns
        for a, b in zip(trace.requests, trace.requests[1:])
    ]
    mean = sum(gaps) / len(gaps)
    variance = sum((g - mean) ** 2 for g in gaps) / len(gaps)
    cv = variance**0.5 / mean
    assert cv > 1.5


def test_bursts_are_spatially_local():
    """Requests inside one burst cluster on a small extent."""
    spec = spec_by_name("LUN0")
    trace = generate_workload("LUN0", count=2000, footprint_bytes=FOOTPRINT, seed=5)
    intra_ns = spec.intra_burst_gap_us * 1000
    spans = []
    burst = [trace.requests[0].offset_bytes]
    for a, b in zip(trace.requests, trace.requests[1:]):
        if b.arrival_ns - a.arrival_ns <= intra_ns * 2:
            burst.append(b.offset_bytes)
        else:
            if len(burst) >= 4:
                spans.append(max(burst) - min(burst))
            burst = [b.offset_bytes]
    assert spans, "no bursts detected"
    median_span = sorted(spans)[len(spans) // 2]
    assert median_span <= spec.burst_extent_bytes


def test_sequential_workload_has_runs():
    trace = generate_workload("src2_1", count=1000, footprint_bytes=FOOTPRINT, seed=7)
    sequential = sum(
        1
        for a, b in zip(trace.requests, trace.requests[1:])
        if b.offset_bytes == a.offset_bytes + a.size_bytes
    )
    assert sequential > len(trace) * 0.3


def test_spec_validation():
    with pytest.raises(WorkloadError):
        WorkloadSpec(name="x", read_pct=120, avg_size_kb=4, avg_interarrival_us=10)
    with pytest.raises(WorkloadError):
        WorkloadSpec(name="x", read_pct=50, avg_size_kb=0, avg_interarrival_us=10)
    with pytest.raises(WorkloadError):
        WorkloadSpec(name="x", read_pct=50, avg_size_kb=4, avg_interarrival_us=10,
                     burst_mean=0.5)


def test_generator_rejects_tiny_footprint():
    generator = SyntheticGenerator(spec_by_name("hm_0"))
    with pytest.raises(WorkloadError):
        generator.generate(10, footprint_bytes=1024)


def test_intensified_spec():
    spec = spec_by_name("hm_0").intensified(0.5)
    assert spec.avg_interarrival_us == pytest.approx(29)
