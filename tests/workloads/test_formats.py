"""Streaming trace-format readers: parsing, detection, digests, edge cases."""

import gzip
from pathlib import Path

import pytest

from repro.errors import WorkloadError
from repro.hil.request import IoKind
from repro.workloads.formats import (
    detect_format,
    format_by_name,
    format_names,
    iter_trace_records,
    resolve_trace_path,
    trace_digest,
    trace_stem,
)

DATA = Path(__file__).parent / "data"
MSR = DATA / "msr_tiny.csv"
FIO = DATA / "fio_tiny.log"
BLKPARSE = DATA / "blkparse_tiny.txt"


# --------------------------------------------------------------------- #
# detection and happy-path parsing
# --------------------------------------------------------------------- #

def test_registry_lists_all_formats():
    assert set(format_names()) == {"venice-csv", "msr", "fio-log", "blkparse"}
    with pytest.raises(WorkloadError):
        format_by_name("pcap")


@pytest.mark.parametrize(
    "path, expected",
    [(MSR, "msr"), (FIO, "fio-log"), (BLKPARSE, "blkparse")],
)
def test_fixture_formats_are_detected(path, expected):
    assert detect_format(path).name == expected


def test_msr_fixture_parses_with_canonical_units():
    records = list(iter_trace_records(MSR))
    assert len(records) == 24
    first = records[0]
    # Filetime ticks are 100 ns each.
    assert first.arrival_ns % 100 == 0
    assert first.size_bytes in (4096, 8192, 16384, 32768)
    assert all(r.kind in (IoKind.READ, IoKind.WRITE) for r in records)
    arrivals = [r.arrival_ns for r in records]
    assert arrivals == sorted(arrivals)


def test_msr_header_row_is_tolerated(tmp_path):
    target = tmp_path / "with_header.csv"
    target.write_text(
        "Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime\n"
        + MSR.read_text()
    )
    assert len(list(iter_trace_records(target, "msr"))) == 24


def test_fio_fixture_parses_directions_and_milliseconds():
    records = list(iter_trace_records(FIO))
    assert len(records) == 20
    assert all(r.arrival_ns % 1_000_000 == 0 for r in records)  # whole ms
    assert {r.kind for r in records} == {IoKind.READ, IoKind.WRITE}


def test_blkparse_fixture_takes_only_queue_events():
    # The fixture interleaves one D (issue) event per Q and ends with the
    # blkparse summary block; only the 18 Q events become records.
    records = list(iter_trace_records(BLKPARSE))
    assert len(records) == 18
    assert all(r.offset_bytes % 512 == 0 for r in records)
    assert all(r.size_bytes % 512 == 0 for r in records)


def test_explicit_format_overrides_detection():
    with pytest.raises(WorkloadError):
        list(iter_trace_records(MSR, "fio-log"))


def test_limit_bounds_streaming():
    assert len(list(iter_trace_records(MSR, limit=5))) == 5
    with pytest.raises(WorkloadError, match="limit must be >= 1"):
        list(iter_trace_records(MSR, limit=0))


# --------------------------------------------------------------------- #
# digests
# --------------------------------------------------------------------- #

def test_digest_is_format_independent(tmp_path):
    # Convert the MSR fixture to canonical CSV: the content digest must
    # not change, because it covers parsed records, not file bytes.
    out = tmp_path / "converted.csv"
    lines = ["arrival_ns,kind,offset_bytes,size_bytes"]
    for record in iter_trace_records(MSR):
        lines.append(
            f"{record.arrival_ns},{record.kind.value},"
            f"{record.offset_bytes},{record.size_bytes}"
        )
    out.write_text("\n".join(lines) + "\n")
    assert detect_format(out).name == "venice-csv"
    assert trace_digest(out) == trace_digest(MSR)


def test_digest_is_gzip_transparent(tmp_path):
    zipped = tmp_path / "msr_tiny.csv.gz"
    zipped.write_bytes(gzip.compress(MSR.read_bytes()))
    assert len(list(iter_trace_records(zipped))) == 24
    assert trace_digest(zipped) == trace_digest(MSR)


def test_digest_cache_is_per_format(tmp_path):
    # A digest computed under one forced format must not be served for a
    # different format over the same unchanged file.
    target = tmp_path / "ambiguous.csv"
    target.write_text(MSR.read_text())
    assert trace_digest(target, "msr") == trace_digest(MSR)
    with pytest.raises(WorkloadError):  # not venice-csv: header missing
        trace_digest(target, "venice-csv")


def test_digest_changes_with_content(tmp_path):
    mutated = tmp_path / "mutated.csv"
    text = MSR.read_text().splitlines()
    text[3] = text[3].replace("Read", "Write").replace("read", "write")
    if text[3] == MSR.read_text().splitlines()[3]:  # row 3 was a write
        text[3] = text[3].replace("Write", "Read")
    mutated.write_text("\n".join(text) + "\n")
    assert trace_digest(mutated) != trace_digest(MSR)


# --------------------------------------------------------------------- #
# edge cases: each must raise a row-numbered WorkloadError
# --------------------------------------------------------------------- #

def _msr_rows(n=3, start=128166372003061629):
    rows = []
    t = start
    for i in range(n):
        t += 1000
        rows.append(f"{t},hm,0,Read,{4096 * (i + 1)},4096,500")
    return rows


def test_empty_file_rejected(tmp_path):
    target = tmp_path / "empty.csv"
    target.write_text("")
    with pytest.raises(WorkloadError, match="no records"):
        list(iter_trace_records(target, "msr"))


def test_blank_only_file_rejected(tmp_path):
    target = tmp_path / "blank.csv"
    target.write_text("\n\n   \n")
    with pytest.raises(WorkloadError, match="no records"):
        list(iter_trace_records(target, "msr"))


def test_malformed_row_names_the_row(tmp_path):
    rows = _msr_rows()
    rows.insert(1, "this,is,not,an,msr,row")
    target = tmp_path / "malformed.csv"
    target.write_text("\n".join(rows) + "\n")
    with pytest.raises(WorkloadError, match="row 2"):
        list(iter_trace_records(target, "msr"))


def test_non_numeric_offset_names_the_row(tmp_path):
    rows = _msr_rows()
    rows[2] = rows[2].replace("12288", "twelve-k")
    target = tmp_path / "nonnumeric.csv"
    target.write_text("\n".join(rows) + "\n")
    with pytest.raises(WorkloadError, match="row 3"):
        list(iter_trace_records(target, "msr"))


def test_out_of_range_lba_names_the_row(tmp_path):
    rows = _msr_rows()
    rows[1] = rows[1].replace(",8192,4096,", ",-8192,4096,")
    target = tmp_path / "negative_lba.csv"
    target.write_text("\n".join(rows) + "\n")
    with pytest.raises(WorkloadError, match=r"row 2: out-of-range LBA"):
        list(iter_trace_records(target, "msr"))


def test_zero_size_names_the_row(tmp_path):
    rows = _msr_rows()
    rows[2] = rows[2].replace(",4096,500", ",0,500")
    target = tmp_path / "zero_size.csv"
    target.write_text("\n".join(rows) + "\n")
    with pytest.raises(WorkloadError, match=r"row 3: non-positive request size"):
        list(iter_trace_records(target, "msr"))


def test_non_monotonic_timestamp_names_the_row(tmp_path):
    rows = _msr_rows(4)
    fields = rows[2].split(",")
    fields[0] = str(int(rows[0].split(",")[0]) - 50)  # jump backwards
    rows[2] = ",".join(fields)
    target = tmp_path / "unsorted.csv"
    target.write_text("\n".join(rows) + "\n")
    with pytest.raises(WorkloadError, match=r"row 3: non-monotonic timestamp"):
        list(iter_trace_records(target, "msr"))


def test_corrupt_gzip_rejected(tmp_path):
    target = tmp_path / "broken.csv.gz"
    payload = gzip.compress(("\n".join(_msr_rows(50)) + "\n").encode())
    target.write_bytes(payload[: len(payload) // 2])  # truncate mid-stream
    with pytest.raises(WorkloadError):
        list(iter_trace_records(target, "msr"))


def test_fio_trim_direction_rejected(tmp_path):
    target = tmp_path / "trim.log"
    target.write_text("1, 100, 0, 4096, 0\n2, 100, 2, 4096, 4096\n")
    with pytest.raises(WorkloadError, match=r"row 2: .*direction 2"):
        list(iter_trace_records(target, "fio-log"))


def test_fio_four_column_log_rejected(tmp_path):
    target = tmp_path / "old.log"
    target.write_text("1, 100, 0, 4096\n")
    with pytest.raises(WorkloadError, match=r"row 1: .*offset"):
        list(iter_trace_records(target, "fio-log"))


def test_unrecognised_format_rejected(tmp_path):
    target = tmp_path / "opaque.txt"
    target.write_text("lorem ipsum dolor\nsit amet\n")
    with pytest.raises(WorkloadError, match="unrecognised trace format"):
        detect_format(target)


def test_missing_file_rejected(tmp_path):
    with pytest.raises(WorkloadError, match="cannot open trace"):
        list(iter_trace_records(tmp_path / "nope.csv", "msr"))


# --------------------------------------------------------------------- #
# VENICE_TRACE_DIR resolution
# --------------------------------------------------------------------- #

def test_resolve_trace_path_finds_by_extension(tmp_path, monkeypatch):
    (tmp_path / "hm_0.csv").write_text("\n".join(_msr_rows()) + "\n")
    monkeypatch.setenv("VENICE_TRACE_DIR", str(tmp_path))
    assert resolve_trace_path("hm_0") == tmp_path / "hm_0.csv"
    assert resolve_trace_path("proj_3") is None
    monkeypatch.delenv("VENICE_TRACE_DIR")
    assert resolve_trace_path("hm_0") is None


def test_trace_stem_strips_gz():
    assert trace_stem("archive/hm_0.csv.gz") == "hm_0"
    assert trace_stem("hm_0.csv") == "hm_0"
