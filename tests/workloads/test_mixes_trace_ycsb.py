"""Tests for Table 3 mixes, the Trace container, and the YCSB generator."""

import pytest

from repro.errors import WorkloadError
from repro.hil.request import IoKind
from repro.workloads.mixes import MIX_CATALOG, generate_mix, mix_names
from repro.workloads.trace import Trace, load_trace_csv, save_trace_csv, trace_from_rows
from repro.workloads.ycsb import KeyDistribution, YcsbGenerator

FOOTPRINT = 256 << 20


# --------------------------------------------------------------------- #
# Table 3 mixes
# --------------------------------------------------------------------- #


def test_mix_catalog_matches_table3():
    assert mix_names() == ["mix1", "mix2", "mix3", "mix4", "mix5", "mix6"]
    assert MIX_CATALOG["mix1"].constituents == ("src2_1", "proj_3")
    assert MIX_CATALOG["mix2"].constituents == ("src2_1", "proj_3", "YCSB_D")
    assert MIX_CATALOG["mix6"].constituents == ("prxy_0", "src2_1", "usr_0")
    assert MIX_CATALOG["mix1"].avg_interarrival_us == 5.8
    assert MIX_CATALOG["mix6"].avg_interarrival_us == 3


def test_mix_interarrival_rescaled_to_table3():
    trace = generate_mix("mix1", count_per_constituent=400, footprint_bytes=FOOTPRINT)
    assert trace.mean_interarrival_us == pytest.approx(5.8, rel=0.05)


def test_mix_constituents_get_own_queues_and_slices():
    trace = generate_mix("mix2", count_per_constituent=200, footprint_bytes=FOOTPRINT)
    queues = {r.queue_id for r in trace}
    assert queues == {0, 1, 2}
    slice_bytes = FOOTPRINT // 3
    for r in trace:
        assert r.queue_id * slice_bytes <= r.offset_bytes < (r.queue_id + 1) * slice_bytes + slice_bytes


def test_mix_read_fraction_reflects_constituents():
    read_heavy = generate_mix("mix1", count_per_constituent=300, footprint_bytes=FOOTPRINT)
    write_heavy = generate_mix("mix3", count_per_constituent=300, footprint_bytes=FOOTPRINT)
    assert read_heavy.read_fraction > 0.9
    assert write_heavy.read_fraction < 0.15


def test_unknown_mix_rejected():
    with pytest.raises(WorkloadError):
        generate_mix("mix99", count_per_constituent=10, footprint_bytes=FOOTPRINT)


# --------------------------------------------------------------------- #
# Trace container
# --------------------------------------------------------------------- #


def test_trace_sorts_requests():
    trace = trace_from_rows("t", [(500, "r", 0, 4096), (100, "w", 4096, 4096)])
    assert trace.requests[0].arrival_ns == 100


def test_trace_characteristics():
    trace = trace_from_rows(
        "t", [(0, "r", 0, 8192), (1000, "w", 8192, 8192), (2000, "r", 0, 8192)]
    )
    chars = trace.characteristics()
    assert chars["requests"] == 3
    assert chars["read_pct"] == pytest.approx(66.7)
    assert chars["avg_size_kb"] == 8.0
    assert chars["avg_interarrival_us"] == 1.0


def test_trace_empty_rejected():
    with pytest.raises(WorkloadError):
        Trace("empty", [])


def test_trace_scaled_arrivals():
    trace = trace_from_rows("t", [(0, "r", 0, 4096), (1000, "r", 0, 4096)])
    fast = trace.scaled_arrivals(0.5)
    assert fast.requests[1].arrival_ns == 500
    with pytest.raises(WorkloadError):
        trace.scaled_arrivals(0)


def test_trace_csv_round_trip(tmp_path):
    trace = trace_from_rows(
        "round", [(0, "r", 0, 4096), (250, "w", 8192, 12288)]
    )
    path = tmp_path / "trace.csv"
    save_trace_csv(trace, path)
    loaded = load_trace_csv(path, name="round")
    assert len(loaded) == 2
    assert loaded.requests[1].kind is IoKind.WRITE
    assert loaded.requests[1].size_bytes == 12288


def test_trace_csv_rejects_bad_header(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("a,b,c\n1,2,3\n")
    with pytest.raises(WorkloadError):
        load_trace_csv(path)


# --------------------------------------------------------------------- #
# YCSB generator
# --------------------------------------------------------------------- #


def test_ycsb_zipfian_hot_keys_dominate():
    generator = YcsbGenerator(record_count=1000, seed=3)
    trace = generator.generate(3000)
    counts = {}
    for r in trace:
        counts[r.offset_bytes] = counts.get(r.offset_bytes, 0) + 1
    top = max(counts.values())
    assert top > 3000 / 1000 * 10  # hottest record far above uniform


def test_ycsb_latest_mode_reads_recent_inserts():
    generator = YcsbGenerator(
        record_count=1000,
        read_fraction=0.5,
        distribution=KeyDistribution.LATEST,
        seed=3,
    )
    trace = generator.generate(2000)
    writes = sum(1 for r in trace if not r.is_read)
    assert writes > 0
    assert generator._insert_frontier == 1000 + writes


def test_ycsb_offsets_are_record_aligned():
    generator = YcsbGenerator(record_count=100, record_size_bytes=16384, seed=1)
    trace = generator.generate(500)
    assert all(r.offset_bytes % 16384 == 0 for r in trace)
    assert all(r.size_bytes == 16384 for r in trace)


def test_ycsb_read_fraction_respected():
    generator = YcsbGenerator(record_count=500, read_fraction=0.95, seed=2)
    trace = generator.generate(4000)
    assert trace.read_fraction == pytest.approx(0.95, abs=0.02)


def test_ycsb_validation():
    with pytest.raises(WorkloadError):
        YcsbGenerator(record_count=0)
    with pytest.raises(WorkloadError):
        YcsbGenerator(record_count=10, read_fraction=1.5)
    with pytest.raises(WorkloadError):
        YcsbGenerator(record_count=10).generate(0)
