"""Robustness of the trace readers on hostile input.

Truncated gzip members, files ending mid-row, and out-of-range LBAs must
raise row-numbered :class:`WorkloadError` -- never crash with a raw
exception or silently truncate the stream.  Mixed line endings are valid
input and must parse identically to clean files.
"""

import gzip

import pytest

from repro.errors import WorkloadError
from repro.workloads.formats import (
    detect_format,
    iter_trace_records,
    trace_digest,
)
from repro.workloads.formats.base import MAX_OFFSET_BYTES
from repro.workloads.formats.msr import MsrFormat
from repro.workloads.formats.venice_csv import VeniceCsvFormat

MSR_ROWS = [
    "128166372003061629,hm,0,Read,328048,4096,419",
    "128166372016382155,hm,0,Write,138304,8192,545",
    "128166372026382245,hm,0,Read,674848,4096,368",
]

VENICE_HEADER = "arrival_ns,kind,offset_bytes,size_bytes"
VENICE_ROWS = ["0,read,4096,4096", "1500,write,8192,8192", "2500,read,0,4096"]


def write(path, text, binary=False):
    if binary:
        path.write_bytes(text)
    else:
        path.write_text(text)
    return path


def read_all(path, fmt=None):
    fmt = fmt or detect_format(path)
    return list(iter_trace_records(path, fmt))


# --------------------------------------------------------------------- #
# truncated gzip
# --------------------------------------------------------------------- #

def test_truncated_gzip_raises_row_numbered_workload_error(tmp_path):
    payload = ("\n".join([VENICE_HEADER] + VENICE_ROWS * 200) + "\n").encode()
    complete = gzip.compress(payload)
    truncated = complete[: len(complete) // 2]  # chop the member mid-stream
    path = write(tmp_path / "trace.csv.gz", truncated, binary=True)
    with pytest.raises(WorkloadError) as error:
        read_all(path, VeniceCsvFormat())
    assert "row" in str(error.value)


def test_truncated_gzip_never_silently_truncates(tmp_path):
    """A reader that swallows the EOFError would yield a partial stream."""
    payload = ("\n".join([VENICE_HEADER] + VENICE_ROWS * 500) + "\n").encode()
    truncated = gzip.compress(payload)[:-64]  # drop the trailer + tail
    path = write(tmp_path / "trace.csv.gz", truncated, binary=True)
    with pytest.raises(WorkloadError):
        read_all(path, VeniceCsvFormat())


# --------------------------------------------------------------------- #
# mid-row EOF
# --------------------------------------------------------------------- #

def test_mid_row_eof_raises_with_the_final_row_number(tmp_path):
    text = "\n".join(MSR_ROWS) + "\n128166372026382250,hm,0,Rea"
    path = write(tmp_path / "cut.csv", text)
    with pytest.raises(WorkloadError) as error:
        read_all(path, MsrFormat())
    assert "row 4" in str(error.value)


def test_mid_row_eof_with_missing_fields(tmp_path):
    path = write(tmp_path / "cut.csv", VENICE_HEADER + "\n0,read,4096")
    with pytest.raises(WorkloadError) as error:
        read_all(path, VeniceCsvFormat())
    assert "row 2" in str(error.value)


def test_mid_number_eof_is_a_parse_error_not_a_crash(tmp_path):
    text = "\n".join([VENICE_HEADER, "0,read,4096,4096", "1500,write,81x"])
    path = write(tmp_path / "cut.csv", text)
    with pytest.raises(WorkloadError) as error:
        read_all(path, VeniceCsvFormat())
    assert "row 3" in str(error.value)


# --------------------------------------------------------------------- #
# mixed line endings
# --------------------------------------------------------------------- #

def test_mixed_line_endings_parse_identically_to_clean_input(tmp_path):
    clean = write(
        tmp_path / "clean.csv", "\n".join([VENICE_HEADER] + VENICE_ROWS) + "\n"
    )
    mixed_text = (
        VENICE_HEADER + "\r\n" + VENICE_ROWS[0] + "\n"
        + VENICE_ROWS[1] + "\r\n" + VENICE_ROWS[2] + "\n"
    )
    mixed = write(tmp_path / "mixed.csv", mixed_text)
    assert read_all(mixed, VeniceCsvFormat()) == read_all(clean, VeniceCsvFormat())
    # Same parsed content => same canonical digest.
    assert trace_digest(mixed, VeniceCsvFormat()) == trace_digest(
        clean, VeniceCsvFormat()
    )


def test_mixed_line_endings_survive_format_detection(tmp_path):
    mixed = write(
        tmp_path / "mixed.csv", "\r\n".join(MSR_ROWS) + "\r\n"
    )
    fmt = detect_format(mixed)
    assert fmt.name == "msr"
    assert len(read_all(mixed, fmt)) == 3


# --------------------------------------------------------------------- #
# out-of-range LBAs
# --------------------------------------------------------------------- #

def test_lba_beyond_the_32bit_sector_ceiling_raises(tmp_path):
    huge = MAX_OFFSET_BYTES + 512
    text = "\n".join(
        [VENICE_HEADER, "0,read,4096,4096", f"1500,write,{huge},4096"]
    )
    path = write(tmp_path / "huge.csv", text)
    with pytest.raises(WorkloadError) as error:
        read_all(path, VeniceCsvFormat())
    message = str(error.value)
    assert "row 3" in message and "out-of-range LBA" in message


def test_lba_boundary_is_exclusive():
    """Sector 2^32 - 1 is the last valid 32-bit LBA; sector 2^32 is not."""
    assert MAX_OFFSET_BYTES == (1 << 32) * 512


def test_last_valid_lba_is_accepted_and_the_ceiling_is_not(tmp_path):
    last_valid = MAX_OFFSET_BYTES - 512
    accepted = write(
        tmp_path / "edge.csv",
        "\n".join([VENICE_HEADER, f"0,read,{last_valid},512"]),
    )
    records = read_all(accepted, VeniceCsvFormat())
    assert records[0].offset_bytes == last_valid
    rejected = write(
        tmp_path / "over.csv",
        "\n".join([VENICE_HEADER, f"0,read,{MAX_OFFSET_BYTES},512"]),
    )
    with pytest.raises(WorkloadError) as error:
        read_all(rejected, VeniceCsvFormat())
    assert "row 2" in str(error.value)


def test_msr_byte_offsets_beyond_the_ceiling_raise(tmp_path):
    huge = MAX_OFFSET_BYTES * 4
    text = "\n".join(
        MSR_ROWS + [f"128166372026382250,hm,0,Read,{huge},4096,1"]
    )
    path = write(tmp_path / "huge.csv", text)
    with pytest.raises(WorkloadError) as error:
        read_all(path, MsrFormat())
    assert "row 4" in str(error.value)


def test_negative_offsets_stay_row_numbered(tmp_path):
    text = "\n".join([VENICE_HEADER, "0,read,-4096,4096"])
    path = write(tmp_path / "neg.csv", text)
    with pytest.raises(WorkloadError) as error:
        read_all(path, VeniceCsvFormat())
    assert "row 2" in str(error.value)
