"""TraceWorkload replay, catalog preference, and spec-level determinism."""

from pathlib import Path

import pytest

from repro.errors import ConfigurationError, WorkloadError
from repro.experiments.executor import SerialExecutor, execute_specs
from repro.experiments.spec import ExperimentScale, RunSpec, make_spec
from repro.experiments.store import ResultStore
from repro.workloads.catalog import generate_workload
from repro.workloads.formats import trace_digest
from repro.workloads.replay import TraceWorkload
from repro.workloads.synthetic import SECTOR

DATA = Path(__file__).parent / "data"
MSR = DATA / "msr_tiny.csv"

SCALE = ExperimentScale(requests=24, blocks_per_plane=8, pages_per_block=8)


# --------------------------------------------------------------------- #
# TraceWorkload adapter
# --------------------------------------------------------------------- #

def test_generate_fits_footprint_and_normalizes_arrivals():
    footprint = 16 << 20
    trace = TraceWorkload(MSR).generate(24, footprint)
    assert trace.name == "msr_tiny"
    assert len(trace) == 24
    assert trace.requests[0].arrival_ns == 0
    for request in trace:
        assert 0 <= request.offset_bytes
        assert request.offset_bytes + request.size_bytes <= footprint
        assert request.offset_bytes % SECTOR == 0
        assert request.size_bytes % SECTOR == 0


def test_generate_with_fewer_records_than_count_replays_all():
    trace = TraceWorkload(MSR).generate(1000, 16 << 20)
    assert len(trace) == 24


def test_time_scale_compresses_gaps():
    plain = TraceWorkload(MSR).generate(24, 16 << 20)
    warped = TraceWorkload(MSR, time_scale=0.5).generate(24, 16 << 20)
    assert warped.duration_ns == pytest.approx(plain.duration_ns / 2, abs=24)


def test_scale_policy_preserves_relative_layout():
    footprint = 16 << 20
    wrap = TraceWorkload(MSR, lba_policy="wrap").generate(24, footprint)
    scaled = TraceWorkload(MSR, lba_policy="scale").generate(24, footprint)
    assert len(wrap) == len(scaled)
    # Scaling maps the trace's whole address span linearly (then sector-
    # aligns and clamps each request to fit), so recorded offset order is
    # preserved away from the top-of-range clamp region.
    records = TraceWorkload(MSR).records()
    safe = footprint - 128 * 1024
    for i in range(24):
        for j in range(24):
            end_i = scaled.requests[i].offset_bytes + scaled.requests[i].size_bytes
            end_j = scaled.requests[j].offset_bytes + scaled.requests[j].size_bytes
            if max(end_i, end_j) >= safe:
                continue
            if records[i].offset_bytes < records[j].offset_bytes:
                assert (
                    scaled.requests[i].offset_bytes
                    <= scaled.requests[j].offset_bytes
                )


def test_replay_knobs_validated():
    with pytest.raises(WorkloadError):
        TraceWorkload(MSR, time_scale=0.0)
    with pytest.raises(WorkloadError):
        TraceWorkload(MSR, lba_policy="teleport")
    with pytest.raises(WorkloadError):
        TraceWorkload(MSR).generate(0, 16 << 20)


def test_replay_is_deterministic():
    first = TraceWorkload(MSR).generate(24, 16 << 20)
    second = TraceWorkload(MSR).generate(24, 16 << 20)
    assert [
        (r.arrival_ns, r.kind, r.offset_bytes, r.size_bytes) for r in first
    ] == [(r.arrival_ns, r.kind, r.offset_bytes, r.size_bytes) for r in second]


# --------------------------------------------------------------------- #
# catalog preference: real trace when present, synthetic fallback
# --------------------------------------------------------------------- #

def test_catalog_prefers_real_trace_with_synthetic_fallback(tmp_path, monkeypatch):
    (tmp_path / "hm_0.csv").write_text(MSR.read_text())
    monkeypatch.setenv("VENICE_TRACE_DIR", str(tmp_path))
    real = generate_workload("hm_0", count=24, footprint_bytes=16 << 20)
    assert len(real) == 24  # the tiny fixture, not 24 synthetic draws
    assert real.requests[0].arrival_ns == 0
    # proj_3 has no file in the directory: synthetic fallback.
    synthetic = generate_workload("proj_3", count=30, footprint_bytes=16 << 20)
    assert len(synthetic) == 30
    # source="synthetic" pins generation even when a file exists.
    pinned = generate_workload(
        "hm_0", count=30, footprint_bytes=16 << 20, source="synthetic"
    )
    assert len(pinned) == 30


def test_catalog_explicit_path_source():
    trace = generate_workload(
        "renamed", count=24, footprint_bytes=16 << 20, source=MSR
    )
    assert trace.name == "renamed"
    assert len(trace) == 24


# --------------------------------------------------------------------- #
# spec integration: identity, determinism, caching (acceptance criteria)
# --------------------------------------------------------------------- #

def test_trace_spec_records_content_digest():
    spec = make_spec("venice", "perf", f"trace:{MSR}", SCALE)
    assert spec.workload == "msr_tiny"
    assert spec.trace_digest == trace_digest(MSR)
    again = make_spec("venice", "perf", f"trace:{MSR}", SCALE)
    assert spec == again
    assert spec.digest == again.digest


def test_trace_spec_digest_is_location_independent(tmp_path):
    copy = tmp_path / "elsewhere" / "msr_tiny.csv"
    copy.parent.mkdir()
    copy.write_text(MSR.read_text())
    original = make_spec("venice", "perf", f"trace:{MSR}", SCALE)
    moved = make_spec("venice", "perf", f"trace:{copy}", SCALE)
    assert original.trace_path != moved.trace_path
    assert original.digest == moved.digest


def test_trace_options_enter_the_digest():
    plain = make_spec("venice", "perf", f"trace:{MSR}", SCALE)
    warped = make_spec(
        "venice", "perf", f"trace:{MSR}", SCALE,
        trace_options={"time_scale": 0.5},
    )
    assert plain.digest != warped.digest


def test_trace_spec_round_trips_through_dict():
    spec = make_spec(
        "venice", "perf", f"trace:{MSR}", SCALE,
        trace_options={"lba_policy": "scale"},
    )
    rebuilt = RunSpec.from_dict(spec.to_dict())
    assert rebuilt == spec
    assert rebuilt.digest == spec.digest


def test_trace_spec_field_validation():
    with pytest.raises(ConfigurationError):
        RunSpec("venice", "perf", "x", SCALE, trace_path="/tmp/x.csv")
    with pytest.raises(ConfigurationError):
        RunSpec("venice", "perf", "x", SCALE, trace_digest="ab" * 32)
    with pytest.raises(ConfigurationError):
        RunSpec(
            "venice", "perf", "x", SCALE,
            trace_options=(("time_scale", 0.5),),
        )
    with pytest.raises(ConfigurationError):
        make_spec("venice", "perf", "mix1", SCALE, mix=True, trace=str(MSR))
    with pytest.raises(ConfigurationError):
        make_spec("venice", "perf", "trace:", SCALE)


def test_env_resolution_happens_at_spec_construction(tmp_path, monkeypatch):
    # With the directory set, the spec records the trace; clearing the
    # environment afterwards must not change what the spec executes.
    scale = ExperimentScale(requests=40, blocks_per_plane=8, pages_per_block=8)
    (tmp_path / "hm_0.csv").write_text(MSR.read_text())
    monkeypatch.setenv("VENICE_TRACE_DIR", str(tmp_path))
    trace_backed = make_spec("venice", "perf", "hm_0", scale)
    assert trace_backed.trace_path is not None
    monkeypatch.delenv("VENICE_TRACE_DIR")
    synthetic = make_spec("venice", "perf", "hm_0", scale)
    assert synthetic.trace_path is None
    assert trace_backed.digest != synthetic.digest
    # The trace-backed spec replays the 24-record fixture even though the
    # environment no longer names a trace directory (and the scale asks for
    # 40 requests): execution is a pure function of the spec.
    result = trace_backed.execute()
    assert result.requests_completed == 24
    assert synthetic.execute().requests_completed == 40
    # Mixes never auto-resolve: their digest is environment-independent.
    monkeypatch.setenv("VENICE_TRACE_DIR", str(tmp_path))
    mix_spec = make_spec("venice", "perf", "mix1", scale, mix=True)
    assert mix_spec.trace_path is None


def test_msr_fixture_replays_deterministically_and_caches(tmp_path):
    """Acceptance: same trace + spec -> identical digest, bit-identical
    results, and a warm cache re-run performing zero simulations."""
    spec_a = make_spec("venice", "perf", f"trace:{MSR}", SCALE)
    spec_b = make_spec("venice", "perf", f"trace:{MSR}", SCALE)
    assert spec_a.digest == spec_b.digest

    first = spec_a.execute().to_dict()
    second = spec_b.execute().to_dict()
    assert first == second  # bit-identical across two fresh runs

    store = ResultStore(tmp_path)
    cold_executor = SerialExecutor()
    cold = execute_specs([spec_a], executor=cold_executor, store=store)
    assert cold_executor.runs_completed == 1
    assert cold[spec_a].to_dict() == first

    warm_executor = SerialExecutor()
    warm = execute_specs([spec_b], executor=warm_executor, store=store)
    assert warm_executor.runs_completed == 0  # zero simulations on re-run
    assert warm[spec_b].to_dict() == first


def test_executor_validates_trace_before_fanout(tmp_path):
    doomed = tmp_path / "doomed.csv"
    doomed.write_text(MSR.read_text())
    spec = make_spec("venice", "perf", f"trace:{doomed}", SCALE)
    # The file changes after the spec was built: the batch must fail fast
    # with a digest-mismatch error, before any simulation runs.
    doomed.write_text(MSR.read_text().replace("Read", "Write"))
    executor = SerialExecutor()
    with pytest.raises(WorkloadError, match="changed since the spec"):
        execute_specs([spec], executor=executor)
    assert executor.runs_completed == 0
    # A deleted file fails the same way.
    doomed.unlink()
    with pytest.raises(WorkloadError):
        execute_specs([spec], executor=executor)


def test_cached_result_survives_trace_relocation(tmp_path):
    original = tmp_path / "a" / "msr_tiny.csv"
    original.parent.mkdir()
    original.write_text(MSR.read_text())
    store = ResultStore(tmp_path / "store")
    spec = make_spec("venice", "perf", f"trace:{original}", SCALE)
    execute_specs([spec], store=store)
    # Move the file: a spec built from the new location hits the same entry.
    moved = tmp_path / "b" / "msr_tiny.csv"
    moved.parent.mkdir()
    original.rename(moved)
    relocated = make_spec("venice", "perf", f"trace:{moved}", SCALE)
    executor = SerialExecutor()
    results = execute_specs([relocated], executor=executor, store=store)
    assert executor.runs_completed == 0
    assert results[relocated].requests_completed == 24
