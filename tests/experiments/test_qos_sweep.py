"""QoS isolation sweep: curve shapes, caching, and policy calibration."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.executor import SerialExecutor
from repro.experiments.qos import (
    DEFAULT_BUCKET_BURST,
    default_policies,
    fair_share_rate,
    isolation_specs,
    qos_scale,
    run_qos_sweep,
    suggest_token_bucket,
)
from repro.experiments.store import ResultStore

SCALE = qos_scale(requests=120)
DESIGNS = ("baseline", "venice")
PLACEMENTS = ("round-robin",)
LEVELS = (1, 2, 4)


def _policies():
    return {
        "none": "",
        "token-bucket": suggest_token_bucket(scale=SCALE),
    }


@pytest.fixture(scope="module")
def sweep(tmp_path_factory):
    """One cold sweep, shared by the curve assertions below."""
    store_dir = tmp_path_factory.mktemp("qos-sweep") / "store"
    executor = SerialExecutor()
    payload = run_qos_sweep(
        scale=SCALE,
        levels=LEVELS,
        policies=_policies(),
        designs=DESIGNS,
        placements=PLACEMENTS,
        executor=executor,
        store=ResultStore(store_dir),
    )
    return payload, executor, store_dir


def test_payload_shape(sweep):
    payload, _, _ = sweep
    assert payload["experiment"] == "qos-sweep"
    assert payload["levels"] == [1.0, 2.0, 4.0]
    assert payload["placements"] == ["round-robin"]
    assert set(payload["policies"]) == {"none", "token-bucket"}
    curve = payload["curve"]["round-robin"]
    for label in payload["policies"]:
        for design in payload["designs"]:
            cells = curve[label][design]
            assert [cell["level"] for cell in cells] == [1.0, 2.0, 4.0]
            for cell in cells:
                assert cell["victim_count"] > 0
                assert cell["victim_p99_ns"] > 0
                assert cell["burst_count"] > 0


def test_unprotected_victim_p99_is_monotone_in_burst_load(sweep):
    payload, _, _ = sweep
    for design in payload["designs"]:
        cells = payload["curve"]["round-robin"]["none"][design]
        p99s = [cell["victim_p99_ns"] for cell in cells]
        assert p99s == sorted(p99s)  # non-decreasing
        assert p99s[-1] > p99s[0]  # and the overload actually bites


def test_fair_share_token_bucket_bounds_the_victim_curve(sweep):
    payload, _, _ = sweep
    for design in payload["designs"]:
        none = payload["curve"]["round-robin"]["none"][design]
        shaped = payload["curve"]["round-robin"]["token-bucket"][design]
        # At the heaviest burst the shaped victims sit well under the
        # unprotected ones; the shaped curve never reaches the
        # unprotected endpoint at any level.
        assert shaped[-1]["victim_p99_ns"] < none[-1]["victim_p99_ns"]
        ceiling = max(cell["victim_p99_ns"] for cell in shaped)
        assert ceiling < none[-1]["victim_p99_ns"]


def test_warm_rerun_simulates_nothing_and_is_byte_identical(sweep):
    payload, _, store_dir = sweep
    warm_executor = SerialExecutor()
    warm = run_qos_sweep(
        scale=SCALE,
        levels=LEVELS,
        policies=_policies(),
        designs=DESIGNS,
        placements=PLACEMENTS,
        executor=warm_executor,
        store=ResultStore(store_dir),
    )
    assert warm_executor.runs_completed == 0
    assert json.dumps(warm, sort_keys=True) == json.dumps(
        payload, sort_keys=True
    )


def test_fair_share_rate_divides_out_the_target_pressure():
    rate = fair_share_rate("performance-optimized", "hm_0", SCALE)
    assert rate > 0
    nominal = rate * SCALE.target_pressure
    spec = suggest_token_bucket(scale=SCALE)
    assert spec.startswith("token-bucket:")
    assert spec.endswith(f",{DEFAULT_BUCKET_BURST:g}")
    # Headroom scales the metered rate linearly.
    doubled = suggest_token_bucket(scale=SCALE, headroom=2.0)
    assert doubled != spec
    assert nominal == pytest.approx(rate * SCALE.target_pressure)


def test_default_policies_cover_the_four_families():
    policies = default_policies(scale=SCALE)
    assert list(policies) == ["none", "token-bucket", "wfq", "slo"]
    assert policies["none"] == ""
    assert policies["wfq"] == "wfq:1,4,4,4"  # victims outweigh tenant 0
    assert policies["slo"].startswith("slo:")


def test_isolation_specs_baseline_shares_members_across_policies():
    plan = isolation_specs(
        "performance-optimized", "hm_0", SCALE,
        {"none": "", "also-none": ""},
        levels=(1,),
        designs=("venice",),
        placements=PLACEMENTS,
    )
    fleets = list(plan.values())
    assert len(fleets) == 2
    # Identical policies at the same level are one set of member digests:
    # the executor deduplicates them into a single simulation.
    assert fleets[0].digest == fleets[1].digest


def test_sweep_validates_its_axes():
    with pytest.raises(ConfigurationError):
        run_qos_sweep(scale=SCALE, levels=(0.5,), designs=("venice",))
    with pytest.raises(ConfigurationError):
        run_qos_sweep(scale=SCALE, tenants=4, burst_tenant=7)
    with pytest.raises(ConfigurationError):
        run_qos_sweep(scale=SCALE, policies=[])
