"""Sweep amortizations: exact-mode no-ops, checkpoint identity, early-stop
accuracy, and warm-cache replay of checkpointed matrices.

These are the acceptance tests of the perf work in docs/performance.md:
the knobs must cost nothing when off (bit-identical digests and results),
and when on, a checkpointed run must be bit-identical to a cold run of
the same spec while early-stopped quantiles stay inside the documented 1%
relative bound of DESIGN.md §5.
"""

from dataclasses import replace

import pytest

from repro.experiments.executor import SerialExecutor, execute_specs
from repro.experiments.figures import _CONFLICT_DESIGNS
from repro.experiments.spec import ExperimentScale, RunSpec, make_spec
from repro.experiments.store import ResultStore
from repro.sim.checkpoint import CheckpointStore

#: Sub-saturation scale: a latency steady state exists for the early-stop
#: monitor to detect (the default overloaded scale has none, by design).
QUIET_SCALE = ExperimentScale(
    requests=600,
    requests_per_mix_constituent=200,
    blocks_per_plane=16,
    pages_per_block=16,
    target_pressure=0.05,
)
WARMUP = "fill 0.85; steps 1200"
EARLY_STOP = "window 50; tolerance 0.01; patience 2; min 200"


def _exact(design, workload="prxy_0"):
    return make_spec(design, "performance-optimized", workload, QUIET_SCALE)


class TestExactModeIsUntouched:
    def test_empty_knobs_leave_digest_and_dict_unchanged(self):
        spec = _exact("venice")
        payload = spec.to_dict()
        assert "warmup" not in payload and "early_stop" not in payload
        # A payload written before the knobs existed reloads to the same
        # digest (conditional key omission keeps old caches valid).
        assert RunSpec.from_dict(payload).digest == spec.digest

    def test_knobs_change_the_digest_when_set(self):
        spec = _exact("venice")
        assert replace(spec, warmup=WARMUP).digest != spec.digest
        assert replace(spec, early_stop=EARLY_STOP).digest != spec.digest

    def test_exact_run_reports_no_amortization(self):
        result, info = _exact("baseline", "hm_0").execute_instrumented()
        assert info["warmup_events"] == 0
        assert info["checkpoint_restored"] is False
        assert info["early_stopped"] is False
        assert info["simulated_requests"] == result.requests_completed
        assert "early_stop_converged" not in result.extra


class TestCheckpointIdentity:
    def test_cold_and_restored_runs_are_bit_identical(self):
        spec = replace(_exact("venice", "hm_0"), warmup="fill 0.4; steps 200")
        cold, cold_info = spec.execute_instrumented()
        assert cold_info["warmup_events"] > 0

        checkpoints = CheckpointStore()
        checkpoints.put(spec.checkpoint_digest, spec.compute_checkpoint()[0])
        warm, warm_info = spec.execute_instrumented(checkpoints)
        assert warm_info["checkpoint_restored"] is True
        assert warm_info["warmup_events"] == 0
        assert warm.to_dict() == cold.to_dict()

    def test_matrix_shares_one_warmup_per_design(self):
        specs = [
            replace(_exact("venice", workload), warmup="fill 0.3; steps 150")
            for workload in ("hm_0", "prxy_0", "proj_3")
        ]
        checkpoints = CheckpointStore()
        for spec in specs:
            spec.execute_instrumented(checkpoints)
        assert checkpoints.writes == 1  # one digest serves all three cells
        assert checkpoints.hits == len(specs) - 1


class TestEarlyStopAccuracy:
    @pytest.fixture(scope="class")
    def matrix(self):
        """Full-horizon and early-stopped fig9a-style cells, five fabrics.

        Both arms start from the same warmed-up checkpoint so the
        comparison isolates the early-stop error (warm-up deliberately
        changes the measured regime; that is its job, not an error).
        """
        cells = {}
        for kind in _CONFLICT_DESIGNS:
            full = replace(_exact(kind), warmup=WARMUP)
            fast = replace(full, early_stop=EARLY_STOP)
            checkpoints = CheckpointStore()
            full_result, _ = full.execute_instrumented(checkpoints)
            fast_result, fast_info = fast.execute_instrumented(checkpoints)
            cells[kind.value] = (full_result, fast_result, fast_info)
        return cells

    def test_some_cells_converge_early(self, matrix):
        stopped = [d for d, (_, _, info) in matrix.items()
                   if info["early_stopped"]]
        assert stopped, "no cell early-stopped: the recipe is dead"

    def test_quantiles_stay_inside_the_documented_bound(self, matrix):
        # The §5 bound is a *quantile* bound: p99 from the converged prefix
        # must agree with the full horizon to 1%.  The mean is an extensive
        # average over the simulated prefix and is only sanity-bounded --
        # the unsimulated tail legitimately shifts it by a few percent.
        for design, (full_result, fast_result, _) in matrix.items():
            reference = full_result.p99_latency_ns
            measured = fast_result.p99_latency_ns
            error = abs(measured - reference) / reference
            assert error <= 0.0101, (
                f"{design} p99: {measured} vs {reference} "
                f"({error:.2%} > 1%)"
            )
            mean_error = abs(
                fast_result.mean_latency_ns - full_result.mean_latency_ns
            ) / full_result.mean_latency_ns
            assert mean_error <= 0.10, f"{design} mean off by {mean_error:.2%}"

    def test_requests_report_the_full_horizon(self, matrix):
        for design, (_, fast_result, info) in matrix.items():
            assert fast_result.requests_completed == QUIET_SCALE.requests
            if info["early_stopped"]:
                assert info["simulated_requests"] < QUIET_SCALE.requests


class TestWarmStoreReplay:
    def test_checkpointed_matrix_replays_without_simulating(self, tmp_path):
        specs = [
            replace(_exact(kind, "hm_0"), warmup="fill 0.3; steps 150",
                    early_stop=EARLY_STOP)
            for kind in _CONFLICT_DESIGNS[:2]
        ]
        store = ResultStore(tmp_path)
        cold_executor = SerialExecutor()
        cold = execute_specs(specs, executor=cold_executor, store=store)
        assert cold_executor.runs_completed == len(specs)
        assert (tmp_path / "checkpoints").is_dir()

        warm_store = ResultStore(tmp_path)
        warm_executor = SerialExecutor()
        warm = execute_specs(specs, executor=warm_executor, store=warm_store)
        assert warm_executor.runs_completed == 0  # zero simulations
        assert warm_store.hits == len(specs)
        assert {s: r.to_dict() for s, r in warm.items()} == (
            {s: r.to_dict() for s, r in cold.items()}
        )

    def test_store_stats_sees_results_and_checkpoints(self, tmp_path):
        spec = replace(_exact("venice", "hm_0"), warmup="fill 0.2; steps 100")
        store = ResultStore(tmp_path)
        execute_specs([spec], store=store)
        stats = store.stats()
        assert stats["entries"] == 1
        assert stats["checkpoints"] == 1
        assert stats["bytes"] > 0 and stats["checkpoint_bytes"] > 0
        assert stats["writes"] == 1
