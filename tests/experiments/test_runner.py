"""Runner machinery tests: pressure metric, acceleration, suites."""

import pytest

from repro.config.ssd_config import DesignKind
from repro.experiments.runner import (
    ALL_DESIGNS,
    ExperimentScale,
    accelerate_to_pressure,
    build_config,
    channel_pressure,
    footprint_for,
    run_design_suite,
    run_suite,
    trace_for,
)
from repro.workloads.catalog import generate_workload

SCALE = ExperimentScale(requests=120, blocks_per_plane=8, pages_per_block=8)


def test_build_config_applies_scale():
    config = build_config("performance-optimized", SCALE)
    assert config.geometry.blocks_per_plane == 8
    assert config.geometry.pages_per_block == 8
    assert config.geometry.total_chips == 64  # geometry never scaled


def test_channel_pressure_definition():
    config = build_config("performance-optimized", SCALE)
    trace = generate_workload(
        "hm_0", count=500, footprint_bytes=footprint_for(config, SCALE)
    )
    pressure = channel_pressure(trace, config)
    page = config.geometry.page_size
    per_page = config.interconnect.channel_transfer_ns(page)
    pages = sum((r.size_bytes + page - 1) // page for r in trace.requests)
    expected = pages * per_page / (trace.duration_ns * 8)
    assert pressure == pytest.approx(expected)


def test_acceleration_reaches_target():
    config = build_config("performance-optimized", SCALE)
    trace = generate_workload(
        "hm_0", count=500, footprint_bytes=footprint_for(config, SCALE)
    )
    accelerated = accelerate_to_pressure(trace, config, target=1.5, max_acceleration=256)
    assert channel_pressure(accelerated, config) == pytest.approx(1.5, rel=0.02)


def test_acceleration_never_stretches():
    config = build_config("performance-optimized", SCALE)
    trace = generate_workload(
        "ssd-10", count=400, footprint_bytes=footprint_for(config, SCALE)
    )
    before = channel_pressure(trace, config)
    accelerated = accelerate_to_pressure(
        trace, config, target=before / 10, max_acceleration=256
    )
    assert accelerated is trace  # already above target: unchanged


def test_acceleration_cap_respected():
    config = build_config("performance-optimized", SCALE)
    trace = generate_workload(
        "LUN3", count=300, footprint_bytes=footprint_for(config, SCALE)
    )
    accelerated = accelerate_to_pressure(trace, config, target=1.6, max_acceleration=4)
    assert channel_pressure(accelerated, config) <= channel_pressure(
        trace, config
    ) * 4 * 1.01


def test_trace_for_mix_uses_table3_constituents():
    config = build_config("performance-optimized", SCALE)
    trace = trace_for("mix1", config, SCALE, mix=True)
    assert {r.queue_id for r in trace.requests} == {0, 1}


def test_run_design_suite_skips_pnssd_on_rectangular_arrays():
    config = build_config("performance-optimized", SCALE).with_geometry(4, 16)
    trace = trace_for("proj_3", config, SCALE)
    results = run_design_suite(config, trace, SCALE, ALL_DESIGNS)
    assert "pnssd" not in results
    assert "venice" in results
    assert "baseline" in results


def test_benchmark_and_paper_scales_differ():
    assert ExperimentScale.benchmark().requests < ExperimentScale.paper().requests


def test_run_suite_matches_materialized_design_suite():
    """The declarative (spec-based) path reproduces the materialized path."""
    config = build_config("performance-optimized", SCALE)
    trace = trace_for("proj_3", config, SCALE)
    materialized = run_design_suite(config, trace, SCALE, ALL_DESIGNS)
    declarative = run_suite("performance-optimized", "proj_3", SCALE)
    assert declarative == materialized
