"""Experiment harness shape tests (small scale, fast).

These assert the *shape* properties DESIGN.md targets: orderings and
qualitative relations per figure, not absolute numbers.  They use a tiny
scale so the whole module stays fast; the benchmarks run the same functions
at larger scale.
"""

import pytest

from repro.experiments.figures import (
    fig4_motivation,
    fig9_speedup,
    fig10_throughput,
    fig11_tail_latency,
    fig12_mixed,
    fig13_conflicts,
    fig14_power_energy,
    fig15_sensitivity,
    table4_overheads,
)
from repro.experiments.reporting import format_table, geometric_mean, speedup_table
from repro.experiments.runner import ExperimentScale

TINY = ExperimentScale(
    requests=150,
    requests_per_mix_constituent=60,
    blocks_per_plane=8,
    pages_per_block=8,
)
WORKLOADS = ("proj_3", "YCSB_B")


@pytest.fixture(scope="module")
def fig9a():
    return fig9_speedup("performance-optimized", TINY, WORKLOADS)


def test_fig4_ideal_dominates_priors():
    result = fig4_motivation(TINY, WORKLOADS)
    gmean = result["gmean"]
    assert gmean["ideal"] >= gmean["pssd"]
    assert gmean["ideal"] >= gmean["pnssd"]
    assert gmean["ideal"] >= gmean["nossd"]
    assert gmean["ideal"] > 1.2  # a large gap remains (the paper's point)


def test_fig9a_venice_beats_baseline_and_sits_below_ideal(fig9a):
    gmean = fig9a["gmean"]
    assert gmean["venice"] > 1.2
    assert gmean["venice"] <= gmean["ideal"]


def test_fig9a_contains_all_designs_per_workload(fig9a):
    for workload, values in fig9a["speedups"].items():
        assert set(values) == {"pssd", "pnssd", "nossd", "venice", "ideal"}


def test_fig10_normalized_throughput_at_most_one():
    result = fig10_throughput("performance-optimized", TINY, WORKLOADS)
    for values in result["normalized_throughput"].values():
        for design, normalized in values.items():
            assert 0 < normalized <= 1.02, (design, normalized)
    assert result["average"]["venice"] >= result["average"]["baseline"]


def test_fig11_venice_cuts_tail_latency():
    result = fig11_tail_latency(TINY, workloads=("proj_3",))
    reduction = result["reduction_vs_baseline"]["proj_3"]
    assert reduction["venice"] > 0  # lower p99 than baseline
    assert result["p99_ns"]["proj_3"]["ideal"] <= result["p99_ns"]["proj_3"]["baseline"]
    cdf = result["tail_cdfs"]["proj_3"]["venice"]
    assert cdf[0][1] == pytest.approx(0.99)


def test_fig12_mixes_run_and_venice_gains(tmp_path):
    result = fig12_mixed(TINY, mixes=("mix1",))
    assert result["gmean"]["venice"] > 1.0
    assert result["gmean"]["ideal"] >= result["gmean"]["venice"] * 0.9


def test_fig13_venice_conflicts_far_below_priors():
    result = fig13_conflicts(TINY, WORKLOADS)
    average = result["average"]
    assert average["venice"] < average["baseline"]
    assert average["venice"] < average["pssd"]
    assert average["venice"] < average["nossd"]
    assert average["baseline"] > 0.2  # baseline suffers heavily under load


def test_fig14_energy_tracks_execution_time():
    result = fig14_power_energy(TINY, WORKLOADS)
    # Venice finishes faster at similar power => lower energy than baseline.
    assert result["average_energy"]["venice"] < 1.0
    # Power stays within a small band of the baseline (flash ops dominate).
    assert 0.7 < result["average_power"]["venice"] < 1.3


def test_fig15_all_geometries_report():
    result = fig15_sensitivity(
        TINY, workloads=("proj_3",), geometries=((4, 16), (8, 8))
    )
    assert set(result["gmean_speedups"]) == {"4x16", "8x8"}
    for geometry, gmeans in result["gmean_speedups"].items():
        assert "venice" in gmeans
        assert "pnssd" not in gmeans or geometry == "8x8"


def test_table4_reproduces_paper_arithmetic():
    result = table4_overheads(TINY)
    assert result["router_power_mw"] == pytest.approx(0.241)
    assert result["link_power_mw_4kb_transfer"] == pytest.approx(1.08)
    assert result["link_vs_channel_power_saving"] == pytest.approx(0.9, abs=0.01)
    assert result["link_area_saving_fraction"] == pytest.approx(0.44, abs=0.001)
    assert result["links_total"] == 112.0


# --------------------------------------------------------------------- #
# reporting helpers
# --------------------------------------------------------------------- #


def test_geometric_mean():
    assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
    with pytest.raises(Exception):
        geometric_mean([])


def test_format_table_renders():
    text = format_table(["a", "b"], [["x", 1.5], ["y", 2.0]], title="t")
    assert "t" in text
    assert "x" in text
    assert "1.5" in text


def test_speedup_table_includes_gmean_row():
    table = speedup_table(
        {"w1": {"venice": 2.0}, "w2": {"venice": 8.0}}, ["venice"]
    )
    assert "GMEAN" in table
    assert "4" in table
