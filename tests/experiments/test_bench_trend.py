"""tools/bench_trend.py: the perf-trajectory append step."""

import json
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(REPO / "tools"))

import bench_trend  # noqa: E402  (tools/ is not a package)

CORE = {
    "mode": "full",
    "engine": {"events_per_sec": 2_000_000.0},
    "requests_per_sec": 1234.5,
    "end_to_end": {
        "baseline": {"requests_per_sec": 400.0},
        "venice": {"requests_per_sec": 834.5},
    },
    "peak_rss_kb": 90000,
}


def _write_core(tmp_path):
    core = tmp_path / "BENCH_core.json"
    core.write_text(json.dumps(CORE))
    return core


def test_append_starts_a_fresh_trajectory(tmp_path):
    core = _write_core(tmp_path)
    trend_path = tmp_path / "BENCH_trend.json"
    trend = bench_trend.append(core, trend_path, sha="abc123",
                               date="2026-07-31T00:00:00Z")
    assert len(trend["entries"]) == 1
    entry = trend["entries"][0]
    assert entry["sha"] == "abc123"
    assert entry["date"] == "2026-07-31T00:00:00Z"
    assert entry["events_per_sec"] == 2_000_000.0
    assert entry["per_design_requests_per_sec"]["venice"] == 834.5
    # and the file round-trips
    assert json.loads(trend_path.read_text()) == trend


def test_append_accumulates_history(tmp_path):
    core = _write_core(tmp_path)
    trend_path = tmp_path / "BENCH_trend.json"
    for day in (1, 2, 3):
        bench_trend.append(core, trend_path, sha=f"sha{day}",
                           date=f"2026-07-0{day}T03:23:00Z")
    trend = json.loads(trend_path.read_text())
    assert [entry["sha"] for entry in trend["entries"]] == [
        "sha1", "sha2", "sha3",
    ]
    assert trend["schema"] == bench_trend.SCHEMA_VERSION


def test_append_defaults_to_a_utc_timestamp(tmp_path):
    core = _write_core(tmp_path)
    trend = bench_trend.append(core, tmp_path / "t.json", sha="s")
    assert trend["entries"][0]["date"].endswith("Z")
    assert trend["entries"][0]["quick"] is False


def test_quick_mode_is_flagged_in_the_entry(tmp_path):
    core = tmp_path / "quick.json"
    core.write_text(json.dumps({**CORE, "mode": "quick"}))
    trend = bench_trend.append(core, tmp_path / "t.json", sha="s")
    assert trend["entries"][0]["quick"] is True


def test_corrupt_trend_file_fails_loudly(tmp_path):
    core = _write_core(tmp_path)
    trend_path = tmp_path / "BENCH_trend.json"
    trend_path.write_text(json.dumps({"something": "else"}))
    with pytest.raises(ValueError):
        bench_trend.append(core, trend_path)


def test_unparseable_trend_file_bootstraps_fresh(tmp_path, capsys):
    core = _write_core(tmp_path)
    trend_path = tmp_path / "BENCH_trend.json"
    trend_path.write_text("{torn artifact downl")
    trend = bench_trend.append(core, trend_path, sha="s",
                               date="2026-08-01T00:00:00Z")
    assert len(trend["entries"]) == 1
    assert "unparseable" in capsys.readouterr().err
    # the rewritten file is a valid trajectory again
    assert json.loads(trend_path.read_text())["schema"] == (
        bench_trend.SCHEMA_VERSION
    )


def test_malformed_entries_are_skipped_with_a_warning(tmp_path, capsys):
    core = _write_core(tmp_path)
    trend_path = tmp_path / "BENCH_trend.json"
    good = bench_trend.distill(CORE, sha="good", date="2026-07-30T00:00:00Z")
    trend_path.write_text(json.dumps({
        "schema": bench_trend.SCHEMA_VERSION,
        "entries": [good, "not-a-dict", {"date": "no metrics"}],
    }))
    trend = bench_trend.append(core, trend_path, sha="new",
                               date="2026-08-01T00:00:00Z")
    assert [entry["sha"] for entry in trend["entries"]] == ["good", "new"]
    err = capsys.readouterr().err
    assert "entry 1 is malformed" in err and "entry 2 is malformed" in err


def test_load_trend_rejects_non_list_entries(tmp_path):
    trend_path = tmp_path / "BENCH_trend.json"
    trend_path.write_text(json.dumps({
        "schema": bench_trend.SCHEMA_VERSION, "entries": {"oops": 1},
    }))
    with pytest.raises(ValueError):
        bench_trend.load_trend(trend_path)


def test_cli_entry_point(tmp_path, capsys):
    core = _write_core(tmp_path)
    trend_path = tmp_path / "BENCH_trend.json"
    code = bench_trend.main([
        "--core", str(core), "--trend", str(trend_path),
        "--sha", "deadbeefcafe", "--date", "2026-07-31T03:23:00Z",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "appended entry 1" in out and "deadbeefcafe"[:12] in out
    assert json.loads(trend_path.read_text())["entries"][0]["sha"] == (
        "deadbeefcafe"
    )
