"""Figure 3 motivating-example tests: analytic and simulated."""

import pytest

from repro.config.presets import performance_optimized
from repro.experiments.motivation import (
    TimelineExample,
    service_timeline_example,
    simulate_two_reads,
)


def test_paper_numbers_11_01_vs_7_01_us():
    example = service_timeline_example()
    assert example.same_channel_total_ns == 11_010
    assert example.different_channel_total_ns == 7_010


def test_latency_increase_is_57_percent():
    example = service_timeline_example()
    assert example.latency_increase_fraction == pytest.approx(0.57, abs=0.005)


def test_custom_latencies():
    example = TimelineExample(cmd_ns=20, read_ns=1_000, transfer_ns=2_000)
    assert example.same_channel_total_ns == 5_020
    assert example.different_channel_total_ns == 3_020


def test_simulated_same_channel_matches_analytic_shape():
    config = performance_optimized(blocks_per_plane=4, pages_per_block=4)
    transfer = config.interconnect.channel_transfer_ns(config.geometry.page_size)
    cmd = config.timings.command_ns
    read = config.timings.read_ns
    first, second = simulate_two_reads(config, same_channel=True)
    # Last completion == CMD + RD + 2x transfer (+ CMD of second request).
    expected = cmd + read + 2 * transfer + cmd
    assert max(first, second) == pytest.approx(expected, abs=30)


def test_simulated_different_channels_fully_overlap():
    config = performance_optimized(blocks_per_plane=4, pages_per_block=4)
    transfer = config.interconnect.channel_transfer_ns(config.geometry.page_size)
    first, second = simulate_two_reads(config, same_channel=False)
    expected = config.timings.command_ns + config.timings.read_ns + transfer
    assert max(first, second) == pytest.approx(expected, abs=30)


def test_conflict_penalty_simulated():
    config = performance_optimized(blocks_per_plane=4, pages_per_block=4)
    same = max(simulate_two_reads(config, same_channel=True))
    different = max(simulate_two_reads(config, same_channel=False))
    # The same-channel case pays one extra transfer (~53% here since the
    # simulated transfer is 3.41 us, not the paper's rounded 4 us).
    assert same / different == pytest.approx(1.53, abs=0.03)
