"""Store backend tests: layouts, detection, quarantine, concurrent writers."""

import json
import os
import sqlite3
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.errors import ConfigurationError, SimulationError
from repro.experiments import store as store_module
from repro.experiments.spec import ExperimentScale, make_spec
from repro.experiments.store import (
    BACKEND_NAMES,
    ResultStore,
    detect_backend,
)
from test_store import SCALE, sample_result

WORKLOADS = ("hm_0", "proj_3", "YCSB_B")


def make_specs(count=3):
    return [
        make_spec("venice", "performance-optimized", WORKLOADS[i % 3],
                  ExperimentScale(requests=60 + i, blocks_per_plane=8,
                                  pages_per_block=8))
        for i in range(count)
    ]


def corrupt_entry(store, spec):
    """Tamper an entry so its content no longer matches its digest key."""
    text = store.backend.read(spec.digest)
    payload = json.loads(text)
    payload["spec"]["workload"] = "proj_3" if (
        payload["spec"]["workload"] != "proj_3") else "hm_0"
    store.backend.write(spec.digest, json.dumps(payload))
    store._memory.clear()


@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_round_trip_through_each_backend(tmp_path, backend):
    spec = make_spec("venice", "performance-optimized", "hm_0", SCALE)
    original = sample_result()
    ResultStore(tmp_path, backend=backend).put(spec, original)
    # A brand-new *auto* store must detect the layout and read it back.
    reopened = ResultStore(tmp_path)
    assert reopened.backend_name == backend
    assert reopened.get(spec) == original
    assert len(reopened) == 1
    assert spec in reopened
    stats = reopened.stats()
    assert stats["backend"] == backend
    assert stats["entries"] == 1
    assert stats["quarantined"] == 0


@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_detect_backend_recognises_each_layout(tmp_path, backend):
    assert detect_backend(tmp_path) == "flat"  # empty dir: the default
    ResultStore(tmp_path, backend=backend)
    assert detect_backend(tmp_path) == backend


def test_unknown_backend_is_rejected(tmp_path):
    with pytest.raises(ConfigurationError, match="unknown store backend"):
        ResultStore(tmp_path, backend="mongodb")


def test_layout_mismatch_on_populated_store_is_refused(tmp_path):
    spec = make_spec("venice", "performance-optimized", "hm_0", SCALE)
    ResultStore(tmp_path, backend="sharded").put(spec, sample_result())
    with pytest.raises(ConfigurationError, match="already uses"):
        ResultStore(tmp_path, backend="flat")
    # auto keeps working, and the matching explicit name keeps working.
    assert ResultStore(tmp_path).get(spec) is not None
    assert ResultStore(tmp_path, backend="sharded").get(spec) is not None


def test_sharded_layout_fans_entries_out_by_digest_prefix(tmp_path):
    store = ResultStore(tmp_path, backend="sharded")
    spec = make_spec("venice", "performance-optimized", "hm_0", SCALE)
    path = store.put(spec, sample_result())
    assert path.parent.name == spec.digest[:2]
    assert path.parent.parent.name == "objects"


@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_verify_reports_and_repair_quarantines(tmp_path, backend):
    store = ResultStore(tmp_path, backend=backend)
    specs = make_specs(3)
    for spec in specs:
        store.put(spec, sample_result())
    corrupt_entry(store, specs[1])

    # verify without repair: reported, nothing moved, entry still corrupt.
    report = ResultStore(tmp_path, backend=backend).verify()
    assert report["checked"] == 3
    assert report["ok"] == 2
    assert report["quarantined"] == 0
    assert [c["digest"] for c in report["corrupt"]] == [specs[1].digest]

    # verify --repair: the corrupt entry is quarantined, never served again.
    repairing = ResultStore(tmp_path, backend=backend)
    report = repairing.verify(repair=True)
    assert report["quarantined"] == 1
    assert repairing.get(specs[1]) is None  # a clean miss now
    assert repairing.get(specs[0]) == sample_result()  # healthy survivors
    assert repairing.stats()["quarantined"] == 1

    # Re-putting the digest heals the store entirely.
    repairing.put(specs[1], sample_result())
    clean = ResultStore(tmp_path, backend=backend).verify()
    assert clean["ok"] == 3 and not clean["corrupt"]


@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_gc_purges_quarantine_and_stale_temp_files(tmp_path, backend):
    store = ResultStore(tmp_path, backend=backend)
    specs = make_specs(2)
    for spec in specs:
        store.put(spec, sample_result())
    corrupt_entry(store, specs[0])
    store.verify(repair=True)
    # A stale write-then-rename leftover from a SIGKILLed writer...
    stale = tmp_path / "deadbeef.json.12345.tmp"
    stale.write_text("{}")
    os.utime(stale, (1, 1))
    # ...and a fresh one that may belong to a live writer mid-rename.
    fresh = tmp_path / "cafef00d.json.6789.tmp"
    fresh.write_text("{}")

    report = store.gc()
    assert report["backend"] == backend
    assert report["reclaimed_bytes"] > 0
    assert report["temp_files_removed"] == 1
    assert not stale.exists() and fresh.exists()
    assert store.stats()["quarantined"] == 0
    assert store.get(specs[1]) is not None  # healthy entries untouched


@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_compact_preserves_content(tmp_path, backend):
    store = ResultStore(tmp_path, backend=backend)
    specs = make_specs(3)
    for spec in specs:
        store.put(spec, sample_result())
    before = store.backend.bytes_used()
    report = store.compact()
    assert report["backend"] == backend
    assert report["saved_bytes"] >= 0
    reopened = ResultStore(tmp_path, backend=backend)
    assert len(reopened) == 3
    for spec in specs:
        assert reopened.get(spec) == sample_result()
    if backend in ("flat", "sharded"):
        assert reopened.backend.bytes_used() < before  # minified JSON


_WRITER_SCRIPT = """
import sys
from repro.experiments.spec import ExperimentScale, make_spec
from repro.experiments.store import ResultStore
from test_store import sample_result

directory, start, count = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
store = ResultStore(directory, backend="sqlite")
for i in range(start, start + count):
    spec = make_spec(
        "venice", "performance-optimized", "hm_0",
        ExperimentScale(requests=60 + i, blocks_per_plane=8,
                        pages_per_block=8),
    )
    store.put(spec, sample_result())
store.backend.close()
"""


def test_sqlite_concurrent_writers_lose_nothing(tmp_path):
    """Two processes hammer one SQLite store; no lost or torn entries."""
    ResultStore(tmp_path, backend="sqlite")  # create the database up front
    env = dict(os.environ)
    src = Path(repro.__file__).resolve().parents[1]
    here = Path(__file__).resolve().parent
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src), str(here)]  # repro package + this test dir's helpers
    )
    # Overlapping ranges [0,25) and [5,30): twenty digests are written by
    # *both* processes (identical content, last writer wins), the rest by
    # exactly one each.
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", _WRITER_SCRIPT, str(tmp_path),
             str(start), "25"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        )
        for start in (0, 5)
    ]
    for proc in procs:
        _, stderr = proc.communicate(timeout=120)
        assert proc.returncode == 0, stderr.decode()

    store = ResultStore(tmp_path)
    assert store.backend_name == "sqlite"
    assert len(store) == 30  # union of [0,25) and [5,30): nothing lost
    report = store.verify()
    assert report["ok"] == 30 and not report["corrupt"]  # nothing torn


def test_delete_and_compact_clean_up_emptied_shards(tmp_path):
    store = ResultStore(tmp_path, backend="sharded")
    spec = make_spec("venice", "performance-optimized", "hm_0", SCALE)
    store.put(spec, sample_result())
    shard = tmp_path / "objects" / spec.digest[:2]
    assert shard.is_dir()
    store.backend.delete(spec.digest)
    store.backend.delete(spec.digest)  # deleting an absent entry is a no-op
    assert store.backend.bytes_used() == 0
    store.compact()
    assert not shard.exists()  # the emptied shard directory is removed


def test_quarantining_an_absent_digest_is_a_noop(tmp_path):
    backend = ResultStore(tmp_path).backend
    backend.quarantine("feedface" * 8)
    assert backend.quarantined() == []


def test_compact_leaves_unparseable_entries_for_verify(tmp_path):
    store = ResultStore(tmp_path)
    spec = make_spec("venice", "performance-optimized", "hm_0", SCALE)
    store.put(spec, sample_result())
    store.backend.write("deadbeef" * 8, "this is not json")
    store.compact()  # must not crash on, or rewrite, the garbage entry
    assert store.backend.read("deadbeef" * 8) == "this is not json"
    report = store.verify()
    assert [c["digest"] for c in report["corrupt"]] == ["deadbeef" * 8]


class _LockedConn:
    """A connection stand-in that always reports write-lock contention."""

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def execute(self, *args):
        raise sqlite3.OperationalError("database is locked")


def test_sqlite_writes_retry_past_transient_locks(tmp_path, monkeypatch):
    store = ResultStore(tmp_path, backend="sqlite")
    backend = store.backend
    real = type(backend)._connection
    contention = {"left": 2}

    def flaky(self):
        if contention["left"] > 0:
            contention["left"] -= 1
            return _LockedConn()
        return real(self)

    monkeypatch.setattr(type(backend), "_connection", flaky)
    spec = make_spec("venice", "performance-optimized", "hm_0", SCALE)
    store.put(spec, sample_result())  # succeeds on the third attempt
    assert contention["left"] == 0
    assert ResultStore(tmp_path).get(spec) == sample_result()


def test_sqlite_write_gives_up_after_bounded_retries(tmp_path, monkeypatch):
    store = ResultStore(tmp_path, backend="sqlite")
    backend = store.backend
    monkeypatch.setattr(type(backend), "_connection", lambda self: _LockedConn())
    monkeypatch.setattr(store_module.time, "sleep", lambda seconds: None)
    spec = make_spec("venice", "performance-optimized", "hm_0", SCALE)
    with pytest.raises(SimulationError, match="stayed locked"):
        store.put(spec, sample_result())


def test_sqlite_reraises_non_contention_errors_immediately(
    tmp_path, monkeypatch
):
    store = ResultStore(tmp_path, backend="sqlite")

    class Broken(_LockedConn):
        def execute(self, *args):
            raise sqlite3.OperationalError("no such table: entries")

    monkeypatch.setattr(
        type(store.backend), "_connection", lambda self: Broken()
    )
    spec = make_spec("venice", "performance-optimized", "hm_0", SCALE)
    with pytest.raises(sqlite3.OperationalError, match="no such table"):
        store.put(spec, sample_result())


def test_sqlite_quarantine_survives_reopen(tmp_path):
    store = ResultStore(tmp_path, backend="sqlite")
    spec = make_spec("venice", "performance-optimized", "hm_0", SCALE)
    store.put(spec, sample_result())
    corrupt_entry(store, spec)
    store.verify(repair=True)
    store.backend.close()
    # The quarantined row is still present on disk for post-mortems...
    with sqlite3.connect(tmp_path / "store.sqlite3") as conn:
        rows = conn.execute(
            "SELECT quarantined FROM entries").fetchall()
    assert rows == [(1,)]
    # ...but a fresh store instance never serves it.
    assert ResultStore(tmp_path).get(spec) is None
