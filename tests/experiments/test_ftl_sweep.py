"""Sustained-write sweep: curves, knob plumbing, and the no-op guarantee."""

import hashlib
import json

import pytest

from repro.config.ssd_config import DesignKind
from repro.errors import ConfigurationError
from repro.experiments.executor import SerialExecutor, execute_specs
from repro.experiments.ftl import (
    DEFAULT_FILL_LEVELS,
    DEFAULT_OP_LEVELS,
    run_ftl_sweep,
    sustained_scale,
    wa_op_specs,
    write_cliff_specs,
)
from repro.experiments.spec import ExperimentScale, make_spec, matrix_specs
from repro.experiments.store import ResultStore
from repro.sim.checkpoint import CheckpointStore

SCALE = ExperimentScale(
    requests=80,
    requests_per_mix_constituent=40,
    blocks_per_plane=16,
    pages_per_block=16,
)

SWEEP_DESIGNS = (DesignKind.BASELINE, DesignKind.VENICE)
SWEEP_FILLS = (0.7, 0.85)
SWEEP_OPS = (0.07, 0.35)


@pytest.fixture(scope="module")
def sweep(tmp_path_factory):
    """One cold sweep, shared by the curve assertions below."""
    store_dir = tmp_path_factory.mktemp("ftl-sweep") / "store"
    executor = SerialExecutor()
    payload = run_ftl_sweep(
        designs=SWEEP_DESIGNS,
        fill_levels=SWEEP_FILLS,
        op_levels=SWEEP_OPS,
        executor=executor,
        store=ResultStore(store_dir),
    )
    return payload, executor, store_dir


# --------------------------------------------------------------------- #
# the curves
# --------------------------------------------------------------------- #


def test_write_cliff_throughput_drop_coincides_with_gc_stalls(sweep):
    payload, _, _ = sweep
    for design in payload["designs"]:
        shoulder, cliff = payload["write_cliff"][design]
        assert shoulder["fill"] < cliff["fill"]
        assert cliff["gc_stall_ns"] > shoulder["gc_stall_ns"]
        assert cliff["gc_write_stalls"] > 0
        assert cliff["iops"] < shoulder["iops"]
        assert cliff["write_amplification"] > shoulder["write_amplification"]


def test_write_amplification_decreases_with_over_provisioning(sweep):
    payload, _, _ = sweep
    for design in payload["designs"]:
        curve = payload["wa_op"][design]
        was = [cell["write_amplification"] for cell in curve]
        assert all(wa >= 1.0 for wa in was)
        assert was == sorted(was, reverse=True)  # monotone decreasing
        assert was[0] > was[-1]  # and strictly, across the full range
        # With ample spare area GC never has to run mid-measurement.
        assert curve[-1]["gc_stall_ns"] == 0.0


def test_gc_faults_cells_have_histogram_tails(sweep):
    payload, _, _ = sweep
    for design in payload["designs"]:
        cell = payload["gc_faults"][design]
        assert cell["clean"]["p999_latency_ns"] > 0
        assert cell["faulted"]["p999_latency_ns"] > 0
        assert cell["p999_ratio"] > 0
    assert payload["faulted_links"] == 1
    assert len(payload["links"]) == 1


def test_sweep_shares_warmup_checkpoints_across_cells(sweep):
    payload, executor, _ = sweep
    counters = payload["checkpoints"]
    # 5 warm-up recipes per design (2 cliff fills, 2 OP levels, 1 GC cell
    # recipe shared by its clean and faulted variants), each restored by
    # at least 2 cells somewhere in the matrix.
    designs = len(payload["designs"])
    assert counters["writes"] == 5 * designs
    # Every cell restores a checkpoint: 6 cells per design (2 cliff fills,
    # 2 OP levels, clean + faulted GC cells).
    assert counters["hits"] == 6 * designs
    assert counters["hits"] >= 2 * designs
    assert executor.runs_completed == 6 * designs


def test_warm_rerun_simulates_nothing(sweep):
    payload, _, store_dir = sweep
    warm_executor = SerialExecutor()
    second = run_ftl_sweep(
        designs=SWEEP_DESIGNS,
        fill_levels=SWEEP_FILLS,
        op_levels=SWEEP_OPS,
        executor=warm_executor,
        store=ResultStore(store_dir),
    )
    assert warm_executor.runs_completed == 0
    first_curves = {k: payload[k] for k in ("write_cliff", "wa_op", "gc_faults")}
    second_curves = {k: second[k] for k in ("write_cliff", "wa_op", "gc_faults")}
    assert first_curves == second_curves


# --------------------------------------------------------------------- #
# spec plumbing for the new knobs
# --------------------------------------------------------------------- #


def test_plan_builders_dedupe_and_share_warmups():
    cliff = write_cliff_specs(
        "performance-optimized", "prxy_0", SCALE, (0.5, 0.5, 0.7),
        designs=SWEEP_DESIGNS,
    )
    assert sorted(cliff) == [0.5, 0.7]
    warmups = {spec.warmup for spec in cliff[0.5]}
    assert warmups == {"fill 0.5; churn 0.35"}
    wa = wa_op_specs(
        "performance-optimized", "prxy_0", SCALE, op_levels=(0.2,),
        designs=SWEEP_DESIGNS,
    )
    for spec in wa[0.2]:
        assert dict(spec.device_kwargs)["over_provisioning"] == 0.2


def test_ftl_knobs_join_the_digest_and_reach_the_device():
    plain = make_spec("venice", "performance-optimized", "hm_0", SCALE)
    knobbed = make_spec(
        "venice", "performance-optimized", "hm_0", SCALE,
        over_provisioning=0.2,
        gc_threshold_free_fraction=0.1,
        gc_stop_free_fraction=0.15,
    )
    assert knobbed.digest != plain.digest
    device = knobbed._build_device(knobbed.build_config(), with_faults=False)
    assert device.config.over_provisioning == 0.2
    assert device.config.gc_threshold_free_fraction == 0.1
    assert device.config.gc_stop_free_fraction == 0.15


def test_wear_leveling_knob_joins_the_digest_and_arms_the_leveler():
    plain = make_spec("venice", "performance-optimized", "hm_0", SCALE)
    leveled = make_spec(
        "venice", "performance-optimized", "hm_0", SCALE,
        enable_wear_leveling=True,
    )
    assert leveled.digest != plain.digest
    device = leveled._build_device(leveled.build_config(), with_faults=False)
    assert device.wear_leveler.enabled
    plain_device = plain._build_device(plain.build_config(), with_faults=False)
    assert not plain_device.wear_leveler.enabled


def test_bad_knob_values_fail_at_config_validation():
    spec = make_spec(
        "venice", "performance-optimized", "hm_0", SCALE,
        over_provisioning=0.9,
    )
    with pytest.raises(ConfigurationError):
        spec.execute()


def test_default_levels_are_sane():
    assert DEFAULT_FILL_LEVELS == tuple(sorted(DEFAULT_FILL_LEVELS))
    assert DEFAULT_OP_LEVELS == tuple(sorted(DEFAULT_OP_LEVELS))
    assert sustained_scale().blocks_per_plane == 16


# --------------------------------------------------------------------- #
# the no-op guarantee: knob-free specs and results are byte-identical
# --------------------------------------------------------------------- #

# Frozen on the pre-knob main branch; these digests cover the full
# fig-matrix spec surface and one executed result.  Any drift means a
# knob-free run no longer reproduces the repo's published numbers.
PINNED_MATRIX_DIGEST = (
    "04cd1d72f8491b18f92505896b2937c0d8750bea04c63b655bb4314f1d607067"
)
PINNED_SPEC_DIGEST = (
    "04d85fdcbfcc857180a2d0cbfe0d58b922202dcee556e02d6d0e5e52d3d63f63"
)
PINNED_RESULT_SHA = (
    "5f001576c73c39a6c52360e7363085dbf71b24087516d2a0b034ba185e42e7cd"
)
PINNED_WARM_SPEC_DIGEST = (
    "594e78789924990033ca945a1894e49ede1df579a913bbb43d1c400949920550"
)
PINNED_CHECKPOINT_DIGEST = (
    "9eebccf2d4fcfde3fd8a5af2859a08c90daa57eb5681bb36a58e91db3617ccc7"
)


def test_knob_free_spec_digests_match_pre_knob_main():
    from repro.experiments.faults import SWEEP_DESIGNS as FIVE_FABRICS

    specs = matrix_specs(
        "performance-optimized",
        ("hm_0", "prxy_0", "src1_2"),
        SCALE,
        FIVE_FABRICS,
    )
    joined = "\n".join(spec.digest for spec in specs)
    assert hashlib.sha256(joined.encode()).hexdigest() == PINNED_MATRIX_DIGEST
    venice_hm0 = make_spec("venice", "performance-optimized", "hm_0", SCALE)
    assert venice_hm0.digest == PINNED_SPEC_DIGEST


def test_knob_free_result_payload_matches_pre_knob_main():
    spec = make_spec("venice", "performance-optimized", "hm_0", SCALE)
    result = execute_specs([spec])[spec]
    payload = json.dumps(result.to_dict(), sort_keys=False)
    assert hashlib.sha256(payload.encode()).hexdigest() == PINNED_RESULT_SHA


def test_churn_free_warmup_digests_match_pre_churn_main():
    spec = make_spec(
        "venice", "performance-optimized", "hm_0", SCALE,
        warmup="fill 0.3; steps 120",
    )
    assert spec.digest == PINNED_WARM_SPEC_DIGEST
    assert spec.checkpoint_digest == PINNED_CHECKPOINT_DIGEST
