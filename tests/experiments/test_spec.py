"""RunSpec tests: digest stability, round-tripping, normalisation."""

import pytest

from repro.config.ssd_config import DesignKind
from repro.errors import ConfigurationError
from repro.experiments.spec import (
    ALL_DESIGNS,
    ExperimentScale,
    RunSpec,
    make_spec,
    matrix_specs,
)

SCALE = ExperimentScale(requests=60, blocks_per_plane=8, pages_per_block=8)


def test_equal_specs_share_a_digest():
    first = make_spec("venice", "performance-optimized", "hm_0", SCALE)
    second = make_spec("venice", "performance-optimized", "hm_0", SCALE)
    assert first == second
    assert hash(first) == hash(second)
    assert first.digest == second.digest


def test_digest_survives_dict_round_trip():
    spec = make_spec(
        DesignKind.VENICE,
        "performance-optimized",
        "mix1",
        SCALE,
        mix=True,
        with_cdf=True,
        geometry=(4, 16),
        enable_gc=False,
    )
    rebuilt = RunSpec.from_dict(spec.to_dict())
    assert rebuilt == spec
    assert rebuilt.digest == spec.digest


def test_preset_aliases_share_one_identity():
    # 'perf' and 'performance-optimized' build the same config, so they must
    # digest identically or identical runs would miss the cache.
    abbreviated = make_spec("venice", "perf", "hm_0", SCALE)
    canonical = make_spec("venice", "performance-optimized", "hm_0", SCALE)
    assert abbreviated == canonical
    assert abbreviated.digest == canonical.digest
    assert abbreviated.preset == "performance-optimized"
    with pytest.raises(ConfigurationError):
        make_spec("venice", "ultra-optimized", "hm_0", SCALE)


def test_device_kwarg_order_is_irrelevant():
    first = make_spec(
        "venice", "perf", "hm_0", SCALE, enable_gc=False, multi_plane_writes=True
    )
    second = make_spec(
        "venice", "perf", "hm_0", SCALE, multi_plane_writes=True, enable_gc=False
    )
    assert first == second
    assert first.digest == second.digest


@pytest.mark.parametrize(
    "override",
    [
        {"design": "ideal"},
        {"workload": "proj_3"},
        {"preset": "cost-optimized"},
        {"mix": True},
        {"with_cdf": True},
        {"geometry": (4, 16)},
        {"scale": ExperimentScale(requests=61, blocks_per_plane=8, pages_per_block=8)},
    ],
)
def test_any_field_change_changes_the_digest(override):
    base = dict(
        design="venice", preset="performance-optimized", workload="hm_0",
        scale=SCALE,
    )
    spec = make_spec(**base)
    changed = make_spec(**{**base, **override})
    assert changed.digest != spec.digest


def test_unknown_design_rejected_eagerly():
    with pytest.raises(ConfigurationError):
        make_spec("warp-drive", "performance-optimized", "hm_0", SCALE)


def test_non_scalar_device_kwargs_rejected():
    with pytest.raises(ConfigurationError):
        make_spec("venice", "perf", "hm_0", SCALE, cache={"not": "a scalar"})


def test_geometry_override_applies_to_config():
    spec = make_spec("venice", "performance-optimized", "hm_0", SCALE,
                     geometry=(4, 16))
    config = spec.build_config()
    assert config.geometry.channels == 4
    assert config.geometry.chips_per_channel == 16
    assert config.geometry.total_chips == 64


def test_matrix_specs_skips_pnssd_on_rectangular_arrays():
    specs = matrix_specs(
        "performance-optimized", ("hm_0",), SCALE, ALL_DESIGNS, geometry=(4, 16)
    )
    designs = {spec.design for spec in specs}
    assert "pnssd" not in designs
    assert {"baseline", "venice", "ideal"} <= designs


def test_pnssd_spec_on_rectangular_array_refuses_to_execute():
    spec = make_spec("pnssd", "performance-optimized", "hm_0", SCALE,
                     geometry=(4, 16))
    with pytest.raises(ConfigurationError):
        spec.execute()


def test_specs_deduplicate_as_dict_keys():
    specs = [
        make_spec("venice", "perf", "hm_0", SCALE),
        make_spec("venice", "perf", "hm_0", SCALE),
        make_spec("ideal", "perf", "hm_0", SCALE),
    ]
    assert len(dict.fromkeys(specs)) == 2


def test_make_spec_accepts_amortization_objects():
    from repro.sim.checkpoint import WarmupPhase
    from repro.sim.convergence import EarlyStopPolicy
    from repro.sim.faults import FaultSchedule

    scale = ExperimentScale(requests=60, blocks_per_plane=8,
                            pages_per_block=8)
    from_strings = make_spec(
        "venice", "performance-optimized", "hm_0", scale,
        faults="0 link (0,1)-(0,2) down",
        warmup="fill 0.5; steps 100",
        early_stop="window 40; tolerance 0.02; patience 2; min 80",
    )
    from_objects = make_spec(
        "venice", "performance-optimized", "hm_0", scale,
        faults=FaultSchedule.parse("0 link (0,1)-(0,2) down"),
        warmup=WarmupPhase(fill=0.5, steps=100),
        early_stop=EarlyStopPolicy(window=40, tolerance=0.02, patience=2,
                                   min_requests=80),
    )
    assert from_objects == from_strings
    assert from_objects.digest == from_strings.digest
