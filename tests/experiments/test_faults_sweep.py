"""Failure-sweep experiments: sampling, specs, caching, and the curve."""

import pytest

from repro.config.ssd_config import DesignKind
from repro.errors import ConfigurationError
from repro.experiments.executor import SerialExecutor, execute_specs
from repro.experiments.faults import (
    DEFAULT_LINK_COUNTS,
    SWEEP_DESIGNS,
    degradation_links,
    link_fault_schedule,
    run_faults_sweep,
    sweep_specs,
)
from repro.experiments.spec import ExperimentScale, make_spec
from repro.experiments.store import ResultStore
from repro.interconnect.topology import MeshTopology, edge_key

SCALE = ExperimentScale(
    requests=48,
    requests_per_mix_constituent=24,
    blocks_per_plane=16,
    pages_per_block=16,
)


# --------------------------------------------------------------------- #
# link sampling
# --------------------------------------------------------------------- #

def test_degradation_links_are_deterministic_and_nested():
    four = degradation_links(8, 8, 4, seed=42)
    assert four == degradation_links(8, 8, 4, seed=42)
    two = degradation_links(8, 8, 2, seed=42)
    assert four[:2] == two  # prefix nesting: the curve adds failures
    assert degradation_links(8, 8, 4, seed=43) != four


def test_degradation_links_never_partition_the_mesh():
    topology = MeshTopology(8, 8)
    links = degradation_links(8, 8, 20, seed=7)
    assert len(links) == 20 and len(set(links)) == 20
    dead = {edge_key(a, b) for a, b in links}
    start = (0, 0)
    frontier, seen = [start], {start}
    while frontier:
        node = frontier.pop()
        for _, neighbor in topology.neighbors(node):
            if neighbor not in seen and edge_key(node, neighbor) not in dead:
                seen.add(neighbor)
                frontier.append(neighbor)
    assert len(seen) == topology.node_count


def test_degradation_links_respects_the_spanning_tree_slack():
    # 2x2 mesh: 4 edges, 4 nodes -> at most 1 removable link.
    assert len(degradation_links(2, 2, 1, seed=1)) == 1
    with pytest.raises(ConfigurationError):
        degradation_links(2, 2, 2, seed=1)
    with pytest.raises(ConfigurationError):
        degradation_links(8, 8, -1, seed=1)


# --------------------------------------------------------------------- #
# spec plumbing
# --------------------------------------------------------------------- #

def test_empty_schedule_leaves_spec_digest_and_dict_unchanged():
    plain = make_spec("venice", "performance-optimized", "hm_0", SCALE)
    empty = make_spec("venice", "performance-optimized", "hm_0", SCALE, faults="")
    assert plain.digest == empty.digest
    assert "faults" not in plain.to_dict()
    faulted = make_spec(
        "venice", "performance-optimized", "hm_0", SCALE,
        faults="0 link (0,0)-(0,1) down",
    )
    assert faulted.digest != plain.digest
    assert faulted.to_dict()["faults"] == "0ns link (0,0)-(0,1) down"


def test_equivalent_schedules_share_one_digest():
    a = make_spec(
        "venice", "performance-optimized", "hm_0", SCALE,
        faults="1us link (0,1)-(0,0) down",
    )
    b = make_spec(
        "venice", "performance-optimized", "hm_0", SCALE,
        faults="1000ns link (0,0)-(0,1) down",
    )
    assert a == b and a.digest == b.digest


def test_faulted_spec_round_trips_through_dict():
    spec = make_spec(
        "nossd", "performance-optimized", "proj_3", SCALE,
        faults="0 die 1.1.0 down; 2ms ecc-burst rate=0.1 for=1ms",
    )
    from repro.experiments.spec import RunSpec

    assert RunSpec.from_dict(spec.to_dict()) == spec


def test_sweep_specs_share_the_fault_set_across_designs():
    per_count = sweep_specs("performance-optimized", "hm_0", SCALE, (0, 2))
    assert set(per_count) == {0, 2}
    for spec in per_count[0]:
        assert spec.faults == ""
    schedules = {spec.faults for spec in per_count[2]}
    assert len(schedules) == 1 and "" not in schedules
    assert {spec.design for spec in per_count[2]} == {
        design.value for design in SWEEP_DESIGNS
    }


# --------------------------------------------------------------------- #
# the sweep itself
# --------------------------------------------------------------------- #

def test_sweep_venice_survives_where_bus_and_nossd_stall():
    result = run_faults_sweep(
        workload="hm_0", scale=SCALE, link_counts=(0, 6), seed=42
    )
    curve = result["curve"]
    assert result["link_counts"] == [0, 6]
    for design in curve[0]:
        assert curve[0][design]["completed_fraction"] == 1.0
    faulted = curve[6]
    assert faulted["venice"]["completed_fraction"] == 1.0
    assert faulted["venice"]["iops"] > 0
    # The deterministic 6-link sample hits row buses and XY paths: the
    # designs without path diversity lose requests.
    assert faulted["nossd"]["completed_fraction"] < 1.0
    assert min(
        faulted[d]["completed_fraction"] for d in ("baseline", "pssd", "nossd")
    ) < 1.0


def test_sweep_is_cache_replayable(tmp_path):
    store = ResultStore(tmp_path / "store")
    executor = SerialExecutor()
    first = run_faults_sweep(
        workload="hm_0", scale=SCALE, link_counts=(0, 2),
        executor=executor, store=store,
    )
    simulated = executor.runs_completed
    assert simulated == 2 * len(SWEEP_DESIGNS)
    warm_executor = SerialExecutor()
    second = run_faults_sweep(
        workload="hm_0", scale=SCALE, link_counts=(0, 2),
        executor=warm_executor, store=ResultStore(tmp_path / "store"),
    )
    assert warm_executor.runs_completed == 0  # warm re-run: zero simulations
    assert first == second


def test_default_link_counts_start_at_zero():
    assert DEFAULT_LINK_COUNTS[0] == 0


def test_link_fault_schedule_builds_canonical_events():
    schedule = link_fault_schedule([((0, 1), (0, 0)), ((2, 2), (2, 3))], at_ns=5)
    assert len(schedule) == 2
    assert schedule.events[0].link == ((0, 0), (0, 1))
    assert all(event.time_ns == 5 for event in schedule)


# --------------------------------------------------------------------- #
# figure --faults path
# --------------------------------------------------------------------- #

def test_run_figure_applies_faults_to_every_spec(tmp_path):
    from repro.experiments import figures

    store = ResultStore(tmp_path / "store")
    pristine = figures.run_figure("fig13", SCALE, ["hm_0"], store=store)
    entries_before = len(store)
    faulted = figures.run_figure(
        "fig13", SCALE, ["hm_0"], store=store,
        faults="0 link (0,2)-(0,3) down",
    )
    # Faulted runs are distinct cache entries, one per (design, workload).
    assert len(store) == 2 * entries_before
    assert faulted["conflict_fraction"]["hm_0"] != pristine["conflict_fraction"]["hm_0"]
