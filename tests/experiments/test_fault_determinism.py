"""Determinism regression: serial vs parallel execution, faulted and not.

A faulted simulation must remain a pure function of its spec: the same spec
executed in-process and in ``--jobs 4`` worker processes produces
byte-identical ``RunResult.to_dict()`` payloads.
"""

import json

from repro.experiments.executor import ParallelExecutor, SerialExecutor, execute_specs
from repro.experiments.spec import ExperimentScale, make_spec

SCALE = ExperimentScale(
    requests=48,
    requests_per_mix_constituent=24,
    blocks_per_plane=16,
    pages_per_block=16,
)

FAULTS = (
    "0 link (0,2)-(0,3) down; 0 link (3,4)-(3,5) down; "
    "100us ecc-burst rate=0.3 for=500us; 0 die 1.2.0 down"
)


def spec_pair():
    pristine = make_spec("venice", "performance-optimized", "hm_0", SCALE)
    faulted = make_spec(
        "venice", "performance-optimized", "hm_0", SCALE, faults=FAULTS
    )
    return [pristine, faulted]


def payloads(results, specs):
    return [
        json.dumps(results[spec].to_dict(), sort_keys=True) for spec in specs
    ]


def test_faulted_and_pristine_specs_are_serial_parallel_identical():
    specs = spec_pair()
    serial = execute_specs(specs, executor=SerialExecutor())
    parallel = execute_specs(specs, executor=ParallelExecutor(jobs=4))
    assert payloads(serial, specs) == payloads(parallel, specs)


def test_faulted_execution_is_repeatable_in_process():
    specs = spec_pair()
    first = execute_specs(specs, executor=SerialExecutor())
    second = execute_specs(specs, executor=SerialExecutor())
    assert payloads(first, specs) == payloads(second, specs)


def test_degraded_designs_are_serial_parallel_identical():
    """Blocking fabrics (stalled requests) must also replay identically."""
    specs = [
        make_spec(design, "performance-optimized", "hm_0", SCALE, faults=FAULTS)
        for design in ("baseline", "nossd", "pnssd")
    ]
    serial = execute_specs(specs, executor=SerialExecutor())
    parallel = execute_specs(specs, executor=ParallelExecutor(jobs=4))
    assert payloads(serial, specs) == payloads(parallel, specs)
    # The fault set actually bites: at least one design stalled requests.
    assert any(
        serial[spec].extra["requests_stalled"] > 0 for spec in specs
    )
