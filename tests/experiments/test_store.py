"""Result store tests: JSON round-trips, counters, integrity checking."""

import json

import pytest

from repro.errors import SimulationError
from repro.experiments.spec import ExperimentScale, make_spec
from repro.experiments.store import ResultStore
from repro.metrics.collector import RunResult

SCALE = ExperimentScale(requests=60, blocks_per_plane=8, pages_per_block=8)


def sample_result() -> RunResult:
    return RunResult(
        design="venice",
        config_name="performance-optimized",
        workload="hm_0",
        requests_completed=60,
        execution_time_ns=123_456,
        iops=486_000.25,
        mean_latency_ns=10_500.5,
        p99_latency_ns=99_000.125,
        conflict_fraction=0.25,
        read_fraction=0.6,
        energy_mj=1.5,
        average_power_mw=820.75,
        latency_cdf=[(1000.0, 0.5), (2000.0, 0.99)],
        tail_cdf=[(0.99, 2000.0), (0.999, 3000.0)],
        extra={"fabric_transfers": 120.0, "gc_blocks_reclaimed": 3.0},
    )


def test_round_trip_through_fresh_store_instance(tmp_path):
    spec = make_spec("venice", "performance-optimized", "hm_0", SCALE)
    original = sample_result()
    ResultStore(tmp_path).put(spec, original)
    # A brand-new store instance must rebuild the result purely from JSON.
    restored = ResultStore(tmp_path).get(spec)
    assert restored == original
    assert restored.latency_cdf == [(1000.0, 0.5), (2000.0, 0.99)]
    assert restored.tail_cdf == [(0.99, 2000.0), (0.999, 3000.0)]
    assert restored.extra == {"fabric_transfers": 120.0, "gc_blocks_reclaimed": 3.0}


def test_run_result_dict_round_trip_is_lossless():
    original = sample_result()
    rebuilt = RunResult.from_dict(json.loads(json.dumps(original.to_dict())))
    assert rebuilt == original


def test_counters_track_hits_and_misses(tmp_path):
    store = ResultStore(tmp_path)
    spec = make_spec("venice", "performance-optimized", "hm_0", SCALE)
    assert store.get(spec) is None
    assert (store.hits, store.misses) == (0, 1)
    store.put(spec, sample_result())
    assert store.writes == 1
    assert spec in store
    assert store.get(spec) is not None
    assert store.hits == 1
    assert len(store) == 1


def test_mismatched_entry_is_detected(tmp_path):
    store = ResultStore(tmp_path)
    spec = make_spec("venice", "performance-optimized", "hm_0", SCALE)
    path = store.put(spec, sample_result())
    payload = json.loads(path.read_text())
    payload["spec"]["workload"] = "proj_3"  # corrupt the entry on disk
    path.write_text(json.dumps(payload))
    with pytest.raises(SimulationError):
        ResultStore(tmp_path).get(spec)


def test_wrong_schema_entry_is_rejected(tmp_path):
    store = ResultStore(tmp_path)
    spec = make_spec("venice", "performance-optimized", "hm_0", SCALE)
    path = store.put(spec, sample_result())
    payload = json.loads(path.read_text())
    payload["schema"] = 99  # a future version's entry
    path.write_text(json.dumps(payload))
    with pytest.raises(SimulationError, match="schema"):
        ResultStore(tmp_path).get(spec)


def test_entry_missing_fields_reports_corruption(tmp_path):
    store = ResultStore(tmp_path)
    spec = make_spec("venice", "performance-optimized", "hm_0", SCALE)
    store.path_for(spec).write_text(json.dumps({"schema": 1}))
    with pytest.raises(SimulationError, match="corrupt"):
        store.get(spec)
