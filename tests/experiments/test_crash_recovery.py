"""Crash-recovery tests: SIGKILLed workers, hung specs, broken pools.

These are the teeth behind the robustness guarantees: a worker process
killed with ``kill -9`` mid-task loses its lease and the task re-executes
digest-identically elsewhere; a hung spec is killed at the ``--timeout``
wall-clock limit without stalling its batch; a spec that crashes its pool
worker is named by digest while every healthy spec still completes.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.errors import ExecutionError
from repro.experiments.executor import (
    ParallelExecutor,
    SerialExecutor,
    execute_spec,
    execute_specs,
)
from repro.experiments.queue import WorkQueue
from repro.experiments.spec import make_spec
from repro.experiments.store import ResultStore
from repro.experiments.worker import QueueWorker
from test_store import SCALE

SPECS = [
    make_spec(design, "performance-optimized", workload, SCALE)
    for workload in ("proj_3", "YCSB_B")
    for design in ("baseline", "venice")
]

fork_only = pytest.mark.skipif(
    sys.platform != "linux",
    reason="relies on fork-start subprocesses inheriting monkeypatches",
)

posix_only = pytest.mark.skipif(
    sys.platform == "win32", reason="requires POSIX signals"
)


def _child_env():
    root = Path(repro.__file__).resolve().parents[1]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(root)
    return env


# A worker stand-in that leases the task, proves liveness by heartbeating,
# and then "hangs" forever -- until the test SIGKILLs it mid-task.
_VICTIM_SCRIPT = """
import sys, time
from pathlib import Path
from repro.experiments.queue import WorkQueue

queue = WorkQueue(sys.argv[1])
task = queue.claim("victim")
assert task is not None
Path(sys.argv[2]).write_text(task.digest)
while True:
    queue.heartbeat(task)
    time.sleep(0.05)
"""


@posix_only
def test_sigkilled_worker_lease_expires_and_task_reexecutes(tmp_path):
    """kill -9 a live worker mid-task: lease expiry -> reclamation ->
    digest-identical re-execution by another worker."""
    spec = SPECS[0]
    queue = WorkQueue(
        tmp_path / "queue",
        store_dir=tmp_path / "store",
        lease_seconds=1.0,
        retry_delay=0.0,
    )
    queue.enqueue(spec)
    sentinel = tmp_path / "claimed.txt"
    victim = subprocess.Popen(
        [sys.executable, "-c", _VICTIM_SCRIPT, str(queue.directory),
         str(sentinel)],
        env=_child_env(), stderr=subprocess.PIPE,
    )
    try:
        deadline = time.monotonic() + 30.0
        while not sentinel.exists():
            assert victim.poll() is None, victim.stderr.read().decode()
            assert time.monotonic() < deadline, "victim never claimed"
            time.sleep(0.05)
        assert sentinel.read_text() == spec.digest
        # The victim is alive and heartbeating: nothing is reapable.
        time.sleep(0.3)
        assert queue.reap() == []
        os.kill(victim.pid, signal.SIGKILL)
        victim.wait(timeout=10)
    finally:
        if victim.poll() is None:  # pragma: no cover - cleanup on failure
            victim.kill()
            victim.wait()

    # With the heartbeats gone the lease goes stale and is reclaimed.
    deadline = time.monotonic() + 15.0
    reclaimed = []
    while not reclaimed and time.monotonic() < deadline:
        reclaimed = queue.reap()
        time.sleep(0.05)
    assert reclaimed == [spec.digest]
    status = queue.status()
    assert (status["claimed"], status["ready"]) == (0, 1)

    # A rescuer worker picks the task up (attempt 2) and completes it with
    # a result byte-identical to an undisturbed serial execution.
    rescuer = QueueWorker(queue, owner="rescuer")
    assert rescuer.step() is True
    assert rescuer.completed == 1
    assert queue.drained([spec.digest])
    store = queue.result_store()
    assert store.get(spec) == execute_spec(spec)
    assert not store.verify()["corrupt"]


@fork_only
def test_timeout_kills_the_hung_spec_and_finishes_the_rest(
    tmp_path, monkeypatch
):
    hung = SPECS[0]
    real = execute_spec

    def hang_one(spec, checkpoints=None):
        if spec.digest == hung.digest:
            time.sleep(300.0)
        return real(spec, checkpoints)

    # Isolated subprocesses start via fork, so they inherit the patch.
    monkeypatch.setattr("repro.experiments.executor.execute_spec", hang_one)
    store = ResultStore(tmp_path)
    with pytest.raises(ExecutionError) as excinfo:
        execute_specs(
            SPECS[:3], executor=SerialExecutor(timeout=1.0), store=store
        )
    (failure,) = excinfo.value.failures
    assert (failure.digest, failure.reason) == (hung.digest, "timeout")
    # Every healthy spec executed and persisted before the raise.
    assert len(store) == 2
    monkeypatch.undo()
    for spec in SPECS[1:3]:
        assert store.get(spec) == execute_spec(spec)


@fork_only
def test_worker_crash_is_attributed_without_losing_the_sweep(
    tmp_path, monkeypatch
):
    """A spec that SIGKILLs its pool worker no longer costs the batch."""
    crasher = SPECS[2]
    real = execute_spec

    def crash_one(spec, checkpoints=None):
        if spec.digest == crasher.digest:
            os.kill(os.getpid(), signal.SIGKILL)
        return real(spec, checkpoints)

    monkeypatch.setattr("repro.experiments.executor.execute_spec", crash_one)
    store = ResultStore(tmp_path)
    with pytest.raises(ExecutionError) as excinfo:
        execute_specs(SPECS, executor=ParallelExecutor(jobs=2), store=store)
    (failure,) = excinfo.value.failures
    assert (failure.digest, failure.reason) == (crasher.digest, "crash")
    assert "exit code" in failure.detail
    assert len(store) == len(SPECS) - 1  # every healthy spec persisted
    monkeypatch.undo()
    for spec in SPECS:
        if spec.digest != crasher.digest:
            assert store.get(spec) == execute_spec(spec)


@fork_only
def test_exception_in_isolated_subprocess_carries_the_traceback(monkeypatch):
    bad = SPECS[1]
    real = execute_spec

    def explode_one(spec, checkpoints=None):
        if spec.digest == bad.digest:
            raise ValueError("synthetic cell failure")
        return real(spec, checkpoints)

    monkeypatch.setattr("repro.experiments.executor.execute_spec", explode_one)
    executor = SerialExecutor(timeout=60.0)
    results, failures = executor.run_detailed(SPECS[:2])
    assert results[0] is not None and results[1] is None
    (failure,) = failures
    assert (failure.digest, failure.reason) == (bad.digest, "exception")
    assert "synthetic cell failure" in failure.detail
    assert "Traceback" in failure.detail
