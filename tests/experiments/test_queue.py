"""Work-queue tests: leases, reaping, retries, dead letters, executors."""

import json
import os
import time

import pytest

from repro.errors import ExecutionError, QueueError, SpecRunError
from repro.experiments.executor import SerialExecutor, execute_spec, execute_specs
from repro.experiments.queue import WorkQueue, default_owner_id
from repro.experiments.spec import make_spec
from repro.experiments.store import BACKEND_NAMES
from repro.experiments.worker import (
    QueueExecutor,
    QueueWorker,
    _HeartbeatThread,
)
from test_store import SCALE, sample_result
from test_store_backends import corrupt_entry

SPECS = [
    make_spec(design, "performance-optimized", "proj_3", SCALE)
    for design in ("baseline", "venice")
]


def make_queue(tmp_path, **kwargs):
    kwargs.setdefault("store_dir", tmp_path / "store")
    return WorkQueue(tmp_path / "queue", **kwargs)


def backdate_claim(queue, digest, by_seconds):
    """Age a claim's mtime so its lease reads as expired."""
    path = queue.claims_dir / f"{digest}.json"
    stamp = time.time() - by_seconds
    os.utime(path, (stamp, stamp))


# -- enqueue / claim lifecycle ------------------------------------------- #


def test_enqueue_is_idempotent_by_digest(tmp_path):
    queue = make_queue(tmp_path)
    assert queue.enqueue(SPECS[0]) is True
    assert queue.enqueue(SPECS[0]) is False  # same digest: no second task
    assert queue.enqueue_specs(SPECS) == 1  # only the new one counts
    assert queue.status()["tasks"] == 2
    assert queue.spec_for(SPECS[0].digest) == SPECS[0]


def test_claim_is_exclusive_and_round_trips_the_spec(tmp_path):
    queue = make_queue(tmp_path)
    queue.enqueue(SPECS[0])
    task = queue.claim("worker-a")
    assert task is not None
    assert (task.spec, task.owner, task.attempt) == (SPECS[0], "worker-a", 1)
    # The O_EXCL claim file means a second claimant finds nothing.
    assert queue.claim("worker-b") is None
    assert WorkQueue(queue.directory).claim("worker-c") is None


def test_two_workers_split_the_queue_without_overlap(tmp_path):
    queue = make_queue(tmp_path)
    queue.enqueue_specs(SPECS)
    first = queue.claim("worker-a")
    second = WorkQueue(queue.directory).claim("worker-b")
    assert {first.digest, second.digest} == {spec.digest for spec in SPECS}


def test_complete_marks_done_and_releases_the_claim(tmp_path):
    queue = make_queue(tmp_path)
    queue.enqueue(SPECS[0])
    task = queue.claim("worker-a")
    queue.complete(task)
    status = queue.status()
    assert (status["done"], status["claimed"], status["ready"]) == (1, 0, 0)
    assert queue.drained([SPECS[0].digest])
    assert queue.claim("worker-b") is None  # done tasks are never re-leased


def test_heartbeat_renews_and_detects_a_lost_lease(tmp_path):
    queue = make_queue(tmp_path, lease_seconds=5.0)
    queue.enqueue(SPECS[0])
    task = queue.claim("worker-a")
    backdate_claim(queue, task.digest, by_seconds=4.0)
    queue.heartbeat(task)  # renews: mtime is fresh again
    assert not queue._lease_expired(
        queue.claims_dir / f"{task.digest}.json", time.time() + 4.0
    )
    # A reaper takes the lease away -> the old owner's heartbeat raises.
    backdate_claim(queue, task.digest, by_seconds=6.0)
    assert queue.reap() == [task.digest]
    with pytest.raises(QueueError, match="lease"):
        queue.heartbeat(task)


# -- reaping, retries, dead letters -------------------------------------- #


def test_expired_lease_is_reclaimed_and_charged_as_an_attempt(tmp_path):
    queue = make_queue(tmp_path, lease_seconds=5.0, retry_delay=0.0)
    queue.enqueue(SPECS[0])
    task = queue.claim("victim")
    assert queue.reap() == []  # live lease: nothing to reap
    backdate_claim(queue, task.digest, by_seconds=6.0)
    assert queue.status()["expired_leases"] == 1
    assert queue.reap() == [task.digest]
    # The reclaimed task is claimable again, now on its second attempt.
    retry = queue.claim("rescuer")
    assert retry is not None and retry.attempt == 2


def test_failed_attempts_back_off_exponentially(tmp_path):
    queue = make_queue(
        tmp_path, max_attempts=5, retry_delay=100.0, retry_backoff=2.0
    )
    queue.enqueue(SPECS[0])
    task = queue.claim("worker-a")
    assert queue.fail(task, "boom") is False  # retry, not dead
    status = queue.status()
    assert (status["in_backoff"], status["ready"]) == (1, 0)
    assert queue.claim("worker-a") is None  # not eligible until backoff ends
    record = queue._retry_path(task.digest)
    payload = json.loads(record.read_text())
    assert payload["attempts"] == 1
    first_delay = payload["not_before"] - time.time()
    assert 90.0 < first_delay <= 100.0
    # Second failure doubles the delay (retry_delay * backoff ** 1).
    payload["not_before"] = 0.0
    record.write_text(json.dumps(payload))
    task = queue.claim("worker-a")
    queue.fail(task, "boom again")
    payload = json.loads(record.read_text())
    assert payload["attempts"] == 2
    assert payload["not_before"] - time.time() > 150.0


def test_task_dead_letters_after_max_attempts_with_captured_errors(tmp_path):
    queue = make_queue(tmp_path, max_attempts=2, retry_delay=0.0)
    queue.enqueue(SPECS[0])
    task = queue.claim("worker-a")
    assert queue.fail(task, "first traceback") is False
    task = queue.claim("worker-a")
    assert task.attempt == 2
    assert queue.fail(task, "second traceback") is True
    letters = queue.dead_letters()
    assert set(letters) == {SPECS[0].digest}
    letter = letters[SPECS[0].digest]
    assert letter["attempts"] == 2
    assert letter["errors"] == ["first traceback", "second traceback"]
    assert letter["spec"] == SPECS[0].to_dict()
    assert queue.claim("worker-a") is None  # dead tasks are never re-leased
    assert queue.drained([SPECS[0].digest])
    assert queue.status()["dead"] == 1


# -- frozen configuration ------------------------------------------------ #


def test_queue_config_is_frozen_at_creation(tmp_path):
    queue = make_queue(
        tmp_path, store_backend="sqlite", lease_seconds=7.0, max_attempts=4
    )
    # Later participants pick the frozen policy up from queue.json alone.
    reopened = WorkQueue(queue.directory)
    assert reopened.store_backend == "sqlite"
    assert reopened.lease_seconds == 7.0
    assert reopened.max_attempts == 4
    assert reopened.store_dir == queue.store_dir
    assert reopened.result_store().backend_name == "sqlite"


def test_queue_refuses_a_conflicting_store_binding(tmp_path):
    queue = make_queue(tmp_path)
    with pytest.raises(QueueError, match="bound to store"):
        WorkQueue(queue.directory, store_dir=tmp_path / "elsewhere")


def test_queue_rejects_nonsense_policy(tmp_path):
    with pytest.raises(QueueError, match="lease_seconds"):
        make_queue(tmp_path, lease_seconds=0.0)
    with pytest.raises(QueueError, match="max_attempts"):
        make_queue(tmp_path, max_attempts=0)


# -- workers and the queue executor -------------------------------------- #


def test_worker_drains_the_queue_and_persists_results(tmp_path):
    queue = make_queue(tmp_path)
    queue.enqueue_specs(SPECS)
    worker = QueueWorker(queue, idle_exit=0.0)
    summary = worker.run()
    assert summary["completed"] == len(SPECS)
    assert summary["failed"] == 0
    assert queue.drained([spec.digest for spec in SPECS])
    store = queue.result_store()
    for spec in SPECS:
        assert store.get(spec) == execute_spec(spec)


def test_worker_skips_simulation_when_the_store_already_has_the_result(
    tmp_path, monkeypatch
):
    """Crash-after-put recovery: a present result completes without re-running."""
    queue = make_queue(tmp_path)
    result = execute_spec(SPECS[0])
    queue.result_store().put(SPECS[0], result)
    queue.enqueue(SPECS[0])
    monkeypatch.setattr(
        "repro.experiments.worker.execute_spec",
        lambda *a, **k: pytest.fail("must not simulate a stored result"),
    )
    worker = QueueWorker(queue)
    assert worker.step() is True
    assert worker.completed == 1
    assert queue.drained([SPECS[0].digest])


def test_worker_heals_a_corrupt_store_entry_by_resimulating(tmp_path):
    queue = make_queue(tmp_path)
    store = queue.result_store()
    store.put(SPECS[0], sample_result())
    corrupt_entry(store, SPECS[0])  # entry no longer matches its digest key
    queue.enqueue(SPECS[0])
    worker = QueueWorker(queue)
    assert worker.step() is True
    healed = queue.result_store()
    assert healed.get(SPECS[0]) == execute_spec(SPECS[0])
    assert not healed.verify()["corrupt"]


def test_worker_dead_letters_a_spec_that_keeps_failing(tmp_path, monkeypatch):
    queue = make_queue(tmp_path, max_attempts=2, retry_delay=0.0)
    queue.enqueue(SPECS[0])
    monkeypatch.setattr(
        "repro.experiments.worker.execute_spec",
        lambda *a, **k: (_ for _ in ()).throw(RuntimeError("sim exploded")),
    )
    worker = QueueWorker(queue, idle_exit=0.0)
    summary = worker.run()
    assert summary["failed"] == 2  # both attempts, then dead-letter
    letter = queue.dead_letters()[SPECS[0].digest]
    assert "sim exploded" in letter["errors"][-1]


@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_queued_sweep_matches_serial_execution(tmp_path, backend):
    serial = execute_specs(SPECS, executor=SerialExecutor())
    queue = make_queue(tmp_path, store_backend=backend)
    executor = QueueExecutor(queue)
    queued = execute_specs(SPECS, executor=executor, store=executor.worker.store)
    assert queued == serial  # bit-identical results through the queue
    assert queue.result_store().backend_name == backend
    # A warm re-run through a *fresh* queue bound to the same store
    # completes without a single new simulation or store write.
    rerun_queue = WorkQueue(
        tmp_path / "queue-rerun", store_dir=queue.store_dir,
        store_backend=backend,
    )
    rerun = QueueExecutor(rerun_queue)
    warm = execute_specs(SPECS, executor=rerun, store=rerun.worker.store)
    assert warm == serial
    assert rerun.worker.store.writes == 0


def test_queue_executor_reports_dead_letters_as_failures(
    tmp_path, monkeypatch
):
    queue = make_queue(tmp_path, max_attempts=2, retry_delay=0.0)
    monkeypatch.setattr(
        "repro.experiments.worker.execute_spec",
        lambda *a, **k: (_ for _ in ()).throw(RuntimeError("sim exploded")),
    )
    executor = QueueExecutor(queue)
    with pytest.raises(ExecutionError) as excinfo:
        execute_specs([SPECS[0]], executor=executor, store=executor.worker.store)
    (failure,) = excinfo.value.failures
    assert failure.digest == SPECS[0].digest
    assert failure.reason == "dead-letter"
    assert "sim exploded" in failure.detail


def test_default_owner_ids_are_unique():
    assert default_owner_id() != default_owner_id()


# -- edge cases ----------------------------------------------------------- #


def test_queue_rejects_a_foreign_config_schema(tmp_path):
    queue = make_queue(tmp_path)
    config = queue.directory / "queue.json"
    payload = json.loads(config.read_text())
    payload["schema"] = 99
    config.write_text(json.dumps(payload))
    with pytest.raises(QueueError, match="schema"):
        WorkQueue(queue.directory)


def test_spec_for_unknown_digest_raises(tmp_path):
    queue = make_queue(tmp_path)
    with pytest.raises(QueueError, match="no task"):
        queue.spec_for("feedface" * 8)


def test_losing_the_claim_race_moves_on(tmp_path, monkeypatch):
    """A claim file appearing between the eligibility check and O_EXCL."""
    queue = make_queue(tmp_path)
    queue.enqueue(SPECS[0])
    (queue.claims_dir / f"{SPECS[0].digest}.json").write_text("{}")
    monkeypatch.setattr(queue, "_eligible", lambda digest, now: True)
    assert queue.claim("late-worker") is None


def test_heartbeat_thread_renews_until_the_lease_disappears(tmp_path):
    queue = make_queue(tmp_path, lease_seconds=60.0)
    queue.enqueue(SPECS[0])
    task = queue.claim("worker-a")
    claim_path = queue.claims_dir / f"{task.digest}.json"
    backdate_claim(queue, task.digest, by_seconds=50.0)
    thread = _HeartbeatThread(queue, task, interval=0.02)
    thread.start()
    try:
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if time.time() - claim_path.stat().st_mtime < 10.0:
                break  # a beat landed: the stale mtime was renewed
            time.sleep(0.02)
        else:
            pytest.fail("heartbeat thread never renewed the lease")
        # A reaper steals the lease out from under the thread...
        claim_path.unlink()
        assert thread.lease_lost.wait(5.0)  # ...and the thread notices.
    finally:
        thread.stop()
    assert not thread.is_alive()


def test_worker_with_a_timeout_runs_the_spec_isolated(tmp_path):
    queue = make_queue(tmp_path)
    queue.enqueue(SPECS[0])
    worker = QueueWorker(queue, timeout=300.0)
    assert worker.step() is True
    assert queue.result_store().get(SPECS[0]) == execute_spec(SPECS[0])


def test_worker_records_spec_run_errors_as_failed_attempts(
    tmp_path, monkeypatch
):
    queue = make_queue(tmp_path, max_attempts=3, retry_delay=0.0)
    queue.enqueue(SPECS[0])
    monkeypatch.setattr(
        "repro.experiments.worker.execute_spec_isolated",
        lambda *a, **k: (_ for _ in ()).throw(
            SpecRunError(SPECS[0].digest, SPECS[0].label(), "timeout",
                         "exceeded 1.0s")
        ),
    )
    worker = QueueWorker(queue, timeout=1.0)
    assert worker.step() is True  # the claim happened; the run failed
    assert worker.failed == 1
    record = json.loads(queue._retry_path(SPECS[0].digest).read_text())
    assert record["errors"] == ["timeout: exceeded 1.0s"]


def test_queue_executor_flags_a_done_task_with_a_missing_result(tmp_path):
    queue = make_queue(tmp_path)
    queue.enqueue(SPECS[0])
    queue.complete(queue.claim("amnesiac"))  # done, but nothing was stored
    with pytest.raises(QueueError, match="store verify"):
        QueueExecutor(queue).run_detailed([SPECS[0]])


def test_queue_executor_run_raises_on_dead_letters(tmp_path, monkeypatch):
    queue = make_queue(tmp_path, max_attempts=1, retry_delay=0.0)
    monkeypatch.setattr(
        "repro.experiments.worker.execute_spec",
        lambda *a, **k: (_ for _ in ()).throw(RuntimeError("sim exploded")),
    )
    with pytest.raises(ExecutionError):
        QueueExecutor(queue).run([SPECS[0]])
