"""Tests for the perf harness (micro-benchmarks + regression gate)."""

import json

from repro.experiments.bench import (
    BENCH_DESIGNS,
    SPEEDUP_EARLY_STOP,
    SPEEDUP_WARMUP,
    bench_engine_events,
    bench_resource_cycles,
    bench_sweep_speedup,
    check_regression,
    peak_rss_kb,
    run_bench,
)


def test_engine_bench_counts_all_events():
    result = bench_engine_events(events=4_000, repeats=1)
    assert result["events"] >= 4_000
    assert result["events_per_sec"] > 0


def test_resource_bench_completes_every_cycle():
    result = bench_resource_cycles(cycles=2_000, repeats=1)
    assert result["cycles"] == 2_000
    assert result["cycles_per_sec"] > 0


def test_run_bench_quick_payload_is_json_safe():
    payload = run_bench(quick=True, repeats=1)
    encoded = json.loads(json.dumps(payload))
    assert encoded["mode"] == "quick"
    assert set(encoded["end_to_end"]) == set(BENCH_DESIGNS)
    assert encoded["events_per_sec"] > 0
    assert encoded["requests_per_sec"] > 0


def test_peak_rss_reports_positive_on_posix():
    rss = peak_rss_kb()
    assert rss is None or rss > 0


def test_check_regression_passes_within_tolerance():
    payload = {"events_per_sec": 900.0, "requests_per_sec": 90.0}
    baseline = {"events_per_sec": 1000.0, "requests_per_sec": 100.0}
    assert check_regression(payload, baseline, tolerance=0.20) == []


def test_check_regression_flags_past_tolerance():
    payload = {"events_per_sec": 700.0, "requests_per_sec": 100.0}
    baseline = {"events_per_sec": 1000.0, "requests_per_sec": 100.0}
    failures = check_regression(payload, baseline, tolerance=0.20)
    assert len(failures) == 1
    assert "events_per_sec" in failures[0]


def test_check_regression_ignores_missing_baseline_metrics():
    payload = {"events_per_sec": 50.0, "requests_per_sec": 50.0}
    assert check_regression(payload, {}, tolerance=0.20) == []
    assert check_regression(payload, {"note": "no numbers"}, tolerance=0.20) == []


def test_check_regression_reports_missing_payload_metric():
    baseline = {"events_per_sec": 1000.0}
    failures = check_regression({}, baseline, tolerance=0.20)
    assert failures and "missing" in failures[0]


def test_speedup_recipe_strings_parse():
    from repro.sim.checkpoint import WarmupPhase
    from repro.sim.convergence import EarlyStopPolicy

    assert WarmupPhase.parse(SPEEDUP_WARMUP).to_spec() == SPEEDUP_WARMUP
    assert EarlyStopPolicy.parse(SPEEDUP_EARLY_STOP).to_spec() == (
        SPEEDUP_EARLY_STOP
    )


def test_run_bench_omits_sweep_speedup_by_default():
    payload = run_bench(quick=True, repeats=1)
    assert "sweep_speedup" not in payload


def test_sweep_speedup_measures_both_arms():
    """One tiny matrix through both arms: invariants, not the headline ratio
    (the committed ratio comes from the full ``bench --speedup`` recipe)."""
    from repro.experiments.spec import ExperimentScale

    scale = ExperimentScale(
        requests=240,
        requests_per_mix_constituent=80,
        blocks_per_plane=16,
        pages_per_block=16,
        target_pressure=0.05,
    )
    payload = bench_sweep_speedup(
        quick=True,
        scale=scale,
        warmup="fill 0.5; steps 300",
        early_stop="window 40; tolerance 0.03; patience 2; min 120",
    )
    encoded = json.loads(json.dumps(payload))
    # Cross-figure structure: fig10/fig14 repeat fig9a/fig13's cells, so
    # the exact arm simulates strictly more cell-executions than the
    # optimized arm has unique cells.
    assert encoded["exact_cells"] > encoded["optimized_cells"]
    assert encoded["exact_events"] > encoded["optimized_events"] > 0
    assert encoded["event_speedup"] > 1.0
    # One shared warm-up per design, not per cell.
    assert encoded["warmups_computed"] < encoded["optimized_cells"]
    assert encoded["optimized_warmup_events"] > 0
