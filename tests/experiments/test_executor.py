"""Executor tests: serial/parallel determinism, dedup, store-backed reuse."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.executor import (
    ParallelExecutor,
    SerialExecutor,
    _rebuild_checkpoints,
    checkpoint_ref,
    execute_spec,
    execute_spec_isolated,
    execute_specs,
    make_executor,
)
from repro.sim.checkpoint import CheckpointStore
from repro.experiments.figures import run_all_figures, run_figure
from repro.experiments.spec import ExperimentScale, make_spec
from repro.experiments.store import ResultStore

SCALE = ExperimentScale(requests=60, blocks_per_plane=8, pages_per_block=8)

SPECS = [
    make_spec(design, "performance-optimized", workload, SCALE)
    for workload in ("proj_3", "YCSB_B")
    for design in ("baseline", "venice")
]


def test_serial_and_parallel_backends_agree_exactly():
    serial = SerialExecutor().run(SPECS)
    parallel = ParallelExecutor(jobs=2).run(SPECS)
    assert serial == parallel  # bit-identical RunResults, same order


def test_make_executor_jobs_semantics():
    assert isinstance(make_executor(None), SerialExecutor)
    assert isinstance(make_executor(1), SerialExecutor)
    assert isinstance(make_executor(4), ParallelExecutor)
    assert make_executor(4).jobs == 4
    with pytest.raises(ValueError):
        ParallelExecutor(jobs=0)
    with pytest.raises(ConfigurationError):
        make_executor(0)
    with pytest.raises(ConfigurationError):
        make_executor(-4)


def test_execute_specs_deduplicates_repeated_specs():
    executor = SerialExecutor()
    duplicated = [SPECS[0], SPECS[0], SPECS[1], SPECS[0]]
    results = execute_specs(duplicated, executor=executor)
    assert executor.runs_completed == 2
    assert set(results) == {SPECS[0], SPECS[1]}


def test_warm_store_serves_everything_without_simulating(tmp_path):
    store = ResultStore(tmp_path)
    first = SerialExecutor()
    cold = execute_specs(SPECS, executor=first, store=store)
    assert first.runs_completed == len(SPECS)

    # Fresh store instance against the same directory: everything must come
    # from disk and the executor must never be invoked.
    warm_store = ResultStore(tmp_path)
    second = SerialExecutor()
    warm = execute_specs(SPECS, executor=second, store=warm_store)
    assert second.runs_completed == 0
    assert warm_store.hits == len(SPECS)
    assert warm == cold


def test_figures_share_the_cached_matrix(tmp_path):
    """fig10 and fig13 draw from fig9a's perf-opt matrix: zero extra runs."""
    store = ResultStore(tmp_path)
    executor = SerialExecutor()
    run_figure("fig9a", SCALE, ("proj_3",), executor=executor, store=store)
    after_fig9 = executor.runs_completed
    assert after_fig9 == 6  # six designs, one workload
    run_figure("fig10", SCALE, ("proj_3",), executor=executor, store=store)
    run_figure("fig13", SCALE, ("proj_3",), executor=executor, store=store)
    assert executor.runs_completed == after_fig9  # fully served by the store


def test_matrix_pass_is_cached_end_to_end(tmp_path):
    """Acceptance: a repeat matrix pass against the same cache simulates nothing."""
    names = ("fig9a", "fig10", "fig13", "table4")
    first = SerialExecutor()
    cold = run_all_figures(
        SCALE,
        workloads=("proj_3",),
        figures=names,
        executor=first,
        store=ResultStore(tmp_path),
    )
    assert first.runs_completed == 6  # the shared matrix, simulated once

    second = SerialExecutor()
    warm_store = ResultStore(tmp_path)
    warm = run_all_figures(
        SCALE,
        workloads=("proj_3",),
        figures=names,
        executor=second,
        store=warm_store,
    )
    assert second.runs_completed == 0
    assert warm_store.writes == 0
    assert warm == cold


def test_parallel_matrix_equals_sequential_matrix():
    names = ("fig9a", "fig13")
    sequential = run_all_figures(
        SCALE, workloads=("proj_3",), figures=names, executor=SerialExecutor()
    )
    parallel = run_all_figures(
        SCALE, workloads=("proj_3",), figures=names,
        executor=ParallelExecutor(jobs=4),
    )
    assert parallel == sequential


def test_execute_spec_isolated_matches_inline_execution():
    assert execute_spec_isolated(SPECS[0]) == execute_spec(SPECS[0])


def test_checkpoint_refs_round_trip_every_store_flavor(tmp_path):
    assert checkpoint_ref(None) is None
    assert _rebuild_checkpoints(None) is None

    disk = CheckpointStore(tmp_path)
    ref = checkpoint_ref(disk)
    assert ref == str(tmp_path)
    assert _rebuild_checkpoints(ref).directory == tmp_path

    memory = CheckpointStore(preload={"digest": {"state": 1}})
    ref = checkpoint_ref(memory)
    assert ref == {"digest": {"state": 1}}
    rebuilt = _rebuild_checkpoints(ref)
    assert rebuilt.directory is None
    assert rebuilt._memory == memory._memory


def test_execute_specs_supports_legacy_executors():
    """Custom executors without run_detailed still work (old plugin API)."""

    class Legacy:
        def __init__(self):
            self.calls = []

        def run(self, specs, checkpoints=None):
            self.calls.append((len(specs), checkpoints is not None))
            return [execute_spec(spec) for spec in specs]

    bare = Legacy()
    results = execute_specs(SPECS[:2], executor=bare)
    assert results[SPECS[0]] == execute_spec(SPECS[0])
    assert bare.calls == [(2, False)]  # single-argument legacy call

    chk = Legacy()
    execute_specs(SPECS[:2], executor=chk, checkpoints=CheckpointStore())
    assert chk.calls == [(2, True)]  # checkpoint-aware two-argument call
