"""CLI tests for queued sweeps, worker/queue subcommands, store maintenance."""

import json

from repro.cli import main
from repro.experiments.queue import WorkQueue
from repro.experiments.spec import ExperimentScale, make_spec

SCALE = ExperimentScale(requests=60, blocks_per_plane=8, pages_per_block=8)


def test_queued_figure_is_byte_identical_to_direct(tmp_path, capsys):
    direct_argv = [
        "figure", "fig9a", "--requests", "60", "--workloads", "proj_3",
        "--json",
    ]
    assert main(direct_argv) == 0
    direct = capsys.readouterr().out

    queued_argv = direct_argv + [
        "--cache", str(tmp_path / "store"),
        "--queue", str(tmp_path / "q"),
        "--store-backend", "sharded",
        "--lease", "10", "--max-attempts", "2",
    ]
    assert main(queued_argv) == 0
    assert capsys.readouterr().out == direct

    # The queue drained clean and froze the requested policy.
    assert main(["queue", "status", "--queue", str(tmp_path / "q"),
                 "--json"]) == 0
    status = json.loads(capsys.readouterr().out)
    assert status["done"] == status["tasks"] > 0
    assert status["dead"] == 0
    assert status["store_backend"] == "sharded"
    assert status["lease_seconds"] == 10.0

    # Warm re-run through the same queue: still byte-identical.
    assert main(queued_argv) == 0
    assert capsys.readouterr().out == direct


def test_worker_cli_drains_an_existing_queue(tmp_path, capsys):
    queue = WorkQueue(tmp_path / "q", store_dir=tmp_path / "store")
    spec = make_spec("venice", "performance-optimized", "hm_0", SCALE)
    queue.enqueue(spec)
    assert main(["worker", "--queue", str(tmp_path / "q"),
                 "--owner", "cli-test", "--max-tasks", "1", "--json"]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["owner"] == "cli-test"
    assert stats["completed"] == 1
    assert queue.drained([spec.digest])
    # Human-readable queue status and the empty dead-letter listing.
    assert main(["queue", "status", "--queue", str(tmp_path / "q")]) == 0
    assert "done" in capsys.readouterr().out
    assert main(["queue", "dead", "--queue", str(tmp_path / "q")]) == 0
    assert "no dead-lettered tasks" in capsys.readouterr().out


def test_queue_dead_listing_shows_captured_errors(tmp_path, capsys):
    queue = WorkQueue(
        tmp_path / "q", store_dir=tmp_path / "store", max_attempts=1
    )
    spec = make_spec("venice", "performance-optimized", "hm_0", SCALE)
    queue.enqueue(spec)
    queue.fail(queue.claim("w"), "ValueError: synthetic failure")
    assert main(["queue", "dead", "--queue", str(tmp_path / "q")]) == 0
    out = capsys.readouterr().out
    assert spec.digest[:12] in out and "synthetic failure" in out
    assert main(["queue", "dead", "--queue", str(tmp_path / "q"),
                 "--json"]) == 0
    letters = json.loads(capsys.readouterr().out)
    assert letters[spec.digest]["attempts"] == 1


def test_joining_a_nonexistent_queue_fails_cleanly(tmp_path, capsys):
    missing = str(tmp_path / "missing")
    assert main(["worker", "--queue", missing]) == 2
    assert "no queue.json" in capsys.readouterr().err
    assert main(["queue", "status", "--queue", missing]) == 2
    capsys.readouterr()
    assert main(["worker", "--queue", missing, "--timeout", "0"]) == 2
    assert "--timeout" in capsys.readouterr().err


def test_store_maintenance_lifecycle(tmp_path, capsys):
    cache = str(tmp_path)
    run_argv = ["run", "--workload", "hm_0", "--requests", "60", "--json",
                "--cache", cache]
    assert main(run_argv) == 0
    capsys.readouterr()

    # Pristine store: verify passes in both output modes.
    assert main(["store", "verify", "--cache", cache]) == 0
    assert "0 corrupt" in capsys.readouterr().out
    assert main(["store", "verify", "--cache", cache, "--json"]) == 0
    assert json.loads(capsys.readouterr().out)["corrupt"] == []

    # Corrupt the entry on disk: verify reports (exit 4), --repair heals.
    entry = next(tmp_path.glob("*.json"))
    payload = json.loads(entry.read_text())
    payload["spec"]["workload"] = "proj_3"
    entry.write_text(json.dumps(payload))
    assert main(["store", "verify", "--cache", cache]) == 4
    out = capsys.readouterr().out
    assert "1 corrupt" in out and "--repair" in out
    assert main(["store", "verify", "--cache", cache, "--repair"]) == 0
    assert "1 quarantined" in capsys.readouterr().out
    assert main(["store", "verify", "--cache", cache]) == 0
    capsys.readouterr()

    # gc drops the quarantined bytes; compact shrinks what remains.
    assert main(["store", "gc", "--cache", cache, "--json"]) == 0
    assert json.loads(capsys.readouterr().out)["reclaimed_bytes"] > 0
    assert main(["store", "compact", "--cache", cache]) == 0
    assert "saved_bytes" in capsys.readouterr().out
    assert main(["store", "gc", "--cache", cache]) == 0
    capsys.readouterr()

    # The quarantined digest re-simulates as a miss and the store heals.
    assert main(run_argv) == 0
    capsys.readouterr()
    assert main(["store", "verify", "--cache", cache]) == 0
    assert "1 ok" in capsys.readouterr().out


def test_list_shows_store_backends(capsys):
    assert main(["list"]) == 0
    assert "backends:   flat, sharded, sqlite" in capsys.readouterr().out
