"""Crash-restart battery: SIGKILL mid-sweep, restart, byte-identical.

The durability half of the acceptance criteria.  A daemon is killed with
SIGKILL (no cleanup, no handlers) while a multi-spec sweep is executing;
a fresh daemon on the same ``--state`` directory must re-adopt the
orphaned job, re-execute only what the store does not already hold, and
converge on a result byte-identical to an uninterrupted in-process serial
run of the same specs.
"""

from __future__ import annotations

import json
import time

from service_helpers import ServiceDaemon, posix_only

from repro.experiments.executor import execute_specs
from repro.experiments.store import ResultStore
from repro.service.schema import job_from_payload

# Sized so the sweep takes several seconds end to end (each cell is a few
# hundred milliseconds): the SIGKILL below must reliably land while the
# job is mid-execution, with some members persisted and some not.
SWEEP = {
    "kind": "sweep",
    "designs": ["baseline", "pssd", "pnssd", "nossd", "venice", "ideal"],
    "workloads": ["hm_0", "mds_0"],
    "requests": 2000,
    "seed": 3,
}
SWEEP_CELLS = len(SWEEP["designs"]) * len(SWEEP["workloads"])


def _serial_reference(tmp_path) -> dict:
    """The same sweep, executed uninterrupted in this process."""
    job = job_from_payload(SWEEP)
    results = execute_specs(
        job.specs, store=ResultStore(tmp_path / "reference-store")
    )
    return {
        "experiment": "sweep",
        "runs": [
            {
                "digest": spec.digest,
                "label": spec.label(),
                "result": results[spec].to_dict(),
            }
            for spec in job.specs
        ],
    }


@posix_only
def test_sigkill_mid_sweep_restart_finishes_byte_identical(tmp_path):
    state = tmp_path / "state"
    first = ServiceDaemon(state, jobs=1).start()
    try:
        status, accepted = first.post_json("/v1/runs", SWEEP)
        assert status == 201
        job_id = accepted["job_id"]

        # Wait for partial progress: at least one member result persisted,
        # job still running -- then pull the plug with no warning.
        deadline = time.time() + 300
        while time.time() < deadline:
            _, health = first.get("/health")
            _, record = first.get(f"/v1/runs/{job_id}")
            assert record["state"] in ("queued", "running")
            if health["store"]["results"] >= 1:
                break
            time.sleep(0.02)
        else:
            raise AssertionError("no member result ever reached the store")
        progress_at_kill = health["store"]["results"]
        assert progress_at_kill < SWEEP_CELLS
    finally:
        first.kill()

    second = ServiceDaemon(state, jobs=1).start()
    try:
        # The orphaned running job was adopted back to queued on boot.
        _, health = second.get("/health")
        assert health["adopted_on_boot"] == 1

        record = second.wait_for(job_id)
        assert record["state"] == "done"
        assert record["attempts"] == 2  # one per daemon
        # Only the missing cells re-simulated; the dead daemon's progress
        # was served from the content-addressed store.
        assert record["simulated"] <= SWEEP_CELLS - progress_at_kill

        expected = _serial_reference(tmp_path)
        assert json.dumps(record["result"], sort_keys=True) == json.dumps(
            expected, sort_keys=True
        )
    finally:
        second.stop()


@posix_only
def test_queued_jobs_survive_a_crash(tmp_path):
    state = tmp_path / "state"
    # Long enough to still be running when the second submission lands
    # and the daemon dies; no kill-timing requirement beyond that.
    small_sweep = {
        "kind": "sweep",
        "designs": SWEEP["designs"],
        "workloads": ["hm_0"],
        "requests": 400,
        "seed": 9,
    }
    run_payload = {"design": "venice", "workload": "hm_0", "requests": 40}
    first = ServiceDaemon(state, jobs=1).start()
    try:
        _, sweep_accepted = first.post_json("/v1/runs", small_sweep)
        # With one worker the run queues behind the sweep and has not
        # started when the daemon dies.
        status, run_accepted = first.post_json("/v1/runs", run_payload)
        assert status == 201
        assert run_accepted["state"] in ("queued", "running")
    finally:
        first.kill()

    second = ServiceDaemon(state, jobs=1).start()
    try:
        sweep_record = second.wait_for(sweep_accepted["job_id"])
        run_record = second.wait_for(run_accepted["job_id"])
        assert sweep_record["state"] == "done"
        assert run_record["state"] == "done"
        assert run_record["simulated"] == 1
        _, health = second.get("/health")
        assert health["jobs"]["done"] == 2
        assert health["jobs"]["queued"] == health["jobs"]["running"] == 0
    finally:
        second.stop()
