"""Black-box API battery: every endpoint over real HTTP.

One live daemon per test (fresh state directory); the only client is
stdlib ``urllib``.  Covers the happy path end to end, the structured-400
contract for malformed submissions, 404s, and the embedded dashboard.
"""

from __future__ import annotations

import json

RUN = {"design": "venice", "workload": "hm_0", "requests": 40, "seed": 7}


def test_health_reports_pool_store_and_job_counts(daemon):
    status, health = daemon.get("/health")
    assert status == 200
    assert health["status"] == "ok"
    assert health["pid"] > 0
    assert health["pool"] == {"workers": 2, "busy": 0, "backlog": 0}
    assert health["store"]["backend"] in ("flat", "sharded", "sqlite")
    assert health["store"]["results"] == 0
    assert health["jobs"] == {
        "queued": 0, "running": 0, "done": 0, "failed": 0,
    }
    assert health["session"] == {
        "simulations": 0, "cache_hits": 0, "jobs_done": 0, "jobs_failed": 0,
    }


def test_run_job_end_to_end(daemon):
    status, accepted = daemon.post_json("/v1/runs", RUN)
    assert status == 201
    assert accepted["created"] is True
    assert accepted["kind"] == "run"
    job_id = accepted["job_id"]
    assert len(job_id) == 64  # the job id IS the spec's sha256 digest

    record = daemon.wait_for(job_id)
    assert record["state"] == "done"
    assert record["attempts"] == 1
    assert record["simulated"] == 1
    assert record["error"] is None
    result = record["result"]
    assert result["experiment"] == "run"
    assert result["digest"] == job_id
    assert result["result"]["requests_completed"] > 0
    assert result["result"]["iops"] > 0
    # The persisted payload is the canonical spec, not the request body.
    assert record["payload"]["kind"] == "run"
    assert record["payload"]["specs"][0]["design"] == "venice"

    status, listing = daemon.get("/v1/jobs")
    assert status == 200
    summaries = {job["job_id"]: job for job in listing["jobs"]}
    assert summaries[job_id]["state"] == "done"
    assert "payload" not in summaries[job_id]  # summaries stay lean

    status, health = daemon.get("/health")
    assert health["jobs"]["done"] == 1
    assert health["session"]["jobs_done"] == 1
    assert health["session"]["simulations"] == 1
    assert health["store"]["results"] == 1


def test_sweep_job_runs_every_cell(daemon):
    status, accepted = daemon.post_json(
        "/v1/runs",
        {
            "kind": "sweep",
            "designs": ["venice", "baseline"],
            "workloads": ["hm_0"],
            "requests": 40,
        },
    )
    assert status == 201
    record = daemon.wait_for(accepted["job_id"])
    assert record["state"] == "done"
    assert record["simulated"] == 2
    runs = record["result"]["runs"]
    assert [run["result"]["design"] for run in runs] == ["venice", "baseline"]


def test_fleet_job_rolls_up(daemon):
    status, accepted = daemon.post_json(
        "/v1/runs",
        {
            "kind": "fleet",
            "design": "venice",
            "devices": 2,
            "tenants": 4,
            "requests": 40,
        },
    )
    assert status == 201
    record = daemon.wait_for(accepted["job_id"])
    assert record["state"] == "done"
    assert record["simulated"] == 2
    result = record["result"]
    assert result["experiment"] == "fleet-run"
    assert result["devices"] == 2
    assert result["aggregate_iops"] > 0
    assert result["latency"]["p99_ns"] > 0


def test_unknown_job_and_route_are_structured_404s(daemon):
    status, body = daemon.get("/v1/runs/" + "0" * 64)
    assert status == 404
    assert body["error"]["type"] == "not-found"

    status, body = daemon.get("/v1/nope")
    assert status == 404
    assert body["error"]["type"] == "not-found"

    status, body = daemon.post_json("/v1/nope", {})
    assert status == 404
    assert body["error"]["type"] == "not-found"


def test_malformed_bodies_return_structured_400s(daemon):
    # Not JSON at all.
    status, body = daemon.post("/v1/runs", b"not json {")
    assert status == 400
    assert body["error"]["type"] == "invalid-json"

    # JSON, but not an object.
    status, body = daemon.post_json("/v1/runs", [1, 2, 3])
    assert status == 400
    assert body["error"]["type"] == "ConfigurationError"
    assert "JSON object" in body["error"]["message"]

    # Unknown kind.
    status, body = daemon.post_json("/v1/runs", {"kind": "banana"})
    assert status == 400
    assert "banana" in body["error"]["message"]

    # Unknown field, named back to the client.
    status, body = daemon.post_json("/v1/runs", {"desing": "venice"})
    assert status == 400
    assert "desing" in body["error"]["message"]
    assert "accepted" in body["error"]["message"]

    # Bad value type.
    status, body = daemon.post_json("/v1/runs", {"requests": "lots"})
    assert status == 400
    assert "requests" in body["error"]["message"]

    # The make_spec message itself surfaces verbatim: unknown design.
    status, body = daemon.post_json("/v1/runs", {"design": "warp-drive"})
    assert status == 400
    assert body["error"]["type"] == "ConfigurationError"
    assert "warp-drive" in body["error"]["message"]

    # Fleet jobs reject single-device amortization knobs.
    status, body = daemon.post_json(
        "/v1/runs", {"kind": "fleet", "warmup": "steady"}
    )
    assert status == 400
    assert "warmup" in body["error"]["message"]

    # Nothing malformed ever created a job.
    _, health = daemon.get("/health")
    assert health["jobs"] == {
        "queued": 0, "running": 0, "done": 0, "failed": 0,
    }


def test_dashboard_is_a_self_contained_page(daemon):
    status, page = daemon.get("/")
    assert status == 200
    assert page.startswith("<!DOCTYPE html>")
    assert "venice-sim service" in page
    # Self-contained: no external scripts, stylesheets, images, or fonts.
    for external in ("<script src", "<link", "<img", "@import", "https://"):
        assert external not in page
    # It drives the same JSON API the tests do.
    for endpoint in ("/health", "/v1/jobs", "/v1/runs/"):
        assert endpoint in page


def test_oversized_body_is_rejected(daemon):
    padding = json.dumps({"design": "venice", "pad": "x" * (1 << 20)})
    status, body = daemon.post("/v1/runs", padding.encode("utf-8"))
    assert status == 413
    assert body["error"]["type"] == "too-large"
    _, listing = daemon.get("/v1/jobs")
    assert listing["jobs"] == []
