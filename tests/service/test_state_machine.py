"""Property tests for the job state machine, pure and persistent.

Hypothesis drives arbitrary event interleavings through
:func:`repro.service.jobs.next_state` (the machine as specification) and
through a :class:`repro.service.jobs.JobStore` kept in lockstep with an
in-memory model -- illegal transitions must always be refused (raised or
reported ``False``), legal ones must always land where the specification
says, and any interleaving that reaches ``done`` or ``failed`` must stay
there forever.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ServiceError
from repro.service.jobs import (
    JOB_EVENTS,
    JOB_STATES,
    TERMINAL_STATES,
    JobStore,
    next_state,
)

events = st.sampled_from(JOB_EVENTS)
event_sequences = st.lists(events, max_size=40)


# -- the pure machine ----------------------------------------------------- #

def test_lifecycle_transitions():
    assert next_state(None, "submit") == "queued"
    assert next_state("queued", "start") == "running"
    assert next_state("running", "finish") == "done"
    assert next_state("running", "fail") == "failed"
    assert next_state("running", "adopt") == "queued"
    assert next_state("queued", "adopt") == "queued"


@pytest.mark.parametrize("state", [None] + list(JOB_STATES))
@pytest.mark.parametrize("event", JOB_EVENTS)
def test_every_state_event_pair_is_legal_or_refused(state, event):
    legal = {
        (None, "submit"), ("queued", "start"), ("queued", "adopt"),
        ("running", "finish"), ("running", "fail"), ("running", "adopt"),
    }
    if (state, event) in legal:
        assert next_state(state, event) in JOB_STATES
    else:
        with pytest.raises(ServiceError):
            next_state(state, event)


def test_unknown_event_and_state_are_refused():
    with pytest.raises(ServiceError):
        next_state("queued", "vanish")
    with pytest.raises(ServiceError):
        next_state("limbo", "start")


@given(sequence=event_sequences)
def test_arbitrary_interleavings_never_reach_an_illegal_state(sequence):
    """Walk any event sequence; refusals change nothing, successes stay
    inside the defined state set, and terminal states are absorbing."""
    state = None
    for event in sequence:
        try:
            successor = next_state(state, event)
        except ServiceError:
            continue  # refused: the machine must be unchanged
        assert successor in JOB_STATES
        assert state not in TERMINAL_STATES  # nothing leaves done/failed
        state = successor


@given(sequence=event_sequences)
def test_interleavings_with_progress_converge_to_a_terminal_state(sequence):
    """Any sequence that keeps offering finish/fail eventually terminates:
    append the happy-path suffix and the job always lands terminal."""
    state = None
    for event in list(sequence) + ["submit", "start", "finish"]:
        try:
            state = next_state(state, event)
        except ServiceError:
            continue
    assert state in JOB_STATES
    # Once submitted, forced progress ends terminal: replay greedily.
    if state not in TERMINAL_STATES:
        for event in ("start", "finish"):
            try:
                state = next_state(state, event)
            except ServiceError:
                pass
    assert state in TERMINAL_STATES


# -- the persistent store, against the pure model ------------------------- #

@settings(max_examples=40, deadline=None)
@given(sequence=event_sequences)
def test_job_store_agrees_with_the_pure_machine(tmp_path_factory, sequence):
    """Apply one event stream to a JobStore and the model in lockstep.

    The store's guarded SQL transitions must accept exactly the events
    the pure machine accepts and land in exactly the state it predicts.
    ``start`` reports refusal as ``False`` (that is the worker-claim
    contract); ``finish``/``fail`` raise; ``submit`` reports ``False``
    for duplicates; ``adopt`` is a global scan and always legal.
    """
    store = JobStore(
        tmp_path_factory.mktemp("machine") / "jobs.sqlite3"
    )
    job_id = "j" * 64
    model = None
    for event in sequence:
        try:
            predicted = next_state(model, event)
            legal = True
        except ServiceError:
            predicted, legal = model, False
        if event == "submit":
            assert store.submit(job_id, "run", "label", {"k": 1}) is legal
        elif event == "start":
            assert store.start(job_id) is legal
        elif event == "adopt":
            adopted = store.adopt_orphans()
            assert adopted == ([job_id] if model == "running" else [])
        elif legal:
            if event == "finish":
                store.finish(job_id, {"ok": True}, simulated=1)
            else:
                store.fail(job_id, "boom")
        else:
            with pytest.raises(ServiceError):
                if event == "finish":
                    store.finish(job_id, {"ok": True}, simulated=1)
                else:
                    store.fail(job_id, "boom")
        model = predicted
        record = store.get(job_id)
        assert (record["state"] if record else None) == model
    counts = store.counts()
    assert sum(counts.values()) == (0 if model is None else 1)
    if model is not None:
        assert counts[model] == 1


# -- store bookkeeping ----------------------------------------------------- #

def test_store_records_round_trip(tmp_path):
    store = JobStore(tmp_path / "jobs.sqlite3")
    assert store.get("missing") is None
    assert store.submit("a" * 64, "run", "venice/hm_0", {"kind": "run"})
    assert not store.submit("a" * 64, "run", "venice/hm_0", {"kind": "run"})
    assert store.queued_ids() == ["a" * 64]
    assert store.start("a" * 64)
    assert not store.start("a" * 64)  # the claim is exclusive
    store.finish("a" * 64, {"answer": 42}, simulated=3)
    record = store.get("a" * 64)
    assert record["state"] == "done"
    assert record["attempts"] == 1
    assert record["simulated"] == 3
    assert record["result"] == {"answer": 42}
    assert record["payload"] == {"kind": "run"}
    assert record["finished_at"] >= record["started_at"]
    summaries = store.list()
    assert len(summaries) == 1
    assert "payload" not in summaries[0]
    assert store.counts() == {
        "queued": 0, "running": 0, "done": 1, "failed": 0,
    }


def test_store_failure_and_adoption(tmp_path):
    store = JobStore(tmp_path / "jobs.sqlite3")
    store.submit("b" * 64, "sweep", "sweep[2]", {"kind": "sweep"})
    store.start("b" * 64)
    store.fail("b" * 64, "traceback text")
    assert store.get("b" * 64)["error"] == "traceback text"

    store.submit("c" * 64, "run", "other", {"kind": "run"})
    store.start("c" * 64)
    # A crashed daemon leaves 'running' records; adoption re-queues them
    # (and only them), resetting the start timestamp.
    assert store.adopt_orphans() == ["c" * 64]
    record = store.get("c" * 64)
    assert record["state"] == "queued"
    assert record["started_at"] is None
    assert record["attempts"] == 1  # attempts count dispatches, not adoptions
    assert store.adopt_orphans() == []
