"""Fixtures for the service battery (helpers live in service_helpers.py)."""

from __future__ import annotations

import pytest

from service_helpers import ServiceDaemon


@pytest.fixture
def daemon(tmp_path):
    """One live daemon on a fresh state directory, torn down afterwards."""
    instance = ServiceDaemon(tmp_path / "state").start()
    yield instance
    instance.stop()
