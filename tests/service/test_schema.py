"""Submission schema: payload -> Job is pure, canonical, and reversible."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.service.schema import (
    JOB_KINDS,
    job_from_payload,
    job_from_record,
)


def test_run_job_id_is_the_spec_digest():
    job = job_from_payload(
        {"design": "venice", "workload": "hm_0", "requests": 80, "seed": 5}
    )
    assert job.kind == "run"
    assert len(job.specs) == 1
    assert job.job_id == job.specs[0].digest
    assert job.specs[0].design == "venice"
    assert job.specs[0].scale.requests == 80
    assert job.specs[0].scale.seed == 5


def test_submission_is_a_pure_function_of_the_payload():
    payload = {"kind": "sweep", "designs": ["venice", "baseline"],
               "workloads": ["hm_0"], "requests": 60}
    first = job_from_payload(payload)
    second = job_from_payload(dict(payload))
    assert first.job_id == second.job_id
    assert first.specs == second.specs
    # Any semantic change moves the id.
    changed = job_from_payload({**payload, "requests": 61})
    assert changed.job_id != first.job_id


def test_defaults_give_the_canonical_single_run():
    job = job_from_payload({})
    assert job.kind == "run"
    assert job.specs[0].design == "venice"
    assert job.specs[0].workload == "hm_0"
    assert job.specs[0].preset == "performance-optimized"


def test_mix_workloads_resolve_as_mixes():
    job = job_from_payload({"workload": "mix1", "requests": 60})
    assert job.specs[0].mix is True


def test_sweep_is_the_designs_by_workloads_cross_product():
    job = job_from_payload(
        {
            "kind": "sweep",
            "designs": ["venice", "baseline"],
            "workloads": ["hm_0", "mds_0"],
            "requests": 60,
        }
    )
    cells = [(spec.design, spec.workload) for spec in job.specs]
    assert cells == [
        ("venice", "hm_0"), ("baseline", "hm_0"),
        ("venice", "mds_0"), ("baseline", "mds_0"),
    ]
    assert "2 designs x 2 workloads" in job.label


def test_fleet_job_id_is_the_fleet_digest():
    job = job_from_payload(
        {"kind": "fleet", "design": "venice", "devices": 3, "tenants": 4,
         "requests": 60}
    )
    assert job.fleet is not None
    assert job.job_id == job.fleet.digest
    assert len(job.specs) == 3
    assert job.canonical["tenants"] == 4


def test_fleet_accepts_explicit_member_designs():
    job = job_from_payload(
        {"kind": "fleet", "designs": ["venice", "baseline"], "requests": 60}
    )
    assert [spec.design for spec in job.specs] == ["venice", "baseline"]
    with pytest.raises(ConfigurationError, match="not both"):
        job_from_payload(
            {"kind": "fleet", "design": "venice", "designs": ["venice"]}
        )


@pytest.mark.parametrize(
    "payload, fragment",
    [
        ([1, 2], "JSON object"),
        ({"kind": "banana"}, "banana"),
        ({"desing": "venice"}, "desing"),
        ({"design": 7}, "must be a string"),
        ({"requests": "many"}, "must be an integer"),
        ({"requests": True}, "must be an integer"),
        ({"requests": 0}, ">= 1"),
        ({"seed": -1}, ">= 0"),
        ({"kind": "sweep", "designs": []}, "non-empty list"),
        ({"kind": "sweep", "workloads": [3]}, "non-empty list"),
        ({"kind": "fleet", "warmup": "x"}, "warmup"),
        ({"kind": "fleet", "early_stop": "x"}, "early_stop"),
        ({"kind": "fleet", "devices": 0}, ">= 1"),
    ],
)
def test_malformed_payloads_raise_configuration_errors(payload, fragment):
    with pytest.raises(ConfigurationError, match=fragment):
        job_from_payload(payload)


@pytest.mark.parametrize(
    "payload",
    [
        {"design": "venice", "workload": "hm_0", "requests": 60},
        {"kind": "sweep", "designs": ["venice", "baseline"],
         "workloads": ["hm_0"], "requests": 60},
        {"kind": "fleet", "design": "venice", "devices": 2, "tenants": 3,
         "sample": 0, "requests": 60},
    ],
    ids=JOB_KINDS,
)
def test_canonical_records_round_trip(payload):
    """job_from_record is the lossless inverse -- a restarted daemon
    re-executes exactly what was accepted."""
    job = job_from_payload(payload)
    rebuilt = job_from_record(job.job_id, job.canonical)
    assert rebuilt.job_id == job.job_id
    assert rebuilt.kind == job.kind
    assert rebuilt.specs == job.specs
    assert rebuilt.canonical == job.canonical
    if job.fleet is not None:
        assert rebuilt.fleet.digest == job.fleet.digest
