"""Shared machinery for the service battery: a real daemon over real HTTP.

Every test here is black-box: the daemon runs as a ``venice-sim serve``
subprocess on an ephemeral port, and all interaction goes through stdlib
``urllib`` against the live socket -- no mocked handlers, no in-process
shortcuts.  :class:`ServiceDaemon` wraps one daemon process; the
``daemon`` fixture (in ``conftest.py``) boots one on a fresh state
directory and guarantees teardown even when a test SIGKILLs it first.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Dict, Optional, Tuple

import pytest

import repro

#: Seconds to wait for a daemon to write its discovery file and pass
#: /health.  Generous: CI machines cold-import the whole package.
BOOT_TIMEOUT_S = 60.0

posix_only = pytest.mark.skipif(
    sys.platform == "win32", reason="requires POSIX signals"
)


def _child_env() -> Dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parents[1])
    return env


class ServiceDaemon:
    """One ``venice-sim serve`` subprocess plus its HTTP client helpers.

    ``start`` waits until the discovery file names *this* process (a
    restart on a reused state directory must not trust the dead daemon's
    stale ``service.json``) and ``/health`` answers 200.
    """

    def __init__(self, state_dir: Path, *, jobs: int = 2) -> None:
        self.state_dir = Path(state_dir)
        self.jobs = jobs
        self.proc: Optional[subprocess.Popen] = None
        self.base_url = ""

    # -- lifecycle -------------------------------------------------------- #

    def start(self) -> "ServiceDaemon":
        assert self.proc is None, "daemon already running"
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--state", str(self.state_dir),
                "--port", "0",
                "--jobs", str(self.jobs),
            ],
            env=_child_env(),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        discovery = self.state_dir / "service.json"
        deadline = time.time() + BOOT_TIMEOUT_S
        while time.time() < deadline:
            if self.proc.poll() is not None:
                raise AssertionError(
                    "daemon exited during boot:\n"
                    + self.proc.stderr.read().decode()
                )
            if discovery.exists():
                info = json.loads(discovery.read_text())
                if info.get("pid") == self.proc.pid:
                    self.base_url = f"http://{info['host']}:{info['port']}"
                    break
            time.sleep(0.05)
        else:
            raise AssertionError("daemon never wrote its discovery file")
        deadline = time.time() + BOOT_TIMEOUT_S
        while time.time() < deadline:
            try:
                status, _ = self.get("/health")
            except (urllib.error.URLError, ConnectionError):
                time.sleep(0.05)
                continue
            if status == 200:
                return self
        raise AssertionError("daemon never passed /health")

    def stop(self) -> None:
        """Graceful shutdown (SIGINT, like ^C on the foreground daemon)."""
        if self.proc is None:
            return
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGINT)
            try:
                self.proc.wait(timeout=30)
            except subprocess.TimeoutExpired:  # pragma: no cover - hang guard
                self.proc.kill()
                self.proc.wait(timeout=10)
        self.proc.stdout.close()
        self.proc.stderr.close()
        self.proc = None

    def kill(self) -> None:
        """SIGKILL -- the crash the restart battery recovers from."""
        assert self.proc is not None
        self.proc.kill()
        self.proc.wait(timeout=30)
        self.proc.stdout.close()
        self.proc.stderr.close()
        self.proc = None

    # -- HTTP helpers ----------------------------------------------------- #

    def get(self, path: str) -> Tuple[int, object]:
        """GET ``path``; returns ``(status, parsed body)`` even for errors."""
        try:
            with urllib.request.urlopen(self.base_url + path, timeout=30) as r:
                return r.status, _parse(r)
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read().decode())

    def post(self, path: str, body: bytes) -> Tuple[int, object]:
        """POST raw ``body``; returns ``(status, parsed body)``."""
        request = urllib.request.Request(
            self.base_url + path, data=body, method="POST"
        )
        try:
            with urllib.request.urlopen(request, timeout=30) as r:
                return r.status, _parse(r)
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read().decode())

    def post_json(self, path: str, payload: object) -> Tuple[int, object]:
        """POST ``payload`` as JSON; returns ``(status, parsed body)``."""
        return self.post(path, json.dumps(payload).encode("utf-8"))

    def wait_for(self, job_id: str, timeout: float = 300.0) -> Dict[str, object]:
        """Poll one job until it reaches a terminal state; return the record."""
        deadline = time.time() + timeout
        while time.time() < deadline:
            status, record = self.get(f"/v1/runs/{job_id}")
            assert status == 200, record
            if record["state"] in ("done", "failed"):
                return record
            time.sleep(0.1)
        raise AssertionError(f"job {job_id[:12]} never finished")


def _parse(response) -> object:
    body = response.read()
    if "json" in (response.headers.get("Content-Type") or ""):
        return json.loads(body.decode("utf-8"))
    return body.decode("utf-8")
