"""In-process service internals the black-box battery cannot reach:
worker failure handling, discovery-file errors, bind failures, lifecycle
guards.  Everything user-visible stays covered over real HTTP in the
sibling modules."""

from __future__ import annotations

import json
import socket

import pytest

from repro.errors import ServiceError
from repro.service import (
    DISCOVERY_FILE,
    ServiceConfig,
    SimulationService,
    read_discovery,
)


def _service(tmp_path, **overrides) -> SimulationService:
    return SimulationService(
        ServiceConfig(state_dir=tmp_path / "state", **overrides)
    )


def test_worker_failure_marks_the_job_failed(tmp_path):
    service = _service(tmp_path)
    # A payload that validates structurally but cannot rebuild into specs
    # (corrupt canonical record) fails inside the worker, not the daemon.
    service.job_store.submit(
        "f" * 64, "run", "broken", {"kind": "run", "specs": [{"bogus": 1}]}
    )
    assert service.job_store.start("f" * 64)
    service._execute("f" * 64)
    record = service.job_store.get("f" * 64)
    assert record["state"] == "failed"
    assert record["error"]  # the captured traceback travels with the job
    assert service._session["jobs_failed"] == 1
    assert service._session["jobs_done"] == 0


def test_lifecycle_guards_before_start(tmp_path):
    service = _service(tmp_path)
    with pytest.raises(ServiceError, match="not started"):
        service.serve_forever()
    with pytest.raises(ServiceError, match="not started"):
        _ = service.port
    with pytest.raises(ServiceError, match="not started"):
        _ = service.host
    service.shutdown()  # a never-started service shuts down as a no-op


def test_bind_failure_is_a_service_error(tmp_path):
    blocker = socket.socket()
    blocker.bind(("127.0.0.1", 0))
    blocker.listen(1)
    port = blocker.getsockname()[1]
    try:
        service = _service(tmp_path, port=port)
        with pytest.raises(ServiceError, match="cannot bind"):
            service.start()
    finally:
        blocker.close()


def test_start_writes_discovery_and_shutdown_is_idempotent(tmp_path):
    service = _service(tmp_path, verbose=True)
    service.start()
    try:
        info = read_discovery(service.state_dir)
        assert info["port"] == service.port
        assert info["host"] == service.host
        assert info["pid"] > 0
    finally:
        service.shutdown()
        service.shutdown()  # second call must be harmless


def test_read_discovery_errors(tmp_path):
    with pytest.raises(ServiceError, match="is the daemon running"):
        read_discovery(tmp_path)
    (tmp_path / DISCOVERY_FILE).write_text("{not json")
    with pytest.raises(ServiceError, match="unreadable"):
        read_discovery(tmp_path)


def test_verbose_logging_goes_to_stderr(tmp_path, capsys):
    service = _service(tmp_path, verbose=True)
    service.log("hello")
    assert "hello" in capsys.readouterr().err
    quiet = _service(tmp_path, verbose=False)
    quiet.log("silence")
    assert capsys.readouterr().err == ""


def test_submit_is_idempotent_in_process(tmp_path):
    from repro.service.schema import job_from_payload

    service = _service(tmp_path)
    job = job_from_payload({"requests": 40})
    record, created = service.submit(job)
    assert created is True
    assert record["state"] == "queued"
    again, created_again = service.submit(job)
    assert created_again is False
    assert again["job_id"] == record["job_id"]
    # Only the creator enqueued: one pending id in the worker queue.
    assert service._queue.qsize() == 1
    assert service.job_store.counts()["queued"] == 1
    assert json.loads(json.dumps(record["payload"])) == job.canonical
