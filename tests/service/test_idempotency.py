"""The idempotency half of the acceptance criteria, proven black-box.

Concurrent duplicate submissions must collapse onto one job -- hence one
simulation -- and resubmitting against a warm store must complete without
simulating anything, observed only through the HTTP API (job records,
``/health`` counters), never by reaching into the daemon.
"""

from __future__ import annotations

import threading

PAYLOAD = {"design": "venice", "workload": "hm_0", "requests": 40, "seed": 11}


def test_concurrent_duplicate_submissions_run_exactly_once(daemon):
    clients = 8
    responses = [None] * clients
    barrier = threading.Barrier(clients)

    def submit(index: int) -> None:
        barrier.wait()
        responses[index] = daemon.post_json("/v1/runs", PAYLOAD)

    threads = [
        threading.Thread(target=submit, args=(index,))
        for index in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    # Every caller got the same job id back...
    bodies = [body for _, body in responses]
    job_ids = {body["job_id"] for body in bodies}
    assert len(job_ids) == 1
    job_id = job_ids.pop()
    # ...exactly one of them created it (201); the rest observed it (200).
    assert sorted(status for status, _ in responses) == [200] * 7 + [201]
    assert sum(1 for body in bodies if body["created"]) == 1

    record = daemon.wait_for(job_id)
    assert record["state"] == "done"
    # One attempt, one simulation: the duplicates never dispatched.
    assert record["attempts"] == 1
    assert record["simulated"] == 1

    _, health = daemon.get("/health")
    assert health["jobs"]["done"] == 1
    assert health["session"]["simulations"] == 1
    assert health["store"]["results"] == 1


def test_warm_resubmission_completes_without_simulating(daemon):
    status, first = daemon.post_json("/v1/runs", PAYLOAD)
    assert status == 201
    first_record = daemon.wait_for(first["job_id"])
    assert first_record["simulated"] == 1

    # Resubmitting the identical payload is a pure read: same id, the
    # finished record comes straight back, nothing re-enters the queue.
    status, again = daemon.post_json("/v1/runs", PAYLOAD)
    assert status == 200
    assert again["created"] is False
    assert again["job_id"] == first["job_id"]
    assert again["state"] == "done"

    # A *different* job containing the same spec (a one-cell sweep maps
    # to a distinct job id) completes with zero simulations: the store
    # hit counters prove every cell came from cache.
    status, sweep = daemon.post_json(
        "/v1/runs",
        {
            "kind": "sweep",
            "designs": [PAYLOAD["design"]],
            "workloads": [PAYLOAD["workload"]],
            "requests": PAYLOAD["requests"],
            "seed": PAYLOAD["seed"],
        },
    )
    assert status == 201
    assert sweep["job_id"] != first["job_id"]
    sweep_record = daemon.wait_for(sweep["job_id"])
    assert sweep_record["state"] == "done"
    assert sweep_record["simulated"] == 0

    _, health = daemon.get("/health")
    assert health["session"]["simulations"] == 1  # still just the first run
    assert health["session"]["cache_hits"] >= 1
    assert health["store"]["results"] == 1
    # And the sweep's cached cell is byte-identical to the original run.
    assert (
        sweep_record["result"]["runs"][0]["result"]
        == first_record["result"]["result"]
    )
