"""Power/energy/area model tests (Table 4, §6.4, §6.6)."""

import pytest

from repro.config.presets import performance_optimized
from repro.interconnect.base import FabricStats
from repro.power.area import AreaModel, venice_area_report
from repro.power.models import EnergyAccountant, PowerModel


def test_table4_router_power():
    assert PowerModel().router_active_mw == pytest.approx(0.241)


def test_table4_link_power_and_channel_ratio():
    model = PowerModel()
    assert model.link_active_mw == pytest.approx(1.08)
    # "90% less power consumption than that of a shared channel bus".
    assert 1.0 - model.link_active_mw / model.channel_active_mw == pytest.approx(
        0.9, abs=0.01
    )


def test_table4_router_area_is_8_percent_of_flash_chip():
    model = AreaModel()
    # The paper quotes ~8 mm^2 per router, 8% of a 100 mm^2 flash chip.
    assert model.router_pcb_area_mm2() == pytest.approx(8.0, abs=0.1)
    assert model.router_overhead_fraction() == pytest.approx(0.08, abs=0.002)


def test_table4_link_area_saving_44_percent():
    model = AreaModel()
    saving = model.link_area_saving_fraction(8, 8, 8)
    # Footnote 7: 1 - (112 x 0.04) / (8 x 1) = 0.44.
    assert saving == pytest.approx(0.44, abs=0.001)


def test_area_report_contents():
    config = performance_optimized(blocks_per_plane=2, pages_per_block=2)
    report = venice_area_report(config)
    assert report["links_total"] == 112.0
    assert report["routers_total"] == 64.0
    assert report["router_logic_um2"] == pytest.approx(614.0)
    assert report["link_area_saving_fraction"] == pytest.approx(0.44, abs=0.001)


def test_area_rectangular_geometries():
    model = AreaModel()
    assert model.total_link_area_vs_bus(4, 16, 4) == pytest.approx(
        (4 * 15 + 3 * 16) * 0.04 / 4
    )


def test_energy_accounting_components():
    accountant = EnergyAccountant(PowerModel(
        read_mw=40, program_mw=55, erase_mw=45,
        channel_active_mw=10.8, link_active_mw=1.08,
        router_active_mw=0.241, static_mw=850,
    ))
    stats = FabricStats()
    stats.channel_busy_ns = 1_000_000  # 1 ms of channel activity
    breakdown = accountant.account(
        reads=100, programs=10, erases=1,
        read_ns=3_000, program_ns=100_000, erase_ns=1_000_000,
        fabric_stats=stats,
        execution_time_ns=10_000_000,
    )
    # Hand-checked: 40mW*0.3ms + 55mW*1ms + 45mW*1ms + 10.8mW*1ms + 850mW*10ms
    assert breakdown.flash_read_mj == pytest.approx(40 * 300_000 / 1e9)
    assert breakdown.flash_program_mj == pytest.approx(55 * 1_000_000 / 1e9)
    assert breakdown.flash_erase_mj == pytest.approx(45 * 1_000_000 / 1e9)
    assert breakdown.channel_mj == pytest.approx(10.8 * 1_000_000 / 1e9)
    assert breakdown.static_mj == pytest.approx(850 * 10_000_000 / 1e9)
    assert breakdown.total_mj == pytest.approx(
        breakdown.components["flash"]
        + breakdown.components["interconnect"]
        + breakdown.components["static"]
    )


def test_average_power_is_energy_over_time():
    accountant = EnergyAccountant()
    stats = FabricStats()
    breakdown = accountant.account(
        reads=0, programs=0, erases=0,
        read_ns=0, program_ns=1, erase_ns=1,
        fabric_stats=stats,
        execution_time_ns=1_000_000_000,  # 1 s
    )
    # Only static power over 1 s: average power == static power.
    assert breakdown.average_power_mw(1_000_000_000) == pytest.approx(
        PowerModel().static_mw
    )


def test_link_energy_below_channel_energy_for_same_traffic():
    accountant = EnergyAccountant()
    channel_stats = FabricStats()
    channel_stats.channel_busy_ns = 5_000_000
    mesh_stats = FabricStats()
    mesh_stats.link_hop_busy_ns = 5_000_000 * 5  # five links per transfer
    mesh_stats.router_active_ns = 5_000_000 * 6
    common = dict(
        reads=0, programs=0, erases=0, read_ns=1, program_ns=1, erase_ns=1,
        execution_time_ns=10_000_000,
    )
    channel = accountant.account(fabric_stats=channel_stats, **common)
    mesh = accountant.account(fabric_stats=mesh_stats, **common)
    # Even with 5x the busy link-time, the mesh burns less than the bus.
    assert mesh.total_mj < channel.total_mj


def test_power_model_validation():
    import pytest
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        PowerModel(read_mw=-1)
