"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import AllOf, Engine, OneShotEvent, Process, Timeout


def test_clock_starts_at_zero():
    assert Engine().now == 0


def test_schedule_runs_in_time_order():
    engine = Engine()
    seen = []
    engine.schedule(30, lambda: seen.append("c"))
    engine.schedule(10, lambda: seen.append("a"))
    engine.schedule(20, lambda: seen.append("b"))
    engine.run()
    assert seen == ["a", "b", "c"]


def test_simultaneous_events_run_fifo():
    engine = Engine()
    seen = []
    for tag in range(5):
        engine.schedule(7, lambda tag=tag: seen.append(tag))
    engine.run()
    assert seen == [0, 1, 2, 3, 4]


def test_negative_delay_rejected():
    engine = Engine()
    with pytest.raises(SimulationError):
        engine.schedule(-1, lambda: None)


def test_negative_timeout_rejected():
    with pytest.raises(SimulationError):
        Timeout(-5)


def test_process_timeout_advances_clock():
    engine = Engine()
    marks = []

    def proc():
        yield Timeout(100)
        marks.append(engine.now)
        yield Timeout(50)
        marks.append(engine.now)

    engine.process(proc())
    engine.run()
    assert marks == [100, 150]


def test_process_return_value_exposed():
    engine = Engine()

    def proc():
        yield Timeout(1)
        return 42

    handle = engine.process(proc())
    engine.run()
    assert handle.done
    assert handle.result == 42


def test_event_wakes_waiter_with_value():
    engine = Engine()
    event = engine.event("signal")
    got = []

    def waiter():
        value = yield event
        got.append((engine.now, value))

    def trigger():
        yield Timeout(500)
        event.succeed("payload")

    engine.process(waiter())
    engine.process(trigger())
    engine.run()
    assert got == [(500, "payload")]


def test_yield_on_already_triggered_event_resumes_immediately():
    engine = Engine()
    event = engine.event()
    event.succeed(7)
    got = []

    def waiter():
        value = yield event
        got.append(value)

    engine.process(waiter())
    engine.run()
    assert got == [7]


def test_event_cannot_trigger_twice():
    engine = Engine()
    event = engine.event()
    event.succeed(None)
    with pytest.raises(SimulationError):
        event.succeed(None)


def test_process_joins_child_process():
    engine = Engine()
    order = []

    def child():
        yield Timeout(10)
        order.append("child")
        return "child-result"

    def parent():
        result = yield engine.process(child())
        order.append(f"parent-saw-{result}")

    engine.process(parent())
    engine.run()
    assert order == ["child", "parent-saw-child-result"]


def test_all_of_waits_for_every_child():
    engine = Engine()
    done_at = []

    def make(delay):
        def proc():
            yield Timeout(delay)
            return delay

        return proc()

    def parent():
        results = yield AllOf([engine.process(make(d)) for d in (30, 10, 20)])
        done_at.append((engine.now, results))

    engine.process(parent())
    engine.run()
    assert done_at == [(30, [30, 10, 20])]


def test_all_of_empty_completes_immediately():
    engine = Engine()
    seen = []

    def parent():
        results = yield AllOf([])
        seen.append(results)

    engine.process(parent())
    engine.run()
    assert seen == [[]]


def test_all_of_mixes_timeouts_and_events():
    engine = Engine()
    event = engine.event()
    seen = []

    def trigger():
        yield Timeout(5)
        event.succeed("ev")

    def parent():
        results = yield AllOf([Timeout(20), event])
        seen.append((engine.now, results))

    engine.process(parent())
    engine.process(trigger())
    engine.run()
    assert seen == [(20, [None, "ev"])]


def test_run_until_stops_clock():
    engine = Engine()
    seen = []
    engine.schedule(10, lambda: seen.append(1))
    engine.schedule(100, lambda: seen.append(2))
    engine.run(until=50)
    assert seen == [1]
    assert engine.now == 50
    engine.run()
    assert seen == [1, 2]


def test_max_events_guards_against_livelock():
    engine = Engine()

    def forever():
        while True:
            yield Timeout(1)

    engine.process(forever())
    with pytest.raises(SimulationError):
        engine.run(max_events=100)


def test_yielding_non_waitable_raises():
    engine = Engine()

    def bad():
        yield "not-a-waitable"

    engine.process(bad())
    with pytest.raises(SimulationError):
        engine.run()


def test_processed_event_count_increments():
    engine = Engine()
    engine.schedule(1, lambda: None)
    engine.schedule(2, lambda: None)
    engine.run()
    assert engine.processed_events == 2
    assert engine.pending_events == 0
