"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import AllOf, Engine, OneShotEvent, Process, Timeout


def test_clock_starts_at_zero():
    assert Engine().now == 0


def test_schedule_runs_in_time_order():
    engine = Engine()
    seen = []
    engine.schedule(30, lambda: seen.append("c"))
    engine.schedule(10, lambda: seen.append("a"))
    engine.schedule(20, lambda: seen.append("b"))
    engine.run()
    assert seen == ["a", "b", "c"]


def test_simultaneous_events_run_fifo():
    engine = Engine()
    seen = []
    for tag in range(5):
        engine.schedule(7, lambda tag=tag: seen.append(tag))
    engine.run()
    assert seen == [0, 1, 2, 3, 4]


def test_negative_delay_rejected():
    engine = Engine()
    with pytest.raises(SimulationError):
        engine.schedule(-1, lambda: None)


def test_negative_timeout_rejected():
    with pytest.raises(SimulationError):
        Timeout(-5)


def test_process_timeout_advances_clock():
    engine = Engine()
    marks = []

    def proc():
        yield Timeout(100)
        marks.append(engine.now)
        yield Timeout(50)
        marks.append(engine.now)

    engine.process(proc())
    engine.run()
    assert marks == [100, 150]


def test_process_return_value_exposed():
    engine = Engine()

    def proc():
        yield Timeout(1)
        return 42

    handle = engine.process(proc())
    engine.run()
    assert handle.done
    assert handle.result == 42


def test_event_wakes_waiter_with_value():
    engine = Engine()
    event = engine.event("signal")
    got = []

    def waiter():
        value = yield event
        got.append((engine.now, value))

    def trigger():
        yield Timeout(500)
        event.succeed("payload")

    engine.process(waiter())
    engine.process(trigger())
    engine.run()
    assert got == [(500, "payload")]


def test_yield_on_already_triggered_event_resumes_immediately():
    engine = Engine()
    event = engine.event()
    event.succeed(7)
    got = []

    def waiter():
        value = yield event
        got.append(value)

    engine.process(waiter())
    engine.run()
    assert got == [7]


def test_event_cannot_trigger_twice():
    engine = Engine()
    event = engine.event()
    event.succeed(None)
    with pytest.raises(SimulationError):
        event.succeed(None)


def test_process_joins_child_process():
    engine = Engine()
    order = []

    def child():
        yield Timeout(10)
        order.append("child")
        return "child-result"

    def parent():
        result = yield engine.process(child())
        order.append(f"parent-saw-{result}")

    engine.process(parent())
    engine.run()
    assert order == ["child", "parent-saw-child-result"]


def test_all_of_waits_for_every_child():
    engine = Engine()
    done_at = []

    def make(delay):
        def proc():
            yield Timeout(delay)
            return delay

        return proc()

    def parent():
        results = yield AllOf([engine.process(make(d)) for d in (30, 10, 20)])
        done_at.append((engine.now, results))

    engine.process(parent())
    engine.run()
    assert done_at == [(30, [30, 10, 20])]


def test_all_of_empty_completes_immediately():
    engine = Engine()
    seen = []

    def parent():
        results = yield AllOf([])
        seen.append(results)

    engine.process(parent())
    engine.run()
    assert seen == [[]]


def test_all_of_mixes_timeouts_and_events():
    engine = Engine()
    event = engine.event()
    seen = []

    def trigger():
        yield Timeout(5)
        event.succeed("ev")

    def parent():
        results = yield AllOf([Timeout(20), event])
        seen.append((engine.now, results))

    engine.process(parent())
    engine.process(trigger())
    engine.run()
    assert seen == [(20, [None, "ev"])]


def test_run_until_stops_clock():
    engine = Engine()
    seen = []
    engine.schedule(10, lambda: seen.append(1))
    engine.schedule(100, lambda: seen.append(2))
    engine.run(until=50)
    assert seen == [1]
    assert engine.now == 50
    engine.run()
    assert seen == [1, 2]


def test_max_events_guards_against_livelock():
    engine = Engine()

    def forever():
        while True:
            yield Timeout(1)

    engine.process(forever())
    with pytest.raises(SimulationError):
        engine.run(max_events=100)


def test_yielding_non_waitable_raises():
    engine = Engine()

    def bad():
        yield "not-a-waitable"

    engine.process(bad())
    with pytest.raises(SimulationError):
        engine.run()


def test_processed_event_count_increments():
    engine = Engine()
    engine.schedule(1, lambda: None)
    engine.schedule(2, lambda: None)
    engine.run()
    assert engine.processed_events == 2
    assert engine.pending_events == 0


# --------------------------------------------------------------------- #
# Plain-int timeouts and Grant (hot-path waitables)
# --------------------------------------------------------------------- #


def test_yielding_plain_int_is_a_timeout():
    engine = Engine()
    marks = []

    def proc():
        yield 100
        marks.append(engine.now)
        yield 0  # micro-queue: resumes at the same timestamp
        marks.append(engine.now)

    engine.process(proc())
    engine.run()
    assert marks == [100, 100]


def test_yielding_negative_int_raises():
    engine = Engine()

    def proc():
        yield -3

    engine.process(proc())
    with pytest.raises(SimulationError):
        engine.run()


def test_engine_timeout_returns_validated_delay():
    engine = Engine()
    assert engine.timeout(25) == 25
    with pytest.raises(SimulationError):
        engine.timeout(-1)


def test_grant_resumes_immediately_with_value():
    from repro.sim.engine import Grant

    engine = Engine()
    got = []

    def proc():
        value = yield Grant("payload")
        got.append((engine.now, value))
        yield 10
        got.append((engine.now, None))

    engine.process(proc())
    engine.run()
    assert got == [(0, "payload"), (10, None)]


def test_zero_delay_schedules_run_after_same_time_heap_events():
    """Micro-queue entries never overtake already-queued events at now."""
    engine = Engine()
    seen = []
    engine.schedule(5, lambda: seen.append("first"))
    engine.schedule(5, lambda: (seen.append("second"), engine.schedule(0, lambda: seen.append("micro"))))
    engine.schedule(5, lambda: seen.append("third"))
    engine.run()
    assert seen == ["first", "second", "third", "micro"]


# --------------------------------------------------------------------- #
# AllOf regression tests (satellite: child wiring without heap round-trips)
# --------------------------------------------------------------------- #


def test_all_of_preserves_result_order_regardless_of_completion_order():
    engine = Engine()
    seen = []

    def make(delay, tag):
        def proc():
            yield Timeout(delay)
            return tag

        return proc()

    def parent():
        results = yield AllOf(
            [engine.process(make(d, t)) for d, t in ((40, "a"), (10, "b"), (25, "c"))]
        )
        seen.append((engine.now, results))

    engine.process(parent())
    engine.run()
    assert seen == [(40, ["a", "b", "c"])]


def test_all_of_with_zero_timeout_child_completes_without_heap_round_trip():
    """A Timeout(0) child is folded in at wiring time (no extra event)."""
    engine = Engine()
    seen = []
    event = engine.event()
    event.succeed("ev")

    def parent():
        results = yield AllOf([Timeout(0), event, 0])
        seen.append((engine.now, results))

    engine.process(parent())
    engine.run()
    assert seen == [(0, [None, "ev", None])]
    # Exactly one scheduler entry fired in total: the parent's own process
    # start.  Pre-fix wiring scheduled one extra event per elapsed child.
    assert engine.processed_events == 1


def test_all_of_empty_children_completes_at_current_time():
    engine = Engine()
    seen = []

    def parent():
        yield 7
        results = yield AllOf([])
        seen.append((engine.now, results))

    engine.process(parent())
    engine.run()
    assert seen == [(7, [])]


def test_all_of_mixes_done_and_pending_children():
    engine = Engine()
    done_child_seen = []

    def quick():
        yield Timeout(1)
        return "quick"

    def slow():
        yield Timeout(30)
        return "slow"

    quick_proc = engine.process(quick())
    engine.run(until=5)
    assert quick_proc.done

    def parent():
        results = yield AllOf([quick_proc, engine.process(slow())])
        done_child_seen.append((engine.now, results))

    engine.process(parent())
    engine.run()
    assert done_child_seen == [(35, ["quick", "slow"])]


def test_all_of_rejects_non_waitable_child():
    engine = Engine()

    def parent():
        yield AllOf(["nope"])

    engine.process(parent())
    with pytest.raises(SimulationError):
        engine.run()


def test_process_completion_event_view_still_works():
    engine = Engine()
    got = []

    def child():
        yield Timeout(5)
        return 13

    proc = engine.process(child())
    proc.completion.add_callback(got.append)
    engine.run()
    assert got == [13]
    # After completion the view reports the result immediately.
    late = []
    proc.completion.add_callback(late.append)
    assert late == [13]
