"""Steady-state detection: policy grammar and the convergence monitor."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.convergence import (
    DEFAULT_MIN_REQUESTS,
    DEFAULT_PATIENCE,
    DEFAULT_TOLERANCE,
    DEFAULT_WINDOW,
    ConvergenceMonitor,
    EarlyStopPolicy,
)
from repro.sim.stats import LatencyRecorder


class TestEarlyStopPolicyGrammar:
    def test_round_trips_through_canonical_form(self):
        policy = EarlyStopPolicy.parse("min 300;window 50; tolerance 0.02")
        assert policy == EarlyStopPolicy(
            window=50, tolerance=0.02, patience=DEFAULT_PATIENCE,
            min_requests=300,
        )
        assert policy.to_spec() == (
            "window 50; tolerance 0.02; patience 2; min 300"
        )
        assert EarlyStopPolicy.parse(policy.to_spec()) == policy

    def test_empty_spec_gives_all_defaults(self):
        policy = EarlyStopPolicy.parse("")
        assert policy == EarlyStopPolicy(
            window=DEFAULT_WINDOW, tolerance=DEFAULT_TOLERANCE,
            patience=DEFAULT_PATIENCE, min_requests=DEFAULT_MIN_REQUESTS,
        )

    @pytest.mark.parametrize("bad", [
        "window 0",
        "tolerance 0",
        "tolerance 1.0",
        "patience 0",
        "min 0",
        "window 10; window 20",   # duplicate clause
        "horizon 5",              # unknown clause
        "window ten",             # unparseable value
        "window 2.5",             # numeric but not an int
        "tolerance 0.0.1",        # numeric-looking but not a float
    ])
    def test_rejects_malformed_specs(self, bad):
        with pytest.raises(ConfigurationError):
            EarlyStopPolicy.parse(bad)


def _feed(monitor, recorder, values):
    """Record each latency and return the observations that fired."""
    fired = []
    for value in values:
        recorder.record(value)
        fired.append(monitor.observe())
    return fired


class TestConvergenceMonitor:
    def test_fires_once_after_patience_stable_windows(self):
        recorder = LatencyRecorder()
        policy = EarlyStopPolicy(window=10, tolerance=0.01, patience=2,
                                 min_requests=20)
        monitor = ConvergenceMonitor(policy, recorder)
        # Identical samples: every window agrees exactly with the last.
        fired = _feed(monitor, recorder, [1000] * 60)
        # Checks at 10 (baseline), 20 (stable=1), 30 (stable=2 -> fire).
        assert fired.index(True) == 29
        assert sum(fired) == 1
        assert monitor.converged
        # Latched: further observations never re-fire.
        assert not any(_feed(monitor, recorder, [1000] * 20))

    def test_quantile_jump_resets_patience(self):
        recorder = LatencyRecorder()
        policy = EarlyStopPolicy(window=10, tolerance=0.05, patience=2,
                                 min_requests=10)
        monitor = ConvergenceMonitor(policy, recorder)
        # One stable window, then a 100x tail shift, then stability again.
        assert not any(_feed(monitor, recorder, [1000] * 20))
        assert not any(_feed(monitor, recorder, [100_000] * 10))
        fired = _feed(monitor, recorder, [100_000] * 60)
        # The jump reset _stable, so fresh agreeing windows are needed --
        # and the cumulative p50 keeps moving until the new regime
        # dominates the histogram, delaying agreement further.
        assert True in fired
        assert fired.index(True) >= 10

    def test_min_requests_floor_delays_firing(self):
        recorder = LatencyRecorder()
        policy = EarlyStopPolicy(window=10, tolerance=0.01, patience=1,
                                 min_requests=100)
        monitor = ConvergenceMonitor(policy, recorder)
        fired = _feed(monitor, recorder, [500] * 120)
        # Stable from the second check, but gated until 100 completions.
        assert fired.index(True) == 99

    def test_no_firing_between_window_boundaries(self):
        recorder = LatencyRecorder()
        monitor = ConvergenceMonitor(
            EarlyStopPolicy(window=10, patience=1, min_requests=10), recorder
        )
        recorder.record(100)
        assert monitor.observe() is False
        assert monitor.checks == 0

    def test_zero_quantile_agrees_only_with_zero(self):
        # A quantile of exactly 0.0 has no relative tolerance: it agrees
        # only with another 0.0 (the recorder can report 0 for p50 when
        # every sample lands in the lowest bucket).
        monitor = ConvergenceMonitor(EarlyStopPolicy(), LatencyRecorder())
        assert monitor._within_tolerance((0.0, 500.0), (0.0, 500.0))
        assert not monitor._within_tolerance((0.0, 500.0), (1.0, 500.0))
