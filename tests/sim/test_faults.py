"""FaultSchedule grammar, canonicalisation, and the engine injector."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.engine import Engine
from repro.sim.faults import (
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultSchedule,
    FaultSink,
)


# --------------------------------------------------------------------- #
# grammar
# --------------------------------------------------------------------- #

def test_parse_link_clause_units_and_canonical_form():
    schedule = FaultSchedule.parse("100us link (0,1)-(0,2) down")
    assert len(schedule) == 1
    event = schedule.events[0]
    assert event.time_ns == 100_000
    assert event.kind is FaultKind.LINK_DOWN
    assert event.link == ((0, 1), (0, 2))
    assert schedule.to_spec() == "100000ns link (0,1)-(0,2) down"


def test_parse_all_clause_kinds():
    text = (
        "0 link (1,1)-(1,2) down; 5us link (1,1)-(1,2) up; "
        "1ms router (3,4) down; 2ms router (3,4) up; "
        "3s die 1.2.0 down; 4s die 1.2.0 up; "
        "10us ecc-burst rate=0.25 for=200us"
    )
    schedule = FaultSchedule.parse(text)
    kinds = [event.kind for event in schedule]
    assert kinds == [
        FaultKind.LINK_DOWN,
        FaultKind.LINK_UP,
        FaultKind.ECC_BURST,
        FaultKind.ROUTER_DOWN,
        FaultKind.ROUTER_UP,
        FaultKind.DIE_DOWN,
        FaultKind.DIE_UP,
    ]
    burst = schedule.events[2]
    assert burst.rate == 0.25
    assert burst.duration_ns == 200_000


def test_link_endpoints_are_canonically_ordered():
    forward = FaultSchedule.parse("0 link (0,1)-(0,2) down")
    reverse = FaultSchedule.parse("0 link (0,2)-(0,1) down")
    assert forward == reverse
    assert forward.to_spec() == reverse.to_spec()
    assert hash(forward) == hash(reverse)


def test_same_time_events_canonicalise_identically_across_clause_order():
    """Commuting same-time transitions must share one canonical form."""
    forward = FaultSchedule.parse(
        "0 link (0,0)-(0,1) down; 0 link (1,0)-(1,1) down; 0 router (2,2) down"
    )
    shuffled = FaultSchedule.parse(
        "0 router (2,2) down; 0 link (1,0)-(1,1) down; 0 link (0,0)-(0,1) down"
    )
    assert forward.to_spec() == shuffled.to_spec()
    assert forward == shuffled and hash(forward) == hash(shuffled)


def test_canonical_form_is_time_sorted_and_round_trips():
    messy = "4us router (1,1) down;\n1us link (2,2)-(2,3) down ;3us die 0.0.0 down"
    schedule = FaultSchedule.parse(messy)
    times = [event.time_ns for event in schedule]
    assert times == sorted(times)
    assert FaultSchedule.parse(schedule.to_spec()) == schedule


def test_empty_and_whitespace_schedules_are_falsy_noops():
    assert not FaultSchedule.parse("")
    assert not FaultSchedule.parse("  ;  \n ; ")
    assert len(FaultSchedule()) == 0
    assert FaultSchedule.parse("").to_spec() == ""


@pytest.mark.parametrize(
    "clause",
    [
        "link (0,1)-(0,2) down",  # missing time
        "10us link (0,1)-(0,3) down",  # not neighbours
        "10us link (0,1)-(0,1) down",  # self edge
        "10us blink (0,1)-(0,2) down",  # unknown keyword
        "10us router 3,4 down",  # bad coord syntax
        "10us die 1.2 down",  # missing die field
        "10us ecc-burst rate=1.5 for=1us",  # rate out of range
        "10us ecc-burst rate=0.5 for=0ns",  # zero duration
        "-5us link (0,1)-(0,2) down",  # negative time
    ],
)
def test_malformed_clauses_raise_configuration_error(clause):
    with pytest.raises(ConfigurationError):
        FaultSchedule.parse(clause)


def test_event_target_fields_are_validated():
    with pytest.raises(ConfigurationError):
        FaultEvent(0, FaultKind.LINK_DOWN)  # no link given
    with pytest.raises(ConfigurationError):
        FaultEvent(0, FaultKind.ROUTER_DOWN, node=(0, 0), link=((0, 0), (0, 1)))
    with pytest.raises(ConfigurationError):
        FaultEvent(0, FaultKind.DIE_DOWN, die=(-1, 0, 0))


def test_partially_overlapping_ecc_bursts_are_rejected():
    """LIFO restore is only sound for disjoint or fully nested windows."""
    with pytest.raises(ConfigurationError):
        FaultSchedule.parse(
            "0 ecc-burst rate=0.5 for=100ns; 50ns ecc-burst rate=0.9 for=100ns"
        )
    # Disjoint and fully nested windows are fine.
    disjoint = FaultSchedule.parse(
        "0 ecc-burst rate=0.5 for=40ns; 50ns ecc-burst rate=0.9 for=40ns"
    )
    nested = FaultSchedule.parse(
        "0 ecc-burst rate=0.5 for=200ns; 50ns ecc-burst rate=0.9 for=50ns"
    )
    assert len(disjoint) == 2 and len(nested) == 2


def test_schedules_are_hashable_values():
    a = FaultSchedule.parse("1us link (0,0)-(0,1) down")
    b = FaultSchedule.parse("1000ns link (0,1)-(0,0) down")
    c = FaultSchedule.parse("2us link (0,0)-(0,1) down")
    assert a == b and a != c
    assert len({a, b, c}) == 2


def test_programmatic_events_normalise_coordinates_to_tuples():
    """List coordinates must not break hashing or parsed-equality."""
    schedule = FaultSchedule(
        [
            FaultEvent(0, FaultKind.LINK_DOWN, link=([0, 1], [0, 0])),
            FaultEvent(5, FaultKind.ROUTER_DOWN, node=[1, 2]),
            FaultEvent(9, FaultKind.DIE_DOWN, die=[0, 1, 0]),
        ]
    )
    assert isinstance(hash(schedule), int)
    assert schedule == FaultSchedule.parse(
        "0 link (0,0)-(0,1) down; 5ns router (1,2) down; 9ns die 0.1.0 down"
    )


# --------------------------------------------------------------------- #
# injector
# --------------------------------------------------------------------- #

class RecordingSink(FaultSink):
    """Collects (time, transition) tuples as the injector fires."""

    def __init__(self, engine):
        self.engine = engine
        self.log = []

    def on_link_fault(self, a, b, down):
        self.log.append((self.engine.now, "link", a, b, down))

    def on_router_fault(self, node, down):
        self.log.append((self.engine.now, "router", node, down))

    def on_die_fault(self, channel, way, die, down):
        self.log.append((self.engine.now, "die", (channel, way, die), down))

    def on_ecc_burst_start(self, rate):
        self.log.append((self.engine.now, "burst-start", rate))

    def on_ecc_burst_end(self):
        self.log.append((self.engine.now, "burst-end"))


def test_injector_fires_transitions_at_schedule_times():
    engine = Engine()
    sink = RecordingSink(engine)
    schedule = FaultSchedule.parse(
        "0 link (0,0)-(0,1) down; 50ns router (2,2) down; "
        "100ns die 0.1.0 down; 200ns link (0,0)-(0,1) up"
    )
    injector = FaultInjector(engine, schedule, sink)
    assert injector.arm() == 4
    engine.run()
    assert sink.log == [
        (0, "link", (0, 0), (0, 1), True),
        (50, "router", (2, 2), True),
        (100, "die", (0, 1, 0), True),
        (200, "link", (0, 0), (0, 1), False),
    ]
    assert injector.applied == 4


def test_injector_expands_burst_into_start_and_end():
    engine = Engine()
    sink = RecordingSink(engine)
    schedule = FaultSchedule.parse("10ns ecc-burst rate=0.5 for=30ns")
    injector = FaultInjector(engine, schedule, sink)
    assert injector.arm() == 2  # raise + restore
    engine.run()
    assert sink.log == [(10, "burst-start", 0.5), (40, "burst-end")]


def test_injector_composes_with_other_engine_events():
    """Fault transitions interleave with process timeouts in time order."""
    engine = Engine()
    sink = RecordingSink(engine)
    seen = []

    def prober():
        for _ in range(4):
            yield 25
            seen.append((engine.now, len(sink.log)))

    FaultInjector(
        engine, FaultSchedule.parse("30ns router (0,0) down"), sink
    ).arm()
    engine.process(prober())
    engine.run()
    # At t=25 the fault has not fired; from t=50 on it has.
    assert seen == [(25, 0), (50, 1), (75, 1), (100, 1)]


def test_injector_rejects_events_in_the_past():
    engine = Engine()
    engine.schedule(100, lambda: None)
    engine.run()
    assert engine.now == 100
    injector = FaultInjector(
        engine, FaultSchedule.parse("50ns router (0,0) down"), RecordingSink(engine)
    )
    with pytest.raises(ConfigurationError):
        injector.arm()
