"""Unit tests for statistics primitives."""

import pytest

from repro.errors import SimulationError
from repro.sim.stats import LatencyRecorder, RunningStat, UtilizationTracker, percentile


def test_percentile_endpoints():
    data = [5.0, 1.0, 3.0]
    assert percentile(data, 0.0) == 1.0
    assert percentile(data, 1.0) == 5.0


def test_percentile_interpolates():
    assert percentile([0.0, 10.0], 0.5) == 5.0


def test_percentile_single_sample():
    assert percentile([7.0], 0.99) == 7.0


def test_percentile_rejects_empty_and_bad_fraction():
    with pytest.raises(SimulationError):
        percentile([], 0.5)
    with pytest.raises(SimulationError):
        percentile([1.0], 1.5)


def test_running_stat_mean_variance():
    stat = RunningStat()
    for value in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]:
        stat.add(value)
    assert stat.count == 8
    assert stat.mean == pytest.approx(5.0)
    assert stat.variance == pytest.approx(32.0 / 7.0)
    assert stat.minimum == 2.0
    assert stat.maximum == 9.0


def test_running_stat_variance_needs_two():
    stat = RunningStat()
    stat.add(3.0)
    assert stat.variance == 0.0


def test_latency_recorder_p99():
    recorder = LatencyRecorder()
    for value in range(1, 101):
        recorder.record(float(value))
    assert recorder.p99 == pytest.approx(99.01)
    assert recorder.mean == pytest.approx(50.5)
    assert recorder.count == 100


def test_latency_recorder_rejects_negative():
    with pytest.raises(SimulationError):
        LatencyRecorder().record(-1.0)


def test_latency_cdf_monotone():
    recorder = LatencyRecorder()
    for value in [5.0, 1.0, 9.0, 3.0, 7.0]:
        recorder.record(value)
    cdf = recorder.cdf(points=10)
    latencies = [point[0] for point in cdf]
    fractions = [point[1] for point in cdf]
    assert latencies == sorted(latencies)
    assert fractions == sorted(fractions)
    assert fractions[-1] == pytest.approx(1.0)
    assert latencies[-1] == 9.0


def test_tail_cdf_starts_at_requested_fraction():
    recorder = LatencyRecorder()
    for value in range(1000):
        recorder.record(float(value))
    tail = recorder.tail_cdf(start_fraction=0.99, points=10)
    assert tail[0][1] == pytest.approx(0.99)
    assert tail[-1][1] == pytest.approx(1.0)
    assert tail[0][0] <= tail[-1][0]


def test_empty_recorder_cdfs():
    recorder = LatencyRecorder()
    assert recorder.cdf() == []
    assert recorder.tail_cdf() == []
    assert recorder.mean == 0.0


def test_utilization_tracker():
    tracker = UtilizationTracker()
    tracker.mark_busy("ch0", 0)
    tracker.mark_idle("ch0", 30)
    tracker.mark_busy("ch0", 50)
    tracker.mark_idle("ch0", 60)
    assert tracker.busy_fraction("ch0", 100) == pytest.approx(0.4)
    assert tracker.total_busy() == 40


def test_utilization_idle_without_busy_is_noop():
    tracker = UtilizationTracker()
    tracker.mark_idle("x", 10)
    assert tracker.busy_fraction("x", 10) == 0.0
