"""Unit tests for statistics primitives."""

import pytest

from repro.errors import SimulationError
from repro.sim.stats import (
    HISTOGRAM_RELATIVE_ERROR,
    LatencyRecorder,
    RunningStat,
    UtilizationTracker,
    exact_stats_default,
    percentile,
)


def test_percentile_endpoints():
    data = [5.0, 1.0, 3.0]
    assert percentile(data, 0.0) == 1.0
    assert percentile(data, 1.0) == 5.0


def test_percentile_interpolates():
    assert percentile([0.0, 10.0], 0.5) == 5.0


def test_percentile_single_sample():
    assert percentile([7.0], 0.99) == 7.0


def test_percentile_rejects_empty_and_bad_fraction():
    with pytest.raises(SimulationError):
        percentile([], 0.5)
    with pytest.raises(SimulationError):
        percentile([1.0], 1.5)


def test_running_stat_mean_variance():
    stat = RunningStat()
    for value in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]:
        stat.add(value)
    assert stat.count == 8
    assert stat.mean == pytest.approx(5.0)
    assert stat.variance == pytest.approx(32.0 / 7.0)
    assert stat.minimum == 2.0
    assert stat.maximum == 9.0


def test_running_stat_variance_needs_two():
    stat = RunningStat()
    stat.add(3.0)
    assert stat.variance == 0.0


def test_exact_latency_recorder_p99():
    recorder = LatencyRecorder(exact=True)
    for value in range(1, 101):
        recorder.record(float(value))
    assert recorder.p99 == pytest.approx(99.01)
    assert recorder.mean == pytest.approx(50.5)
    assert recorder.count == 100


def test_histogram_recorder_exact_count_mean_extrema():
    recorder = LatencyRecorder(exact=False)
    for value in range(1, 101):
        recorder.record(float(value))
    assert recorder.count == 100
    assert recorder.mean == pytest.approx(50.5)
    assert recorder.minimum == 1.0
    assert recorder.maximum == 100.0


def test_histogram_p99_within_documented_bound():
    recorder = LatencyRecorder(exact=False)
    exact = LatencyRecorder(exact=True)
    for value in range(1, 100_001):
        recorder.record(float(value))
        exact.record(float(value))
    for fraction in (0.5, 0.9, 0.99, 0.999):
        truth = exact.p(fraction)
        assert recorder.p(fraction) == pytest.approx(
            truth, rel=HISTOGRAM_RELATIVE_ERROR
        )


def test_histogram_handles_zero_latencies():
    recorder = LatencyRecorder(exact=False)
    for _ in range(90):
        recorder.record(0.0)
    for _ in range(10):
        recorder.record(1000.0)
    assert recorder.p(0.5) == 0.0
    assert recorder.p(1.0) == pytest.approx(1000.0, rel=HISTOGRAM_RELATIVE_ERROR)


def test_latency_recorder_rejects_negative():
    with pytest.raises(SimulationError):
        LatencyRecorder().record(-1.0)
    with pytest.raises(SimulationError):
        LatencyRecorder(exact=True).record(-1.0)


@pytest.mark.parametrize("exact", [True, False])
def test_latency_cdf_monotone(exact):
    recorder = LatencyRecorder(exact=exact)
    for value in [5.0, 1.0, 9.0, 3.0, 7.0]:
        recorder.record(value)
    cdf = recorder.cdf(points=10)
    latencies = [point[0] for point in cdf]
    fractions = [point[1] for point in cdf]
    assert latencies == sorted(latencies)
    assert fractions == sorted(fractions)
    assert fractions[-1] == pytest.approx(1.0)
    assert latencies[-1] == pytest.approx(9.0, rel=HISTOGRAM_RELATIVE_ERROR)


def test_histogram_cdf_tracks_exact_cdf_within_bound():
    hist = LatencyRecorder(exact=False)
    exact = LatencyRecorder(exact=True)
    values = [float(7 * i % 9973 + 1) for i in range(5000)]
    for value in values:
        hist.record(value)
        exact.record(value)
    for (approx_latency, f1), (true_latency, f2) in zip(
        hist.cdf(points=50), exact.cdf(points=50)
    ):
        assert f1 == f2
        assert approx_latency == pytest.approx(
            true_latency, rel=HISTOGRAM_RELATIVE_ERROR
        )


@pytest.mark.parametrize("exact", [True, False])
def test_tail_cdf_starts_at_requested_fraction(exact):
    recorder = LatencyRecorder(exact=exact)
    for value in range(1000):
        recorder.record(float(value))
    tail = recorder.tail_cdf(start_fraction=0.99, points=10)
    assert tail[0][1] == pytest.approx(0.99)
    assert tail[-1][1] == pytest.approx(1.0)
    assert tail[0][0] <= tail[-1][0]


@pytest.mark.parametrize("exact", [True, False])
def test_empty_recorder_cdfs(exact):
    recorder = LatencyRecorder(exact=exact)
    assert recorder.cdf() == []
    assert recorder.tail_cdf() == []
    assert recorder.mean == 0.0


def test_exact_stats_env_default(monkeypatch):
    monkeypatch.delenv("VENICE_EXACT_STATS", raising=False)
    assert exact_stats_default() is False
    assert LatencyRecorder().exact is False
    monkeypatch.setenv("VENICE_EXACT_STATS", "1")
    assert exact_stats_default() is True
    assert LatencyRecorder().exact is True
    monkeypatch.setenv("VENICE_EXACT_STATS", "off")
    assert exact_stats_default() is False


def test_utilization_tracker():
    tracker = UtilizationTracker()
    tracker.mark_busy("ch0", 0)
    tracker.mark_idle("ch0", 30)
    tracker.mark_busy("ch0", 50)
    tracker.mark_idle("ch0", 60)
    assert tracker.busy_fraction("ch0", 100) == pytest.approx(0.4)
    assert tracker.total_busy() == 40


def test_utilization_idle_without_busy_is_noop():
    tracker = UtilizationTracker()
    tracker.mark_idle("x", 10)
    assert tracker.busy_fraction("x", 10) == 0.0
