"""Device-state checkpointing: grammar, snapshot round-trips, the store."""

import json

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.experiments.spec import ExperimentScale, make_spec
from repro.sim.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointStore,
    WarmupPhase,
    restore_device,
    snapshot_device,
)

SCALE = ExperimentScale(
    requests=80,
    requests_per_mix_constituent=40,
    blocks_per_plane=16,
    pages_per_block=16,
)


def _spec(design="venice", warmup="fill 0.3; steps 120"):
    return make_spec(design, "performance-optimized", "hm_0", SCALE,
                     warmup=warmup)


class TestWarmupPhaseGrammar:
    def test_round_trips_through_canonical_form(self):
        phase = WarmupPhase.parse("  steps 400 ;fill 0.5")
        assert phase == WarmupPhase(fill=0.5, steps=400)
        assert phase.to_spec() == "fill 0.5; steps 400"
        assert WarmupPhase.parse(phase.to_spec()) == phase

    def test_either_clause_may_be_omitted(self):
        assert WarmupPhase.parse("fill 0.25").to_spec() == "fill 0.25"
        assert WarmupPhase.parse("steps 64").to_spec() == "steps 64"

    def test_churn_round_trips_between_fill_and_steps(self):
        phase = WarmupPhase.parse("steps 50; churn 0.4; fill 0.8")
        assert phase == WarmupPhase(fill=0.8, churn=0.4, steps=50)
        assert phase.to_spec() == "fill 0.8; churn 0.4; steps 50"
        assert WarmupPhase.parse(phase.to_spec()) == phase

    def test_zero_churn_is_omitted_from_canonical_form(self):
        assert WarmupPhase.parse("fill 0.5; churn 0").to_spec() == "fill 0.5"
        assert WarmupPhase(fill=0.5).to_spec() == "fill 0.5"

    @pytest.mark.parametrize("bad", [
        "fill 1.5",            # fraction out of range
        "fill -0.1",
        "steps -3",
        "",                    # empty phase: use an empty spec field instead
        "fill 0.5; fill 0.6",  # duplicate clause
        "warm 0.5",            # unknown clause
        "fill lots",           # unparseable value
        "steps 2.5",           # numeric but not an int
        "fill 0.5.5",          # numeric-looking but not a float
        "churn 0.4",           # churn without a fill to churn
        "fill 0.5; churn 1.5",  # churn fraction out of range
        "fill 0.5; churn -0.1",
    ])
    def test_rejects_malformed_specs(self, bad):
        with pytest.raises(ConfigurationError):
            WarmupPhase.parse(bad)


class TestSnapshotRestore:
    def test_snapshot_restores_to_an_identical_snapshot(self):
        spec = _spec()
        state, events = spec.compute_checkpoint()
        assert events > 0
        assert state["version"] == CHECKPOINT_VERSION
        config = spec.build_config()
        device = spec._build_device(config, with_faults=False)
        restore_device(device, state)
        assert snapshot_device(device) == state

    def test_snapshot_is_json_canonical(self):
        state, _ = _spec(warmup="fill 0.2").compute_checkpoint()
        assert json.loads(json.dumps(state)) == state

    def test_restore_rejects_geometry_mismatch(self):
        state, _ = _spec().compute_checkpoint()
        other = make_spec(
            "venice", "performance-optimized", "hm_0",
            ExperimentScale(
                requests=80, requests_per_mix_constituent=40,
                blocks_per_plane=32, pages_per_block=16,
            ),
            warmup="fill 0.3; steps 120",
        )
        device = other._build_device(other.build_config(), with_faults=False)
        with pytest.raises(SimulationError, match="geometry"):
            restore_device(device, state)

    def test_restore_rejects_unknown_version(self):
        spec = _spec(warmup="fill 0.1")
        state, _ = spec.compute_checkpoint()
        device = spec._build_device(spec.build_config(), with_faults=False)
        with pytest.raises(SimulationError, match="version"):
            restore_device(device, {**state, "version": CHECKPOINT_VERSION + 1})

    def test_restore_requires_a_pristine_device(self):
        spec = _spec(warmup="fill 0.1")
        state, _ = spec.compute_checkpoint()
        device = spec._build_device(spec.build_config(), with_faults=False)
        restore_device(device, state)
        with pytest.raises(SimulationError, match="pristine"):
            restore_device(device, state)

    def test_restore_rejects_corrupt_page_states(self):
        spec = _spec(warmup="fill 0.1")
        state, _ = spec.compute_checkpoint()
        tampered = json.loads(json.dumps(state))
        plane, block, erases, pages = tampered["blocks"][0]
        tampered["blocks"][0] = [plane, block, erases, pages[:-1] + "x"]
        device = spec._build_device(spec.build_config(), with_faults=False)
        with pytest.raises(SimulationError, match="bad page states"):
            restore_device(device, tampered)

    def test_churned_snapshot_restores_bit_identically(self):
        spec = _spec(warmup="fill 0.8; churn 0.5; steps 40")
        state, _ = spec.compute_checkpoint()
        device = spec._build_device(spec.build_config(), with_faults=False)
        restore_device(device, state)
        assert snapshot_device(device) == state
        device.ftl.assert_consistent()

    def test_churn_leaves_invalid_pages_behind(self):
        clean, _ = _spec(warmup="fill 0.8").compute_checkpoint()
        churned, _ = _spec(warmup="fill 0.8; churn 0.5").compute_checkpoint()

        def invalid_pages(state):
            return sum(pages.count("i") for _, _, _, pages in state["blocks"])

        # A pure fill writes each logical page once: nothing is stale.  The
        # churn stage overwrites half of them, stranding old copies.
        assert invalid_pages(clean) == 0
        assert invalid_pages(churned) > 0

    def test_churn_is_deterministic(self):
        warmup = "fill 0.85; churn 0.4"
        first, _ = _spec(warmup=warmup).compute_checkpoint()
        second, _ = _spec(warmup=warmup).compute_checkpoint()
        assert first == second

    def test_heavy_churn_compacts_and_keeps_the_gc_reserve(self):
        spec = _spec(warmup="fill 0.95; churn 0.5")
        state, _ = spec.compute_checkpoint()
        # Overwriting half of a 95% fill must recycle blocks (erase counts
        # accrue) ...
        assert any(erases > 0 for _, _, erases, _ in state["blocks"])
        # ... and must hand the measured phase a device whose per-plane GC
        # reserve is intact, or the first host write would deadlock.
        device = spec._build_device(spec.build_config(), with_faults=False)
        restore_device(device, state)
        allocator = device.ftl.allocator
        for plane_flat in range(allocator.plane_count()):
            assert (
                allocator.erased_block_count(plane_flat)
                >= allocator.gc_reserved_blocks
            )

    def test_restore_rebuilds_cache_residency(self):
        spec = _spec(warmup="fill 0.1")
        state, _ = spec.compute_checkpoint()
        seeded = json.loads(json.dumps(state))
        lpn = seeded["mapping"][0][0]
        seeded["cache"] = [[lpn, True]]
        device = spec._build_device(spec.build_config(), with_faults=False)
        restore_device(device, seeded)
        assert dict(device.ftl.cache._lru) == {lpn: True}


class TestCheckpointStore:
    def test_memory_store_counts_hits_misses_writes(self):
        store = CheckpointStore()
        assert store.get("d1") is None
        store.put("d1", {"state": 1})
        assert store.get("d1") == {"state": 1}
        assert "d1" in store and "d2" not in store
        assert (store.hits, store.misses, store.writes) == (1, 1, 1)
        assert len(store) == 1

    def test_disk_store_survives_a_fresh_instance(self, tmp_path):
        CheckpointStore(tmp_path).put("abc", {"blocks": []})
        fresh = CheckpointStore(tmp_path)
        assert "abc" in fresh
        assert fresh.get("abc") == {"blocks": []}
        assert fresh.hits == 1

    def test_corrupt_file_raises(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.path_for("bad").write_text("{not json", encoding="utf-8")
        with pytest.raises(SimulationError, match="corrupt"):
            store.get("bad")

    def test_digest_mismatch_raises(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.path_for("x").write_text(
            json.dumps({"digest": "y", "state": {}}), encoding="utf-8"
        )
        with pytest.raises(SimulationError, match="does not hold"):
            store.get("x")

    def test_memory_only_store_has_no_paths(self):
        with pytest.raises(ConfigurationError):
            CheckpointStore().path_for("d")

    def test_len_unions_memory_and_disk_digests(self, tmp_path):
        CheckpointStore(tmp_path).put("on-disk", {"blocks": []})
        store = CheckpointStore(tmp_path, preload={"in-memory": {}})
        assert len(store) == 2
        store.put("on-disk", {"blocks": []})  # both places: counted once
        assert len(store) == 2


class TestCheckpointDigest:
    def test_shared_across_workloads_and_faults(self):
        base = _spec()
        other_workload = make_spec(
            "venice", "performance-optimized", "prxy_0", SCALE,
            warmup="fill 0.3; steps 120",
        )
        faulted = make_spec(
            "venice", "performance-optimized", "hm_0", SCALE,
            warmup="fill 0.3; steps 120",
            faults="0 link (0,1)-(0,2) down",
        )
        assert base.checkpoint_digest == other_workload.checkpoint_digest
        assert base.checkpoint_digest == faulted.checkpoint_digest

    def test_differs_by_design_and_recipe(self):
        base = _spec()
        assert base.checkpoint_digest != _spec("nossd").checkpoint_digest
        assert base.checkpoint_digest != (
            _spec(warmup="fill 0.3; steps 121").checkpoint_digest
        )

    def test_requires_a_warmup(self):
        spec = make_spec("venice", "performance-optimized", "hm_0", SCALE)
        with pytest.raises(ConfigurationError):
            spec.checkpoint_digest
