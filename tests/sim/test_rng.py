"""Unit tests for deterministic RNG helpers and the 2-bit LFSR."""

import pytest

from repro.errors import SimulationError
from repro.sim.rng import DeterministicRng, Lfsr2


def test_same_seed_same_stream_reproduces():
    a = DeterministicRng(7, "x")
    b = DeterministicRng(7, "x")
    assert [a.random() for _ in range(20)] == [b.random() for _ in range(20)]


def test_different_streams_decorrelate():
    a = DeterministicRng(7, "alpha")
    b = DeterministicRng(7, "beta")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_exponential_gap_mean_close():
    rng = DeterministicRng(3, "gap")
    samples = [rng.exponential_gap(100.0) for _ in range(20000)]
    mean = sum(samples) / len(samples)
    assert mean == pytest.approx(100.0, rel=0.05)


def test_exponential_gap_rejects_non_positive_mean():
    with pytest.raises(SimulationError):
        DeterministicRng(1).exponential_gap(0)


def test_lognormal_arithmetic_mean_close():
    rng = DeterministicRng(5, "size")
    samples = [rng.lognormal(64.0, 0.6) for _ in range(30000)]
    mean = sum(samples) / len(samples)
    assert mean == pytest.approx(64.0, rel=0.07)


def test_lognormal_is_right_skewed():
    rng = DeterministicRng(5, "size")
    samples = sorted(rng.lognormal(64.0, 0.6) for _ in range(10000))
    median = samples[len(samples) // 2]
    mean = sum(samples) / len(samples)
    assert median < mean  # right skew


def test_zipf_index_in_range_and_skewed():
    rng = DeterministicRng(11, "zipf")
    counts = [0] * 100
    for _ in range(20000):
        index = rng.zipf_index(100, 0.99)
        assert 0 <= index < 100
        counts[index] += 1
    # rank-0 should dominate any mid-pack rank heavily
    assert counts[0] > 5 * counts[50]
    assert counts[0] > counts[1] > 0


def test_zipf_single_element():
    assert DeterministicRng(1).zipf_index(1) == 0


def test_zipf_rejects_empty():
    with pytest.raises(SimulationError):
        DeterministicRng(1).zipf_index(0)


def test_randint_bounds_inclusive():
    rng = DeterministicRng(2)
    values = {rng.randint(0, 3) for _ in range(200)}
    assert values == {0, 1, 2, 3}


# --------------------------------------------------------------------- #
# Lfsr2
# --------------------------------------------------------------------- #


def test_lfsr_never_reaches_zero():
    lfsr = Lfsr2(seed=1)
    states = [lfsr.step() for _ in range(30)]
    assert 0 not in states


def test_lfsr_period_three():
    lfsr = Lfsr2(seed=1)
    states = [lfsr.step() for _ in range(6)]
    assert states[:3] == states[3:]
    assert sorted(set(states)) == [1, 2, 3]


def test_lfsr_zero_seed_coerced():
    lfsr = Lfsr2(seed=0)
    assert lfsr.state != 0


def test_lfsr_pick_covers_both_choices():
    lfsr = Lfsr2(seed=2)
    picks = {lfsr.pick(2) for _ in range(10)}
    assert picks == {0, 1}


def test_lfsr_pick_single():
    assert Lfsr2().pick(1) == 0


def test_lfsr_pick_invalid():
    with pytest.raises(SimulationError):
        Lfsr2().pick(0)
