"""Unit tests for FIFO resources and the controller pool."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine, Timeout
from repro.sim.resources import Resource, ResourcePool


def hold(engine, resource, duration, log, tag):
    lease = yield resource.acquire()
    log.append(("got", tag, engine.now, lease.waited))
    yield Timeout(duration)
    lease.release()


def test_uncontended_acquire_is_immediate_and_unwaited():
    engine = Engine()
    resource = Resource(engine, "r")
    log = []
    engine.process(hold(engine, resource, 10, log, "a"))
    engine.run()
    assert log == [("got", "a", 0, False)]


def test_contended_acquires_serialize_fifo():
    engine = Engine()
    resource = Resource(engine, "r")
    log = []
    for tag in ("a", "b", "c"):
        engine.process(hold(engine, resource, 10, log, tag))
    engine.run()
    assert log == [
        ("got", "a", 0, False),
        ("got", "b", 10, True),
        ("got", "c", 20, True),
    ]


def test_capacity_two_allows_two_concurrent_holders():
    engine = Engine()
    resource = Resource(engine, "r", capacity=2)
    log = []
    for tag in ("a", "b", "c"):
        engine.process(hold(engine, resource, 10, log, tag))
    engine.run()
    grant_times = [entry[2] for entry in log]
    assert grant_times == [0, 0, 10]


def test_wait_accounting():
    engine = Engine()
    resource = Resource(engine, "r")
    log = []
    engine.process(hold(engine, resource, 25, log, "a"))
    engine.process(hold(engine, resource, 5, log, "b"))
    engine.run()
    assert resource.total_acquisitions == 2
    assert resource.contended_acquisitions == 1
    assert resource.total_wait_time == 25


def test_double_release_rejected():
    engine = Engine()
    resource = Resource(engine, "r")
    lease = resource.try_acquire()
    assert lease is not None
    lease.release()
    with pytest.raises(SimulationError):
        lease.release()


def test_try_acquire_returns_none_when_full():
    engine = Engine()
    resource = Resource(engine, "r")
    first = resource.try_acquire()
    assert first is not None
    assert resource.try_acquire() is None
    first.release()
    assert resource.try_acquire() is not None


def test_utilization_tracks_busy_time():
    engine = Engine()
    resource = Resource(engine, "r")
    log = []
    engine.process(hold(engine, resource, 40, log, "a"))
    engine.run()
    engine.schedule(60, lambda: None)  # idle tail
    engine.run()
    assert resource.utilization(100) == pytest.approx(0.4)


def test_zero_capacity_rejected():
    with pytest.raises(SimulationError):
        Resource(Engine(), "r", capacity=0)


# --------------------------------------------------------------------- #
# ResourcePool
# --------------------------------------------------------------------- #


def test_pool_prefers_listed_order():
    engine = Engine()
    pool = ResourcePool(engine, "fc", 4)
    got = []

    def proc():
        index, lease = yield pool.acquire_preferring((2, 1, 0, 3))
        got.append(index)
        pool.release(index, lease)

    engine.process(proc())
    engine.run()
    assert got == [2]


def test_pool_falls_back_to_next_preference_when_busy():
    engine = Engine()
    pool = ResourcePool(engine, "fc", 3)
    held = pool.members[1].try_acquire()
    got = []

    def proc():
        index, lease = yield pool.acquire_preferring((1, 2, 0))
        got.append(index)
        pool.release(index, lease)

    engine.process(proc())
    engine.run()
    assert got == [2]
    held.release()


def test_pool_queues_when_all_busy_and_wakes_fifo():
    engine = Engine()
    pool = ResourcePool(engine, "fc", 1)
    order = []

    def proc(tag, duration):
        index, lease = yield pool.acquire_preferring((0,))
        order.append((tag, engine.now))
        yield Timeout(duration)
        pool.release(index, lease)

    engine.process(proc("a", 10))
    engine.process(proc("b", 10))
    engine.process(proc("c", 10))
    engine.run()
    assert order == [("a", 0), ("b", 10), ("c", 20)]
    assert pool.contended_acquisitions == 2


def test_pool_free_indices():
    engine = Engine()
    pool = ResourcePool(engine, "fc", 3)
    lease = pool.members[0].try_acquire()
    assert pool.free_indices() == [1, 2]
    lease.release()
    assert pool.free_indices() == [0, 1, 2]


def test_pool_size_validation():
    with pytest.raises(SimulationError):
        ResourcePool(Engine(), "fc", 0)
