"""Unit tests for FIFO resources and the controller pool."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine, Timeout
from repro.sim.resources import Resource, ResourcePool


def hold(engine, resource, duration, log, tag):
    lease = yield resource.acquire()
    log.append(("got", tag, engine.now, lease.waited))
    yield Timeout(duration)
    lease.release()


def test_uncontended_acquire_is_immediate_and_unwaited():
    engine = Engine()
    resource = Resource(engine, "r")
    log = []
    engine.process(hold(engine, resource, 10, log, "a"))
    engine.run()
    assert log == [("got", "a", 0, False)]


def test_contended_acquires_serialize_fifo():
    engine = Engine()
    resource = Resource(engine, "r")
    log = []
    for tag in ("a", "b", "c"):
        engine.process(hold(engine, resource, 10, log, tag))
    engine.run()
    assert log == [
        ("got", "a", 0, False),
        ("got", "b", 10, True),
        ("got", "c", 20, True),
    ]


def test_capacity_two_allows_two_concurrent_holders():
    engine = Engine()
    resource = Resource(engine, "r", capacity=2)
    log = []
    for tag in ("a", "b", "c"):
        engine.process(hold(engine, resource, 10, log, tag))
    engine.run()
    grant_times = [entry[2] for entry in log]
    assert grant_times == [0, 0, 10]


def test_wait_accounting():
    engine = Engine()
    resource = Resource(engine, "r")
    log = []
    engine.process(hold(engine, resource, 25, log, "a"))
    engine.process(hold(engine, resource, 5, log, "b"))
    engine.run()
    assert resource.total_acquisitions == 2
    assert resource.contended_acquisitions == 1
    assert resource.total_wait_time == 25


def test_double_release_rejected():
    engine = Engine()
    resource = Resource(engine, "r")
    lease = resource.try_acquire()
    assert lease is not None
    lease.release()
    with pytest.raises(SimulationError):
        lease.release()


def test_try_acquire_returns_none_when_full():
    engine = Engine()
    resource = Resource(engine, "r")
    first = resource.try_acquire()
    assert first is not None
    assert resource.try_acquire() is None
    first.release()
    assert resource.try_acquire() is not None


def test_utilization_tracks_busy_time():
    engine = Engine()
    resource = Resource(engine, "r")
    log = []
    engine.process(hold(engine, resource, 40, log, "a"))
    engine.run()
    engine.schedule(60, lambda: None)  # idle tail
    engine.run()
    assert resource.utilization(100) == pytest.approx(0.4)


def test_zero_capacity_rejected():
    with pytest.raises(SimulationError):
        Resource(Engine(), "r", capacity=0)


# --------------------------------------------------------------------- #
# ResourcePool
# --------------------------------------------------------------------- #


def test_pool_prefers_listed_order():
    engine = Engine()
    pool = ResourcePool(engine, "fc", 4)
    got = []

    def proc():
        index, lease = yield pool.acquire_preferring((2, 1, 0, 3))
        got.append(index)
        pool.release(index, lease)

    engine.process(proc())
    engine.run()
    assert got == [2]


def test_pool_falls_back_to_next_preference_when_busy():
    engine = Engine()
    pool = ResourcePool(engine, "fc", 3)
    held = pool.members[1].try_acquire()
    got = []

    def proc():
        index, lease = yield pool.acquire_preferring((1, 2, 0))
        got.append(index)
        pool.release(index, lease)

    engine.process(proc())
    engine.run()
    assert got == [2]
    held.release()


def test_pool_queues_when_all_busy_and_wakes_fifo():
    engine = Engine()
    pool = ResourcePool(engine, "fc", 1)
    order = []

    def proc(tag, duration):
        index, lease = yield pool.acquire_preferring((0,))
        order.append((tag, engine.now))
        yield Timeout(duration)
        pool.release(index, lease)

    engine.process(proc("a", 10))
    engine.process(proc("b", 10))
    engine.process(proc("c", 10))
    engine.run()
    assert order == [("a", 0), ("b", 10), ("c", 20)]
    assert pool.contended_acquisitions == 2


def test_pool_free_indices():
    engine = Engine()
    pool = ResourcePool(engine, "fc", 3)
    lease = pool.members[0].try_acquire()
    assert pool.free_indices() == [1, 2]
    lease.release()
    assert pool.free_indices() == [0, 1, 2]


def test_pool_size_validation():
    with pytest.raises(SimulationError):
        ResourcePool(Engine(), "fc", 0)


# --------------------------------------------------------------------- #
# Grant fast path
# --------------------------------------------------------------------- #


def test_uncontended_acquire_returns_pretriggered_grant():
    from repro.sim.engine import Grant

    engine = Engine()
    resource = Resource(engine, "r")
    waitable = resource.acquire()
    assert isinstance(waitable, Grant)
    lease = waitable.value
    assert lease.waited is False
    assert resource.in_use == 1
    lease.release()
    assert resource.in_use == 0


def test_contended_acquire_returns_event_and_accounts_wait():
    from repro.sim.engine import OneShotEvent

    engine = Engine()
    resource = Resource(engine, "r")
    first = resource.acquire().value
    second = resource.acquire()
    assert isinstance(second, OneShotEvent)
    assert not second.triggered
    engine.schedule(40, first.release)
    engine.run()
    assert second.triggered
    lease = second.value
    assert lease.waited is True
    assert lease.wait_time == 40
    assert resource.contended_acquisitions == 1
    assert resource.total_wait_time == 40


# --------------------------------------------------------------------- #
# Busy-interval accounting and the utilization over-horizon guard
# --------------------------------------------------------------------- #


def test_busy_accounting_across_overlapping_leases():
    """Overlapping leases on a capacity-2 resource merge into one interval."""
    engine = Engine()
    resource = Resource(engine, "r", capacity=2)
    log = []
    # a holds [0, 30); b holds [10, 50) -> busy interval is [0, 50).
    engine.process(hold(engine, resource, 30, log, "a"))

    def delayed():
        yield Timeout(10)
        yield from hold(engine, resource, 40, log, "b")

    engine.process(delayed())
    engine.run()
    engine.schedule(50, lambda: None)  # idle tail to now=100
    engine.run()
    assert resource.busy_time == 50
    assert resource.utilization(100) == pytest.approx(0.5)


def test_utilization_raises_when_busy_exceeds_horizon():
    """Clamping used to hide accounting bugs; now they raise loudly."""
    engine = Engine()
    resource = Resource(engine, "r")
    log = []
    engine.process(hold(engine, resource, 80, log, "a"))
    engine.run()
    with pytest.raises(SimulationError):
        resource.utilization(40)  # busy 80ns over a 40ns horizon


def test_utilization_counts_open_interval_up_to_now():
    engine = Engine()
    resource = Resource(engine, "r")
    lease = resource.try_acquire()
    assert lease is not None
    engine.schedule(60, lambda: None)
    engine.run()
    assert resource.utilization(100) == pytest.approx(0.6)
    lease.release()


# --------------------------------------------------------------------- #
# ResourcePool: fairness, preference validation, handoff accounting
# --------------------------------------------------------------------- #


def test_pool_fifo_fairness_under_contention():
    """Waiters are served strictly in arrival order, whatever they prefer."""
    engine = Engine()
    pool = ResourcePool(engine, "fc", 2)
    order = []

    def proc(tag, preference, duration):
        index, lease = yield pool.acquire_preferring(preference)
        order.append((tag, engine.now, index))
        yield Timeout(duration)
        pool.release(index, lease)

    engine.process(proc("a", (0,), 10))
    engine.process(proc("b", (1,), 10))
    engine.process(proc("c", (1, 0), 10))  # queued: pool full
    engine.process(proc("d", (0, 1), 10))  # queued behind c
    engine.process(proc("e", (0,), 10))  # queued behind d
    engine.run()
    tags = [entry[0] for entry in order]
    assert tags == ["a", "b", "c", "d", "e"]
    grant_times = [entry[1] for entry in order]
    assert grant_times == [0, 0, 10, 10, 20]
    assert pool.contended_acquisitions == 3


def test_pool_out_of_range_preferences_fall_back_to_ascending_order():
    engine = Engine()
    pool = ResourcePool(engine, "fc", 3)
    got = []

    def proc(preference):
        index, lease = yield pool.acquire_preferring(preference)
        got.append(index)
        pool.release(index, lease)

    # Entirely out-of-range indices: ascending fallback picks member 0.
    engine.process(proc((7, -2, 99)))
    engine.run()
    assert got == [0]
    # Out-of-range preferred, in-range later in the list still wins.
    held = pool.members[0].try_acquire()
    engine.process(proc((42, 2, 1)))
    engine.run()
    assert got == [0, 2]
    held.release()


def test_pool_release_hands_off_to_waiter_with_accounting():
    engine = Engine()
    pool = ResourcePool(engine, "fc", 1)
    waits = []

    def proc(tag, duration):
        index, lease = yield pool.acquire_preferring((0,))
        waits.append((tag, lease.waited, lease.wait_time))
        yield Timeout(duration)
        pool.release(index, lease)

    engine.process(proc("first", 25))
    engine.process(proc("second", 5))
    engine.run()
    assert waits == [("first", False, 0), ("second", True, 25)]
    member = pool.members[0]
    # Handoff grants go through the member's accounting too.
    assert member.total_acquisitions == 2
    assert member.total_wait_time == 25
    assert pool.total_acquisitions == 2
    assert pool.contended_acquisitions == 1


def test_pool_waiter_takes_any_member_freed_first():
    engine = Engine()
    pool = ResourcePool(engine, "fc", 2)
    got = []

    def holder(index, duration):
        lease = pool.members[index].try_acquire()
        yield Timeout(duration)
        pool.release(index, lease)

    def waiter():
        index, lease = yield pool.acquire_preferring((0, 1))
        got.append((engine.now, index))
        pool.release(index, lease)

    engine.process(holder(0, 30))
    engine.process(holder(1, 10))
    engine.process(waiter())
    engine.run()
    # Member 1 frees first at t=10; the waiter takes it despite preferring 0.
    assert got == [(10, 1)]


def test_restricted_acquire_never_falls_back_to_unlisted_members():
    engine = Engine()
    pool = ResourcePool(engine, "fc", 3)
    # Member 0 is busy; members 1 and 2 are free but unacceptable.
    hold = pool.members[0].try_acquire()
    got = []

    def waiter():
        index, lease = yield pool.acquire_preferring((0,), restrict=True)
        got.append((engine.now, index))
        pool.release(index, lease)

    engine.process(waiter())
    engine.schedule(40, lambda: pool.release(0, hold))
    engine.run()
    assert got == [(40, 0)]


def test_restricted_waiter_keeps_fifo_position_while_skipped():
    """A skipped restricted waiter must not starve behind later arrivals."""
    engine = Engine()
    pool = ResourcePool(engine, "fc", 2)
    hold0 = pool.members[0].try_acquire()
    hold1 = pool.members[1].try_acquire()
    order = []

    def restricted():
        index, lease = yield pool.acquire_preferring((0,), restrict=True)
        order.append(("restricted", engine.now, index))
        pool.release(index, lease)

    def unrestricted():
        index, lease = yield pool.acquire_preferring((1,))
        order.append(("unrestricted", engine.now, index))
        pool.release(index, lease)

    engine.process(restricted())
    engine.process(unrestricted())
    # Member 1 frees first: the restricted head waiter cannot take it, the
    # unrestricted one behind it can; member 0 frees later for the head.
    engine.schedule(10, lambda: pool.release(1, hold1))
    engine.schedule(30, lambda: pool.release(0, hold0))
    engine.run()
    assert order == [("unrestricted", 10, 1), ("restricted", 30, 0)]


def test_restricted_grant_is_immediate_when_a_listed_member_is_free():
    engine = Engine()
    pool = ResourcePool(engine, "fc", 2)
    waitable = pool.acquire_preferring((1,), restrict=True)
    index, lease = waitable.value  # Grant: completed synchronously
    assert index == 1
    pool.release(index, lease)


def test_regrant_rescans_after_a_nested_release_frees_a_skipped_member():
    """A member freed synchronously inside a grant must still reach a
    restricted waiter that was skipped (held out of the queue) mid-pass."""
    engine = Engine()
    pool = ResourcePool(engine, "fc", 2)
    lease0 = pool.members[0].try_acquire()
    lease1 = pool.members[1].try_acquire()
    got = []

    def restricted():
        index, lease = yield pool.acquire_preferring((0,), restrict=True)
        got.append(("restricted", index))
        pool.release(index, lease)

    def chained():
        index, lease = yield pool.acquire_preferring((1,))
        got.append(("chained", index))
        pool.release(0, lease0)  # nested release while `restricted` is skipped
        pool.release(index, lease)

    engine.process(restricted())
    engine.process(chained())
    engine.schedule(10, lambda: pool.release(1, lease1))
    engine.run()
    assert ("chained", 1) in got
    assert ("restricted", 0) in got


def test_nested_release_grants_the_earliest_restricted_waiter_first():
    """FIFO must hold even when a member frees inside a nested grant: the
    skipped restricted head waiter beats later unrestricted waiters."""
    engine = Engine()
    pool = ResourcePool(engine, "fc", 2)
    lease0 = pool.members[0].try_acquire()
    lease1 = pool.members[1].try_acquire()
    order = []

    def w1():
        index, lease = yield pool.acquire_preferring((1,), restrict=True)
        order.append(("w1", index))
        pool.release(index, lease)

    def w2():
        index, lease = yield pool.acquire_preferring((0, 1))
        order.append(("w2", index))
        pool.release(1, lease1)  # frees fc1 while w1 was skipped mid-scan
        pool.release(index, lease)

    def w3():
        index, lease = yield pool.acquire_preferring((0, 1))
        order.append(("w3", index))
        pool.release(index, lease)

    engine.process(w1())
    engine.process(w2())
    engine.process(w3())
    engine.schedule(10, lambda: pool.release(0, lease0))
    engine.run()
    assert order[0] == ("w2", 0)
    assert order[1] == ("w1", 1)  # w1 was queued before w3 and gets fc1
    assert ("w3", 0) in order or ("w3", 1) in order
