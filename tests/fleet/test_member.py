"""Fleet member descriptors and the tenant traffic fan-out."""

import pytest

from repro.errors import ConfigurationError
from repro.fleet.member import FleetMember, member_requests
from repro.hil.request import IoKind, IoRequest
from repro.workloads.trace import Trace


def _base_trace(count=24, gap_ns=1000, size=4096):
    requests = [
        IoRequest(
            kind=IoKind.READ if i % 3 else IoKind.WRITE,
            offset_bytes=(i * 7919 * 512) % (1 << 20),
            size_bytes=size,
            arrival_ns=i * gap_ns,
            queue_id=i % 2,
        )
        for i in range(count)
    ]
    return Trace("synthetic-base", requests)


# --------------------------------------------------------------------- #
# descriptor grammar
# --------------------------------------------------------------------- #

def test_descriptor_round_trips_canonically():
    member = FleetMember(index=2, devices=8, tenants=64,
                         placement="stripe:256KiB")
    spec = member.to_spec()
    assert spec == "member 2/8; tenants 64; placement stripe:262144"
    assert FleetMember.parse(spec) == member
    # aliases and case collapse to the same canonical form
    sloppy = FleetMember.parse("MEMBER 2 / 8 ;  tenants 64 ; placement stripe:256KiB")
    assert sloppy == member


@pytest.mark.parametrize(
    "bad",
    [
        "",
        "member 2/8",
        "member 8/8; tenants 4; placement rr",       # index out of range
        "member 0/0; tenants 4; placement rr",       # zero devices
        "member 0/2; tenants 0; placement rr",       # zero tenants
        "member 0/2; tenants 4; placement warp",     # unknown policy
        "tenants 4; member 0/2; placement rr",       # wrong clause order
    ],
)
def test_descriptor_rejects_bad_grammar(bad):
    with pytest.raises(ConfigurationError):
        FleetMember.parse(bad)


# --------------------------------------------------------------------- #
# fan-out invariants
# --------------------------------------------------------------------- #

def test_single_device_single_tenant_is_identity():
    base = _base_trace()
    member = FleetMember(index=0, devices=1, tenants=1, placement="round-robin")
    share = member_requests(member, base, footprint_bytes=1 << 21,
                            queue_pairs=4, seed=42)
    assert len(share) == len(base.requests)
    for got, expected in zip(share, base.requests):
        assert got.kind is expected.kind
        assert got.offset_bytes == expected.offset_bytes
        assert got.size_bytes == expected.size_bytes
        assert got.arrival_ns == expected.arrival_ns
        assert got.queue_id == expected.queue_id


def test_member_shares_partition_the_round_robin_stream():
    base = _base_trace()
    devices = 3
    shares = [
        member_requests(
            FleetMember(index=i, devices=devices, tenants=4,
                        placement="round-robin"),
            base, footprint_bytes=1 << 21, queue_pairs=4, seed=42,
        )
        for i in range(devices)
    ]
    total = devices * len(base.requests)
    assert sum(len(share) for share in shares) == total
    # round-robin balance: shares differ by at most one request
    sizes = sorted(len(share) for share in shares)
    assert sizes[-1] - sizes[0] <= 1


def test_fan_out_is_deterministic():
    base = _base_trace()
    member = FleetMember(index=1, devices=4, tenants=16, placement="hash-tenant")
    first = member_requests(member, base, 1 << 21, 4, seed=7)
    second = member_requests(member, base, 1 << 21, 4, seed=7)
    assert [
        (r.arrival_ns, r.offset_bytes, r.size_bytes, r.kind, r.queue_id)
        for r in first
    ] == [
        (r.arrival_ns, r.offset_bytes, r.size_bytes, r.kind, r.queue_id)
        for r in second
    ]
    # a different seed re-phases the tenants
    reseeded = member_requests(member, base, 1 << 21, 4, seed=8)
    assert [r.arrival_ns for r in reseeded] != [r.arrival_ns for r in first]


def test_hash_placement_keeps_tenant_affinity():
    """Every request of one tenant lands on exactly one device."""
    base = _base_trace()
    devices, tenants = 3, 9
    footprint = 1 << 21
    slice_bytes = devices * footprint // tenants
    owners = {}
    for index in range(devices):
        share = member_requests(
            FleetMember(index=index, devices=devices, tenants=tenants,
                        placement="hash-tenant"),
            base, footprint, 4, seed=42,
        )
        for request in share:
            # recover the tenant from the global slice before the local fold
            # is impossible post-fold; use queue phase instead: tenants map
            # onto queues as (base_queue + tenant) % queue_pairs, so track
            # via arrival uniqueness: every (arrival, offset) pair belongs
            # to one tenant's stream and must not appear on two devices.
            key = (request.arrival_ns, request.size_bytes, request.kind)
            assert owners.setdefault(key, index) == index


def test_zero_request_tenants_are_legal():
    """Thousands of tenants over a tiny request budget: most get nothing."""
    base = _base_trace(count=6)
    devices = 2
    shares = [
        member_requests(
            FleetMember(index=i, devices=devices, tenants=2000,
                        placement="round-robin"),
            base, footprint_bytes=1 << 22, queue_pairs=4, seed=42,
        )
        for i in range(devices)
    ]
    assert sum(len(share) for share in shares) == devices * len(base.requests)


def test_empty_member_share_is_possible_under_hash():
    """With one tenant, hash placement sends everything to one device."""
    base = _base_trace()
    devices = 4
    shares = [
        member_requests(
            FleetMember(index=i, devices=devices, tenants=1,
                        placement="hash-tenant"),
            base, 1 << 21, 4, seed=42,
        )
        for i in range(devices)
    ]
    non_empty = [share for share in shares if share]
    assert len(non_empty) == 1
    assert len(non_empty[0]) == devices * len(base.requests)
    assert sum(len(s) for s in shares) == devices * len(base.requests)


def test_uneven_stripes_at_footprint_boundaries():
    """A footprint that is not stripe-aligned still folds inside bounds."""
    base = _base_trace(size=48 * 1024)  # requests span many 4K stripes
    devices = 3
    footprint = (1 << 20) + 4096 + 512  # deliberately unaligned footprint
    shares = [
        member_requests(
            FleetMember(index=i, devices=devices, tenants=5,
                        placement="stripe:4096"),
            base, footprint, 4, seed=42,
        )
        for i in range(devices)
    ]
    total_bytes = devices * sum(r.size_bytes for r in base.requests)
    assert sum(r.size_bytes for share in shares for r in share) == total_bytes
    for share in shares:
        assert share  # striping spreads every large request over all devices
        for request in share:
            assert 0 <= request.offset_bytes < footprint
            assert request.size_bytes <= 4096  # no fragment exceeds a stripe


def test_arrivals_are_sorted_and_non_negative():
    base = _base_trace()
    share = member_requests(
        FleetMember(index=0, devices=2, tenants=6, placement="round-robin"),
        base, 1 << 21, 4, seed=42,
    )
    arrivals = [request.arrival_ns for request in share]
    assert arrivals == sorted(arrivals)
    assert all(arrival >= 0 for arrival in arrivals)


def test_too_many_tenants_for_the_address_space_raises():
    base = _base_trace()
    with pytest.raises(ConfigurationError):
        member_requests(
            FleetMember(index=0, devices=1, tenants=64, placement="round-robin"),
            base, footprint_bytes=32, queue_pairs=4, seed=42,
        )


def test_member_requests_rejects_non_positive_footprint():
    member = FleetMember(index=0, devices=2, tenants=2,
                         placement="round-robin")
    with pytest.raises(ConfigurationError, match="footprint"):
        member_requests(member, _base_trace(), 0, queue_pairs=1, seed=1)
