"""Fleet execution: roll-ups, caching, determinism, edge cases."""

import pytest

from repro.experiments.executor import ParallelExecutor, SerialExecutor
from repro.experiments.spec import ExperimentScale, make_spec
from repro.experiments.store import ResultStore
from repro.fleet.run import run_fleet, run_fleet_sweep
from repro.fleet.spec import make_fleet_spec

SCALE = ExperimentScale(requests=48, blocks_per_plane=8, pages_per_block=8)


def test_single_device_fleet_matches_the_plain_run_bit_for_bit():
    fleet = make_fleet_spec("venice", "perf", "hm_0", SCALE, devices=1,
                            tenants=1)
    plain = make_spec("venice", "perf", "hm_0", SCALE, export_histogram=True)
    member_result = fleet.members[0].execute()
    plain_result = plain.execute()
    assert member_result.to_dict() == plain_result.to_dict()


def test_roll_up_aggregates_members():
    fleet = make_fleet_spec("venice", "perf", "hm_0", SCALE, devices=3,
                            tenants=6)
    payload = run_fleet(fleet)
    per_device = payload["per_device"]
    assert payload["devices"] == 3 and len(per_device) == 3
    assert payload["requests_completed"] == sum(
        cell["requests_completed"] for cell in per_device
    )
    assert payload["requests_completed"] == 3 * SCALE.requests
    assert payload["makespan_ns"] == max(
        cell["execution_time_ns"] for cell in per_device
    )
    assert payload["latency"]["count"] == payload["requests_completed"]
    # merged percentiles bracket sensibly and the p999 tail dominates
    latency = payload["latency"]
    assert 0 < latency["p50_ns"] <= latency["p99_ns"] <= latency["p999_ns"]
    assert latency["p999_ns"] <= latency["max_ns"]
    assert payload["aggregate_iops"] > 0
    assert payload["imbalance"]["max_over_mean"] >= 1.0


def test_mixed_design_fleet_reports_per_member_designs():
    fleet = make_fleet_spec(["venice", "baseline"], "perf", "hm_0", SCALE,
                            tenants=4)
    payload = run_fleet(fleet)
    assert payload["member_designs"] == ["venice", "baseline"]
    assert [cell["design"] for cell in payload["per_device"]] == [
        "venice", "baseline",
    ]


def test_warm_store_serves_a_fleet_without_simulating(tmp_path):
    fleet = make_fleet_spec("venice", "perf", "hm_0", SCALE, devices=2,
                            tenants=4)
    store = ResultStore(tmp_path / "store")
    executor = SerialExecutor()
    cold = run_fleet(fleet, executor=executor, store=store)
    assert executor.runs_completed == 2
    warm_executor = SerialExecutor()
    warm = run_fleet(fleet, executor=warm_executor,
                     store=ResultStore(tmp_path / "store"))
    assert warm_executor.runs_completed == 0  # zero simulations
    assert warm == cold


def test_parallel_fleet_results_are_bit_identical_to_serial():
    fleet = make_fleet_spec("venice", "perf", "hm_0", SCALE, devices=3,
                            tenants=6, placement="stripe:64KiB")
    serial = run_fleet(fleet, executor=SerialExecutor())
    parallel = run_fleet(fleet, executor=ParallelExecutor(4))
    assert serial == parallel


def test_empty_member_share_yields_an_all_zero_result():
    """hash placement with one tenant starves every other device."""
    fleet = make_fleet_spec("venice", "perf", "hm_0", SCALE, devices=3,
                            tenants=1, placement="hash-tenant")
    payload = run_fleet(fleet)
    counts = [cell["requests_completed"] for cell in payload["per_device"]]
    assert sorted(counts) == [0, 0, 3 * SCALE.requests]
    assert payload["requests_completed"] == 3 * SCALE.requests
    # starved members roll up as zero-IOPS devices, not errors
    zero_cells = [cell for cell in payload["per_device"]
                  if cell["requests_completed"] == 0]
    assert all(cell["iops"] == 0.0 for cell in zero_cells)
    assert payload["imbalance"]["min"] == 0.0


def test_thousands_of_tenants_over_a_small_budget():
    fleet = make_fleet_spec("venice", "perf", "hm_0", SCALE, devices=2,
                            tenants=2000)
    payload = run_fleet(fleet)
    assert payload["requests_completed"] == 2 * SCALE.requests
    assert payload["tenants"] == 2000


def test_fleet_composes_with_fault_injection():
    """Killing one member's links moves that member, not the others."""
    healthy = make_fleet_spec("venice", "perf", "hm_0", SCALE, devices=2,
                              tenants=4)
    degraded = make_fleet_spec(
        "venice", "perf", "hm_0", SCALE, devices=2, tenants=4,
        faults={1: "0 link (0,2)-(0,3) down; 0 link (1,2)-(1,3) down"},
    )
    healthy_payload = run_fleet(healthy)
    degraded_payload = run_fleet(degraded)
    # member 0 specs are identical in both fleets -> identical results
    assert (healthy_payload["per_device"][0]
            == degraded_payload["per_device"][0])
    # member 1 simulated a degraded fabric (distinct spec, fault telemetry)
    assert healthy.members[1].digest != degraded.members[1].digest
    assert degraded.members[1].faults != ""


def test_sweep_grid_shares_the_store_and_stays_deterministic(tmp_path):
    kwargs = dict(
        device_counts=(1, 2), placements=("rr", "hash"), tenants=5,
        scale=SCALE,
    )
    store = ResultStore(tmp_path / "store")
    executor = SerialExecutor()
    cold = run_fleet_sweep("venice", "perf", "hm_0", executor=executor,
                           store=store, **kwargs)
    simulated = executor.runs_completed
    assert simulated > 0
    warm_executor = ParallelExecutor(4)
    warm = run_fleet_sweep("venice", "perf", "hm_0", executor=warm_executor,
                           store=ResultStore(tmp_path / "store"), **kwargs)
    assert warm_executor.runs_completed == 0
    assert warm == cold
    assert cold["placements"] == ["round-robin", "hash-tenant"]
    assert cold["device_counts"] == [1, 2]
    for placement in cold["placements"]:
        for count in cold["device_counts"]:
            cell = cold["curve"][placement][count]
            assert cell["requests_completed"] == count * SCALE.requests


def test_sweep_throughput_grows_with_devices(tmp_path):
    payload = run_fleet_sweep(
        "venice", "perf", "hm_0", scale=SCALE, device_counts=(1, 4),
        placements=("round-robin",), tenants=8,
        store=ResultStore(tmp_path / "store"),
    )
    curve = payload["curve"]["round-robin"]
    assert curve[4]["aggregate_iops"] > curve[1]["aggregate_iops"]


def test_sweep_rejects_empty_axes():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        run_fleet_sweep("venice", "perf", "hm_0", scale=SCALE,
                        device_counts=())
    with pytest.raises(ConfigurationError):
        run_fleet_sweep("venice", "perf", "hm_0", scale=SCALE,
                        device_counts=(0,))
