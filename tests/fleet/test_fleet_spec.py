"""FleetSpec identity: digests, member specs, the fleet field no-op."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.spec import ExperimentScale, RunSpec, make_spec
from repro.fleet.spec import FleetSpec, make_fleet_spec

SCALE = ExperimentScale(requests=60, blocks_per_plane=8, pages_per_block=8)


def test_equal_fleets_share_a_digest():
    first = make_fleet_spec("venice", "perf", "hm_0", SCALE, devices=3,
                            tenants=8)
    second = make_fleet_spec("venice", "performance-optimized", "hm_0", SCALE,
                             devices=3, tenants=8)
    assert first.digest == second.digest
    assert first.members == second.members


@pytest.mark.parametrize(
    "override",
    [
        {"devices": 4},
        {"tenants": 9},
        {"placement": "hash-tenant"},
        {"placement": "stripe:65536"},
        {"workload": "proj_3"},
    ],
)
def test_any_fleet_knob_changes_the_digest(override):
    base = dict(designs="venice", preset="perf", workload="hm_0", scale=SCALE,
                devices=3, tenants=8, placement="round-robin")
    first = make_fleet_spec(base["designs"], base["preset"], base["workload"],
                            base["scale"], devices=base["devices"],
                            tenants=base["tenants"],
                            placement=base["placement"])
    merged = {**base, **override}
    changed = make_fleet_spec(merged["designs"], merged["preset"],
                              merged["workload"], merged["scale"],
                              devices=merged["devices"],
                              tenants=merged["tenants"],
                              placement=merged["placement"])
    assert changed.digest != first.digest


def test_member_specs_carry_their_descriptor_in_the_digest():
    fleet = make_fleet_spec("venice", "perf", "hm_0", SCALE, devices=2,
                            tenants=4)
    plain = make_spec("venice", "perf", "hm_0", SCALE, export_histogram=True)
    descriptors = {member.fleet for member in fleet.members}
    assert descriptors == {
        "member 0/2; tenants 4; placement round-robin",
        "member 1/2; tenants 4; placement round-robin",
    }
    digests = {member.digest for member in fleet.members} | {plain.digest}
    assert len(digests) == 3  # every member distinct, all distinct from plain


def test_empty_fleet_field_is_a_strict_noop():
    """No ``fleet`` key in the payload -> pre-fleet digests unchanged."""
    spec = make_spec("venice", "perf", "hm_0", SCALE)
    assert spec.fleet == ""
    assert "fleet" not in spec.to_dict()
    rebuilt = RunSpec.from_dict(spec.to_dict())
    assert rebuilt == spec and rebuilt.digest == spec.digest


def test_fleet_member_spec_round_trips_through_dict():
    fleet = make_fleet_spec("venice", "perf", "hm_0", SCALE, devices=2,
                            tenants=4, placement="stripe:64KiB")
    member = fleet.members[1]
    payload = member.to_dict()
    assert payload["fleet"] == "member 1/2; tenants 4; placement stripe:65536"
    rebuilt = RunSpec.from_dict(payload)
    assert rebuilt == member and rebuilt.digest == member.digest


def test_mixed_designs_and_per_member_faults():
    fleet = make_fleet_spec(
        ["venice", "baseline", "nossd"],
        "perf",
        "hm_0",
        SCALE,
        tenants=2,
        faults={1: "0 link (0,2)-(0,3) down"},
    )
    assert [member.design for member in fleet.members] == [
        "venice", "baseline", "nossd",
    ]
    assert fleet.members[0].faults == ""
    assert fleet.members[1].faults == "0ns link (0,2)-(0,3) down"
    assert fleet.members[2].faults == ""


def test_fleet_shape_validation():
    with pytest.raises(ConfigurationError):
        make_fleet_spec([], "perf", "hm_0", SCALE)
    with pytest.raises(ConfigurationError):
        make_fleet_spec(["venice", "nossd"], "perf", "hm_0", SCALE, devices=3)
    with pytest.raises(ConfigurationError):
        make_fleet_spec("venice", "perf", "hm_0", SCALE, devices=2, tenants=0)
    with pytest.raises(ConfigurationError):
        make_fleet_spec("venice", "perf", "hm_0", SCALE, devices=2,
                        faults={5: "0 link (0,2)-(0,3) down"})
    with pytest.raises(ConfigurationError):
        make_fleet_spec("venice", "perf", "hm_0", SCALE, devices=2,
                        faults=["0 link (0,2)-(0,3) down"])  # wrong length
    with pytest.raises(ConfigurationError):
        FleetSpec(members=(), placement="round-robin", tenants=1)


def test_non_fleet_spec_refuses_fleet_requests():
    spec = make_spec("venice", "perf", "hm_0", SCALE)
    with pytest.raises(ConfigurationError):
        spec.fleet_requests()


def test_direct_construction_validates_tenants():
    members = make_fleet_spec("venice", "perf", "hm_0", SCALE,
                              devices=1).members
    with pytest.raises(ConfigurationError, match="tenant"):
        FleetSpec(members=members, placement="round-robin", tenants=0)


def test_mixed_design_fleet_label_lists_every_member():
    fleet = make_fleet_spec(["venice", "nossd"], "perf", "hm_0", SCALE,
                            devices=2)
    assert "venice,nossd" in fleet.label()
