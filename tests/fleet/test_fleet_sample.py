"""Sampled-fleet mode: stratified member selection and CI roll-ups."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.spec import ExperimentScale
from repro.fleet import (
    make_fleet_spec,
    run_fleet,
    run_fleet_sweep,
    sample_member_indices,
)

SCALE = ExperimentScale(
    requests=200,
    requests_per_mix_constituent=80,
    blocks_per_plane=8,
    pages_per_block=8,
)


class TestSampleMemberIndices:
    def test_one_representative_per_stratum(self):
        indices = sample_member_indices(100, 4, seed=42)
        assert len(indices) == 4
        for stratum, index in enumerate(indices):
            assert stratum * 25 <= index < (stratum + 1) * 25

    def test_deterministic_in_the_seed(self):
        assert sample_member_indices(1000, 32, seed=7) == (
            sample_member_indices(1000, 32, seed=7)
        )
        assert sample_member_indices(1000, 32, seed=7) != (
            sample_member_indices(1000, 32, seed=8)
        )

    def test_full_sample_covers_uneven_strata(self):
        # devices not divisible by sample: every index still unique and
        # in range, one per stratum.
        indices = sample_member_indices(10, 3, seed=1)
        assert len(set(indices)) == 3
        assert all(0 <= index < 10 for index in indices)

    @pytest.mark.parametrize("sample", [0, -1, 11])
    def test_rejects_out_of_range_sample(self, sample):
        with pytest.raises(ConfigurationError):
            sample_member_indices(10, sample, seed=1)


class TestFleetSpecSampling:
    def test_sample_zero_digest_matches_the_unsampled_fleet(self):
        exact = make_fleet_spec("venice", "performance-optimized", "hm_0",
                                SCALE, devices=6)
        explicit = make_fleet_spec("venice", "performance-optimized", "hm_0",
                                   SCALE, devices=6, sample=0)
        assert exact.digest == explicit.digest
        assert exact.active_members() == exact.members

    def test_sampling_changes_the_digest_and_label(self):
        fleet = make_fleet_spec("venice", "performance-optimized", "hm_0",
                                SCALE, devices=6, sample=2)
        exact = make_fleet_spec("venice", "performance-optimized", "hm_0",
                                SCALE, devices=6)
        assert fleet.digest != exact.digest
        assert "sample=2" in fleet.label()
        assert len(fleet.active_members()) == 2

    def test_sample_covering_the_fleet_is_exact(self):
        fleet = make_fleet_spec("venice", "performance-optimized", "hm_0",
                                SCALE, devices=3, sample=3)
        assert fleet.sampled_indices() == (0, 1, 2)

    def test_rejects_oversized_sample(self):
        with pytest.raises(ConfigurationError):
            make_fleet_spec("venice", "performance-optimized", "hm_0",
                            SCALE, devices=3, sample=4)


class TestSampledRollUp:
    def test_sampled_run_extrapolates_with_confidence_intervals(self):
        fleet = make_fleet_spec("venice", "performance-optimized", "hm_0",
                                SCALE, devices=8, tenants=2, sample=2)
        payload = run_fleet(fleet)
        assert payload["devices"] == 8
        assert payload["sampled_member_indices"] == list(
            fleet.sampled_indices()
        )
        sample = payload["sample"]
        assert sample["devices_simulated"] == 2
        assert sample["scale_factor"] == 4.0
        assert sample["confidence"] == 0.95
        for ci in (sample["iops_per_device_ci"], sample["p99_ns_ci"]):
            assert ci["lo"] <= ci["mean"] <= ci["hi"]
            assert ci["half_width"] >= 0.0
        # Extensive totals scale by the factor; per-device detail does not.
        assert len(payload["per_device"]) == 2
        per_member = sum(
            cell["requests_completed"] for cell in payload["per_device"]
        )
        assert payload["requests_completed"] == 4 * per_member

    def test_exact_run_payload_has_no_sample_block(self):
        fleet = make_fleet_spec("venice", "performance-optimized", "hm_0",
                                SCALE, devices=2, tenants=2)
        payload = run_fleet(fleet)
        assert "sample" not in payload
        assert "sampled_member_indices" not in payload

    def test_single_representative_reports_zero_half_width(self):
        fleet = make_fleet_spec("venice", "performance-optimized", "hm_0",
                                SCALE, devices=5, sample=1)
        ci = run_fleet(fleet)["sample"]["iops_per_device_ci"]
        assert ci["half_width"] == 0.0
        assert ci["lo"] == ci["mean"] == ci["hi"]


class TestSampledSweep:
    def test_sample_is_clamped_per_cell(self):
        payload = run_fleet_sweep(
            "venice", "performance-optimized", "hm_0", SCALE,
            device_counts=(2, 6), tenants=2, sample=3,
        )
        assert payload["sample"] == 3
        curve = payload["curve"]["round-robin"]
        # 2-device cell runs exact (sample clamps to the fleet size).
        assert "sample" not in curve[2]
        assert curve[6]["sample"]["devices_simulated"] == 3

    def test_exact_sweep_payload_is_unchanged(self):
        payload = run_fleet_sweep(
            "venice", "performance-optimized", "hm_0", SCALE,
            device_counts=(2,), tenants=2,
        )
        assert "sample" not in payload
        assert "sample" not in payload["curve"]["round-robin"][2]


def test_sweep_specs_reject_negative_sample():
    from repro.fleet.run import sweep_fleet_specs

    with pytest.raises(ConfigurationError, match="sample"):
        sweep_fleet_specs("venice", "perf", "hm_0", SCALE, [2],
                          sample=-1)
