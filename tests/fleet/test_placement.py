"""Placement-policy units: canonical forms, dispatch, stripe fragments."""

import pytest

from repro.errors import ConfigurationError
from repro.fleet.placement import (
    DEFAULT_STRIPE_BYTES,
    HashTenantPlacement,
    LbaStripingPlacement,
    RoundRobinPlacement,
    build_placement,
    canonical_placement,
    placement_names,
)


@pytest.mark.parametrize(
    "alias, canonical",
    [
        ("rr", "round-robin"),
        ("round-robin", "round-robin"),
        ("  RR  ", "round-robin"),
        ("hash", "hash-tenant"),
        ("hash-tenant", "hash-tenant"),
        ("stripe", f"stripe:{DEFAULT_STRIPE_BYTES}"),
        ("stripe:262144", "stripe:262144"),
        ("stripe:256KiB", "stripe:262144"),
        ("stripe:1MiB", "stripe:1048576"),
        ("stripe:64k", "stripe:65536"),
    ],
)
def test_canonical_placement_aliases(alias, canonical):
    assert canonical_placement(alias) == canonical
    # idempotent: canonical forms canonicalise to themselves
    assert canonical_placement(canonical) == canonical


@pytest.mark.parametrize("bad", ["banana", "stripe:", "stripe:0", "stripe:8",
                                 "stripe:xMiB", ""])
def test_canonical_placement_rejects_garbage(bad):
    with pytest.raises(ConfigurationError):
        canonical_placement(bad)


def test_placement_names_cover_the_three_families():
    names = placement_names()
    assert "round-robin" in names
    assert "hash-tenant" in names
    assert any(name.startswith("stripe") for name in names)


def test_build_placement_dispatches_on_canonical_name():
    assert isinstance(build_placement("rr", 4), RoundRobinPlacement)
    assert isinstance(build_placement("hash", 4), HashTenantPlacement)
    stripe = build_placement("stripe:64KiB", 4)
    assert isinstance(stripe, LbaStripingPlacement)
    assert stripe.stripe_bytes == 65536
    assert stripe.to_spec() == "stripe:65536"
    with pytest.raises(ConfigurationError):
        build_placement("rr", 0)


def test_round_robin_balances_by_ordinal():
    policy = RoundRobinPlacement(3)
    devices = [
        next(iter(policy.place(ordinal, tenant=9, offset_bytes=0, size_bytes=512)))[0]
        for ordinal in range(9)
    ]
    assert devices == [0, 1, 2, 0, 1, 2, 0, 1, 2]


def test_hash_tenant_is_stable_and_tenant_affine():
    policy = HashTenantPlacement(5, seed=42)
    again = HashTenantPlacement(5, seed=42)
    for tenant in range(50):
        home = policy.device_for_tenant(tenant)
        assert 0 <= home < 5
        assert home == again.device_for_tenant(tenant)  # process-independent
        fragments = list(policy.place(7, tenant, 4096, 8192))
        assert fragments == [(home, 4096, 8192)]
    # a different seed reshuffles at least one tenant
    reseeded = HashTenantPlacement(5, seed=43)
    assert any(
        reseeded.device_for_tenant(t) != policy.device_for_tenant(t)
        for t in range(50)
    )


def test_stripe_fragments_conserve_bytes_and_split_unevenly():
    policy = LbaStripingPlacement(2, stripe_bytes=4096)
    # 10 KiB starting 1 KiB into stripe 0: fragments 3K / 4K / 3K.
    fragments = list(policy.place(0, 0, 1024, 10240))
    assert [size for _, _, size in fragments] == [3072, 4096, 3072]
    assert sum(size for _, _, size in fragments) == 10240
    assert [device for device, _, _ in fragments] == [0, 1, 0]
    # device-local offsets fold consecutive owned stripes together
    assert fragments[0][1] == 1024        # stripe 0 -> device 0, local stripe 0
    assert fragments[1][1] == 0           # stripe 1 -> device 1, local stripe 0
    assert fragments[2][1] == 4096        # stripe 2 -> device 0, local stripe 1


def test_stripe_aligned_request_stays_whole():
    policy = LbaStripingPlacement(4, stripe_bytes=8192)
    fragments = list(policy.place(0, 0, 8192 * 5, 8192))
    assert fragments == [(1, 8192, 8192)]  # stripe 5 -> device 1, local stripe 1


def test_stripe_rejects_sub_sector_stripes():
    with pytest.raises(ConfigurationError):
        LbaStripingPlacement(2, stripe_bytes=256)


def test_base_policy_methods_are_abstract():
    from repro.fleet.placement import PlacementPolicy

    policy = PlacementPolicy(devices=2)
    with pytest.raises(NotImplementedError):
        next(policy.place(0, 0, 0, 4096))
    with pytest.raises(NotImplementedError):
        policy.to_spec()


def test_non_striped_policies_render_canonical_specs():
    assert RoundRobinPlacement(devices=2).to_spec() == "round-robin"
    assert HashTenantPlacement(devices=2).to_spec() == "hash-tenant"
