"""Dispatcher QoS: grammar, policy semantics, and the no-op pins."""

import hashlib
import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.executor import SerialExecutor, execute_specs
from repro.experiments.spec import ExperimentScale, make_spec
from repro.fleet.member import canonical_burst
from repro.fleet.qos import (
    NoQos,
    SloAdmissionQos,
    TokenBucketQos,
    WeightedFairQueueingQos,
    build_qos,
    canonical_qos,
    qos_names,
)
from repro.fleet.run import run_fleet
from repro.fleet.spec import make_fleet_spec

SCALE = ExperimentScale(
    requests=120, requests_per_mix_constituent=50, seed=42
)


def _entries(count=40, tenants=4, gap=1000):
    """A synthetic merged stream: round-robin tenants, even arrivals."""
    return [
        (k * gap, k % tenants, k, "read", k * 4096, 4096, 0)
        for k in range(count)
    ]


# --------------------------------------------------------------------- #
# grammar
# --------------------------------------------------------------------- #


def test_canonical_qos_grammar():
    assert canonical_qos("") == ""
    assert canonical_qos("none") == ""
    assert canonical_qos("NONE") == ""
    assert canonical_qos("token-bucket:1000000") == "token-bucket:1e+06,8"
    assert (
        canonical_qos("token-bucket:2.5e5, 4") == "token-bucket:250000,4"
    )
    assert canonical_qos("wfq:1, 2, 4.0") == "wfq:1,2,4"
    assert canonical_qos("slo:800") == "slo:800,0.5"
    assert canonical_qos("slo:200,0.25") == "slo:200,0.25"
    # Canonicalisation is idempotent.
    for spec in ("token-bucket:1e6,16", "wfq:1,4", "slo:50,0.25"):
        assert canonical_qos(canonical_qos(spec)) == canonical_qos(spec)


@pytest.mark.parametrize(
    "bad",
    [
        "unknown:1",
        "token-bucket:",
        "token-bucket:0",
        "token-bucket:-5,8",
        "token-bucket:1e6,0.5",  # burst < 1
        "wfq:",
        "wfq:1,0",
        "wfq:1,x",
        "slo:0",
        "slo:800,0",
        "slo:800,1.5",  # admit > 1
    ],
)
def test_canonical_qos_rejects(bad):
    with pytest.raises(ConfigurationError):
        canonical_qos(bad)


def test_qos_names_lists_the_grammar():
    names = qos_names()
    assert names[0] == "none"
    assert any(name.startswith("token-bucket:") for name in names)
    assert any(name.startswith("wfq:") for name in names)
    assert any(name.startswith("slo:") for name in names)


def test_canonical_burst_grammar():
    assert canonical_burst("", 4) == ""
    assert canonical_burst("0x1", 4) == ""  # factor 1 = fair share
    assert canonical_burst("0x8", 4) == "0x8"
    assert canonical_burst("1x2.5", 4) == "1x2.5"
    with pytest.raises(ConfigurationError):
        canonical_burst("4x2", 4)  # tenant outside [0, tenants)
    with pytest.raises(ConfigurationError):
        canonical_burst("0x0.5", 4)  # factor < 1
    with pytest.raises(ConfigurationError):
        canonical_burst("0*2", 4)


def test_build_qos_dispatch():
    assert isinstance(build_qos("", 4), NoQos)
    assert isinstance(build_qos("token-bucket:1e6", 4), TokenBucketQos)
    assert isinstance(build_qos("wfq:1,2", 4), WeightedFairQueueingQos)
    assert isinstance(build_qos("slo:100,0.5", 4), SloAdmissionQos)
    with pytest.raises(ConfigurationError):
        build_qos("token-bucket:1e6", 0)  # needs >= 1 tenant


# --------------------------------------------------------------------- #
# policy semantics (pure, no simulation)
# --------------------------------------------------------------------- #


def test_no_qos_is_identity():
    entries = _entries()
    decision = NoQos(4).apply(entries)
    assert decision.entries == entries
    assert decision.shed == {}


def test_token_bucket_shapes_without_dropping():
    entries = _entries(count=60, gap=100)  # far above the metered rate
    policy = TokenBucketQos(4, rate=1e6, burst=2.0)  # 1 token / 1000 ns
    decision = policy.apply(entries)
    assert len(decision.entries) == len(entries)
    assert decision.shed == {}
    # Per-tenant: order preserved, releases monotone, and (burst spent)
    # consecutive releases at least one token interval apart.
    for tenant in range(4):
        mine = [e for e in decision.entries if e[1] == tenant]
        assert [e[2] for e in mine] == sorted(e[2] for e in mine)
        releases = [e[0] for e in mine]
        assert releases == sorted(releases)
        gaps = [b - a for a, b in zip(releases, releases[1:])]
        assert all(gap >= 999 for gap in gaps[2:])  # after the burst
    # Deterministic: same input, same schedule.
    assert policy.apply(entries).entries == decision.entries


def test_token_bucket_is_transparent_under_its_rate():
    entries = _entries(count=20, gap=100_000)  # 10 kHz per stream
    decision = TokenBucketQos(4, rate=1e6, burst=8.0).apply(entries)
    assert decision.entries == entries  # never throttles a fair stream


def test_wfq_preserves_arrival_multiset_and_tenant_order():
    entries = _entries(count=48)
    decision = WeightedFairQueueingQos(4, (1.0, 4.0, 4.0, 4.0)).apply(
        entries
    )
    assert len(decision.entries) == len(entries)
    assert decision.shed == {}
    # The aggregate injection pattern is untouched: same arrival instants.
    assert sorted(e[0] for e in decision.entries) == sorted(
        e[0] for e in entries
    )
    # Per-tenant relative order is preserved.
    for tenant in range(4):
        ks = [e[2] for e in decision.entries if e[1] == tenant]
        assert ks == sorted(ks)
    # The weighted-down tenant is pushed late: its mean slot is worse
    # than the heavily weighted tenants'.
    mean = {
        tenant: sum(
            index
            for index, e in enumerate(decision.entries)
            if e[1] == tenant
        )
        for tenant in range(4)
    }
    assert mean[0] > max(mean[1], mean[2], mean[3])


def test_slo_sheds_only_the_over_share_tenant_down_to_the_floor():
    # Tenant 0 offers 4x its fair share into a saturated window.
    entries = sorted(
        [(k * 250, 0, k, "read", k * 4096, 4096, 0) for k in range(80)]
        + [
            (k * 1000, t, k, "read", k * 4096, 4096, 0)
            for t in (1, 2, 3)
            for k in range(20)
        ],
        key=lambda e: e[:3],
    )
    decision = SloAdmissionQos(4, p99_us=10.0, admit=0.25).apply(entries)
    shed = decision.shed
    assert shed and set(shed) == {0}  # victims are never shed
    assert shed[0] <= 60  # admit floor: keep >= ceil(0.25 * 80) = 20
    kept0 = sum(1 for e in decision.entries if e[1] == 0)
    assert kept0 == 80 - shed[0]
    assert kept0 >= 20
    # Survivors keep their arrivals: admission drops, it never reshapes.
    assert all(e in entries for e in decision.entries)


# --------------------------------------------------------------------- #
# spec plumbing
# --------------------------------------------------------------------- #


def test_qos_requires_a_fleet_descriptor():
    with pytest.raises(ConfigurationError):
        make_spec(
            "venice", "performance-optimized", "hm_0", SCALE,
            qos="token-bucket:1e6",
        )


def test_qos_and_burst_join_the_digests():
    plain = make_fleet_spec(
        "venice", "performance-optimized", "hm_0", SCALE,
        devices=2, tenants=4,
    )
    shaped = make_fleet_spec(
        "venice", "performance-optimized", "hm_0", SCALE,
        devices=2, tenants=4, qos="token-bucket:1e6,16",
    )
    bursty = make_fleet_spec(
        "venice", "performance-optimized", "hm_0", SCALE,
        devices=2, tenants=4, burst="0x8",
    )
    digests = {plain.digest, shaped.digest, bursty.digest}
    assert len(digests) == 3
    assert plain.members[0].digest != shaped.members[0].digest
    # Spec dicts round-trip the new fields losslessly.
    member = shaped.members[0]
    assert member.qos == "token-bucket:1e+06,16"
    assert type(member).from_dict(member.to_dict()) == member


def test_burst_clause_scales_one_tenant_only():
    scale = ExperimentScale(
        requests=60, requests_per_mix_constituent=50, seed=42
    )
    plain = make_fleet_spec(
        "venice", "performance-optimized", "hm_0", scale,
        devices=1, tenants=4,
    )
    bursty = make_fleet_spec(
        "venice", "performance-optimized", "hm_0", scale,
        devices=1, tenants=4, burst="0x4",
    )

    def counts(fleet):
        out = {}
        for request in fleet.members[0].fleet_requests():
            out[request.tenant] = out.get(request.tenant, 0) + 1
        return out

    before, after = counts(plain), counts(bursty)
    assert after[0] == pytest.approx(4 * before[0], abs=1)
    for tenant in (1, 2, 3):
        assert after[tenant] == before[tenant]


# --------------------------------------------------------------------- #
# the no-op pins: a QoS-free fleet is byte-identical to the pre-QoS layer
# --------------------------------------------------------------------- #

PINNED_FLEET_DIGEST = (
    "32e4ce284abbc581a37296104168cfa1c5baf1bcf68fdfe803c5f96d3e4a83dd"
)
PINNED_MEMBER0_DIGEST = (
    "f03240d3c134ea9a6d0bb625f0d8a8cf61e9608289eec9df590c047c828a82cf"
)
PINNED_MEMBER0_RESULT_SHA = (
    "b7002c9bf0e83811d0d1de8830f7be8dfc408d080c461ea2d5611f52f25a575b"
)
PINNED_FLEET_PAYLOAD_SHA = (
    "4d99ed6e19dd022634a14e894225bf8856aece4416e623514a2dbe6a76116e2e"
)


def _pinned_fleet():
    return make_fleet_spec(
        "venice", "performance-optimized", "hm_0", SCALE,
        devices=2, placement="round-robin", tenants=4,
    )


def test_qos_free_fleet_keeps_pre_qos_digests():
    fleet = _pinned_fleet()
    assert fleet.qos == "" and fleet.burst == ""
    assert fleet.digest == PINNED_FLEET_DIGEST
    assert fleet.members[0].digest == PINNED_MEMBER0_DIGEST
    # The serialized member spec has no qos key at all.
    assert "qos" not in fleet.members[0].to_dict()


def test_qos_free_fleet_results_are_byte_identical():
    fleet = _pinned_fleet()
    results = execute_specs(list(fleet.members), executor=SerialExecutor())
    member0 = results[fleet.members[0]]
    assert member0.tenant_histograms is None
    assert "tenant_histograms" not in member0.to_dict()
    result_sha = hashlib.sha256(
        json.dumps(member0.to_dict(), sort_keys=False).encode()
    ).hexdigest()
    assert result_sha == PINNED_MEMBER0_RESULT_SHA
    payload = run_fleet(_pinned_fleet(), executor=SerialExecutor())
    assert "qos" not in payload and "tenant_latency" not in payload
    payload_sha = hashlib.sha256(
        json.dumps(payload, sort_keys=True, default=str).encode()
    ).hexdigest()
    assert payload_sha == PINNED_FLEET_PAYLOAD_SHA
