"""Page allocator tests: striping order, reservation, exhaustion."""

import pytest

from repro.config.presets import performance_optimized
from repro.errors import GarbageCollectionError
from repro.ftl.allocator import AllocationStrategy, PageAllocator
from repro.nand.array import FlashArray
from repro.sim.engine import Engine


def make_allocator(strategy=AllocationStrategy.CWDP, blocks=2, pages=4, reserve=0):
    config = performance_optimized(blocks_per_plane=blocks, pages_per_block=pages)
    array = FlashArray(Engine(), config)
    allocator = PageAllocator(
        array, strategy=strategy, gc_reserved_blocks=reserve
    )
    return allocator, config


def test_cwdp_first_cycle_stays_on_channel_zero():
    """CWDP priority: way varies fastest, so the first chips_per_channel
    allocations fill channel 0's ways."""
    allocator, config = make_allocator()
    ways = config.geometry.chips_per_channel
    addresses = [allocator.allocate() for _ in range(ways)]
    assert all(a.chip.channel == 0 for a in addresses)
    assert [a.chip.way for a in addresses] == list(range(ways))


def test_cwdp_moves_to_next_channel_after_ways():
    allocator, config = make_allocator()
    ways = config.geometry.chips_per_channel
    for _ in range(ways):
        allocator.allocate()
    next_address = allocator.allocate()
    assert next_address.chip.channel == 1


def test_wcdp_first_cycle_spreads_channels():
    allocator, config = make_allocator(strategy=AllocationStrategy.WCDP)
    channels = config.geometry.channels
    addresses = [allocator.allocate() for _ in range(channels)]
    assert [a.chip.channel for a in addresses] == list(range(channels))
    assert all(a.chip.way == 0 for a in addresses)


def test_random_strategy_covers_many_planes():
    allocator, config = make_allocator(strategy=AllocationStrategy.RANDOM)
    planes = {
        allocator.allocate().plane_flat_index(config.geometry) for _ in range(200)
    }
    assert len(planes) > config.geometry.planes_total // 2


def test_allocations_never_repeat_a_page():
    allocator, config = make_allocator()
    seen = set()
    for _ in range(500):
        address = allocator.allocate()
        key = address.page_flat_index(config.geometry)
        assert key not in seen
        seen.add(key)


def test_allocation_reserves_pending_program():
    allocator, config = make_allocator()
    address = allocator.allocate()
    block = allocator.plane(address.plane_flat_index(config.geometry)).block(
        address.block
    )
    assert block.pending_programs == 1
    assert block.allocation_pointer == address.page + 1


def test_exhaustion_raises_gc_error():
    allocator, config = make_allocator(blocks=1, pages=1)
    for _ in range(config.geometry.total_pages):
        allocator.allocate()
    with pytest.raises(GarbageCollectionError):
        allocator.allocate()


def test_allocate_in_plane_pins_location():
    allocator, config = make_allocator()
    address = allocator.allocate_in_plane(5)
    assert address.plane_flat_index(config.geometry) == 5


def test_allocate_in_plane_exhaustion():
    allocator, config = make_allocator(blocks=1, pages=2)
    pages_per_plane = config.geometry.pages_per_plane
    for _ in range(pages_per_plane):
        allocator.allocate_in_plane(0)
    with pytest.raises(GarbageCollectionError):
        allocator.allocate_in_plane(0)


def test_multi_plane_allocation_same_offset():
    allocator, config = make_allocator()
    addresses = allocator.allocate_multi_plane(2)
    assert len(addresses) == 2
    first, second = addresses
    assert first.chip == second.chip
    assert first.die == second.die
    assert first.plane != second.plane
    assert (first.block, first.page) == (second.block, second.page)
    assert first.same_plane_offset(second)


def test_multi_plane_count_capped_at_planes_per_die():
    allocator, config = make_allocator()
    addresses = allocator.allocate_multi_plane(10)
    assert len(addresses) <= config.geometry.planes_per_die


def test_free_page_fraction_decreases():
    allocator, _ = make_allocator()
    start = allocator.free_page_fraction()
    for _ in range(50):
        allocator.allocate()
    assert allocator.free_page_fraction() < start


def test_open_block_tracking():
    allocator, config = make_allocator()
    address = allocator.allocate_in_plane(0)
    assert allocator.open_block_of(0) == address.block
    assert allocator.erased_block_count(0) == config.geometry.blocks_per_plane - 1


def test_gc_reserve_withheld_from_host_allocations():
    """With one reserved block per plane, host allocations stop while a GC
    allocation can still open the reserved block."""
    allocator, config = make_allocator(blocks=2, pages=2, reserve=1)
    host_pages = 0
    from repro.errors import GarbageCollectionError
    try:
        for _ in range(config.geometry.total_pages):
            allocator.allocate()
            host_pages += 1
    except GarbageCollectionError:
        pass
    # Host got at most half the device (one of two blocks per plane).
    assert host_pages <= config.geometry.total_pages // 2
    # GC can still allocate in any plane.
    assert allocator.allocate_in_plane(0, for_gc=True) is not None


def test_gc_reserve_blocks_host_but_admits_gc():
    """The reserve dip: with every non-reserved block consumed, host
    allocation stalls while GC migration targets still exist."""
    allocator, config = make_allocator(blocks=2, pages=2, reserve=1)
    pages_per_plane = config.geometry.pages_per_plane
    reserve_pages = config.geometry.pages_per_block  # one reserved block
    for _ in range(pages_per_plane - reserve_pages):
        allocator.allocate_in_plane(0, for_gc=False)
    with pytest.raises(GarbageCollectionError):
        allocator.allocate_in_plane(0, for_gc=False)
    address = allocator.allocate_in_plane(0, for_gc=True)
    assert address.plane_flat_index(config.geometry) == 0
