"""Garbage collection tests: victim selection, migration, data safety."""

import pytest

from repro.config.presets import performance_optimized
from repro.config.ssd_config import DesignKind
from repro.ftl.gc import GcPolicy
from repro.ssd.device import SsdDevice
from repro.workloads.synthetic import SECTOR
from repro.hil.request import IoKind, IoRequest


def write_heavy_device(blocks=4, pages=4):
    config = performance_optimized(blocks_per_plane=blocks, pages_per_block=pages)
    return SsdDevice(config, DesignKind.BASELINE)


def overwrite_trace(pages_to_write, page_size, passes=3):
    """Repeatedly overwrite a small LBA range to generate dead pages."""
    requests = []
    t = 0
    for _ in range(passes):
        for page in range(pages_to_write):
            requests.append(
                IoRequest(
                    kind=IoKind.WRITE,
                    offset_bytes=page * page_size,
                    size_bytes=page_size,
                    arrival_ns=t,
                )
            )
            t += 2000
    return requests


def test_gc_policy_thresholds():
    policy = GcPolicy(threshold_free_fraction=0.1, stop_free_fraction=0.2)
    assert policy.needs_gc(0.05)
    assert not policy.needs_gc(0.15)
    assert policy.should_stop(0.25)
    assert not policy.should_stop(0.15)


def test_gc_reclaims_blocks_under_overwrite_pressure():
    device = write_heavy_device()
    page = device.config.geometry.page_size
    # Fill most of the device, then overwrite a range repeatedly.
    device.precondition(0.85)
    requests = overwrite_trace(pages_to_write=64, page_size=page, passes=6)
    device.run_trace(requests, "overwrite")
    assert device.gc.invocations > 0
    assert device.gc.blocks_reclaimed > 0
    assert device.gc.erases_issued > 0


def test_gc_preserves_all_live_data():
    device = write_heavy_device()
    page = device.config.geometry.page_size
    device.precondition(0.85)
    requests = overwrite_trace(pages_to_write=64, page_size=page, passes=6)
    device.run_trace(requests, "overwrite")
    # Mapping stays a bijection and every mapped page is VALID in NAND.
    device.ftl.assert_consistent()


def test_gc_victim_selection_prefers_fewest_valid():
    device = write_heavy_device()
    allocator = device.ftl.allocator
    plane = allocator.plane(0)
    # Block 0: fully invalid; block 1: half valid -- both full.
    for page in range(plane.blocks[0].pages_per_block):
        plane.blocks[0].program_page(page)
        plane.blocks[0].invalidate_page(page)
    for page in range(plane.blocks[1].pages_per_block):
        plane.blocks[1].program_page(page)
        if page % 2 == 0:
            plane.blocks[1].invalidate_page(page)
    victim = device.gc.select_victim(0)
    assert victim == 0


def test_gc_victim_skips_fully_valid_blocks():
    device = write_heavy_device()
    plane = device.ftl.allocator.plane(0)
    for page in range(plane.blocks[0].pages_per_block):
        plane.blocks[0].program_page(page)
    assert device.gc.select_victim(0) is None


def test_gc_victim_skips_blocks_with_inflight_programs():
    device = write_heavy_device()
    plane = device.ftl.allocator.plane(0)
    block = plane.blocks[0]
    for page in range(block.pages_per_block - 1):
        block.program_page(page)
        block.invalidate_page(page)
    block.reserve_next_page()  # in-flight program
    assert device.gc.select_victim(0) != 0


def test_gc_migrations_travel_the_fabric():
    device = write_heavy_device()
    page = device.config.geometry.page_size
    device.precondition(0.85)
    requests = overwrite_trace(pages_to_write=64, page_size=page, passes=6)
    device.run_trace(requests, "overwrite")
    if device.gc.pages_migrated:
        # GC reads+programs went through the transaction pipeline.
        assert device.pipeline.reads_completed > 0


def test_no_gc_when_disabled():
    config = performance_optimized(blocks_per_plane=4, pages_per_block=4)
    device = SsdDevice(config, DesignKind.BASELINE, enable_gc=False)
    page = config.geometry.page_size
    device.precondition(0.85)
    requests = overwrite_trace(pages_to_write=32, page_size=page, passes=3)
    device.run_trace(requests, "overwrite")
    assert device.gc.invocations == 0
