"""DRAM cache and wear-leveling tests."""

import pytest

from repro.config.presets import performance_optimized
from repro.config.ssd_config import DesignKind
from repro.errors import ConfigurationError
from repro.ftl.cache import DramCache
from repro.ssd.device import SsdDevice


# --------------------------------------------------------------------- #
# DramCache
# --------------------------------------------------------------------- #


def test_cache_read_miss_then_hit():
    cache = DramCache(4)
    assert not cache.lookup_read(1)
    cache.fill(1)
    assert cache.lookup_read(1)
    assert cache.read_hits == 1
    assert cache.read_misses == 1


def test_cache_lru_eviction_order():
    cache = DramCache(2)
    cache.fill(1)
    cache.fill(2)
    cache.lookup_read(1)  # 1 becomes most-recent
    cache.fill(3)  # evicts 2
    assert cache.lookup_read(1)
    assert not cache.lookup_read(2)
    assert cache.lookup_read(3)


def test_cache_dirty_eviction_reports_writeback():
    cache = DramCache(1)
    cache.lookup_write(1)  # write-allocate dirty
    evicted = cache.fill(2)
    assert evicted == 1
    assert cache.writebacks == 1


def test_cache_write_hit_absorbed():
    cache = DramCache(4)
    cache.lookup_write(5)
    assert cache.lookup_write(5)
    assert cache.write_hits == 1


def test_cache_flush_counts_dirty_lines():
    cache = DramCache(8)
    cache.lookup_write(1)
    cache.lookup_write(2)
    cache.fill(3)
    assert cache.flush() == 2
    assert cache.occupancy == 0


def test_cache_disabled_never_hits():
    cache = DramCache(0)
    assert not cache.enabled
    cache.lookup_write(1)
    assert not cache.lookup_read(1)


def test_cache_invalidate():
    cache = DramCache(4)
    cache.fill(1)
    cache.invalidate(1)
    assert not cache.lookup_read(1)


def test_cache_hit_rates():
    cache = DramCache(4)
    cache.fill(1)
    cache.lookup_read(1)
    cache.lookup_read(2)
    assert cache.read_hit_rate == pytest.approx(0.5)


def test_cache_negative_capacity_rejected():
    with pytest.raises(ConfigurationError):
        DramCache(-1)


# --------------------------------------------------------------------- #
# Wear leveling
# --------------------------------------------------------------------- #


def make_device(enable_wear=True):
    config = performance_optimized(blocks_per_plane=4, pages_per_block=4)
    return SsdDevice(config, DesignKind.BASELINE, enable_wear_leveling=enable_wear)


def test_wear_stats_initially_flat():
    device = make_device()
    stats = device.wear_leveler.wear_stats()
    assert stats.minimum == 0
    assert stats.maximum == 0
    assert stats.spread == 0


def test_wear_spread_detection():
    device = make_device()
    plane = device.ftl.allocator.plane(0)
    plane.blocks[0].erase_count = 20  # artificially worn block
    assert device.wear_leveler.wear_stats().spread == 20
    assert device.wear_leveler.needs_leveling()


def test_wear_leveling_disabled_never_triggers():
    device = make_device(enable_wear=False)
    plane = device.ftl.allocator.plane(0)
    plane.blocks[0].erase_count = 50
    assert not device.wear_leveler.needs_leveling()
    assert not device.wear_leveler.maybe_trigger()


def test_cold_block_detection():
    device = make_device()
    plane = device.ftl.allocator.plane(3)
    block = plane.blocks[2]
    for page in range(block.pages_per_block):
        block.program_page(page)
    cold = device.wear_leveler._find_cold_block()
    assert cold is not None
    plane_flat, block_index = cold
    assert block_index == 2


def test_wear_leveling_migrates_cold_block():
    device = make_device()
    geometry = device.config.geometry
    # Build a fully-valid (cold) block by hand and register its pages in the
    # mapping so the migration's remap is legal.
    from repro.nand.address import PhysicalPageAddress, ChipAddress

    chip = ChipAddress(0, 0)
    for page in range(geometry.pages_per_block):
        address = PhysicalPageAddress(chip, 0, 0, 0, page)
        device.array.block_for(address).program_page(page)
        device.ftl.mapping.map_page(page, address.page_flat_index(geometry))
    device.ftl.allocator.plane(3).blocks[1].erase_count = 30
    triggered = device.wear_leveler.maybe_trigger()
    assert triggered
    device.engine.run()
    assert device.wear_leveler.migrations == geometry.pages_per_block
    device.ftl.assert_consistent()
