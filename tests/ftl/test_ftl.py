"""FTL translation tests: reads, writes, preconditioning, consistency."""

import pytest

from repro.config.presets import performance_optimized
from repro.controller.transaction import TransactionKind
from repro.errors import MappingError
from repro.ftl.cache import DramCache
from repro.ftl.ftl import Ftl
from repro.nand.array import FlashArray
from repro.sim.engine import Engine


def make_ftl(blocks=4, pages=8, cache=None, multi_plane=True):
    config = performance_optimized(blocks_per_plane=blocks, pages_per_block=pages)
    array = FlashArray(Engine(), config)
    return Ftl(config, array, cache=cache, multi_plane_writes=multi_plane), config


def complete_programs(ftl, transactions):
    """Apply the NAND state changes the pipeline would perform."""
    for transaction in transactions:
        if transaction.kind is TransactionKind.PROGRAM:
            for address in transaction.addresses:
                ftl.array.block_for(address).program_page(address.page)


def test_lpns_for_spans_pages():
    ftl, config = make_ftl()
    page = config.geometry.page_size
    assert ftl.lpns_for(0, page) == [0]
    assert ftl.lpns_for(0, page + 1) == [0, 1]
    assert ftl.lpns_for(page // 2, page) == [0, 1]


def test_lpns_for_rejects_empty():
    ftl, _ = make_ftl()
    with pytest.raises(MappingError):
        ftl.lpns_for(0, 0)


def test_read_of_unwritten_data_implicitly_preconditions():
    ftl, config = make_ftl()
    transactions = ftl.translate_read(0, config.geometry.page_size * 3)
    assert len(transactions) == 3
    assert all(t.kind is TransactionKind.READ for t in transactions)
    assert ftl.implicit_preconditions == 3
    ftl.assert_consistent()


def test_preconditioned_reads_cluster_on_one_channel():
    """Contiguous LPNs land on one channel, striped across its ways --
    the Figure 3 conflict pattern (see Ftl._materialise)."""
    ftl, config = make_ftl(blocks=8, pages=16)
    page = config.geometry.page_size
    transactions = ftl.translate_read(0, page * 8)
    channels = {t.primary.chip.channel for t in transactions}
    ways = {t.primary.chip.way for t in transactions}
    assert len(channels) == 1
    assert len(ways) == 8


def test_repeated_read_hits_same_physical_page():
    ftl, config = make_ftl()
    first = ftl.translate_read(0, config.geometry.page_size)
    second = ftl.translate_read(0, config.geometry.page_size)
    assert first[0].primary == second[0].primary
    assert ftl.implicit_preconditions == 1


def test_write_allocates_and_maps():
    ftl, config = make_ftl()
    transactions = ftl.translate_write(0, config.geometry.page_size)
    assert len(transactions) == 1
    assert transactions[0].kind is TransactionKind.PROGRAM
    assert ftl.mapping.lookup(0) is not None


def test_overwrite_is_out_of_place():
    ftl, config = make_ftl()
    page = config.geometry.page_size
    first = ftl.translate_write(0, page)
    complete_programs(ftl, first)
    first_ppn = ftl.mapping.lookup(0)
    second = ftl.translate_write(0, page)
    complete_programs(ftl, second)
    second_ppn = ftl.mapping.lookup(0)
    assert first_ppn != second_ppn
    # The old physical page is now invalid in NAND.
    from repro.nand.address import PhysicalPageAddress
    from repro.nand.chip import PageState

    old = PhysicalPageAddress.from_page_flat(first_ppn, config.geometry)
    assert ftl.array.block_for(old).page_states[old.page] is PageState.INVALID


def test_multi_plane_write_grouping():
    ftl, config = make_ftl()
    page = config.geometry.page_size
    transactions = ftl.translate_write(0, page * 4)
    multi = [t for t in transactions if t.is_multi_plane]
    assert multi, "large writes should produce multi-plane programs"
    assert sum(t.plane_count for t in transactions) == 4


def test_multi_plane_disabled():
    ftl, config = make_ftl(multi_plane=False)
    transactions = ftl.translate_write(0, config.geometry.page_size * 4)
    assert all(not t.is_multi_plane for t in transactions)
    assert len(transactions) == 4


def test_cache_absorbs_repeated_reads():
    cache = DramCache(capacity_pages=16)
    ftl, config = make_ftl(cache=cache)
    page = config.geometry.page_size
    first = ftl.translate_read(0, page)
    assert len(first) == 1
    second = ftl.translate_read(0, page)
    assert second == []  # served from DRAM
    assert ftl.cache_served_reads == 1


def test_precondition_fills_fraction():
    ftl, _ = make_ftl()
    written = ftl.precondition(0.25)
    assert written == int(ftl.logical_pages * 0.25)
    ftl.assert_consistent()


def test_precondition_rejects_bad_fraction():
    ftl, _ = make_ftl()
    with pytest.raises(MappingError):
        ftl.precondition(1.5)


def test_planes_touched_by_reports_program_planes():
    ftl, config = make_ftl()
    transactions = ftl.translate_write(0, config.geometry.page_size * 2)
    planes = ftl.planes_touched_by(transactions)
    assert planes
    reads = ftl.translate_read(10 * config.geometry.page_size, config.geometry.page_size)
    assert ftl.planes_touched_by(reads) == []


def test_logical_space_respects_over_provisioning():
    ftl, config = make_ftl()
    assert ftl.logical_pages == int(
        config.geometry.total_pages * (1.0 - config.over_provisioning)
    )
