"""Mapping table tests, including the bijection property."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MappingError
from repro.ftl.mapping import MappingTable


def test_lookup_unmapped_is_none():
    table = MappingTable(100)
    assert table.lookup(5) is None
    assert not table.is_mapped(5)


def test_map_and_lookup():
    table = MappingTable(100)
    assert table.map_page(5, 500) is None
    assert table.lookup(5) == 500
    assert table.reverse_lookup(500) == 5
    assert table.mapped_count == 1


def test_out_of_place_update_returns_old_ppn():
    table = MappingTable(100)
    table.map_page(5, 500)
    displaced = table.map_page(5, 777)
    assert displaced == 500
    assert table.lookup(5) == 777
    assert table.reverse_lookup(500) is None
    assert table.invalidations == 1


def test_physical_page_sharing_rejected():
    table = MappingTable(100)
    table.map_page(1, 500)
    with pytest.raises(MappingError):
        table.map_page(2, 500)


def test_lpn_bounds_enforced():
    table = MappingTable(10)
    with pytest.raises(MappingError):
        table.lookup(10)
    with pytest.raises(MappingError):
        table.map_page(-1, 0)


def test_unmap_trim():
    table = MappingTable(100)
    table.map_page(3, 300)
    assert table.unmap(3) == 300
    assert table.lookup(3) is None
    assert table.unmap(3) is None


def test_remap_physical_for_gc_migration():
    table = MappingTable(100)
    table.map_page(7, 700)
    lpn = table.remap_physical(700, 900)
    assert lpn == 7
    assert table.lookup(7) == 900
    assert table.reverse_lookup(700) is None
    assert table.reverse_lookup(900) == 7


def test_remap_physical_rejects_dead_source():
    table = MappingTable(100)
    with pytest.raises(MappingError):
        table.remap_physical(123, 456)


def test_remap_physical_rejects_live_target():
    table = MappingTable(100)
    table.map_page(1, 100)
    table.map_page(2, 200)
    with pytest.raises(MappingError):
        table.remap_physical(100, 200)


def test_empty_space_rejected():
    with pytest.raises(MappingError):
        MappingTable(0)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 49), st.integers(0, 999), st.booleans()),
        max_size=100,
    )
)
def test_mapping_stays_bijective(operations):
    """Forward and reverse maps mirror each other under any op sequence."""
    table = MappingTable(50)
    used_ppns = set()
    for lpn, ppn, do_unmap in operations:
        if do_unmap:
            freed = table.unmap(lpn)
            if freed is not None:
                used_ppns.discard(freed)
        elif ppn not in used_ppns:
            old = table.map_page(lpn, ppn)
            used_ppns.add(ppn)
            if old is not None:
                used_ppns.discard(old)
        table.assert_bijective()
