"""Table 1 preset fidelity tests."""

import pytest

from repro.config.presets import (
    cost_optimized,
    performance_optimized,
    preset_by_name,
    venice_network_defaults,
    PRESET_NAMES,
)
from repro.config.ssd_config import NS_PER_MS, NS_PER_US
from repro.errors import ConfigurationError


def test_performance_optimized_matches_table1():
    config = performance_optimized()
    assert config.geometry.channels == 8
    assert config.geometry.chips_per_channel == 8
    assert config.geometry.dies_per_chip == 1
    assert config.geometry.planes_per_die == 2
    assert config.geometry.blocks_per_plane == 1024
    assert config.geometry.pages_per_block == 768
    assert config.geometry.page_size == 4096
    assert config.timings.read_ns == 3 * NS_PER_US
    assert config.timings.program_ns == 100 * NS_PER_US
    assert config.timings.erase_ns == 1 * NS_PER_MS
    assert config.timings.command_ns == 10
    assert config.interconnect.channel_rate == 1_200_000_000


def test_cost_optimized_matches_table1():
    config = cost_optimized()
    assert config.geometry.page_size == 16 * 1024
    assert config.timings.read_ns == 45 * NS_PER_US
    assert config.timings.program_ns == 650 * NS_PER_US
    assert config.timings.erase_ns == 3_500_000
    assert config.geometry.channels == 8
    assert config.geometry.chips_per_channel == 8
    # Table 1 says 1024 blocks/die with 2 planes/die.
    assert config.geometry.blocks_per_plane * config.geometry.planes_per_die == 1024


def test_performance_optimized_chip_count_is_64():
    assert performance_optimized().geometry.total_chips == 64


def test_venice_link_rate_is_1_gbps():
    config = performance_optimized()
    # 8-bit links at 1 GHz = 1 byte/ns = 1 GB/s.
    assert config.interconnect.link_rate == 1_000_000_000
    assert config.interconnect.link_width_bytes == 1
    assert config.interconnect.link_frequency_hz == 1_000_000_000


def test_venice_mesh_is_8x8():
    config = performance_optimized()
    assert (config.mesh_rows, config.mesh_cols) == (8, 8)
    assert config.flash_controllers == 8


def test_venice_defaults_report():
    defaults = venice_network_defaults()
    assert defaults["topology"] == "8x8 2D mesh"
    assert defaults["switching"] == "circuit switching"
    assert defaults["routing"] == "non-minimal fully-adaptive"


def test_preset_lookup_and_aliases():
    assert preset_by_name("perf").name == "performance-optimized"
    assert preset_by_name("cost-optimized").name == "cost-optimized"
    assert set(PRESET_NAMES) == {"performance-optimized", "cost-optimized"}


def test_preset_unknown_name_raises():
    with pytest.raises(ConfigurationError):
        preset_by_name("quantum-optimized")


def test_scaling_knobs_shrink_capacity_not_geometry():
    config = performance_optimized(blocks_per_plane=16, pages_per_block=32)
    assert config.geometry.total_chips == 64
    assert config.geometry.blocks_per_plane == 16
    assert config.geometry.pages_per_block == 32


def test_with_geometry_for_fig15():
    config = performance_optimized().with_geometry(4, 16)
    assert config.geometry.channels == 4
    assert config.geometry.chips_per_channel == 16
    assert config.geometry.total_chips == 64
    assert config.flash_controllers == 4


def test_channel_transfer_time_4kb():
    config = performance_optimized()
    # 4 KB at 1.2 GB/s is ~3.4 us.
    ns = config.interconnect.channel_transfer_ns(4096)
    assert ns == pytest.approx(3413, abs=2)


def test_link_transfer_equation_1():
    config = performance_optimized()
    # Equation (1): (distance + size/width) x link latency; 1 ns per byte.
    assert config.interconnect.link_transfer_ns(4096, distance_hops=10) == 4106


def test_pssd_bandwidth_factor_halves_transfer():
    config = performance_optimized()
    full = config.interconnect.channel_transfer_ns(16384)
    half = config.interconnect.channel_transfer_ns(16384, bandwidth_factor=2.0)
    assert half == pytest.approx(full / 2, rel=0.01)
