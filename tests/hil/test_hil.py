"""Host interface layer tests: queue pairs and trace replay."""

import pytest

from repro.errors import ConfigurationError, WorkloadError
from repro.hil.host import TraceReplayHost
from repro.hil.nvme import NvmeQueuePair
from repro.hil.request import IoKind, IoRequest
from repro.sim.engine import Engine


def request(arrival=0, kind=IoKind.READ, offset=0, size=4096, queue_id=0):
    return IoRequest(
        kind=kind, offset_bytes=offset, size_bytes=size,
        arrival_ns=arrival, queue_id=queue_id,
    )


def test_io_kind_parsing():
    assert IoKind.from_str("R") is IoKind.READ
    assert IoKind.from_str("write") is IoKind.WRITE
    assert IoKind.from_str("0") is IoKind.READ
    with pytest.raises(WorkloadError):
        IoKind.from_str("erase")


def test_request_validation():
    with pytest.raises(WorkloadError):
        request(size=0)
    with pytest.raises(WorkloadError):
        request(arrival=-1)
    with pytest.raises(WorkloadError):
        IoRequest(kind=IoKind.READ, offset_bytes=-4, size_bytes=4096, arrival_ns=0)


def test_request_latency_requires_completion():
    r = request(arrival=100)
    assert r.latency_ns is None
    r.completed_ns = 400
    assert r.latency_ns == 300


def test_reset_service_state():
    r = request()
    r.completed_ns = 100
    r.path_conflict = True
    r.transactions_total = 5
    r.reset_service_state()
    assert r.completed_ns is None
    assert not r.path_conflict
    assert r.transactions_total == 0


def test_queue_pair_fifo_fetch():
    queue = NvmeQueuePair(0)
    a, b = request(), request()
    queue.submit(a)
    queue.submit(b)
    assert queue.fetch() is a
    assert queue.fetch() is b
    assert queue.fetch() is None


def test_queue_pair_depth_limit():
    queue = NvmeQueuePair(0, depth=1)
    assert queue.submit(request())
    assert not queue.submit(request())
    assert queue.full_rejections == 1


def test_queue_pair_completion_records_latency():
    queue = NvmeQueuePair(0)
    r = request(arrival=50)
    queue.submit(r)
    queue.fetch()
    record = queue.complete(r, now_ns=250)
    assert record.latency_ns == 200
    assert queue.in_flight == 0
    assert queue.completed == 1


def test_queue_pair_in_flight_accounting():
    queue = NvmeQueuePair(0)
    r = request()
    queue.submit(r)
    queue.fetch()
    assert queue.in_flight == 1


def test_queue_depth_validation():
    with pytest.raises(ConfigurationError):
        NvmeQueuePair(0, depth=0)


def test_replay_submits_at_arrival_times():
    engine = Engine()
    queue = NvmeQueuePair(0)
    doorbells = []
    host = TraceReplayHost(engine, [queue], lambda: doorbells.append(engine.now))
    requests = [request(arrival=t) for t in (100, 300, 700)]
    engine.process(host.replay(requests))
    engine.run()
    assert doorbells == [100, 300, 700]
    assert [r.submitted_ns for r in requests] == [100, 300, 700]
    assert host.finished


def test_replay_sorts_out_of_order_arrivals():
    engine = Engine()
    queue = NvmeQueuePair(0)
    host = TraceReplayHost(engine, [queue], lambda: None)
    requests = [request(arrival=500), request(arrival=100)]
    engine.process(host.replay(requests))
    engine.run()
    assert queue.fetch().arrival_ns == 100


def test_replay_round_robins_queue_ids():
    engine = Engine()
    queues = [NvmeQueuePair(0), NvmeQueuePair(1)]
    host = TraceReplayHost(engine, queues, lambda: None)
    requests = [request(arrival=i, queue_id=i % 2) for i in range(4)]
    engine.process(host.replay(requests))
    engine.run()
    assert queues[0].submitted == 2
    assert queues[1].submitted == 2


def test_replay_backs_off_when_queue_full():
    engine = Engine()
    queue = NvmeQueuePair(0, depth=1)
    host = TraceReplayHost(engine, [queue], lambda: None)
    requests = [request(arrival=0), request(arrival=0)]
    engine.process(host.replay(requests))
    # Drain the queue after a while so the host's retry can succeed.
    engine.schedule(5_000, lambda: queue.fetch())
    engine.run()
    assert queue.submitted == 2
    assert queue.full_rejections >= 1


def test_host_requires_a_queue():
    with pytest.raises(WorkloadError):
        TraceReplayHost(Engine(), [], lambda: None)
