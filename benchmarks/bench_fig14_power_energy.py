"""Figure 14: power and energy normalized to the Baseline SSD."""

from repro.experiments.figures import fig14_power_energy
from repro.experiments.reporting import speedup_table

from benchmarks.conftest import BENCH_SCALE, BENCH_WORKLOADS, emit

DESIGNS = ["pssd", "pnssd", "nossd", "venice"]


def test_bench_fig14_power_energy(benchmark, bench_store):
    result = benchmark.pedantic(
        fig14_power_energy, args=(BENCH_SCALE, BENCH_WORKLOADS),
        kwargs={"store": bench_store}, rounds=1, iterations=1,
    )
    emit(
        "Figure 14(a): normalized average power",
        speedup_table(result["normalized_power"], DESIGNS, mean_label="AVG"),
    )
    emit(
        "Figure 14(b): normalized energy",
        speedup_table(result["normalized_energy"], DESIGNS, mean_label="AVG"),
    )
    # Shape: power within a narrow band (flash ops dominate, §6.4); energy
    # tracks execution time, so Venice lands below the baseline.
    assert 0.7 < result["average_power"]["venice"] < 1.3
    assert result["average_energy"]["venice"] < 1.0
