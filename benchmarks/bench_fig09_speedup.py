"""Figure 9: Venice speedup on both SSD configurations (the headline result)."""

import pytest

from repro.experiments.figures import fig9_speedup
from repro.experiments.reporting import speedup_table

from benchmarks.conftest import BENCH_SCALE, BENCH_WORKLOADS, emit

DESIGNS = ["pssd", "pnssd", "nossd", "venice", "ideal"]


@pytest.mark.parametrize("preset", ["performance-optimized", "cost-optimized"])
def test_bench_fig09_speedup(benchmark, preset, bench_store):
    result = benchmark.pedantic(
        fig9_speedup, args=(preset, BENCH_SCALE, BENCH_WORKLOADS),
        kwargs={"store": bench_store}, rounds=1, iterations=1,
    )
    label = "9(a)" if preset.startswith("perf") else "9(b)"
    emit(
        f"Figure {label}: speedup over Baseline SSD ({preset})",
        speedup_table(result["speedups"], DESIGNS),
    )
    gmean = result["gmean"]
    assert gmean["venice"] > 1.0  # Venice beats the baseline on average
    assert gmean["venice"] <= gmean["ideal"] * 1.02  # and sits below ideal
