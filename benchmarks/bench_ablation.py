"""Ablations of Venice's design choices (DESIGN.md §5).

Three knobs the paper's §4.3 discussion motivates:

* routing adaptivity -- minimal-only vs non-minimal (misroute budget 0 vs 2
  vs 8): the paper argues non-minimal routing is what unlocks path
  diversity, but also that long detours waste links,
* controller selection -- closest-only vs load-spread: §4.2's nearest-free
  policy, read under the multi-circuit model,
* GC interference -- §8 claims Venice's path diversity helps schedule GC
  traffic; compare baseline vs Venice on an overwrite-heavy aged device.
"""

import pytest

from repro.config.ssd_config import DesignKind
from repro.experiments.reporting import format_table
from repro.experiments.runner import build_config, make_device, trace_for
from repro.hil.request import IoKind, IoRequest

from benchmarks.conftest import BENCH_SCALE, emit


def run_venice_with(misroutes, trace, config):
    device = make_device(config, DesignKind.VENICE, BENCH_SCALE)
    device.fabric.network.max_misroutes = misroutes
    return device.run_trace(trace.requests, "ablation")


def test_bench_ablation_misroute_budget(benchmark):
    config = build_config("performance-optimized", BENCH_SCALE)
    trace = trace_for("YCSB_B", config, BENCH_SCALE)

    def run():
        return {
            budget: run_venice_with(budget, trace, config).execution_time_ns
            for budget in (0, 2, 8)
        }

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[budget, ns / 1e6] for budget, ns in times.items()]
    emit(
        "Ablation: misroute budget vs execution time",
        format_table(["misroute budget", "execution (ms)"], rows),
    )
    # Some misrouting must help over minimal-only routing.
    assert min(times[2], times[8]) <= times[0] * 1.05


def test_bench_ablation_fc_selection(benchmark):
    config = build_config("performance-optimized", BENCH_SCALE)
    trace = trace_for("proj_3", config, BENCH_SCALE)

    def run():
        spread_device = make_device(config, DesignKind.VENICE, BENCH_SCALE)
        spread = spread_device.run_trace(trace.requests, "spread")

        pinned_device = make_device(config, DesignKind.VENICE, BENCH_SCALE)
        fabric = pinned_device.fabric
        fabric._fc_preference = lambda chip: tuple(
            sorted(range(config.flash_controllers),
                   key=lambda fc: (abs(fc - chip.channel), fc))
        )
        pinned = pinned_device.run_trace(trace.requests, "pinned")
        return spread.execution_time_ns, pinned.execution_time_ns

    spread_ns, pinned_ns = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation: controller selection",
        format_table(
            ["policy", "execution (ms)"],
            [["load-spread (default)", spread_ns / 1e6],
             ["closest-only", pinned_ns / 1e6]],
        ),
    )
    assert spread_ns <= pinned_ns * 1.25


def test_bench_ablation_gc_interference(benchmark):
    config = build_config("performance-optimized", BENCH_SCALE)
    page = config.geometry.page_size

    def overwrite_requests(total_pages):
        # Overwrite enough pages to push planes below the 5% GC watermark.
        requests = []
        t = 0
        for index in range(total_pages):
            requests.append(
                IoRequest(
                    kind=IoKind.WRITE,
                    offset_bytes=(index % 96) * page,
                    size_bytes=page,
                    arrival_ns=t,
                )
            )
            t += 3_000
        return requests

    def run():
        out = {}
        budget = int(config.geometry.total_pages * 0.06)
        for design in (DesignKind.BASELINE, DesignKind.VENICE):
            device = make_device(config, design, BENCH_SCALE)
            device.precondition(1.0)
            result = device.run_trace(overwrite_requests(budget), "gc-aged")
            out[design.value] = (
                result.execution_time_ns,
                device.gc.pages_migrated + device.gc.blocks_reclaimed,
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [design, ns / 1e6, migrated]
        for design, (ns, migrated) in results.items()
    ]
    emit(
        "Ablation: GC interference on an aged (fully written) device",
        format_table(["design", "execution (ms)", "GC pages migrated"], rows),
    )
    assert results["venice"][1] >= 0  # GC ran through the Venice fabric too
