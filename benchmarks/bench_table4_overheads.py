"""Table 4: Venice's power and area overheads (analytic model)."""

from repro.experiments.figures import table4_overheads
from repro.experiments.reporting import format_table

from benchmarks.conftest import BENCH_SCALE, emit


def test_bench_table4_overheads(benchmark):
    result = benchmark.pedantic(
        table4_overheads, args=(BENCH_SCALE,), rounds=1, iterations=1
    )
    rows = [
        ["router power (mW)", result["router_power_mw"], "0.241 (paper)"],
        ["link power, 4KB transfer (mW)", result["link_power_mw_4kb_transfer"], "1.08"],
        ["link vs channel power saving", result["link_vs_channel_power_saving"], "0.90"],
        ["router PCB area (mm^2)", result["router_pcb_area_mm2"], "~8"],
        ["router / flash-chip area", result["router_overhead_of_flash_chip"], "0.08"],
        ["mesh links (8x8)", result["links_total"], "112"],
        ["link area saving vs shared bus", result["link_area_saving_fraction"], "0.44"],
    ]
    emit(
        "Table 4: power and area overheads",
        format_table(["component", "model", "paper"], rows),
    )
    assert abs(result["link_area_saving_fraction"] - 0.44) < 0.001
