"""Figure 3 / §3.1 example: two-read service timelines, analytic + simulated."""

from repro.config.presets import performance_optimized
from repro.experiments.motivation import service_timeline_example, simulate_two_reads

from benchmarks.conftest import emit


def test_bench_fig03_timeline(benchmark):
    config = performance_optimized(blocks_per_plane=4, pages_per_block=4)

    def run():
        same = max(simulate_two_reads(config, same_channel=True))
        different = max(simulate_two_reads(config, same_channel=False))
        return same, different

    same, different = benchmark(run)
    example = service_timeline_example()
    emit(
        "Figure 3: path-conflict service-time example",
        "\n".join(
            [
                f"paper analytic : same-channel={example.same_channel_total_ns} ns, "
                f"different={example.different_channel_total_ns} ns "
                f"(+{example.latency_increase_fraction:.0%})",
                f"simulated      : same-channel={same} ns, different={different} ns "
                f"(+{same / different - 1:.0%})",
            ]
        ),
    )
    assert same > different
