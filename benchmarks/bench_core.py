"""Core simulator micro-benchmarks: the hot-path perf contract.

Unlike the figure benches (which reproduce paper results), this bench
measures the simulator itself: raw event-loop throughput, resource
acquire/release cycles, process fan-out, and end-to-end requests/sec per
design.  The same measurements back the ``venice-sim bench`` subcommand and
the CI perf-smoke gate (``benchmarks/BENCH_baseline.json``).

Run directly: ``PYTHONPATH=src python -m pytest benchmarks/bench_core.py -s``
"""

import json

import pytest

from repro.experiments.bench import (
    BENCH_DESIGNS,
    bench_end_to_end,
    bench_engine_events,
    bench_fanout,
    bench_resource_cycles,
    run_bench,
)

from conftest import emit


def test_engine_event_throughput():
    result = bench_engine_events(events=120_000, repeats=2)
    emit(
        "engine event throughput",
        f"{result['events_per_sec']:,.0f} events/sec "
        f"({result['events']:,.0f} events in {result['seconds']*1e3:.1f} ms)",
    )
    # Sanity floor, far below any real machine: catches accidental
    # quadratic behaviour, not hardware variance.
    assert result["events_per_sec"] > 50_000


def test_resource_cycle_throughput():
    result = bench_resource_cycles(cycles=60_000, repeats=2)
    emit(
        "resource acquire/release",
        f"{result['cycles_per_sec']:,.0f} cycles/sec "
        f"(uncontended Grant fast path + contended FIFO handoff)",
    )
    assert result["cycles_per_sec"] > 20_000


def test_process_fanout_throughput():
    result = bench_fanout(processes=10_000, repeats=2)
    emit(
        "process fan-out (spawn + AllOf join)",
        f"{result['processes_per_sec']:,.0f} processes/sec",
    )
    assert result["processes_per_sec"] > 10_000


@pytest.mark.parametrize("design", BENCH_DESIGNS)
def test_end_to_end_requests_per_sec(design):
    result = bench_end_to_end(design, requests=220, repeats=2)
    emit(
        f"end-to-end ({design})",
        f"{result['requests_per_sec']:,.1f} requests/sec "
        f"({result['requests']:.0f} requests in {result['seconds']*1e3:.0f} ms)",
    )
    assert result["requests"] > 0
    assert result["requests_per_sec"] > 50


def test_bench_payload_shape():
    """The CLI payload (BENCH_core.json) is JSON-safe and complete."""
    payload = run_bench(quick=True, repeats=1)
    encoded = json.loads(json.dumps(payload))
    assert encoded["schema_version"] >= 2
    assert encoded["events_per_sec"] > 0
    assert encoded["requests_per_sec"] > 0
    assert set(encoded["end_to_end"]) == set(BENCH_DESIGNS)
    emit(
        "bench payload",
        f"events/sec={encoded['events_per_sec']:,.0f} "
        f"aggregate req/sec={encoded['requests_per_sec']:,.1f} "
        f"peak RSS={encoded['peak_rss_kb']} KiB",
    )
