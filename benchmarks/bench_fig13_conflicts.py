"""Figure 13: percentage of I/O requests experiencing path conflicts."""

from repro.experiments.figures import fig13_conflicts
from repro.experiments.reporting import format_table

from benchmarks.conftest import BENCH_SCALE, BENCH_WORKLOADS, emit


def test_bench_fig13_conflicts(benchmark, bench_store):
    result = benchmark.pedantic(
        fig13_conflicts, args=(BENCH_SCALE, BENCH_WORKLOADS),
        kwargs={"store": bench_store}, rounds=1, iterations=1,
    )
    designs = ["baseline", "pssd", "pnssd", "nossd", "venice"]
    rows = [
        [workload] + [f"{values.get(d, 0.0):.1%}" for d in designs]
        for workload, values in result["conflict_fraction"].items()
    ]
    rows.append(["AVG"] + [f"{result['average'][d]:.1%}" for d in designs])
    emit(
        "Figure 13: % of requests with path conflicts (performance-optimized)",
        format_table(["workload"] + designs, rows),
    )
    average = result["average"]
    # Shape: Venice's conflict rate sits below every prior design.  (The
    # magnitude gap is smaller than the paper's 0.02%-vs-24% because we
    # replay under 1.6x pressure; see DESIGN.md §3.1.)
    assert average["venice"] < average["baseline"]
    assert average["venice"] < min(average["pssd"], average["pnssd"], average["nossd"])
