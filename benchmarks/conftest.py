"""Shared benchmark configuration.

Every benchmark regenerates one paper table/figure at a reduced-but-faithful
scale (the array geometry is never scaled; only trace length and per-plane
capacity are, which do not affect path-conflict behaviour).  Each bench
prints the rows/series the paper reports so the output can be compared to
the published figure directly; EXPERIMENTS.md records a full-scale run.
"""

import os

import pytest

from repro.experiments.runner import ExperimentScale
from repro.experiments.store import ResultStore

# One fixed benchmark scale so all figures are mutually comparable.
BENCH_SCALE = ExperimentScale(
    requests=220,
    requests_per_mix_constituent=90,
    blocks_per_plane=16,
    pages_per_block=16,
)

# A representative cross-section of Table 2 (read-heavy, write-heavy,
# sequential, zipfian, large-request) used by the per-figure benches.
BENCH_WORKLOADS = ("hm_0", "proj_3", "prxy_0", "src2_1", "YCSB_B", "LUN0")


@pytest.fixture(scope="session")
def bench_scale():
    return BENCH_SCALE


@pytest.fixture(scope="session")
def bench_workloads():
    return BENCH_WORKLOADS


@pytest.fixture(scope="session")
def bench_store(tmp_path_factory):
    """One content-addressed result store for the whole benchmark session.

    fig9a, fig10, fig13, and fig14 all draw from the same
    performance-optimized design matrix; sharing a store means that matrix
    is simulated exactly once per session, and each later bench measures
    only its marginal (non-shared) runs plus the pure reduction.

    Set ``VENICE_BENCH_STORE=/path/to/dir`` to pin the store to a
    persistent directory: CI caches it between workflow runs and local
    re-runs start warm, so unchanged spec digests simulate nothing.
    """
    pinned = os.environ.get("VENICE_BENCH_STORE")
    if pinned:
        return ResultStore(pinned)
    return ResultStore(tmp_path_factory.mktemp("venice-results"))


def emit(title, text):
    print(f"\n=== {title} ===")
    print(text)
