"""Figure 10: IOPS normalized to the path-conflict-free SSD."""

import pytest

from repro.experiments.figures import fig10_throughput
from repro.experiments.reporting import speedup_table

from benchmarks.conftest import BENCH_SCALE, BENCH_WORKLOADS, emit


@pytest.mark.parametrize("preset", ["performance-optimized", "cost-optimized"])
def test_bench_fig10_throughput(benchmark, preset, bench_store):
    result = benchmark.pedantic(
        fig10_throughput, args=(preset, BENCH_SCALE, BENCH_WORKLOADS),
        kwargs={"store": bench_store}, rounds=1, iterations=1,
    )
    emit(
        f"Figure 10: normalized SSD throughput ({preset})",
        speedup_table(
            result["normalized_throughput"],
            ["baseline", "pssd", "pnssd", "nossd", "venice"],
            mean_label="AVG",
        ),
    )
    average = result["average"]
    assert average["venice"] >= average["baseline"]
    assert average["venice"] <= 1.02  # normalized to ideal
