"""Figure 12: mixed workloads (Table 3) on the performance-optimized SSD."""

from repro.experiments.figures import fig12_mixed
from repro.experiments.reporting import speedup_table

from benchmarks.conftest import BENCH_SCALE, emit


def test_bench_fig12_mixed(benchmark):
    result = benchmark.pedantic(
        fig12_mixed, args=(BENCH_SCALE,), rounds=1, iterations=1
    )
    emit(
        "Figure 12: mixed-workload speedup over Baseline SSD",
        speedup_table(
            result["speedups"], ["pssd", "pnssd", "nossd", "venice", "ideal"]
        ),
    )
    gmean = result["gmean"]
    assert gmean["venice"] > 1.0
    assert gmean["ideal"] >= gmean["venice"] * 0.95
