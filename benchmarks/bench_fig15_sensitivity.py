"""Figure 15: sensitivity to flash-controller count (4x16 / 8x8 / 16x4)."""

from repro.experiments.figures import fig15_sensitivity
from repro.experiments.reporting import format_table

from benchmarks.conftest import BENCH_SCALE, emit

WORKLOADS = ("proj_3", "YCSB_B", "src2_1")


def test_bench_fig15_sensitivity(benchmark):
    result = benchmark.pedantic(
        fig15_sensitivity, args=(BENCH_SCALE, WORKLOADS), rounds=1, iterations=1
    )
    designs = ["pssd", "nossd", "venice", "ideal"]  # pnSSD needs NxN (§6.5)
    rows = [
        [geometry] + [round(gmeans.get(d, float("nan")), 2) for d in designs]
        for geometry, gmeans in result["gmean_speedups"].items()
    ]
    emit(
        "Figure 15: GMEAN speedup by flash-controller geometry",
        format_table(["geometry"] + designs, rows),
    )
    for gmeans in result["gmean_speedups"].values():
        assert gmeans["venice"] > 0.9  # Venice effective at every geometry
