"""Figure 4: prior approaches vs the ideal path-conflict-free SSD."""

from repro.experiments.figures import fig4_motivation
from repro.experiments.reporting import speedup_table

from benchmarks.conftest import BENCH_SCALE, BENCH_WORKLOADS, emit


def test_bench_fig04_motivation(benchmark):
    result = benchmark.pedantic(
        fig4_motivation, args=(BENCH_SCALE, BENCH_WORKLOADS), rounds=1, iterations=1
    )
    emit(
        "Figure 4: speedup over Baseline SSD (performance-optimized)",
        speedup_table(
            result["speedups"], ["pssd", "pnssd", "nossd", "ideal"]
        ),
    )
    gmean = result["gmean"]
    # Shape: the ideal SSD leaves a large gap above every prior approach.
    assert gmean["ideal"] >= max(gmean["pssd"], gmean["pnssd"], gmean["nossd"])
