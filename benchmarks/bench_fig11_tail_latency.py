"""Figure 11: p99 tail-latency CDFs for src1_0 and hm_0."""

from repro.experiments.figures import fig11_tail_latency
from repro.experiments.reporting import format_table

from benchmarks.conftest import BENCH_SCALE, emit


def test_bench_fig11_tail_latency(benchmark):
    result = benchmark.pedantic(
        fig11_tail_latency, args=(BENCH_SCALE, ("src1_0", "hm_0")),
        rounds=1, iterations=1,
    )
    rows = []
    for workload, tails in result["p99_ns"].items():
        for design, p99 in sorted(tails.items()):
            reduction = result["reduction_vs_baseline"][workload].get(design)
            rows.append(
                [
                    workload,
                    design,
                    p99 / 1e3,
                    "" if reduction is None else f"{reduction:+.0%}",
                ]
            )
    emit(
        "Figure 11: p99 tail latency (performance-optimized)",
        format_table(["workload", "design", "p99 (us)", "vs baseline"], rows),
    )
    for workload in ("src1_0", "hm_0"):
        tails = result["p99_ns"][workload]
        # Shape: Venice's tail sits at or below the baseline's.
        assert tails["venice"] <= tails["baseline"] * 1.05
