"""Legacy-editable shim for environments without the ``wheel`` package.

All project metadata lives in ``pyproject.toml``.  This file only enables
``pip install -e . --no-use-pep517 --no-build-isolation`` on interpreters
whose setuptools cannot build PEP 660 editable wheels (no ``wheel`` module);
normal installs go through ``pyproject.toml``.
"""

from setuptools import setup

setup()
