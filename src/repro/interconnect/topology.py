"""2D-mesh topology helpers shared by NoSSD and Venice.

Coordinates are ``(row, col)`` with row 0 at the top.  Flash controllers
attach on the west edge, one per row (Figure 5(b) / Figure 8): FC ``r``
injects into router ``(r, 0)``.

Directions follow the paper's router port encoding (Figure 7):
RIGHT=00, UP=01, DOWN=10, LEFT=11; plus the local injection/ejection port.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, Iterator, List, Optional, Tuple

from repro.errors import ConfigurationError, RoutingError

Coord = Tuple[int, int]


class Direction(enum.Enum):
    """Mesh port directions, encoded as in Figure 7 of the paper."""

    RIGHT = 0b00
    UP = 0b01
    DOWN = 0b10
    LEFT = 0b11
    EJECT = 0b100  # local port toward the flash chip (not a 2-bit mesh port)

    @property
    def opposite(self) -> "Direction":
        return _OPPOSITE[self]

    @property
    def delta(self) -> Coord:
        return _DELTA[self]


_OPPOSITE = {
    Direction.RIGHT: Direction.LEFT,
    Direction.LEFT: Direction.RIGHT,
    Direction.UP: Direction.DOWN,
    Direction.DOWN: Direction.UP,
    Direction.EJECT: Direction.EJECT,
}

# UP decreases the row index (toward row 0), DOWN increases it.
_DELTA = {
    Direction.RIGHT: (0, 1),
    Direction.LEFT: (0, -1),
    Direction.UP: (-1, 0),
    Direction.DOWN: (1, 0),
    Direction.EJECT: (0, 0),
}

MESH_DIRECTIONS = (Direction.RIGHT, Direction.UP, Direction.DOWN, Direction.LEFT)


def edge_key(a: Coord, b: Coord) -> FrozenSet[Coord]:
    """Canonical undirected-edge identifier."""
    if a == b:
        raise RoutingError(f"self edge at {a}")
    return frozenset((a, b))


@dataclass(frozen=True)
class MeshTopology:
    """Geometry of an R x C mesh with west-edge flash controllers."""

    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ConfigurationError(f"degenerate mesh {self.rows}x{self.cols}")

    @property
    def node_count(self) -> int:
        return self.rows * self.cols

    @property
    def edge_count(self) -> int:
        """Number of bidirectional mesh links (excludes injection/ejection).

        An R x C mesh has R*(C-1) horizontal plus (R-1)*C vertical links;
        for 8x8 that is 112, matching §6.6.
        """
        return self.rows * (self.cols - 1) + (self.rows - 1) * self.cols

    def contains(self, node: Coord) -> bool:
        row, col = node
        return 0 <= row < self.rows and 0 <= col < self.cols

    def neighbor(self, node: Coord, direction: Direction) -> Optional[Coord]:
        if direction is Direction.EJECT:
            return None
        delta_row, delta_col = direction.delta
        candidate = (node[0] + delta_row, node[1] + delta_col)
        return candidate if self.contains(candidate) else None

    def neighbors(self, node: Coord) -> Iterator[Tuple[Direction, Coord]]:
        for direction in MESH_DIRECTIONS:
            other = self.neighbor(node, direction)
            if other is not None:
                yield direction, other

    def edges(self) -> Iterator[FrozenSet[Coord]]:
        for row in range(self.rows):
            for col in range(self.cols):
                if col + 1 < self.cols:
                    yield edge_key((row, col), (row, col + 1))
                if row + 1 < self.rows:
                    yield edge_key((row, col), (row + 1, col))

    def fc_attach_point(self, fc_index: int) -> Coord:
        """Router that flash controller ``fc_index`` injects into."""
        if not 0 <= fc_index < self.rows:
            raise ConfigurationError(f"fc index {fc_index} out of range [0,{self.rows})")
        return (fc_index, 0)

    def manhattan(self, a: Coord, b: Coord) -> int:
        return abs(a[0] - b[0]) + abs(a[1] - b[1])

    def direction_between(self, a: Coord, b: Coord) -> Direction:
        for direction in MESH_DIRECTIONS:
            if self.neighbor(a, direction) == b:
                return direction
        raise RoutingError(f"{a} and {b} are not mesh neighbors")


def xy_path(topology: MeshTopology, source: Coord, destination: Coord) -> List[Coord]:
    """Dimension-order (X then Y) route, inclusive of both endpoints.

    This is NoSSD's deterministic routing algorithm (§3.2): traverse columns
    first, then rows.  Returns the node sequence; consecutive pairs are the
    traversed links.
    """
    if not topology.contains(source) or not topology.contains(destination):
        raise RoutingError(f"route endpoints outside mesh: {source} -> {destination}")
    path = [source]
    row, col = source
    dest_row, dest_col = destination
    step = 1 if dest_col > col else -1
    while col != dest_col:
        col += step
        path.append((row, col))
    step = 1 if dest_row > row else -1
    while row != dest_row:
        row += step
        path.append((row, col))
    return path


def path_edges(path: List[Coord]) -> List[FrozenSet[Coord]]:
    """Undirected edge keys of a node path."""
    return [edge_key(a, b) for a, b in zip(path, path[1:])]
