"""Communication substrates between the SSD controller and flash chips.

One fabric class per evaluated design (paper §3.2, Figure 2):

* :class:`~repro.interconnect.shared_bus.BaselineFabric` -- multi-channel
  shared bus (Baseline SSD),
* :class:`~repro.interconnect.shared_bus.PssdFabric` -- Packetized SSD,
  2x channel bandwidth,
* :class:`~repro.interconnect.pnssd.PnssdFabric` -- Packetized Network SSD,
  row + column shared buses,
* :class:`~repro.interconnect.nossd.NossdFabric` -- Network-on-SSD, 2D mesh
  with deterministic XY routing and buffered routers,
* :class:`~repro.venice.fabric.VeniceFabric` -- the paper's contribution
  (lives in :mod:`repro.venice`),
* :class:`~repro.interconnect.ideal.IdealFabric` -- path-conflict-free SSD,
  a dedicated channel per chip.
"""

from repro.interconnect.base import Fabric, TransferOutcome, FabricStats
from repro.interconnect.topology import Direction, MeshTopology, xy_path
from repro.interconnect.shared_bus import BaselineFabric, PssdFabric
from repro.interconnect.ideal import IdealFabric
from repro.interconnect.pnssd import PnssdFabric
from repro.interconnect.nossd import NossdFabric

__all__ = [
    "Fabric",
    "TransferOutcome",
    "FabricStats",
    "Direction",
    "MeshTopology",
    "xy_path",
    "BaselineFabric",
    "PssdFabric",
    "IdealFabric",
    "PnssdFabric",
    "NossdFabric",
]
