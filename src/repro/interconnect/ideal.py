"""Ideal path-conflict-free SSD.

"In the path-conflict-free SSD, we assume that each flash chip has a direct
separate channel to communicate with the SSD controller; therefore, no path
conflict can happen.  An I/O request does not experience path conflicts ...
but it can still be delayed if the target flash chip is busy." (§3.3)

Modelled as a dedicated channel-rate bus per chip.  The per-chip resource is
still enforced (the chip has one set of I/O pins), so two transfers to the
*same* chip serialise -- that is chip busyness, not a path conflict.
"""

from __future__ import annotations

from typing import Dict, Generator

from repro.config.ssd_config import DesignKind, SsdConfig
from repro.interconnect.base import Fabric, make_outcome
from repro.nand.address import ChipAddress
from repro.sim.engine import Engine
from repro.sim.resources import Resource


class IdealFabric(Fabric):
    """One dedicated channel per flash chip."""

    design = DesignKind.IDEAL

    def __init__(self, engine: Engine, config: SsdConfig) -> None:
        super().__init__(engine, config)
        self._chip_ports: Dict[ChipAddress, Resource] = {}
        geometry = config.geometry
        for channel in range(geometry.channels):
            for way in range(geometry.chips_per_channel):
                address = ChipAddress(channel, way)
                self._chip_ports[address] = Resource(
                    engine, f"ideal-port({channel},{way})"
                )

    def transfer(
        self,
        chip: ChipAddress,
        payload_bytes: int,
        include_command: bool = True,
    ) -> Generator:
        port = self._chip_ports[chip]
        start = self.engine.now
        lease = yield port.acquire()
        occupancy = self.command_ns(include_command) + (
            self.config.interconnect.channel_transfer_ns(payload_bytes)
        )
        if occupancy:
            yield occupancy
        lease.release()
        # Waiting on the chip's own port is chip busyness, never a path
        # conflict: the path itself is dedicated.
        outcome = make_outcome(
            waited=lease.waited,
            conflicted=False,
            start_ns=start,
            end_ns=self.engine.now,
            hops=1,
            fc_index=chip.channel,
        )
        self.stats.channel_busy_ns += occupancy
        self._record(outcome, payload_bytes)
        return outcome
