"""Baseline multi-channel shared-bus fabric and the pSSD variant.

Baseline SSD (Figure 2(a)): the SSD controller reaches the chips of channel
``c`` only through channel ``c``'s shared bus.  Command and data phases
serialise on the channel; the flash operation itself overlaps freely
(Figure 3).  This is where path conflicts come from.

pSSD (Figure 2(b), Kim et al. MICRO'22): identical topology, but command and
data travel over both the control and data pins, doubling effective channel
bandwidth.  Modelled as a bandwidth factor on the serialization time.
"""

from __future__ import annotations

from typing import Generator, List, Set

from repro.config.ssd_config import DesignKind, SsdConfig
from repro.interconnect.base import Fabric, TransferOutcome, make_outcome
from repro.nand.address import ChipAddress
from repro.sim.engine import Engine
from repro.sim.resources import Resource


class BaselineFabric(Fabric):
    """Multi-channel shared bus: one FIFO resource per channel."""

    design = DesignKind.BASELINE
    bandwidth_factor = 1.0

    def __init__(self, engine: Engine, config: SsdConfig) -> None:
        super().__init__(engine, config)
        self.channels: List[Resource] = [
            Resource(engine, f"channel[{index}]")
            for index in range(config.geometry.channels)
        ]
        # Occupancy is a pure function of (payload, command flag); memoised
        # because the same page-sized transfers repeat for the whole run.
        self._occupancy_cache = {}
        # Fault state: per-channel set of severed bus segments.  A cut at
        # position c (between drop c and drop c+1) makes every chip with
        # way > c unreachable from the controller side.
        self._severed: List[Set[int]] = [set() for _ in self.channels]
        self._severed_any = False

    # ------------------------------------------------------------------ #
    # fault injection (DESIGN.md §7)
    # ------------------------------------------------------------------ #

    def apply_link_fault(self, a, b, down: bool) -> None:
        """Map a mesh-link fault onto the channel's multi-drop PCB route.

        The channel bus of row ``r`` runs the same PCB trace the mesh's
        horizontal links reuse (paper §6.6), so a *horizontal* link fault
        ``(r,c)-(r,c+1)`` severs the bus between drops ``c`` and ``c+1``:
        chips at ``way > c`` are cut off from the controller and transfers
        to them block until the segment is repaired.  Vertical links have no
        bus-design equivalent and are ignored.
        """
        (row_a, col_a), (row_b, col_b) = tuple(a), tuple(b)
        if row_a != row_b or abs(col_a - col_b) != 1:
            return  # no such wire in a shared-bus design
        if not 0 <= row_a < len(self._severed):
            return
        cuts = self._severed[row_a]
        if down:
            cuts.add(min(col_a, col_b))
        else:
            cuts.discard(min(col_a, col_b))
        self._severed_any = any(self._severed)
        self._fault_state_changed()

    def chip_reachable(self, chip: ChipAddress) -> bool:
        """True when no severed bus segment lies between controller and chip."""
        cuts = self._severed[chip.channel]
        return not cuts or chip.way <= min(cuts)

    def channel_for(self, chip: ChipAddress) -> Resource:
        return self.channels[chip.channel]

    def occupancy_ns(self, payload_bytes: int, include_command: bool) -> int:
        key = (payload_bytes, include_command)
        cached = self._occupancy_cache.get(key)
        if cached is None:
            transfer = self.config.interconnect.channel_transfer_ns(
                payload_bytes, bandwidth_factor=self.bandwidth_factor
            )
            cached = self._occupancy_cache[key] = (
                self.command_ns(include_command) + transfer
            )
        return cached

    def transfer(
        self,
        chip: ChipAddress,
        payload_bytes: int,
        include_command: bool = True,
    ) -> Generator:
        channel = self.channel_for(chip)
        start = self.engine.now
        fault_waited = False
        if self._severed_any:
            # Paper-faithful blocking: the bus has exactly one route to the
            # chip, so a severed segment stalls the transfer until repaired
            # (forever, if the schedule never repairs it).
            while not self.chip_reachable(chip):
                if not fault_waited:
                    fault_waited = True
                    self.stats.blocked_transfers += 1
                yield self._fault_wait()
        lease = yield channel.acquire()
        occupancy = self.occupancy_ns(payload_bytes, include_command)
        if occupancy:
            yield occupancy
        lease.release()
        outcome = make_outcome(
            waited=lease.waited or fault_waited,
            conflicted=lease.waited or fault_waited,
            start_ns=start,
            end_ns=self.engine.now,
            hops=1,
            fc_index=chip.channel,
        )
        self.stats.channel_busy_ns += occupancy
        self._record(outcome, payload_bytes)
        return outcome

    def channel_utilizations(self, horizon: int) -> List[float]:
        return [channel.utilization(horizon) for channel in self.channels]


class PssdFabric(BaselineFabric):
    """Packetized SSD: same shared buses at 2x effective bandwidth."""

    design = DesignKind.PSSD

    def __init__(self, engine: Engine, config: SsdConfig) -> None:
        super().__init__(engine, config)
        self.bandwidth_factor = config.interconnect.pssd_bandwidth_factor
