"""Baseline multi-channel shared-bus fabric and the pSSD variant.

Baseline SSD (Figure 2(a)): the SSD controller reaches the chips of channel
``c`` only through channel ``c``'s shared bus.  Command and data phases
serialise on the channel; the flash operation itself overlaps freely
(Figure 3).  This is where path conflicts come from.

pSSD (Figure 2(b), Kim et al. MICRO'22): identical topology, but command and
data travel over both the control and data pins, doubling effective channel
bandwidth.  Modelled as a bandwidth factor on the serialization time.
"""

from __future__ import annotations

from typing import Generator, List

from repro.config.ssd_config import DesignKind, SsdConfig
from repro.interconnect.base import Fabric, TransferOutcome, make_outcome
from repro.nand.address import ChipAddress
from repro.sim.engine import Engine
from repro.sim.resources import Resource


class BaselineFabric(Fabric):
    """Multi-channel shared bus: one FIFO resource per channel."""

    design = DesignKind.BASELINE
    bandwidth_factor = 1.0

    def __init__(self, engine: Engine, config: SsdConfig) -> None:
        super().__init__(engine, config)
        self.channels: List[Resource] = [
            Resource(engine, f"channel[{index}]")
            for index in range(config.geometry.channels)
        ]
        # Occupancy is a pure function of (payload, command flag); memoised
        # because the same page-sized transfers repeat for the whole run.
        self._occupancy_cache = {}

    def channel_for(self, chip: ChipAddress) -> Resource:
        return self.channels[chip.channel]

    def occupancy_ns(self, payload_bytes: int, include_command: bool) -> int:
        key = (payload_bytes, include_command)
        cached = self._occupancy_cache.get(key)
        if cached is None:
            transfer = self.config.interconnect.channel_transfer_ns(
                payload_bytes, bandwidth_factor=self.bandwidth_factor
            )
            cached = self._occupancy_cache[key] = (
                self.command_ns(include_command) + transfer
            )
        return cached

    def transfer(
        self,
        chip: ChipAddress,
        payload_bytes: int,
        include_command: bool = True,
    ) -> Generator:
        channel = self.channel_for(chip)
        start = self.engine.now
        lease = yield channel.acquire()
        occupancy = self.occupancy_ns(payload_bytes, include_command)
        if occupancy:
            yield occupancy
        lease.release()
        outcome = make_outcome(
            waited=lease.waited,
            conflicted=lease.waited,
            start_ns=start,
            end_ns=self.engine.now,
            hops=1,
            fc_index=chip.channel,
        )
        self.stats.channel_busy_ns += occupancy
        self._record(outcome, payload_bytes)
        return outcome

    def channel_utilizations(self, horizon: int) -> List[float]:
        return [channel.utilization(horizon) for channel in self.channels]


class PssdFabric(BaselineFabric):
    """Packetized SSD: same shared buses at 2x effective bandwidth."""

    design = DesignKind.PSSD

    def __init__(self, engine: Engine, config: SsdConfig) -> None:
        super().__init__(engine, config)
        self.bandwidth_factor = config.interconnect.pssd_bandwidth_factor
