"""Fabric interface shared by all six SSD communication designs.

A *fabric* answers one question for the transaction layer: "move this many
bytes between a flash controller and this chip, and tell me how long it took
and whether the transfer had to wait for a path".  Everything that differs
between the designs -- shared channels, dual buses, mesh routing, circuit
reservation -- hides behind :meth:`Fabric.transfer`.

``transfer`` is a *process generator*: the caller drives it with
``outcome = yield from fabric.transfer(...)`` inside its own process.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Generator, Optional

from repro.config.ssd_config import DesignKind, SsdConfig
from repro.nand.address import ChipAddress
from repro.sim.engine import Engine


class TransferOutcome:
    """Result of one path traversal (slotted: one per transfer phase)."""

    __slots__ = (
        "waited",
        "conflicted",
        "start_ns",
        "end_ns",
        "hops",
        "fc_index",
        "scout_attempts",
    )

    def __init__(
        self,
        waited: bool,  # the transfer had to queue for a path resource
        conflicted: bool,  # design-specific path-conflict flag (see DESIGN.md)
        start_ns: int,
        end_ns: int,
        hops: int,  # links traversed (1 for bus designs); energy accounting
        fc_index: int,  # flash controller that serviced the transfer
        scout_attempts: int = 0,  # Venice only: reservation attempts used
    ) -> None:
        self.waited = waited
        self.conflicted = conflicted
        self.start_ns = start_ns
        self.end_ns = end_ns
        self.hops = hops
        self.fc_index = fc_index
        self.scout_attempts = scout_attempts

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TransferOutcome(waited={self.waited}, conflicted={self.conflicted}, "
            f"start_ns={self.start_ns}, end_ns={self.end_ns}, hops={self.hops}, "
            f"fc_index={self.fc_index}, scout_attempts={self.scout_attempts})"
        )


@dataclass
class FabricStats:
    """Aggregated accounting consumed by the power model and metrics layer."""

    transfers: int = 0
    conflicted_transfers: int = 0
    waited_transfers: int = 0
    blocked_transfers: int = 0  # transfers that stalled on a failed component
    bytes_moved: int = 0
    channel_busy_ns: int = 0  # sum over channels/buses of busy time
    link_hop_busy_ns: int = 0  # sum over mesh links of busy time
    router_active_ns: int = 0  # sum over routers of circuit-held time
    scout_attempts_total: int = 0
    scout_failures_total: int = 0
    per_fc_transfers: Dict[int, int] = field(default_factory=dict)

    def record(self, outcome: TransferOutcome, payload_bytes: int) -> None:
        self.transfers += 1
        self.bytes_moved += payload_bytes
        if outcome.conflicted:
            self.conflicted_transfers += 1
        if outcome.waited:
            self.waited_transfers += 1
        self.scout_attempts_total += outcome.scout_attempts
        self.per_fc_transfers[outcome.fc_index] = (
            self.per_fc_transfers.get(outcome.fc_index, 0) + 1
        )


class Fabric(abc.ABC):
    """Abstract communication substrate."""

    design: DesignKind

    def __init__(self, engine: Engine, config: SsdConfig) -> None:
        self.engine = engine
        self.config = config
        self.stats = FabricStats()
        # Lazily-created event that fires on every fault transition; blocked
        # transfers park on it so a repair (component coming back up) resumes
        # them (see DESIGN.md §7).
        self._fault_epoch = None

    @abc.abstractmethod
    def transfer(
        self,
        chip: ChipAddress,
        payload_bytes: int,
        include_command: bool = True,
    ) -> Generator:
        """Move ``payload_bytes`` between a flash controller and ``chip``.

        A command-only phase passes ``payload_bytes=0`` with
        ``include_command=True``; a data phase passes the page payload.
        Yields simulation waitables; returns a :class:`TransferOutcome`.
        """

    # ------------------------------------------------------------------ #
    # fault injection (DESIGN.md §7)
    # ------------------------------------------------------------------ #

    def apply_link_fault(self, a, b, down: bool) -> None:
        """A mesh link ``a``-``b`` failed (``down=True``) or was repaired.

        The default is a no-op: designs whose substrate has no wire at that
        position (e.g. a vertical link in a shared-bus design) are simply
        unaffected by the fault.  Mesh/bus designs override this with their
        paper-faithful degradation semantics.
        """

    def apply_router_fault(self, node, down: bool) -> None:
        """Router chip at ``node`` failed or was repaired (default: no-op)."""

    def _fault_wait(self):
        """Waitable that completes on the next fault transition.

        Blocked transfers yield this instead of busy-polling; a schedule
        with no further transitions leaves them parked forever, which is the
        deterministic model of a design that cannot route around the fault.
        """
        if self._fault_epoch is None:
            self._fault_epoch = self.engine.event("fault-epoch")
        return self._fault_epoch

    def _fault_state_changed(self) -> None:
        """Wake everything parked on the fault epoch (subclasses call this)."""
        epoch, self._fault_epoch = self._fault_epoch, None
        if epoch is not None:
            epoch.succeed(None)

    # ------------------------------------------------------------------ #
    # shared helpers
    # ------------------------------------------------------------------ #

    def command_ns(self, include_command: bool) -> int:
        return self.config.timings.command_ns if include_command else 0

    def _record(self, outcome: TransferOutcome, payload_bytes: int) -> None:
        self.stats.record(outcome, payload_bytes)

    @property
    def conflict_fraction(self) -> float:
        if self.stats.transfers == 0:
            return 0.0
        return self.stats.conflicted_transfers / self.stats.transfers

    def describe(self) -> str:
        return f"{type(self).__name__}({self.design.value})"


def make_outcome(
    *,
    waited: bool,
    conflicted: bool,
    start_ns: int,
    end_ns: int,
    hops: int,
    fc_index: int,
    scout_attempts: int = 0,
) -> TransferOutcome:
    """Keyword-only constructor to keep call sites self-documenting."""
    return TransferOutcome(
        waited=waited,
        conflicted=conflicted,
        start_ns=start_ns,
        end_ns=end_ns,
        hops=hops,
        fc_index=fc_index,
        scout_attempts=scout_attempts,
    )
