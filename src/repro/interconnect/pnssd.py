"""Packetized Network SSD (pnSSD) fabric.

pnSSD (Figure 2(c), Kim et al. MICRO'22) builds on pSSD's packetization
(2x effective channel bandwidth) and arranges the N x N chip array with a
shared *horizontal* bus per row plus a shared *vertical* bus per column, so
every chip is reachable over two paths.  "pnSSD requires an N x N flash
array configuration where N is the number of flash controllers" (paper
§6.5 footnote): flash controller ``i`` owns row bus ``i`` and column bus
``i``, and -- being a single embedded processor (§2.2) -- drives one bus
transaction at a time.  A transfer to chip ``(r, c)`` is therefore served
by controller ``r`` over the row bus or controller ``c`` over the column
bus, whichever is free (row preferred; ties go to the shorter queue).

The controller, not the wire, is the serialised resource: this is what
keeps pnSSD's gains close to pSSD's (27% vs 30% in the paper's Figure 4)
despite the doubled path count.
"""

from __future__ import annotations

from typing import Generator, List, Set

from repro.config.ssd_config import DesignKind, SsdConfig
from repro.errors import ConfigurationError
from repro.interconnect.base import Fabric, make_outcome
from repro.nand.address import ChipAddress
from repro.sim.engine import Engine
from repro.sim.resources import Resource


class PnssdFabric(Fabric):
    """Dual shared buses with per-controller serialization."""

    design = DesignKind.PNSSD

    def __init__(self, engine: Engine, config: SsdConfig) -> None:
        super().__init__(engine, config)
        geometry = config.geometry
        if geometry.channels != geometry.chips_per_channel:
            raise ConfigurationError(
                "pnSSD requires an NxN flash array (channels == chips/channel); "
                f"got {geometry.channels}x{geometry.chips_per_channel}"
            )
        self.bandwidth_factor = config.interconnect.pssd_bandwidth_factor
        # Controller i drives row bus i and column bus i, one at a time.
        self.controllers: List[Resource] = [
            Resource(engine, f"pnssd-fc[{index}]") for index in range(geometry.channels)
        ]
        self.row_transfers = 0
        self.col_transfers = 0
        # Fault state: severed segments per row bus and per column bus.  A
        # chip blocks only when *both* of its buses are cut before it --
        # pnSSD's doubled path count buys partial fault resilience.
        self._row_cuts: List[Set[int]] = [set() for _ in range(geometry.channels)]
        self._col_cuts: List[Set[int]] = [
            set() for _ in range(geometry.chips_per_channel)
        ]
        self._faulted = False

    # ------------------------------------------------------------------ #
    # fault injection (DESIGN.md §7)
    # ------------------------------------------------------------------ #

    def apply_link_fault(self, a, b, down: bool) -> None:
        """Map a mesh-link fault onto the row or column bus it runs along.

        A horizontal link ``(r,c)-(r,c+1)`` severs row bus ``r`` between
        drops ``c`` and ``c+1`` (row controller attaches at the west edge);
        a vertical link ``(r,c)-(r+1,c)`` severs column bus ``c`` between
        drops ``r`` and ``r+1`` (column controller attaches at the north
        edge).  A chip stalls only when both of its buses are severed.
        """
        (row_a, col_a), (row_b, col_b) = tuple(a), tuple(b)
        if row_a == row_b and abs(col_a - col_b) == 1:
            cuts = self._row_cuts[row_a]
            position = min(col_a, col_b)
        elif col_a == col_b and abs(row_a - row_b) == 1:
            cuts = self._col_cuts[col_a]
            position = min(row_a, row_b)
        else:
            return
        if down:
            cuts.add(position)
        else:
            cuts.discard(position)
        self._faulted = any(self._row_cuts) or any(self._col_cuts)
        self._fault_state_changed()

    def _row_reachable(self, chip: ChipAddress) -> bool:
        cuts = self._row_cuts[chip.channel]
        return not cuts or chip.way <= min(cuts)

    def _col_reachable(self, chip: ChipAddress) -> bool:
        cuts = self._col_cuts[chip.way]
        return not cuts or chip.channel <= min(cuts)

    #: Queue depth at the home controller before a transfer is handed to the
    #: column controller.  Chips are owned by their row controller (the FTL
    #: partitions the array exactly as in the baseline); serving a chip over
    #: the vertical channel means another controller fetches/queues state it
    #: does not own, so the design only off-loads when the home controller
    #: is badly backed up.  This is what keeps pnSSD's gain near pSSD's
    #: (27% vs 30% in the paper's Figure 4) despite the doubled path count.
    BORROW_QUEUE_THRESHOLD = 4

    def _choose_controller(self, chip: ChipAddress) -> int:
        """Home (row) controller, unless it is deeply backed up and the
        column controller is idle.

        Under faults a severed bus forces the surviving path: a chip cut
        off from its row bus is served over the column bus and vice versa
        (the transfer loop guarantees at least one is reachable before this
        is called).
        """
        if self._faulted:
            if not self._row_reachable(chip):
                return chip.way
            if not self._col_reachable(chip):
                return chip.channel
        row_fc = self.controllers[chip.channel]
        col_fc = self.controllers[chip.way]
        if row_fc.is_free:
            return chip.channel
        if row_fc.queue_length >= self.BORROW_QUEUE_THRESHOLD and col_fc.is_free:
            return chip.way
        return chip.channel

    def transfer(
        self,
        chip: ChipAddress,
        payload_bytes: int,
        include_command: bool = True,
    ) -> Generator:
        start = self.engine.now
        fault_waited = False
        if self._faulted:
            while not (self._row_reachable(chip) or self._col_reachable(chip)):
                if not fault_waited:
                    fault_waited = True
                    self.stats.blocked_transfers += 1
                yield self._fault_wait()
        fc_index = self._choose_controller(chip)
        if fc_index == chip.channel:
            self.row_transfers += 1
        else:
            self.col_transfers += 1
        lease = yield self.controllers[fc_index].acquire()
        occupancy = self.command_ns(include_command) + (
            self.config.interconnect.channel_transfer_ns(
                payload_bytes, bandwidth_factor=self.bandwidth_factor
            )
        )
        if occupancy:
            yield occupancy
        lease.release()
        outcome = make_outcome(
            waited=lease.waited or fault_waited,
            conflicted=lease.waited or fault_waited,
            start_ns=start,
            end_ns=self.engine.now,
            hops=1,
            fc_index=fc_index,
        )
        self.stats.channel_busy_ns += occupancy
        self._record(outcome, payload_bytes)
        return outcome
