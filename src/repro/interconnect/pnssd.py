"""Packetized Network SSD (pnSSD) fabric.

pnSSD (Figure 2(c), Kim et al. MICRO'22) builds on pSSD's packetization
(2x effective channel bandwidth) and arranges the N x N chip array with a
shared *horizontal* bus per row plus a shared *vertical* bus per column, so
every chip is reachable over two paths.  "pnSSD requires an N x N flash
array configuration where N is the number of flash controllers" (paper
§6.5 footnote): flash controller ``i`` owns row bus ``i`` and column bus
``i``, and -- being a single embedded processor (§2.2) -- drives one bus
transaction at a time.  A transfer to chip ``(r, c)`` is therefore served
by controller ``r`` over the row bus or controller ``c`` over the column
bus, whichever is free (row preferred; ties go to the shorter queue).

The controller, not the wire, is the serialised resource: this is what
keeps pnSSD's gains close to pSSD's (27% vs 30% in the paper's Figure 4)
despite the doubled path count.
"""

from __future__ import annotations

from typing import Generator, List

from repro.config.ssd_config import DesignKind, SsdConfig
from repro.errors import ConfigurationError
from repro.interconnect.base import Fabric, make_outcome
from repro.nand.address import ChipAddress
from repro.sim.engine import Engine
from repro.sim.resources import Resource


class PnssdFabric(Fabric):
    """Dual shared buses with per-controller serialization."""

    design = DesignKind.PNSSD

    def __init__(self, engine: Engine, config: SsdConfig) -> None:
        super().__init__(engine, config)
        geometry = config.geometry
        if geometry.channels != geometry.chips_per_channel:
            raise ConfigurationError(
                "pnSSD requires an NxN flash array (channels == chips/channel); "
                f"got {geometry.channels}x{geometry.chips_per_channel}"
            )
        self.bandwidth_factor = config.interconnect.pssd_bandwidth_factor
        # Controller i drives row bus i and column bus i, one at a time.
        self.controllers: List[Resource] = [
            Resource(engine, f"pnssd-fc[{index}]") for index in range(geometry.channels)
        ]
        self.row_transfers = 0
        self.col_transfers = 0

    #: Queue depth at the home controller before a transfer is handed to the
    #: column controller.  Chips are owned by their row controller (the FTL
    #: partitions the array exactly as in the baseline); serving a chip over
    #: the vertical channel means another controller fetches/queues state it
    #: does not own, so the design only off-loads when the home controller
    #: is badly backed up.  This is what keeps pnSSD's gain near pSSD's
    #: (27% vs 30% in the paper's Figure 4) despite the doubled path count.
    BORROW_QUEUE_THRESHOLD = 4

    def _choose_controller(self, chip: ChipAddress) -> int:
        """Home (row) controller, unless it is deeply backed up and the
        column controller is idle."""
        row_fc = self.controllers[chip.channel]
        col_fc = self.controllers[chip.way]
        if row_fc.is_free:
            return chip.channel
        if row_fc.queue_length >= self.BORROW_QUEUE_THRESHOLD and col_fc.is_free:
            return chip.way
        return chip.channel

    def transfer(
        self,
        chip: ChipAddress,
        payload_bytes: int,
        include_command: bool = True,
    ) -> Generator:
        fc_index = self._choose_controller(chip)
        if fc_index == chip.channel:
            self.row_transfers += 1
        else:
            self.col_transfers += 1
        start = self.engine.now
        lease = yield self.controllers[fc_index].acquire()
        occupancy = self.command_ns(include_command) + (
            self.config.interconnect.channel_transfer_ns(
                payload_bytes, bandwidth_factor=self.bandwidth_factor
            )
        )
        if occupancy:
            yield occupancy
        lease.release()
        outcome = make_outcome(
            waited=lease.waited,
            conflicted=lease.waited,
            start_ns=start,
            end_ns=self.engine.now,
            hops=1,
            fc_index=fc_index,
        )
        self.stats.channel_busy_ns += occupancy
        self._record(outcome, payload_bytes)
        return outcome
