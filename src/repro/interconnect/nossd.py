"""Network-on-SSD (NoSSD) fabric.

NoSSD (Tavakkol et al., IEEE CAL 2012; Figure 2(d)) replaces the shared buses
with a 2D mesh of *buffered* routers integrated into the flash chips and
routes packets with deterministic dimension-order (XY) routing -- the routing
choice the Venice paper identifies as NoSSD's key weakness (§3.2).

Model:

* one router per chip; flash controllers inject on the west edge, one per
  row; each chip is *statically* assigned to one controller (diagonal
  hash), because NoSSD's dimension-order routing is deterministic end to
  end -- there is no run-time path adaptation to exploit (§3.2),
* virtual cut-through switching: the packet head advances one router per
  ``router_pipeline_ns`` when the next link is free; each traversed link
  stays busy for the packet's full serialization time *behind* the head,
  and the 16 KB buffer per router port (the overhead the paper criticises
  NoSSD for) absorbs the packet when the next link is busy -- so there is
  no upstream head-of-line holding,
* links are *directed* FIFO resources; with XY ordering and per-hop
  buffering there is no circular wait, so no deadlock,
* a transfer "experiences a path conflict" if it waited at injection or at
  any link along its deterministic path.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Tuple

from repro.config.ssd_config import DesignKind, SsdConfig
from repro.interconnect.base import Fabric, make_outcome
from repro.interconnect.topology import Coord, MeshTopology, xy_path
from repro.nand.address import ChipAddress
from repro.sim.engine import Engine
from repro.sim.resources import Lease, Resource

DirectedEdge = Tuple[Coord, Coord]


class NossdFabric(Fabric):
    """2D mesh with deterministic XY routing and buffered routers."""

    design = DesignKind.NOSSD

    def __init__(self, engine: Engine, config: SsdConfig) -> None:
        super().__init__(engine, config)
        self.topology = MeshTopology(config.mesh_rows, config.mesh_cols)
        self.links: Dict[DirectedEdge, Resource] = {}
        for edge in self.topology.edges():
            a, b = sorted(edge)
            self.links[(a, b)] = Resource(engine, f"nossd-link{a}->{b}")
            self.links[(b, a)] = Resource(engine, f"nossd-link{b}->{a}")
        self.injections: List[Resource] = [
            Resource(engine, f"nossd-inject[{fc}]")
            for fc in range(config.flash_controllers)
        ]
        # Ejection into the destination chip: one set of chip I/O pins.
        self.ejections: Dict[Coord, Resource] = {
            (row, col): Resource(engine, f"nossd-eject({row},{col})")
            for row in range(self.topology.rows)
            for col in range(self.topology.cols)
        }
        # Routing is deterministic end to end, so the full resource chain of
        # a destination -- injection port, XY-path links, ejection port --
        # never changes; resolve it once instead of re-walking the topology
        # dictionaries on every transfer.
        self._route_cache: Dict[Coord, Tuple[Tuple[Coord, ...], Tuple[Resource, ...]]] = {}
        self._serialization_cache: Dict[Tuple[int, bool], int] = {}
        # Fault state: failed links (canonical sorted node pairs) and failed
        # routers.  XY routing cannot adapt (§3.2), so a packet whose fixed
        # path crosses a dead element blocks until the element is repaired.
        self._dead_edges: Set[Tuple[Coord, Coord]] = set()
        self._dead_routers: Set[Coord] = set()
        self._faulted = False

    # ------------------------------------------------------------------ #
    # fault injection (DESIGN.md §7)
    # ------------------------------------------------------------------ #

    def apply_link_fault(self, a, b, down: bool) -> None:
        """Fail or repair one bidirectional mesh link (both directions)."""
        edge = tuple(sorted((tuple(a), tuple(b))))
        if down:
            self._dead_edges.add(edge)
        else:
            self._dead_edges.discard(edge)
        self._faulted = bool(self._dead_edges or self._dead_routers)
        self._fault_state_changed()

    def apply_router_fault(self, node, down: bool) -> None:
        """Fail or repair one buffered router (packets cannot transit it)."""
        node = tuple(node)
        if down:
            self._dead_routers.add(node)
        else:
            self._dead_routers.discard(node)
        self._faulted = bool(self._dead_edges or self._dead_routers)
        self._fault_state_changed()

    def _path_broken(self, path: Tuple[Coord, ...]) -> bool:
        """True when the fixed XY path crosses a dead link or dead router."""
        dead_routers = self._dead_routers
        if dead_routers:
            for node in path:
                if node in dead_routers:
                    return True
        dead_edges = self._dead_edges
        if dead_edges:
            for a, b in zip(path, path[1:]):
                if (a, b) in dead_edges or (b, a) in dead_edges:
                    return True
        return False

    # ------------------------------------------------------------------ #

    def _choose_fc(self, chip: ChipAddress) -> int:
        """Static, load-balanced chip-to-controller assignment.

        NoSSD's routing is deterministic end to end -- "NoSSD employs simple
        deterministic routing ... that cannot adapt to the availability of
        multiple free paths" (§3.2) -- so the serving controller is a fixed
        function of the chip, not a run-time choice.  The diagonal hash
        spreads each row's chips across all controllers (a plain row-to-FC
        map would reduce the mesh to per-row buses).
        """
        return (chip.channel + chip.way) % len(self.injections)

    def serialization_ns(self, payload_bytes: int, include_command: bool) -> int:
        """Time for the packet tail to cross one link (flit count x cycle)."""
        key = (payload_bytes, include_command)
        cached = self._serialization_cache.get(key)
        if cached is None:
            interconnect = self.config.interconnect
            cached = self._serialization_cache[key] = self.command_ns(
                include_command
            ) + interconnect.link_transfer_ns(payload_bytes, distance_hops=0)
        return cached

    def _route_for(
        self, fc_index: int, destination: Coord
    ) -> Tuple[Tuple[Coord, ...], Tuple[Resource, ...]]:
        """Deterministic resource chain to a chip: injection, links, ejection.

        NoSSD's routing never adapts, so the chain is resolved once per
        destination and cached (the first element is the XY path's node
        sequence, used for hop/occupancy accounting and the fault check).
        """
        cached = self._route_cache.get(destination)
        if cached is None:
            source = self.topology.fc_attach_point(fc_index)
            path = xy_path(self.topology, source, destination)
            chain = [self.injections[fc_index]]
            chain.extend(self.links[(a, b)] for a, b in zip(path, path[1:]))
            chain.append(self.ejections[destination])
            cached = self._route_cache[destination] = (tuple(path), tuple(chain))
        return cached

    def transfer(
        self,
        chip: ChipAddress,
        payload_bytes: int,
        include_command: bool = True,
    ) -> Generator:
        fc_index = self._choose_fc(chip)
        destination = (chip.channel, chip.way)
        path, chain = self._route_for(fc_index, destination)
        path_nodes = len(path)
        hop_latency = max(
            1,
            round(self.config.interconnect.link_cycle_ns)
            + self.config.interconnect.router_pipeline_ns,
        )
        serialization = self.serialization_ns(payload_bytes, include_command)

        start = self.engine.now
        waited = False
        eject_waited = False
        if self._faulted:
            # Dimension-order routing "cannot adapt to the availability of
            # multiple free paths" (§3.2): a dead element on the fixed path
            # blocks the packet until the element is repaired.
            blocked = False
            while self._path_broken(path):
                if not blocked:
                    blocked = True
                    self.stats.blocked_transfers += 1
                yield self._fault_wait()
            waited = blocked
        schedule = self.engine.schedule
        last = len(chain) - 1

        # Virtual cut-through: the head acquires each hop resource in path
        # order and moves on after one hop latency; the hop itself stays
        # busy for the packet's serialization time behind the head (released
        # by a scheduled event, not by this process, so a busy downstream
        # link never blocks the upstream one -- the port buffer absorbs
        # flits).  Waiting at the destination's own ejection port (the final
        # chain element) is chip busyness, not a path conflict (the §3.3
        # ideal-SSD distinction), so it never raises the conflict flag.
        for position, resource in enumerate(chain):
            lease = yield resource.acquire()
            schedule(serialization, lease.release)
            yield hop_latency
            if lease.waited:
                if position == last:
                    eject_waited = True
                else:
                    waited = True

        # The tail drains into the destination once the head has arrived.
        yield serialization

        hops = path_nodes + 1  # mesh links plus the ejection hop
        outcome = make_outcome(
            waited=waited or eject_waited,
            conflicted=waited,
            start_ns=start,
            end_ns=self.engine.now,
            hops=hops,
            fc_index=fc_index,
        )
        self.stats.link_hop_busy_ns += serialization * max(1, path_nodes - 1)
        self.stats.router_active_ns += serialization * path_nodes
        self._record(outcome, payload_bytes)
        return outcome
