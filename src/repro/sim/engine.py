"""Generator-based discrete-event engine with integer-nanosecond time.

The engine executes *processes*: Python generators that yield *waitables*.
Supported waitables:

* :class:`Timeout` -- resume the process after a fixed delay,
* :class:`OneShotEvent` -- resume when another process triggers the event;
  the value passed to :meth:`OneShotEvent.succeed` becomes the value of the
  ``yield`` expression,
* :class:`AllOf` -- resume when every child waitable has completed,
* :class:`Process` -- resume when the child process finishes; the child's
  return value (via ``return value`` in the generator) becomes the value of
  the ``yield`` expression.

Resources (see :mod:`repro.sim.resources`) produce :class:`OneShotEvent`
instances from their ``acquire`` methods, so they compose with the same
machinery.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from repro.errors import SimulationError


class Waitable:
    """Base class for things a process may ``yield`` on."""

    __slots__ = ()


class Timeout(Waitable):
    """Delay a process by ``delay`` nanoseconds (must be non-negative)."""

    __slots__ = ("delay",)

    def __init__(self, delay: int) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        self.delay = int(delay)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Timeout({self.delay})"


class OneShotEvent(Waitable):
    """An event that can be triggered exactly once.

    Processes yielding on a pending event are parked; when the event is
    triggered every parked process is resumed (in FIFO order) with the
    trigger value.  Yielding on an already-triggered event resumes the
    process immediately.
    """

    __slots__ = ("engine", "_callbacks", "triggered", "value", "name")

    def __init__(self, engine: "Engine", name: str = "") -> None:
        self.engine = engine
        self.name = name
        self._callbacks: List[Callable[[Any], None]] = []
        self.triggered = False
        self.value: Any = None

    def succeed(self, value: Any = None) -> None:
        """Trigger the event, waking all waiters at the current sim time."""
        if self.triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self.triggered = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(value)

    def add_callback(self, callback: Callable[[Any], None]) -> None:
        if self.triggered:
            callback(self.value)
        else:
            self._callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "triggered" if self.triggered else "pending"
        return f"OneShotEvent({self.name!r}, {state})"


class AllOf(Waitable):
    """Completes when every child waitable completes.

    The yield value is the list of child values in the original order.
    """

    __slots__ = ("children",)

    def __init__(self, children: Iterable[Waitable]) -> None:
        self.children = list(children)


class Process(Waitable):
    """A running generator; also waitable so processes can join each other."""

    __slots__ = ("engine", "generator", "done", "result", "_completion", "name")

    def __init__(self, engine: "Engine", generator: Generator, name: str = "") -> None:
        self.engine = engine
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.done = False
        self.result: Any = None
        self._completion = OneShotEvent(engine, name=f"done:{self.name}")

    @property
    def completion(self) -> OneShotEvent:
        return self._completion

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.done else "running"
        return f"Process({self.name!r}, {state})"


class Engine:
    """The event loop: a heap of ``(time, sequence, callback)`` entries."""

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: List[Tuple[int, int, Callable[[], None]]] = []
        self._sequence = 0
        self._processed = 0

    # ------------------------------------------------------------------ #
    # scheduling primitives
    # ------------------------------------------------------------------ #

    def schedule(self, delay: int, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` nanoseconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: delay={delay}")
        self._sequence += 1
        heapq.heappush(self._heap, (self.now + int(delay), self._sequence, callback))

    def event(self, name: str = "") -> OneShotEvent:
        """Create a fresh one-shot event bound to this engine."""
        return OneShotEvent(self, name=name)

    def timeout(self, delay: int) -> Timeout:
        return Timeout(delay)

    # ------------------------------------------------------------------ #
    # processes
    # ------------------------------------------------------------------ #

    def process(self, generator: Generator, name: str = "") -> Process:
        """Register a generator as a process and start it immediately.

        "Immediately" means at the current simulation time but *after* the
        caller returns to the event loop, preserving run-to-completion
        semantics for the spawning process.
        """
        proc = Process(self, generator, name=name)
        self.schedule(0, lambda: self._step(proc, None))
        return proc

    def _step(self, proc: Process, value: Any) -> None:
        """Advance a process by sending ``value`` into its generator."""
        try:
            target = proc.generator.send(value)
        except StopIteration as stop:
            proc.done = True
            proc.result = stop.value
            proc.completion.succeed(stop.value)
            return
        self._wire(proc, target)

    def _wire(self, proc: Process, target: Any) -> None:
        """Arrange for ``proc`` to resume when ``target`` completes."""
        if isinstance(target, Timeout):
            self.schedule(target.delay, lambda: self._step(proc, None))
        elif isinstance(target, OneShotEvent):
            target.add_callback(lambda value: self._step(proc, value))
        elif isinstance(target, Process):
            target.completion.add_callback(lambda value: self._step(proc, value))
        elif isinstance(target, AllOf):
            self._wire_all_of(proc, target)
        else:
            raise SimulationError(
                f"process {proc.name!r} yielded non-waitable {target!r}"
            )

    def _wire_all_of(self, proc: Process, target: AllOf) -> None:
        children = target.children
        if not children:
            self.schedule(0, lambda: self._step(proc, []))
            return
        remaining = {"count": len(children)}
        results: List[Any] = [None] * len(children)

        def make_callback(index: int) -> Callable[[Any], None]:
            def on_done(value: Any) -> None:
                results[index] = value
                remaining["count"] -= 1
                if remaining["count"] == 0:
                    self._step(proc, results)

            return on_done

        for index, child in enumerate(children):
            if isinstance(child, Timeout):
                event = self.event()
                self.schedule(child.delay, lambda ev=event: ev.succeed(None))
                child = event
            if isinstance(child, Process):
                child = child.completion
            if not isinstance(child, OneShotEvent):
                raise SimulationError(f"AllOf child is not waitable: {child!r}")
            child.add_callback(make_callback(index))

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Drain the event heap.

        Args:
            until: stop once the clock would pass this timestamp (events at
                exactly ``until`` still execute).
            max_events: safety valve for runaway simulations.

        Returns:
            The number of events processed during this call.
        """
        processed = 0
        while self._heap:
            event_time = self._heap[0][0]
            if until is not None and event_time > until:
                self.now = until
                break
            _, _, callback = heapq.heappop(self._heap)
            self.now = event_time
            callback()
            processed += 1
            self._processed += 1
            if max_events is not None and processed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; likely a livelock"
                )
        else:
            if until is not None and until > self.now:
                self.now = until
        return processed

    @property
    def pending_events(self) -> int:
        return len(self._heap)

    @property
    def processed_events(self) -> int:
        return self._processed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Engine(now={self.now}, pending={len(self._heap)})"
