"""Generator-based discrete-event engine with integer-nanosecond time.

The engine executes *processes*: Python generators that yield *waitables*.
Supported waitables:

* a plain non-negative ``int`` -- resume the process after that many
  nanoseconds (the allocation-free form of a timeout; the dominant yield),
* :class:`Timeout` -- the boxed form of the same delay,
* :class:`OneShotEvent` -- resume when another process triggers the event;
  the value passed to :meth:`OneShotEvent.succeed` becomes the value of the
  ``yield`` expression,
* :class:`Grant` -- an already-completed waitable carrying its value;
  yielding one resumes the process immediately without touching the
  scheduler (resources hand these out on their uncontended fast path),
* :class:`AllOf` -- resume when every child waitable has completed,
* :class:`Process` -- resume when the child process finishes; the child's
  return value (via ``return value`` in the generator) becomes the value of
  the ``yield`` expression.

Scheduling internals (see DESIGN.md "Engine internals"): the event loop is
a binary heap of type-tagged tuples ``(time, seq, kind, a, b)`` -- kind 0
resumes process ``a`` with value ``b``, kind 1 invokes the zero-argument
callback ``a``.  No closure is allocated per event.  Same-timestamp
``delay == 0`` schedules (process starts, deferred resumes) bypass the heap
entirely through a FIFO *micro-queue*; because a zero-delay entry created
at time T always carries a higher sequence number than every heap entry at
T, draining heap-at-T before the micro-queue reproduces the exact global
sequence order of a single-heap scheduler.

Resources (see :mod:`repro.sim.resources`) produce :class:`Grant` values on
their uncontended path and :class:`OneShotEvent` instances when the caller
must wait, so they compose with the same machinery.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop as _heappop, heappush as _heappush
from typing import Any, Callable, Deque, Generator, Iterable, List, Optional, Tuple

from repro.errors import SimulationError

# Type tags for heap / micro-queue entries.
_STEP = 0  # resume process `a` with value `b`
_CALL = 1  # invoke zero-argument callback `a`


class Waitable:
    """Base class for things a process may ``yield`` on."""

    __slots__ = ()


class Timeout(Waitable):
    """Delay a process by ``delay`` nanoseconds (must be non-negative).

    Hot code paths yield the bare integer instead; this boxed form remains
    for readability and for call sites that want early validation.
    """

    __slots__ = ("delay",)

    def __init__(self, delay: int) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        self.delay = int(delay)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Timeout({self.delay})"


class Grant(Waitable):
    """An already-completed waitable carrying its ``value``.

    Yielding a Grant resumes the process at the current simulation time,
    synchronously (run-to-completion), without allocating an event or
    re-entering the scheduler.  Identical in observable behaviour to
    yielding an already-triggered :class:`OneShotEvent`.
    """

    __slots__ = ("value",)

    def __init__(self, value: Any = None) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Grant({self.value!r})"


class OneShotEvent(Waitable):
    """An event that can be triggered exactly once.

    Processes yielding on a pending event are parked; when the event is
    triggered every parked waiter is resumed (in FIFO order) with the
    trigger value.  Yielding on an already-triggered event resumes the
    process immediately.

    The waiter list holds :class:`Process` objects (parked by the engine),
    ``(join, index)`` tuples (parked by :class:`AllOf` wiring), and plain
    one-argument callables (from :meth:`add_callback`), dispatched by exact
    type so no closure is allocated per waiter.
    """

    __slots__ = ("engine", "_waiters", "triggered", "value", "name")

    def __init__(self, engine: "Engine", name: str = "") -> None:
        self.engine = engine
        self.name = name
        self._waiters: List[Any] = []
        self.triggered = False
        self.value: Any = None

    def succeed(self, value: Any = None) -> None:
        """Trigger the event, waking all waiters at the current sim time."""
        if self.triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self.triggered = True
        self.value = value
        waiters = self._waiters
        if waiters:
            self._waiters = []
            if len(waiters) == 1 and waiters[0].__class__ is Process:
                # Single parked process: the overwhelmingly common case
                # (resource handoffs wake exactly one waiter).
                self.engine._step(waiters[0], value)
            else:
                _dispatch_waiters(self.engine, waiters, value)

    def add_callback(self, callback: Callable[[Any], None]) -> None:
        """Invoke ``callback(value)`` on trigger (immediately if triggered)."""
        if self.triggered:
            callback(self.value)
        else:
            self._waiters.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "triggered" if self.triggered else "pending"
        return f"OneShotEvent({self.name!r}, {state})"


class AllOf(Waitable):
    """Completes when every child waitable completes.

    The yield value is the list of child values in the original order.
    Children that are already complete when the AllOf is yielded (an
    elapsed ``Timeout(0)``, a triggered event, a finished process, a
    :class:`Grant`) are folded in immediately -- they never take a trip
    through the scheduler.
    """

    __slots__ = ("children",)

    def __init__(self, children: Iterable[Waitable]) -> None:
        self.children = list(children)


class Process(Waitable):
    """A running generator; also waitable so processes can join each other."""

    __slots__ = ("engine", "generator", "name", "done", "result", "_waiters", "_completion")

    def __init__(self, engine: "Engine", generator: Generator, name: str = "") -> None:
        self.engine = engine
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.done = False
        self.result: Any = None
        self._waiters: List[Any] = []
        self._completion: Optional[OneShotEvent] = None

    @property
    def completion(self) -> OneShotEvent:
        """An event view of this process's completion (built on demand)."""
        if self._completion is None:
            event = OneShotEvent(self.engine, name=f"done:{self.name}")
            if self.done:
                event.succeed(self.result)
            else:
                self._waiters.append(event.succeed)
            self._completion = event
        return self._completion

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.done else "running"
        return f"Process({self.name!r}, {state})"


class _AllOfJoin:
    """Fan-in state for one yielded :class:`AllOf` (no per-child closures)."""

    __slots__ = ("engine", "proc", "results", "remaining")

    def __init__(self, engine: "Engine", proc: Process, count: int) -> None:
        self.engine = engine
        self.proc = proc
        self.results: List[Any] = [None] * count
        self.remaining = count

    def finish(self, index: int, value: Any) -> None:
        self.results[index] = value
        self.remaining -= 1
        if self.remaining == 0:
            self.engine._step(self.proc, self.results)


def _dispatch_waiters(engine: "Engine", waiters: List[Any], value: Any) -> None:
    """Wake a drained waiter list: processes, AllOf joins, callbacks."""
    step = engine._step
    for waiter in waiters:
        cls = waiter.__class__
        if cls is Process:
            step(waiter, value)
        elif cls is tuple:
            join, index = waiter
            join.finish(index, value)
        else:
            waiter(value)


class Engine:
    """The event loop: a heap of type-tagged entries plus a micro-queue."""

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: List[Tuple[int, int, int, Any, Any]] = []
        self._micro: Deque[Tuple[int, Any, Any]] = deque()
        self._sequence = 0
        self._processed = 0

    # ------------------------------------------------------------------ #
    # scheduling primitives
    # ------------------------------------------------------------------ #

    def schedule(self, delay: int, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` nanoseconds from now."""
        if delay > 0:
            self._sequence += 1
            _heappush(
                self._heap,
                (self.now + int(delay), self._sequence, _CALL, callback, None),
            )
        elif delay == 0:
            self._micro.append((_CALL, callback, None))
        else:
            raise SimulationError(f"cannot schedule in the past: delay={delay}")

    def event(self, name: str = "") -> OneShotEvent:
        """Create a fresh one-shot event bound to this engine."""
        return OneShotEvent(self, name=name)

    def timeout(self, delay: int) -> int:
        """Validate and return a delay for yielding (plain-int waitable)."""
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        return int(delay)

    # ------------------------------------------------------------------ #
    # processes
    # ------------------------------------------------------------------ #

    def process(self, generator: Generator, name: str = "") -> Process:
        """Register a generator as a process and start it immediately.

        "Immediately" means at the current simulation time but *after* the
        caller returns to the event loop, preserving run-to-completion
        semantics for the spawning process.
        """
        proc = Process(self, generator, name=name)
        self._micro.append((_STEP, proc, None))
        return proc

    def _step(self, proc: Process, value: Any) -> None:
        """Advance a process by sending ``value`` into its generator."""
        try:
            target = proc.generator.send(value)
        except StopIteration as stop:
            result = stop.value
            proc.done = True
            proc.result = result
            waiters = proc._waiters
            if waiters:
                proc._waiters = []
                if len(waiters) == 1:
                    waiter = waiters[0]
                    cls = waiter.__class__
                    if cls is Process:
                        self._step(waiter, result)
                    elif cls is tuple:
                        waiter[0].finish(waiter[1], result)
                    else:
                        waiter(result)
                else:
                    _dispatch_waiters(self, waiters, result)
            return
        # Exact-type dispatch: the common waitables first, in hot-path
        # frequency order; subclasses fall through to _wire_slow.
        tcls = target.__class__
        if tcls is int:
            if target > 0:
                self._sequence += 1
                _heappush(
                    self._heap, (self.now + target, self._sequence, _STEP, proc, None)
                )
            elif target == 0:
                self._micro.append((_STEP, proc, None))
            else:
                raise SimulationError(
                    f"process {proc.name!r} yielded negative delay {target}"
                )
        elif tcls is Grant:
            self._step(proc, target.value)
        elif tcls is OneShotEvent:
            if target.triggered:
                self._step(proc, target.value)
            else:
                target._waiters.append(proc)
        elif tcls is Process:
            if target.done:
                self._step(proc, target.result)
            else:
                target._waiters.append(proc)
        elif tcls is Timeout:
            delay = target.delay
            if delay:
                self._sequence += 1
                _heappush(
                    self._heap, (self.now + delay, self._sequence, _STEP, proc, None)
                )
            else:
                self._micro.append((_STEP, proc, None))
        elif tcls is AllOf:
            self._wire_all_of(proc, target)
        else:
            self._wire_slow(proc, target)

    def _wire_slow(self, proc: Process, target: Any) -> None:
        """isinstance-based wiring for waitable subclasses."""
        if isinstance(target, Timeout):
            delay = target.delay
            if delay:
                self._sequence += 1
                _heappush(
                    self._heap, (self.now + delay, self._sequence, _STEP, proc, None)
                )
            else:
                self._micro.append((_STEP, proc, None))
        elif isinstance(target, Grant):
            self._step(proc, target.value)
        elif isinstance(target, OneShotEvent):
            if target.triggered:
                self._step(proc, target.value)
            else:
                target._waiters.append(proc)
        elif isinstance(target, Process):
            if target.done:
                self._step(proc, target.result)
            else:
                target._waiters.append(proc)
        elif isinstance(target, AllOf):
            self._wire_all_of(proc, target)
        elif isinstance(target, int):  # bool and other int subclasses
            if target > 0:
                self._sequence += 1
                _heappush(
                    self._heap,
                    (self.now + int(target), self._sequence, _STEP, proc, None),
                )
            elif target == 0:
                self._micro.append((_STEP, proc, None))
            else:
                raise SimulationError(
                    f"process {proc.name!r} yielded negative delay {target}"
                )
        else:
            raise SimulationError(
                f"process {proc.name!r} yielded non-waitable {target!r}"
            )

    def _wire_all_of(self, proc: Process, target: AllOf) -> None:
        children = target.children
        if not children:
            # Resume at the current time once control returns to the loop
            # (same order a zero-delay schedule always had).
            self._micro.append((_STEP, proc, []))
            return
        join = _AllOfJoin(self, proc, len(children))
        finish = join.finish
        for index, child in enumerate(children):
            ccls = child.__class__
            if ccls is Process or isinstance(child, Process):
                if child.done:
                    finish(index, child.result)
                else:
                    child._waiters.append((join, index))
            elif ccls is OneShotEvent or isinstance(child, OneShotEvent):
                if child.triggered:
                    finish(index, child.value)
                else:
                    child._waiters.append((join, index))
            elif ccls is Grant or isinstance(child, Grant):
                finish(index, child.value)
            elif ccls is Timeout or isinstance(child, Timeout):
                if child.delay:
                    self.schedule(child.delay, _TimerSlot(join, index))
                else:
                    # Already elapsed: fold in without a heap round-trip.
                    finish(index, None)
            elif isinstance(child, int):
                if child > 0:
                    self.schedule(child, _TimerSlot(join, index))
                elif child == 0:
                    finish(index, None)
                else:
                    raise SimulationError(f"AllOf child has negative delay: {child}")
            else:
                raise SimulationError(f"AllOf child is not waitable: {child!r}")

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Drain the event heap and micro-queue.

        Args:
            until: stop once the clock would pass this timestamp (events at
                exactly ``until`` still execute).
            max_events: safety valve for runaway simulations.

        Returns:
            The number of events processed during this call.
        """
        heap = self._heap
        micro = self._micro
        step = self._step
        pop = micro.popleft
        processed = 0
        # Ordering invariant: heap pushes are strictly future (delay 0 goes
        # to the micro-queue), so every heap entry at the current timestamp
        # predates (lower sequence) every queued micro entry.  Draining all
        # heap entries at one timestamp, then the micro-queue to exhaustion,
        # then advancing the clock therefore reproduces the exact global
        # sequence order of a single-heap scheduler.
        while True:
            while micro:
                kind, a, b = pop()
                if kind == _STEP:
                    step(a, b)
                else:
                    a()
                processed += 1
                self._processed += 1
                if max_events is not None and processed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; likely a livelock"
                    )
            if not heap:
                if until is not None and until > self.now:
                    self.now = until
                break
            event_time = heap[0][0]
            if until is not None and event_time > until:
                self.now = until
                break
            self.now = event_time
            while heap and heap[0][0] == event_time:
                entry = _heappop(heap)
                if entry[2] == _STEP:
                    step(entry[3], entry[4])
                else:
                    entry[3]()
                processed += 1
                self._processed += 1
                if max_events is not None and processed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; likely a livelock"
                    )
        return processed

    @property
    def pending_events(self) -> int:
        """Events waiting in the heap plus the zero-delay micro-queue."""
        return len(self._heap) + len(self._micro)

    @property
    def processed_events(self) -> int:
        """Total events executed over the engine's lifetime."""
        return self._processed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Engine(now={self.now}, pending={self.pending_events})"


class _TimerSlot:
    """Zero-argument adapter completing one AllOf slot at a later time."""

    __slots__ = ("join", "index")

    def __init__(self, join: _AllOfJoin, index: int) -> None:
        self.join = join
        self.index = index

    def __call__(self) -> None:
        self.join.finish(self.index, None)
