"""Deterministic fault injection: schedules, their grammar, and the engine bridge.

A :class:`FaultSchedule` is a timed list of component failures and repairs
-- mesh links going down and up, router chips dying, NAND dies failing,
transient read-error bursts that drive the ECC retry path.  Schedules are
*values*: frozen, hashable, and round-trippable through a small text grammar
(:meth:`FaultSchedule.parse` / :meth:`FaultSchedule.to_spec`), so a run spec
can carry one in its content digest and a faulted simulation stays a pure
function of the spec.

The grammar (documented in docs/faults.md) is a semicolon-separated list of
clauses, each ``<time> <event>``::

    100us link (0,1)-(0,2) down; 400us link (0,1)-(0,2) up
    0 router (3,4) down
    50us die 1.2.0 down
    10us ecc-burst rate=0.25 for=200us

Times accept ``ns`` (default), ``us``, ``ms``, ``s`` suffixes and are
canonicalised to integer nanoseconds; two schedules that mean the same thing
always serialise to the same canonical string (and therefore the same spec
digest).

Injection composes with the closure-free event loop
(:mod:`repro.sim.engine`): :class:`FaultInjector` arms one zero-argument
engine callback per state transition via :meth:`Engine.schedule`, so fault
timing interleaves deterministically with every other simulation event.
What a fault *means* is the receiving component's business -- the injector
only dispatches to a :class:`FaultSink` (see DESIGN.md §7 for the per-fabric
degradation semantics).
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.sim.engine import Engine

#: ``(row, col)`` mesh coordinate (kept structural here: the sim layer does
#: not import the interconnect package).
Coord = Tuple[int, int]

_TIME_UNITS = {"ns": 1, "us": 1_000, "ms": 1_000_000, "s": 1_000_000_000, "": 1}

_COORD = r"\(\s*(\d+)\s*,\s*(\d+)\s*\)"
_TIME_RE = re.compile(r"^(\d+)\s*(ns|us|ms|s)?\s+(.*)$", re.DOTALL)
_LINK_RE = re.compile(rf"^link\s+{_COORD}\s*-\s*{_COORD}\s+(down|up)$")
_ROUTER_RE = re.compile(rf"^router\s+{_COORD}\s+(down|up)$")
_DIE_RE = re.compile(r"^die\s+(\d+)\.(\d+)\.(\d+)\s+(down|up)$")
_BURST_RE = re.compile(
    r"^ecc-burst\s+rate=([0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?)"
    r"\s+for=(\d+)\s*(ns|us|ms|s)?$"
)


class FaultKind(enum.Enum):
    """The fault-event vocabulary of the schedule grammar.

    ``LINK_DOWN``/``LINK_UP`` target a bidirectional mesh link (bus designs
    map horizontal links onto their shared-channel PCB segment, see
    DESIGN.md §7); ``ROUTER_DOWN``/``ROUTER_UP`` target a mesh router chip;
    ``DIE_DOWN``/``DIE_UP`` target one NAND die; ``ECC_BURST`` raises the
    ECC decode-failure rate for a bounded window (transient read errors).
    """

    LINK_DOWN = "link-down"
    LINK_UP = "link-up"
    ROUTER_DOWN = "router-down"
    ROUTER_UP = "router-up"
    DIE_DOWN = "die-down"
    DIE_UP = "die-up"
    ECC_BURST = "ecc-burst"


@dataclass(frozen=True)
class FaultEvent:
    """One timed fault-state transition.

    Exactly one target field is set, matching ``kind``: ``link`` (a pair of
    adjacent mesh coordinates, canonically ordered), ``node`` (a router
    coordinate), or ``die`` (``(channel, way, die)``).  ``ECC_BURST``
    carries ``rate`` (decode-failure probability in ``[0, 1)``) and
    ``duration_ns`` instead.  Validation is structural only -- coordinate
    bounds depend on the device geometry and are checked when the schedule
    is armed against a device.
    """

    time_ns: int
    kind: FaultKind
    link: Optional[Tuple[Coord, Coord]] = None
    node: Optional[Coord] = None
    die: Optional[Tuple[int, int, int]] = None
    rate: float = 0.0
    duration_ns: int = 0

    def __post_init__(self) -> None:
        if self.time_ns < 0:
            raise ConfigurationError(f"fault time must be >= 0, got {self.time_ns}")
        kind = self.kind
        if kind in (FaultKind.LINK_DOWN, FaultKind.LINK_UP):
            if self.link is None or self.node is not None or self.die is not None:
                raise ConfigurationError(f"{kind.value} event needs exactly a link")
            a, b = (tuple(end) for end in self.link)
            if abs(a[0] - b[0]) + abs(a[1] - b[1]) != 1:
                raise ConfigurationError(
                    f"link endpoints {a} and {b} are not mesh neighbours"
                )
            # Canonical endpoint order (and plain-tuple coordinates, so
            # programmatically-built events stay hashable and compare equal
            # to parsed ones).
            object.__setattr__(self, "link", tuple(sorted((a, b))))
        elif kind in (FaultKind.ROUTER_DOWN, FaultKind.ROUTER_UP):
            if self.node is None or self.link is not None or self.die is not None:
                raise ConfigurationError(f"{kind.value} event needs exactly a node")
            object.__setattr__(self, "node", tuple(self.node))
        elif kind in (FaultKind.DIE_DOWN, FaultKind.DIE_UP):
            if self.die is None or self.link is not None or self.node is not None:
                raise ConfigurationError(f"{kind.value} event needs exactly a die")
            if any(part < 0 for part in self.die):
                raise ConfigurationError(f"negative die address {self.die}")
            object.__setattr__(self, "die", tuple(self.die))
        elif kind is FaultKind.ECC_BURST:
            if self.link is not None or self.node is not None or self.die is not None:
                raise ConfigurationError("ecc-burst event takes no component target")
            if not 0.0 <= self.rate < 1.0:
                raise ConfigurationError(
                    f"ecc-burst rate must be in [0, 1), got {self.rate}"
                )
            if self.duration_ns <= 0:
                raise ConfigurationError(
                    f"ecc-burst duration must be positive, got {self.duration_ns}"
                )
        else:  # pragma: no cover - exhaustive enum
            raise ConfigurationError(f"unknown fault kind {kind!r}")

    def to_clause(self) -> str:
        """The canonical grammar clause for this event (``parse`` inverts it)."""
        if self.kind in (FaultKind.LINK_DOWN, FaultKind.LINK_UP):
            (a, b) = self.link  # type: ignore[misc]
            state = "down" if self.kind is FaultKind.LINK_DOWN else "up"
            return (
                f"{self.time_ns}ns link ({a[0]},{a[1]})-({b[0]},{b[1]}) {state}"
            )
        if self.kind in (FaultKind.ROUTER_DOWN, FaultKind.ROUTER_UP):
            state = "down" if self.kind is FaultKind.ROUTER_DOWN else "up"
            node = self.node  # type: ignore[assignment]
            return f"{self.time_ns}ns router ({node[0]},{node[1]}) {state}"
        if self.kind in (FaultKind.DIE_DOWN, FaultKind.DIE_UP):
            state = "down" if self.kind is FaultKind.DIE_DOWN else "up"
            channel, way, die = self.die  # type: ignore[misc]
            return f"{self.time_ns}ns die {channel}.{way}.{die} {state}"
        return (
            f"{self.time_ns}ns ecc-burst rate={self.rate!r} "
            f"for={self.duration_ns}ns"
        )


def _parse_clause(clause: str) -> FaultEvent:
    """Parse one ``<time> <event>`` clause (raises ConfigurationError)."""
    matched = _TIME_RE.match(clause)
    if not matched:
        raise ConfigurationError(
            f"fault clause {clause!r} must start with a time "
            "(e.g. '100us link (0,1)-(0,2) down')"
        )
    time_ns = int(matched.group(1)) * _TIME_UNITS[matched.group(2) or ""]
    body = matched.group(3).strip()
    link = _LINK_RE.match(body)
    if link:
        a = (int(link.group(1)), int(link.group(2)))
        b = (int(link.group(3)), int(link.group(4)))
        kind = FaultKind.LINK_DOWN if link.group(5) == "down" else FaultKind.LINK_UP
        return FaultEvent(time_ns, kind, link=(a, b))
    router = _ROUTER_RE.match(body)
    if router:
        node = (int(router.group(1)), int(router.group(2)))
        kind = (
            FaultKind.ROUTER_DOWN if router.group(3) == "down" else FaultKind.ROUTER_UP
        )
        return FaultEvent(time_ns, kind, node=node)
    die = _DIE_RE.match(body)
    if die:
        address = (int(die.group(1)), int(die.group(2)), int(die.group(3)))
        kind = FaultKind.DIE_DOWN if die.group(4) == "down" else FaultKind.DIE_UP
        return FaultEvent(time_ns, kind, die=address)
    burst = _BURST_RE.match(body)
    if burst:
        duration = int(burst.group(2)) * _TIME_UNITS[burst.group(3) or ""]
        return FaultEvent(
            time_ns,
            FaultKind.ECC_BURST,
            rate=float(burst.group(1)),
            duration_ns=duration,
        )
    raise ConfigurationError(
        f"unrecognised fault clause {clause!r}; expected one of "
        "'link (r,c)-(r,c) down|up', 'router (r,c) down|up', "
        "'die CH.WAY.DIE down|up', 'ecc-burst rate=R for=T'"
    )


def _event_sort_key(event: FaultEvent):
    """Deterministic total order: time, then kind, then target fields.

    Events of one kind always carry the same target shape, so the mixed
    tuple defaults never get compared across shapes.
    """
    return (
        event.time_ns,
        event.kind.value,
        event.link or (),
        event.node or (),
        event.die or (),
        event.rate,
        event.duration_ns,
    )


class FaultSchedule:
    """An immutable, canonically-ordered sequence of :class:`FaultEvent`\\ s.

    Events are totally ordered by ``(time, kind, target)``, so
    :meth:`to_spec` is a true canonical form: schedules that mean the same
    thing -- regardless of clause order, whitespace, or time units --
    serialise identically and therefore hash into identical spec digests,
    including commuting same-time events on distinct targets.  (Same-time
    events on the *same* target are ordered by kind -- ``down`` before
    ``up`` -- which canonicalisation documents rather than forbids.)  An
    empty schedule is falsy and is the library-wide marker for "pristine
    fabric".
    """

    __slots__ = ("events",)

    def __init__(self, events: Sequence[FaultEvent] = ()) -> None:
        self.events: Tuple[FaultEvent, ...] = tuple(
            sorted(events, key=_event_sort_key)
        )
        # ECC bursts restore the previous rate LIFO on expiry, which is only
        # well-defined when burst windows are disjoint or fully nested; a
        # partial overlap would silently simulate the wrong error rate, so
        # reject it here rather than at injection time.
        bursts = [
            (event.time_ns, event.time_ns + event.duration_ns)
            for event in self.events
            if event.kind is FaultKind.ECC_BURST
        ]
        for index in range(1, len(bursts)):
            start, end = bursts[index]
            for earlier_start, earlier_end in bursts[:index]:
                if start < earlier_end < end:
                    raise ConfigurationError(
                        f"ecc-burst windows [{earlier_start}, {earlier_end})ns "
                        f"and [{start}, {end})ns overlap without nesting; "
                        "burst windows must be disjoint or fully nested"
                    )

    @classmethod
    def parse(cls, text: str) -> "FaultSchedule":
        """Parse the schedule grammar (see the module docstring).

        Clauses are separated by ``;`` or newlines; blank clauses are
        ignored, so an empty or whitespace-only string parses to the empty
        (no-op) schedule.  Raises
        :class:`~repro.errors.ConfigurationError` naming the offending
        clause on any syntax or validation error.
        """
        events: List[FaultEvent] = []
        for raw in re.split(r"[;\n]", text or ""):
            clause = raw.strip()
            if clause:
                events.append(_parse_clause(clause))
        return cls(events)

    def to_spec(self) -> str:
        """Canonical grammar string; ``parse(to_spec())`` round-trips exactly."""
        return "; ".join(event.to_clause() for event in self.events)

    def __bool__(self) -> bool:
        """True when the schedule contains at least one event."""
        return bool(self.events)

    def __len__(self) -> int:
        """Number of fault events (burst end transitions not counted)."""
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        """Iterate events in canonical (time-sorted) order."""
        return iter(self.events)

    def __eq__(self, other: object) -> bool:
        """Schedules compare by their canonical event sequence."""
        if not isinstance(other, FaultSchedule):
            return NotImplemented
        return self.events == other.events

    def __hash__(self) -> int:
        """Hash of the canonical event sequence (usable as a dict key)."""
        return hash(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FaultSchedule({self.to_spec()!r})"


class FaultSink:
    """Receiver interface for injected fault transitions.

    :class:`FaultInjector` dispatches every scheduled transition to exactly
    one of these methods.  The simulated device implements them by routing
    to the component that owns the semantics (fabric, flash array, ECC
    engine); the sim layer defines only the interface so it stays free of
    upward dependencies.
    """

    def on_link_fault(self, a: Coord, b: Coord, down: bool) -> None:
        """A mesh link changed state (``down=True`` fails it)."""
        raise NotImplementedError

    def on_router_fault(self, node: Coord, down: bool) -> None:
        """A router chip changed state (``down=True`` fails it)."""
        raise NotImplementedError

    def on_die_fault(self, channel: int, way: int, die: int, down: bool) -> None:
        """A NAND die changed state (``down=True`` fails it)."""
        raise NotImplementedError

    def on_ecc_burst_start(self, rate: float) -> None:
        """A transient read-error burst began: raise the decode-failure rate."""
        raise NotImplementedError

    def on_ecc_burst_end(self) -> None:
        """The most recent read-error burst ended: restore the previous rate."""
        raise NotImplementedError


class _Transition:
    """Zero-argument engine callback applying one sink transition."""

    __slots__ = ("injector", "method", "args")

    def __init__(self, injector: "FaultInjector", method, args: tuple) -> None:
        self.injector = injector
        self.method = method
        self.args = args

    def __call__(self) -> None:
        self.injector.applied += 1
        self.method(*self.args)


class FaultInjector:
    """Arms a :class:`FaultSchedule` onto an :class:`~repro.sim.engine.Engine`.

    :meth:`arm` schedules one engine callback per state transition (an
    ``ecc-burst`` event arms two: rate raise and rate restore) relative to
    the engine's current time, so fault timing composes with every other
    simulation event through the ordinary heap/micro-queue machinery.
    ``applied`` counts transitions that have actually fired.
    """

    def __init__(self, engine: Engine, schedule: FaultSchedule, sink: FaultSink) -> None:
        self.engine = engine
        self.schedule = schedule
        self.sink = sink
        self.armed = 0
        self.applied = 0

    def arm(self) -> int:
        """Schedule every transition; returns the number armed.

        Events whose time precedes the engine's current time raise
        :class:`~repro.errors.ConfigurationError` -- the engine cannot
        schedule into the past.
        """
        now = self.engine.now
        for event in self.schedule:
            if event.time_ns < now:
                raise ConfigurationError(
                    f"fault event at {event.time_ns}ns is in the past "
                    f"(engine time {now}ns)"
                )
            delay = event.time_ns - now
            sink = self.sink
            kind = event.kind
            if kind is FaultKind.LINK_DOWN or kind is FaultKind.LINK_UP:
                a, b = event.link  # type: ignore[misc]
                transition = _Transition(
                    self, sink.on_link_fault, (a, b, kind is FaultKind.LINK_DOWN)
                )
            elif kind is FaultKind.ROUTER_DOWN or kind is FaultKind.ROUTER_UP:
                transition = _Transition(
                    self,
                    sink.on_router_fault,
                    (event.node, kind is FaultKind.ROUTER_DOWN),
                )
            elif kind is FaultKind.DIE_DOWN or kind is FaultKind.DIE_UP:
                channel, way, die = event.die  # type: ignore[misc]
                transition = _Transition(
                    self,
                    sink.on_die_fault,
                    (channel, way, die, kind is FaultKind.DIE_DOWN),
                )
            else:  # ECC_BURST: one raise transition plus one restore
                transition = _Transition(
                    self, sink.on_ecc_burst_start, (event.rate,)
                )
                self.engine.schedule(
                    delay + event.duration_ns,
                    _Transition(self, sink.on_ecc_burst_end, ()),
                )
                self.armed += 1
            self.engine.schedule(delay, transition)
            self.armed += 1
        return self.armed
