"""Deterministic randomness helpers.

Two generators live here:

* :class:`DeterministicRng` -- a seeded ``random.Random`` wrapper with the
  distribution helpers the workload generators need (Poisson gaps, lognormal
  sizes, zipfian keys).  Keeping one named stream per consumer makes every
  simulation bit-reproducible regardless of module import order.

* :class:`Lfsr2` -- the 2-bit linear-feedback shift register the Venice
  router uses to break ties between two candidate output ports (paper §4.3,
  Algorithm 1 line 28).
"""

from __future__ import annotations

import math
import random
from typing import List, Sequence, TypeVar

from repro.errors import SimulationError

T = TypeVar("T")


class DeterministicRng:
    """Seeded random stream with the distributions used by the simulator."""

    def __init__(self, seed: int, stream: str = "") -> None:
        # Mix the stream name into the seed so independently-named streams
        # with the same base seed are decorrelated but still reproducible.
        mixed = seed
        for char in stream:
            mixed = (mixed * 1000003 + ord(char)) % (2**63)
        self._random = random.Random(mixed)
        self.seed = seed
        self.stream = stream

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in [low, high]."""
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Inclusive-range integer."""
        return self._random.randint(low, high)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._random.random()

    def choice(self, options: Sequence[T]) -> T:
        """One uniformly-chosen element of ``options``."""
        return self._random.choice(options)

    def shuffle(self, items: List[T]) -> None:
        """Shuffle ``items`` in place."""
        self._random.shuffle(items)

    def exponential_gap(self, mean: float) -> float:
        """Exponential inter-arrival gap (Poisson arrivals) with given mean."""
        if mean <= 0:
            raise SimulationError(f"mean gap must be positive: {mean}")
        return self._random.expovariate(1.0 / mean)

    def lognormal(self, mean: float, sigma: float = 0.6) -> float:
        """Lognormal sample whose *arithmetic* mean is ``mean``.

        Request sizes in block traces are heavily right-skewed; a lognormal
        with sigma around 0.6 reproduces that shape while matching the
        published average size.
        """
        if mean <= 0:
            raise SimulationError(f"lognormal mean must be positive: {mean}")
        mu = math.log(mean) - 0.5 * sigma * sigma
        return self._random.lognormvariate(mu, sigma)

    def zipf_index(self, n: int, skew: float = 0.99) -> int:
        """Zipfian index in [0, n) via rejection-inversion (Hormann).

        Used by the YCSB-style generators: YCSB's core workloads draw keys
        from a zipfian distribution with constant 0.99.
        """
        if n <= 0:
            raise SimulationError(f"zipf needs n >= 1, got {n}")
        if n == 1:
            return 0
        # Simple inverse-CDF on the harmonic weights with caching.
        harmonics = _harmonic_cache(n, skew)
        target = self._random.random() * harmonics[-1]
        low, high = 0, n - 1
        while low < high:
            mid = (low + high) // 2
            if harmonics[mid] < target:
                low = mid + 1
            else:
                high = mid
        return low


_HARMONIC_CACHE: dict = {}


def _harmonic_cache(n: int, skew: float) -> List[float]:
    key = (n, skew)
    cached = _HARMONIC_CACHE.get(key)
    if cached is None:
        total = 0.0
        cached = []
        for rank in range(1, n + 1):
            total += 1.0 / (rank**skew)
            cached.append(total)
        _HARMONIC_CACHE[key] = cached
    return cached


class Lfsr2:
    """2-bit maximal-length LFSR (period 3) for router tie-breaking.

    Polynomial x^2 + x + 1 over GF(2): state cycles 01 -> 10 -> 11 -> 01.
    The router needs a single pseudo-random *bit* to pick between at most
    two minimal output ports, and a 2-bit value when misrouting among up to
    three non-minimal candidates.
    """

    __slots__ = ("state",)

    def __init__(self, seed: int = 1) -> None:
        self.state = (seed & 0b11) or 0b01

    def step(self) -> int:
        """Advance one cycle and return the new 2-bit state (1..3)."""
        bit0 = self.state & 1
        bit1 = (self.state >> 1) & 1
        feedback = bit0 ^ bit1
        self.state = ((self.state << 1) | feedback) & 0b11
        if self.state == 0:  # unreachable for maximal LFSR, guard anyway
            self.state = 0b01
        return self.state

    def next_bit(self) -> int:
        """One pseudo-random bit (the LSB of the next state)."""
        return self.step() & 1

    def pick(self, count: int) -> int:
        """Index in [0, count) chosen by the LFSR stream."""
        if count <= 0:
            raise SimulationError(f"pick needs count >= 1, got {count}")
        if count == 1:
            return 0
        return self.step() % count
