"""Discrete-event simulation kernel.

A small, dependency-free, generator-based discrete-event engine in the style
of SimPy, specialised for the needs of an SSD simulator:

* integer-nanosecond timestamps (no floating-point event reordering),
* deterministic FIFO tie-breaking for simultaneous events,
* a closure-free event loop: heap entries are type-tagged tuples and
  ``delay == 0`` schedules bypass the heap through a micro-queue,
* processes written as generators that ``yield`` waitables
  (plain integer delays, :class:`Timeout`, :class:`OneShotEvent`,
  :class:`Grant`, resource acquisitions),
* FIFO :class:`~repro.sim.resources.Resource` with waiter accounting so the
  metrics layer can count path conflicts, and an allocation-free
  uncontended acquire fast path.
"""

from repro.sim.engine import Engine, Timeout, OneShotEvent, AllOf, Grant, Process
from repro.sim.resources import Resource, ResourcePool, Lease
from repro.sim.rng import DeterministicRng, Lfsr2
from repro.sim.stats import (
    HISTOGRAM_RELATIVE_ERROR,
    RunningStat,
    LatencyRecorder,
    UtilizationTracker,
    exact_stats_default,
    percentile,
)

__all__ = [
    "Engine",
    "Timeout",
    "OneShotEvent",
    "AllOf",
    "Grant",
    "Process",
    "Resource",
    "ResourcePool",
    "Lease",
    "DeterministicRng",
    "Lfsr2",
    "HISTOGRAM_RELATIVE_ERROR",
    "RunningStat",
    "LatencyRecorder",
    "UtilizationTracker",
    "exact_stats_default",
    "percentile",
]
