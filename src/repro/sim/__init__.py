"""Discrete-event simulation kernel.

A small, dependency-free, generator-based discrete-event engine in the style
of SimPy, specialised for the needs of an SSD simulator:

* integer-nanosecond timestamps (no floating-point event reordering),
* deterministic FIFO tie-breaking for simultaneous events,
* processes written as generators that ``yield`` waitables
  (:class:`Timeout`, :class:`OneShotEvent`, resource acquisitions),
* FIFO :class:`~repro.sim.resources.Resource` with waiter accounting so the
  metrics layer can count path conflicts.
"""

from repro.sim.engine import Engine, Timeout, OneShotEvent, AllOf, Process
from repro.sim.resources import Resource, ResourcePool, Lease
from repro.sim.rng import DeterministicRng, Lfsr2
from repro.sim.stats import (
    RunningStat,
    LatencyRecorder,
    UtilizationTracker,
    percentile,
)

__all__ = [
    "Engine",
    "Timeout",
    "OneShotEvent",
    "AllOf",
    "Process",
    "Resource",
    "ResourcePool",
    "Lease",
    "DeterministicRng",
    "Lfsr2",
    "RunningStat",
    "LatencyRecorder",
    "UtilizationTracker",
    "percentile",
]
