"""FIFO resources with waiter accounting.

The SSD model serialises on many physical resources: shared channels, mesh
links, flash dies, flash controllers.  All of them are modelled with
:class:`Resource` -- a capacity-limited FIFO semaphore whose ``acquire``
returns a :class:`~repro.sim.engine.OneShotEvent` carrying a :class:`Lease`.

The crucial extra over a plain semaphore is *contention accounting*: the
metrics layer asks "did this acquisition have to wait?" to classify an I/O
request as having experienced a path conflict (paper §3.1, §6.3).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.engine import Engine, OneShotEvent


class Lease:
    """A granted unit of a resource; release it exactly once."""

    __slots__ = ("resource", "granted_at", "requested_at", "released", "waited")

    def __init__(self, resource: "Resource", requested_at: int, granted_at: int) -> None:
        self.resource = resource
        self.requested_at = requested_at
        self.granted_at = granted_at
        self.released = False
        self.waited = granted_at > requested_at

    @property
    def wait_time(self) -> int:
        return self.granted_at - self.requested_at

    def release(self) -> None:
        if self.released:
            raise SimulationError(f"double release of {self.resource.name!r}")
        self.released = True
        self.resource._on_release(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Lease({self.resource.name!r}, waited={self.wait_time})"


class Resource:
    """Capacity-limited FIFO resource."""

    def __init__(self, engine: Engine, name: str, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"resource {name!r} needs capacity >= 1")
        self.engine = engine
        self.name = name
        self.capacity = capacity
        self.in_use = 0
        self._waiters: Deque[Tuple[OneShotEvent, int]] = deque()
        # accounting
        self.total_acquisitions = 0
        self.contended_acquisitions = 0
        self.total_wait_time = 0
        self.busy_time = 0
        self._busy_since: Optional[int] = None

    # ------------------------------------------------------------------ #

    def acquire(self) -> OneShotEvent:
        """Request one unit; the event's value is the granted :class:`Lease`."""
        event = self.engine.event(name=f"acq:{self.name}")
        requested_at = self.engine.now
        self.total_acquisitions += 1
        if self.in_use < self.capacity:
            self._grant(event, requested_at)
        else:
            self.contended_acquisitions += 1
            self._waiters.append((event, requested_at))
        return event

    def try_acquire(self) -> Optional[Lease]:
        """Non-blocking acquire: a lease if free capacity exists, else None."""
        if self.in_use < self.capacity:
            self.total_acquisitions += 1
            lease = Lease(self, self.engine.now, self.engine.now)
            self._account_grant(lease)
            return lease
        return None

    @property
    def is_free(self) -> bool:
        return self.in_use < self.capacity

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    # ------------------------------------------------------------------ #

    def _grant(self, event: OneShotEvent, requested_at: int) -> None:
        lease = Lease(self, requested_at, self.engine.now)
        self._account_grant(lease)
        event.succeed(lease)

    def _account_grant(self, lease: Lease) -> None:
        self.in_use += 1
        self.total_wait_time += lease.wait_time
        if self._busy_since is None:
            self._busy_since = self.engine.now

    def _on_release(self, lease: Lease) -> None:
        self.in_use -= 1
        if self._waiters:
            event, requested_at = self._waiters.popleft()
            self._grant(event, requested_at)
        if self.in_use == 0 and self._busy_since is not None:
            self.busy_time += self.engine.now - self._busy_since
            self._busy_since = None

    def utilization(self, horizon: int) -> float:
        """Fraction of [0, horizon] during which the resource was in use."""
        if horizon <= 0:
            return 0.0
        busy = self.busy_time
        if self._busy_since is not None:
            busy += max(0, self.engine.now - self._busy_since)
        return min(1.0, busy / horizon)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Resource({self.name!r}, {self.in_use}/{self.capacity} used, "
            f"{len(self._waiters)} waiting)"
        )


class ResourcePool:
    """A named collection of single-capacity resources with free-search.

    Used for Venice's flash-controller pool: "Venice checks if the closest
    flash controller to the target flash chip is available; otherwise it uses
    the nearest free flash controller" (paper §4.2).
    """

    def __init__(self, engine: Engine, name: str, size: int) -> None:
        if size < 1:
            raise SimulationError(f"pool {name!r} needs size >= 1")
        self.engine = engine
        self.name = name
        self.members: List[Resource] = [
            Resource(engine, f"{name}[{index}]") for index in range(size)
        ]
        self._waiters: Deque[Tuple[OneShotEvent, int, Tuple[int, ...]]] = deque()
        self.total_acquisitions = 0
        self.contended_acquisitions = 0

    def __len__(self) -> int:
        return len(self.members)

    def free_indices(self) -> List[int]:
        return [i for i, member in enumerate(self.members) if member.is_free]

    def acquire_preferring(self, preference: Tuple[int, ...]) -> OneShotEvent:
        """Acquire any member, preferring the given index order.

        The event value is ``(index, lease)``.  ``preference`` lists member
        indices from most to least preferred; indices not listed are
        considered afterwards in ascending order.
        """
        event = self.engine.event(name=f"acq:{self.name}")
        self.total_acquisitions += 1
        index = self._pick_free(preference)
        if index is None:
            self.contended_acquisitions += 1
            self._waiters.append((event, self.engine.now, preference))
        else:
            lease = self.members[index].try_acquire()
            assert lease is not None
            event.succeed((index, lease))
        return event

    def release(self, index: int, lease: Lease) -> None:
        lease.release()
        if self._waiters:
            event, _, preference = self._waiters.popleft()
            free = self._pick_free(preference)
            assert free is not None, "member was just released"
            new_lease = self.members[free].try_acquire()
            assert new_lease is not None
            event.succeed((free, new_lease))

    def _pick_free(self, preference: Tuple[int, ...]) -> Optional[int]:
        seen = set()
        for index in preference:
            seen.add(index)
            if 0 <= index < len(self.members) and self.members[index].is_free:
                return index
        for index, member in enumerate(self.members):
            if index not in seen and member.is_free:
                return index
        return None
