"""FIFO resources with waiter accounting.

The SSD model serialises on many physical resources: shared channels, mesh
links, flash dies, flash controllers.  All of them are modelled with
:class:`Resource` -- a capacity-limited FIFO semaphore whose ``acquire``
returns a waitable carrying a :class:`Lease`.

Uncontended acquisitions take an allocation-free fast path: ``acquire``
hands back a pre-completed :class:`~repro.sim.engine.Grant` and the process
resumes immediately when it yields, never touching the scheduler.  Only a
caller that must actually wait gets a :class:`~repro.sim.engine.OneShotEvent`
parked on the FIFO waiter queue.  FIFO order and all accounting are
identical on both paths.

The crucial extra over a plain semaphore is *contention accounting*: the
metrics layer asks "did this acquisition have to wait?" to classify an I/O
request as having experienced a path conflict (paper §3.1, §6.3).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple, Union

from repro.errors import SimulationError
from repro.sim.engine import Engine, Grant, OneShotEvent

AcquireWaitable = Union[Grant, OneShotEvent]


class Lease:
    """A granted unit of a resource; release it exactly once."""

    __slots__ = ("resource", "granted_at", "requested_at", "released", "waited")

    def __init__(self, resource: "Resource", requested_at: int, granted_at: int) -> None:
        self.resource = resource
        self.requested_at = requested_at
        self.granted_at = granted_at
        self.released = False
        self.waited = granted_at > requested_at

    @property
    def wait_time(self) -> int:
        """Nanoseconds this acquisition queued before being granted."""
        return self.granted_at - self.requested_at

    def release(self) -> None:
        """Return the unit to the resource; double release raises."""
        if self.released:
            raise SimulationError(f"double release of {self.resource.name!r}")
        self.released = True
        self.resource._on_release(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Lease({self.resource.name!r}, waited={self.wait_time})"


class Resource:
    """Capacity-limited FIFO resource."""

    def __init__(self, engine: Engine, name: str, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"resource {name!r} needs capacity >= 1")
        self.engine = engine
        self.name = name
        self.capacity = capacity
        self.in_use = 0
        self._event_name = "acq:" + name  # built once; contended acquires are hot
        self._waiters: Deque[Tuple[OneShotEvent, int]] = deque()
        # accounting
        self.total_acquisitions = 0
        self.contended_acquisitions = 0
        self.total_wait_time = 0
        self.busy_time = 0
        self._busy_since: Optional[int] = None

    # ------------------------------------------------------------------ #

    def acquire(self) -> AcquireWaitable:
        """Request one unit; the waitable's value is the granted :class:`Lease`.

        Free capacity returns a pre-completed :class:`Grant` (no event, no
        scheduler round-trip); a full resource parks a fresh event on the
        FIFO waiter queue.
        """
        self.total_acquisitions += 1
        if self.in_use < self.capacity:
            now = self.engine.now
            lease = Lease(self, now, now)
            self.in_use += 1
            if self._busy_since is None:
                self._busy_since = now
            return Grant(lease)
        self.contended_acquisitions += 1
        event = OneShotEvent(self.engine, name=self._event_name)
        self._waiters.append((event, self.engine.now))
        return event

    def try_acquire(self) -> Optional[Lease]:
        """Non-blocking acquire: a lease if free capacity exists, else None."""
        if self.in_use < self.capacity:
            self.total_acquisitions += 1
            lease = Lease(self, self.engine.now, self.engine.now)
            self._account_grant(lease)
            return lease
        return None

    @property
    def is_free(self) -> bool:
        """True when an acquire would be granted without waiting."""
        return self.in_use < self.capacity

    @property
    def queue_length(self) -> int:
        """Number of acquisitions currently parked on the FIFO queue."""
        return len(self._waiters)

    # ------------------------------------------------------------------ #

    def _grant(self, event: OneShotEvent, requested_at: int) -> None:
        lease = Lease(self, requested_at, self.engine.now)
        self._account_grant(lease)
        event.succeed(lease)

    def _account_grant(self, lease: Lease) -> None:
        self.in_use += 1
        self.total_wait_time += lease.wait_time
        if self._busy_since is None:
            self._busy_since = self.engine.now

    def _on_release(self, lease: Lease) -> None:
        self.in_use -= 1
        if self._waiters:
            event, requested_at = self._waiters.popleft()
            self._grant(event, requested_at)
        if self.in_use == 0 and self._busy_since is not None:
            self.busy_time += self.engine.now - self._busy_since
            self._busy_since = None

    def utilization(self, horizon: int) -> float:
        """Fraction of [0, horizon] during which the resource was in use.

        Busy time exceeding the horizon is an accounting bug (a lease
        held longer than the window it is measured against) and raises
        instead of being silently clamped.
        """
        if horizon <= 0:
            return 0.0
        busy = self.busy_time
        if self._busy_since is not None:
            busy += max(0, self.engine.now - self._busy_since)
        if busy > horizon:
            raise SimulationError(
                f"resource {self.name!r} accounted {busy}ns busy over a "
                f"{horizon}ns horizon"
            )
        return busy / horizon

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Resource({self.name!r}, {self.in_use}/{self.capacity} used, "
            f"{len(self._waiters)} waiting)"
        )


class ResourcePool:
    """A named collection of single-capacity resources with free-search.

    Used for Venice's flash-controller pool: "Venice checks if the closest
    flash controller to the target flash chip is available; otherwise it uses
    the nearest free flash controller" (paper §4.2).
    """

    def __init__(self, engine: Engine, name: str, size: int) -> None:
        if size < 1:
            raise SimulationError(f"pool {name!r} needs size >= 1")
        self.engine = engine
        self.name = name
        self.members: List[Resource] = [
            Resource(engine, f"{name}[{index}]") for index in range(size)
        ]
        self._event_name = "acq:" + name
        self._waiters: Deque[Tuple[OneShotEvent, int, Tuple[int, ...], bool]] = deque()
        self.total_acquisitions = 0
        self.contended_acquisitions = 0

    def __len__(self) -> int:
        return len(self.members)

    def free_indices(self) -> List[int]:
        """Indices of members an acquire would currently get for free."""
        return [i for i, member in enumerate(self.members) if member.is_free]

    def acquire_preferring(
        self, preference: Tuple[int, ...], restrict: bool = False
    ) -> AcquireWaitable:
        """Acquire any member, preferring the given index order.

        The waitable's value is ``(index, lease)``.  ``preference`` lists
        member indices from most to least preferred; indices not listed are
        considered afterwards in ascending order -- unless ``restrict`` is
        true, in which case *only* the listed indices are acceptable (fault
        injection uses this: a transfer must not be handed a controller that
        cannot reach its destination).  A free member comes back as a
        pre-completed :class:`Grant`; otherwise a fresh event parks on the
        FIFO waiter queue.
        """
        self.total_acquisitions += 1
        index = self._pick_free(preference, restrict)
        if index is None:
            self.contended_acquisitions += 1
            event = OneShotEvent(self.engine, name=self._event_name)
            self._waiters.append((event, self.engine.now, preference, restrict))
            return event
        lease = self.members[index].try_acquire()
        assert lease is not None
        return Grant((index, lease))

    def release(self, index: int, lease: Lease) -> None:
        """Release member ``index`` and re-grant waiters in FIFO order.

        Waiting acquirers are granted with their *original* request time so
        the lease and the member's accounting record the queueing delay
        (re-acquiring through ``try_acquire`` would stamp request == grant
        and lose the wait).  A restricted waiter whose acceptable members
        are all still busy is skipped (it keeps its queue position); with no
        restricted waiters the head waiter always takes the freed member,
        exactly the historical behaviour.
        """
        lease.release()
        self._grant_ready_waiters()

    def _grant_ready_waiters(self) -> None:
        """Grant every queued waiter a free acceptable member, FIFO-first.

        The scan walks the queue *in place* and removes an entry only at
        the moment it is granted, so waiters are never hidden from a
        nested call: ``event.succeed`` resumes the granted process
        synchronously, and if that process releases members (re-entering
        this method), the nested scan sees the complete remaining queue and
        grants the earliest acceptable waiter.  After every grant the scan
        restarts from the queue head -- reentrant mutations may have made
        an earlier waiter grantable -- so the earliest grantable waiter
        always wins, preserving FIFO order for restricted and unrestricted
        waiters alike.
        """
        waiters = self._waiters
        members = self.members
        index = 0
        while index < len(waiters):
            if not any(member.is_free for member in members):
                return
            event, requested_at, preference, restrict = waiters[index]
            free = self._pick_free(preference, restrict)
            if free is None:
                index += 1
                continue
            del waiters[index]
            member = members[free]
            member.total_acquisitions += 1
            new_lease = Lease(member, requested_at, self.engine.now)
            member._account_grant(new_lease)
            event.succeed((free, new_lease))
            index = 0

    def _pick_free(
        self, preference: Tuple[int, ...], restrict: bool = False
    ) -> Optional[int]:
        members = self.members
        size = len(members)
        for index in preference:
            if 0 <= index < size and members[index].is_free:
                return index
        if restrict:
            return None
        seen = set(preference)
        for index, member in enumerate(members):
            if index not in seen and member.is_free:
                return index
        return None
