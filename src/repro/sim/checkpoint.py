"""Device-state checkpointing: snapshot a warmed-up SSD, restore it later.

Every cell of a sweep matrix historically re-simulated the same warm-up --
preconditioning the logical space and aging the allocator -- before its
measured phase, even though the warm-up is identical across every cell that
shares a geometry/design/warm-up recipe.  This module captures the device
state *between* the two phases as a plain-JSON value so one warm-up
simulation can seed an entire matrix:

* :class:`WarmupPhase` -- the spec-grammar value (``"fill 0.5; steps 400"``)
  that declares what the warm-up does, carried by
  :class:`~repro.experiments.spec.RunSpec` and folded into the *checkpoint
  digest* that content-addresses the snapshot,
* :func:`snapshot_device` / :func:`restore_device` -- serialise and rebuild
  the mutable device state: per-block NAND occupancy and erase counts,
  the logical-to-physical mapping, allocator cursors and RNG stream, and
  DRAM-cache residency,
* :class:`CheckpointStore` -- a content-addressed store (in-memory, with an
  optional on-disk mirror beside the result store) keyed by the checkpoint
  digest.

Snapshots are taken at *quiescence* -- no in-flight programs, an empty event
loop -- which makes the state small and exactly reconstructible: a block's
occupancy is fully described by its erase count plus one ``'v'``/``'i'``
character per handed-out page, because quiescent NAND state is always a
programmed prefix followed by free pages.  Telemetry counters (plane
read/program/erase tallies, FTL counters, die command counts) are *not*
snapshotted: the measured phase starts them from zero on a freshly built
device in both the cold and the restored path, which is what makes a
checkpointed run bit-identical to a cold run of the same spec.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from repro.errors import ConfigurationError, NandProtocolError, SimulationError
from repro.nand.chip import PageState

#: Snapshot payload format version; bumped on incompatible layout changes.
CHECKPOINT_VERSION = 1

_CLAUSE_RE = re.compile(r"^\s*(fill|churn|steps)\s+([0-9.eE+-]+)\s*$")


@dataclass(frozen=True)
class WarmupPhase:
    """What a spec's warm-up does before the measured phase begins.

    A warm-up is ``fill`` (timing-free preconditioning of a fraction of the
    logical space, exactly :meth:`repro.ftl.ftl.Ftl.precondition`), an
    optional ``churn`` stage (timing-free overwrite of a fraction of the
    filled pages via :meth:`repro.ftl.ftl.Ftl.churn`, spreading invalid
    pages across closed blocks so the device starts in GC steady state
    rather than a pristine fill), followed by ``steps`` timed requests of a
    fixed synthetic aging workload that exercises the allocator, garbage
    collector, and cache.  Instances are immutable values round-trippable
    through the spec grammar::

        fill 0.5; churn 0.3; steps 400

    Zero-valued clauses are omitted from the canonical form, so two phases
    that mean the same thing always serialise identically (and therefore
    produce the same checkpoint digest).  Pre-churn phase strings
    canonicalise exactly as before, so existing digests are unchanged.
    """

    #: Fraction of the logical space preconditioned before the aging steps.
    fill: float = 0.0
    #: Fraction of the filled pages overwritten after the fill (GC aging).
    churn: float = 0.0
    #: Number of timed synthetic aging requests replayed after the fill.
    steps: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.fill <= 1.0:
            raise ConfigurationError(
                f"warm-up fill must be in [0, 1], got {self.fill!r}"
            )
        if not 0.0 <= self.churn <= 1.0:
            raise ConfigurationError(
                f"warm-up churn must be in [0, 1], got {self.churn!r}"
            )
        if self.churn > 0.0 and self.fill == 0.0:
            raise ConfigurationError(
                "warm-up churn overwrites filled pages: churn > 0 requires "
                "fill > 0"
            )
        if self.steps < 0:
            raise ConfigurationError(
                f"warm-up steps must be >= 0, got {self.steps!r}"
            )
        if self.fill == 0.0 and self.steps == 0:
            raise ConfigurationError(
                "empty warm-up phase: leave the spec's warmup field empty "
                "instead"
            )

    @classmethod
    def parse(cls, spec: str) -> "WarmupPhase":
        """Parse ``"fill F; churn C; steps N"`` (any clause may be omitted)."""
        values: Dict[str, float] = {}
        for clause in str(spec).split(";"):
            if not clause.strip():
                continue
            match = _CLAUSE_RE.match(clause)
            if match is None:
                raise ConfigurationError(
                    f"unrecognised warm-up clause: {clause.strip()!r}"
                )
            key, raw = match.group(1), match.group(2)
            if key in values:
                raise ConfigurationError(f"duplicate warm-up clause: {key!r}")
            try:
                values[key] = int(raw) if key == "steps" else float(raw)
            except ValueError as error:
                raise ConfigurationError(
                    f"bad warm-up value for {key!r}: {raw!r}"
                ) from error
        return cls(
            fill=values.get("fill", 0.0),
            churn=values.get("churn", 0.0),
            steps=values.get("steps", 0),
        )

    def to_spec(self) -> str:
        """Canonical grammar string (zero-valued clauses omitted)."""
        parts: List[str] = []
        if self.fill:
            parts.append(f"fill {self.fill:g}")
        if self.churn:
            parts.append(f"churn {self.churn:g}")
        if self.steps:
            parts.append(f"steps {self.steps}")
        return "; ".join(parts)


def _geometry_payload(geometry) -> Dict[str, int]:
    """The geometry fields a snapshot must agree on to be restorable."""
    return {
        "channels": geometry.channels,
        "chips_per_channel": geometry.chips_per_channel,
        "dies_per_chip": geometry.dies_per_chip,
        "planes_per_die": geometry.planes_per_die,
        "blocks_per_plane": geometry.blocks_per_plane,
        "pages_per_block": geometry.pages_per_block,
    }


def snapshot_device(device) -> dict:
    """Serialise a quiescent device's mutable state to a plain-JSON value.

    The device must be at quiescence (no in-flight programs, event loop
    drained) -- :class:`SimulationError` is raised otherwise.  The snapshot
    covers per-block NAND occupancy ('v'/'i' per handed-out page, erase
    count), the LPN->PPN mapping, allocator cursors plus the allocator RNG
    stream, and DRAM-cache residency.  The value is round-tripped through
    JSON before being returned so an in-process snapshot is byte-for-byte
    the same value a disk-loaded one would be.
    """
    blocks: List[list] = []
    planes = [plane for _, _, plane in device.array.iter_planes()]
    for plane_flat, plane in enumerate(planes):
        for block in plane.blocks:
            if block.pending_programs:
                raise SimulationError(
                    f"snapshot of a non-quiescent device: block "
                    f"{block.index} of plane {plane_flat} has "
                    f"{block.pending_programs} in-flight programs"
                )
            if (block.erase_count == 0 and block.allocation_pointer == 0
                    and block.invalid_count == 0):
                continue  # untouched block: implicit in the snapshot
            pages = "".join(
                "v" if block.page_states[page] is PageState.VALID else "i"
                for page in range(block.allocation_pointer)
            )
            blocks.append([plane_flat, block.index, block.erase_count, pages])
    allocator = device.ftl.allocator
    rng_state = allocator._rng._random.getstate()
    state = {
        "version": CHECKPOINT_VERSION,
        "geometry": _geometry_payload(device.config.geometry),
        "blocks": blocks,
        "mapping": sorted([lpn, ppn] for lpn, ppn in device.ftl.mapping.items()),
        "allocator": {
            "open_blocks": [
                [cursor.plane_flat, cursor.open_block]
                for cursor in allocator._cursors
                if cursor.open_block is not None
            ],
            "next_plane": allocator._next_plane,
            "allocations": allocator.allocations,
            "rng": [rng_state[0], list(rng_state[1]), rng_state[2]],
        },
        "cache": [
            [lpn, dirty] for lpn, dirty in device.ftl.cache._lru.items()
        ],
    }
    # Canonicalise through JSON: tuples become lists, keys become strings,
    # exactly as a store round-trip would leave them.
    return json.loads(json.dumps(state))


def restore_device(device, state: dict) -> None:
    """Rebuild a snapshot's state onto a freshly constructed device.

    The device must be pristine (no allocations, no erases) and share the
    snapshot's NAND geometry; :class:`SimulationError` is raised otherwise.
    After restoration the FTL's cross-layer consistency invariant is
    re-checked (:meth:`repro.ftl.ftl.Ftl.assert_consistent`), so a corrupt
    snapshot can never silently seed a measured phase.
    """
    if state.get("version") != CHECKPOINT_VERSION:
        raise SimulationError(
            f"unsupported checkpoint version {state.get('version')!r} "
            f"(expected {CHECKPOINT_VERSION})"
        )
    expected = _geometry_payload(device.config.geometry)
    if state.get("geometry") != expected:
        raise SimulationError(
            f"checkpoint geometry {state.get('geometry')} does not match "
            f"device geometry {expected}"
        )
    planes = [plane for _, _, plane in device.array.iter_planes()]
    for plane_flat, block_index, erase_count, pages in state["blocks"]:
        block = planes[plane_flat].blocks[block_index]
        try:
            # The block owns its restore path (and its invariants): a
            # corrupt snapshot -- bad page states, overlong fill, negative
            # erase count, non-pristine target -- is rejected there.
            block.restore(pages, erase_count)
        except NandProtocolError as error:
            raise SimulationError(
                f"corrupt checkpoint for block {block_index} of plane "
                f"{plane_flat}: {error}"
            ) from error
    mapping = device.ftl.mapping
    for lpn, ppn in state["mapping"]:
        mapping._forward[lpn] = ppn
        mapping._reverse[ppn] = lpn
    allocator = device.ftl.allocator
    for plane_flat, open_block in state["allocator"]["open_blocks"]:
        allocator._cursors[plane_flat].open_block = open_block
    allocator._next_plane = state["allocator"]["next_plane"]
    allocator.allocations = state["allocator"]["allocations"]
    rng = state["allocator"]["rng"]
    allocator._rng._random.setstate((rng[0], tuple(rng[1]), rng[2]))
    cache = device.ftl.cache
    for lpn, dirty in state["cache"]:
        cache._lru[int(lpn)] = bool(dirty)
    device.ftl.assert_consistent()


class CheckpointStore:
    """Content-addressed checkpoint store keyed by the checkpoint digest.

    Snapshots live in an in-memory map, optionally mirrored to one JSON
    file per digest under ``directory`` (created on demand, conventionally
    ``<result-store>/checkpoints``) so warm-up work survives across
    processes exactly like cached results do.  Writes go through a
    write-then-rename so a crashed run never leaves a torn file behind.
    Hit/miss/write counters make cache behaviour observable in tests and
    ``venice-sim store stats``.
    """

    def __init__(self, directory=None, *, preload: Optional[dict] = None):
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._memory: Dict[str, dict] = dict(preload or {})
        self.hits = 0
        self.misses = 0
        self.writes = 0

    def path_for(self, digest: str) -> Path:
        """On-disk path of a digest's snapshot (directory-backed stores)."""
        if self.directory is None:
            raise ConfigurationError("checkpoint store has no directory")
        return self.directory / f"{digest}.json"

    def get(self, digest: str) -> Optional[dict]:
        """The stored snapshot for ``digest``, or ``None`` on a miss."""
        state = self._memory.get(digest)
        if state is None and self.directory is not None:
            path = self.path_for(digest)
            if path.exists():
                try:
                    payload = json.loads(path.read_text(encoding="utf-8"))
                except (OSError, ValueError) as error:
                    raise SimulationError(
                        f"corrupt checkpoint file {path}: {error}"
                    ) from error
                if payload.get("digest") != digest or "state" not in payload:
                    raise SimulationError(
                        f"checkpoint file {path} does not hold digest "
                        f"{digest}"
                    )
                state = payload["state"]
                self._memory[digest] = state
        if state is None:
            self.misses += 1
            return None
        self.hits += 1
        return state

    def put(self, digest: str, state: dict) -> None:
        """Store a snapshot under its digest (memory, then disk mirror)."""
        self._memory[digest] = state
        self.writes += 1
        if self.directory is not None:
            path = self.path_for(digest)
            tmp = path.with_suffix(".json.tmp")
            payload = {"digest": digest, "state": state}
            tmp.write_text(json.dumps(payload), encoding="utf-8")
            os.replace(tmp, path)

    def __contains__(self, digest: str) -> bool:
        if digest in self._memory:
            return True
        return self.directory is not None and self.path_for(digest).exists()

    def __len__(self) -> int:
        digests = set(self._memory)
        if self.directory is not None:
            digests.update(path.stem for path in self.directory.glob("*.json"))
        return len(digests)
