"""Statistics primitives for the metrics layer.

Small, dependency-light accumulators:

* :func:`percentile` -- linear-interpolation percentile on a sorted copy,
* :class:`RunningStat` -- streaming count/mean/min/max/variance (Welford),
* :class:`LatencyRecorder` -- latency accumulator with percentile and CDF
  extraction.  The default mode is a streaming log-bucketed histogram
  (DDSketch-style): O(1) memory per distinct magnitude, exact
  count/mean/min/max, and quantiles with a guaranteed relative error of
  :data:`HISTOGRAM_RELATIVE_ERROR` (1%).  ``exact=True`` retains every raw
  sample and reproduces the historical bit-exact percentiles -- the mode
  equivalence tests and the ``VENICE_EXACT_STATS=1`` environment switch
  rely on it,
* :class:`UtilizationTracker` -- time-weighted busy fraction of a component.
"""

from __future__ import annotations

import math
import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SimulationError

#: Guaranteed relative error bound of histogram-mode quantiles and CDF
#: points: every reported latency v' satisfies |v' - v| <= 0.01 * v for the
#: true order statistic v.  (Log-bucketed sketch with gamma = 1.01/0.99;
#: estimates are the geometric bucket midpoint 2*gamma^i/(gamma+1), clamped
#: to the exact observed [min, max].)
HISTOGRAM_RELATIVE_ERROR = 0.01

_GAMMA = (1.0 + HISTOGRAM_RELATIVE_ERROR) / (1.0 - HISTOGRAM_RELATIVE_ERROR)
_LOG_GAMMA = math.log(_GAMMA)
_BUCKET_MID = 2.0 / (_GAMMA + 1.0)  # estimate(i) = gamma**i * _BUCKET_MID


def exact_stats_default() -> bool:
    """Process-wide default for exact-mode stats (``VENICE_EXACT_STATS``)."""
    return os.environ.get("VENICE_EXACT_STATS", "").strip().lower() in (
        "1",
        "true",
        "yes",
        "on",
    )


def percentile(samples: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile; ``fraction`` in [0, 1]."""
    if not samples:
        raise SimulationError("percentile of empty sample set")
    if not 0.0 <= fraction <= 1.0:
        raise SimulationError(f"fraction out of range: {fraction}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return float(ordered[0])
    position = fraction * (len(ordered) - 1)
    lower = int(math.floor(position))
    upper = int(math.ceil(position))
    if lower == upper:
        return float(ordered[lower])
    weight = position - lower
    return float(ordered[lower] * (1.0 - weight) + ordered[upper] * weight)


class RunningStat:
    """Streaming count / mean / variance / extrema (Welford's algorithm)."""

    __slots__ = ("count", "mean", "_m2", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        """Fold one sample into the running statistics (O(1))."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def variance(self) -> float:
        """Sample variance (Bessel-corrected); 0 below two samples."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RunningStat(n={self.count}, mean={self.mean:.3f})"


class LatencyRecorder:
    """Latency store with percentile and CDF extraction.

    ``exact=False`` (default): streaming log-bucketed histogram -- constant
    memory, exact count/mean/min/max, quantiles within
    :data:`HISTOGRAM_RELATIVE_ERROR`.  ``exact=True``: keeps every raw
    sample (the pre-histogram behaviour, bit-identical percentiles).
    """

    __slots__ = ("exact", "samples", "count", "_sum", "_min", "_max", "_buckets", "_zeros")

    def __init__(self, exact: Optional[bool] = None) -> None:
        self.exact = exact_stats_default() if exact is None else bool(exact)
        self.samples: Optional[List[float]] = [] if self.exact else None
        self.count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._buckets: Dict[int, int] = {}
        self._zeros = 0

    def record(self, latency: float) -> None:
        """Record one latency sample.

        Exact mode appends to the raw sample list; histogram mode updates
        the running sum/extrema and increments the sample's log bucket
        (``ceil(log(v) / log(gamma))``; zero latencies get a dedicated
        bucket and are reported exactly).
        """
        if latency < 0:
            raise SimulationError(f"negative latency: {latency}")
        self.count += 1
        if self.exact:
            self.samples.append(latency)
            return
        self._sum += latency
        if latency < self._min:
            self._min = latency
        if latency > self._max:
            self._max = latency
        if latency == 0:
            self._zeros += 1
        else:
            index = math.ceil(math.log(latency) / _LOG_GAMMA)
            buckets = self._buckets
            buckets[index] = buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        """Exact arithmetic mean (both modes); 0.0 with no samples."""
        if not self.count:
            return 0.0
        if self.exact:
            return sum(self.samples) / len(self.samples)
        return self._sum / self.count

    @property
    def minimum(self) -> float:
        """Exact smallest recorded latency (both modes); 0.0 when empty."""
        if not self.count:
            return 0.0
        return min(self.samples) if self.exact else self._min

    @property
    def maximum(self) -> float:
        """Exact largest recorded latency (both modes); 0.0 when empty."""
        if not self.count:
            return 0.0
        return max(self.samples) if self.exact else self._max

    # ---------------------------------------------------------------- #
    # quantiles
    # ---------------------------------------------------------------- #

    def p(self, fraction: float) -> float:
        """Latency at quantile ``fraction`` (linear interpolation).

        Bit-exact in exact mode; within
        :data:`HISTOGRAM_RELATIVE_ERROR` of the true order statistic in
        histogram mode.  Raises on an empty recorder.
        """
        if self.exact:
            return percentile(self.samples, fraction)
        if not self.count:
            raise SimulationError("percentile of empty sample set")
        if not 0.0 <= fraction <= 1.0:
            raise SimulationError(f"fraction out of range: {fraction}")
        position = fraction * (self.count - 1)
        lower = int(math.floor(position))
        upper = int(math.ceil(position))
        values = self._order_values((lower, upper))
        if lower == upper:
            return values[lower]
        weight = position - lower
        return values[lower] * (1.0 - weight) + values[upper] * weight

    @property
    def p99(self) -> float:
        """The 99th-percentile latency (the paper's tail metric)."""
        return self.p(0.99)

    @property
    def p999(self) -> float:
        """The 99.9th-percentile latency (fleet-level extreme tail)."""
        return self.p(0.999)

    # ---------------------------------------------------------------- #
    # serialization and merging (fleet roll-ups)
    # ---------------------------------------------------------------- #

    def to_payload(self) -> Dict[str, object]:
        """JSON-safe snapshot of the recorder's state.

        Exact mode exports the raw sample list; histogram mode exports the
        running sum/extrema, the zero-bucket count, and the log buckets
        (keys stringified for JSON).  :meth:`from_payload` inverts either
        form losslessly, so payloads can travel through the result store
        and be merged across devices without losing the documented
        :data:`HISTOGRAM_RELATIVE_ERROR` quantile bound.
        """
        if self.exact:
            return {"mode": "exact", "samples": list(self.samples)}
        return {
            "mode": "histogram",
            "count": self.count,
            "sum": self._sum,
            "min": self._min if self.count else None,
            "max": self._max if self.count else None,
            "zeros": self._zeros,
            "buckets": {str(index): self._buckets[index]
                        for index in sorted(self._buckets)},
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "LatencyRecorder":
        """Rebuild a recorder from :meth:`to_payload` output."""
        mode = payload.get("mode")
        if mode == "exact":
            recorder = cls(exact=True)
            for sample in payload["samples"]:
                recorder.record(float(sample))
            return recorder
        if mode != "histogram":
            raise SimulationError(f"unknown latency payload mode {mode!r}")
        recorder = cls(exact=False)
        recorder.count = int(payload["count"])
        recorder._sum = float(payload["sum"])
        recorder._min = math.inf if payload["min"] is None else float(payload["min"])
        recorder._max = -math.inf if payload["max"] is None else float(payload["max"])
        recorder._zeros = int(payload["zeros"])
        recorder._buckets = {
            int(index): int(count)
            for index, count in dict(payload["buckets"]).items()
        }
        return recorder

    def merge(self, other: "LatencyRecorder") -> None:
        """Fold another recorder's samples into this one (same mode only).

        Merging histograms is exact for count/mean/min/max and preserves
        the 1% relative quantile bound (bucket counts simply add); merging
        exact recorders concatenates the raw samples.  Mixing modes would
        silently change the error bound of the result, so it raises
        :class:`~repro.errors.SimulationError` instead.
        """
        if self.exact != other.exact:
            raise SimulationError(
                "cannot merge exact-mode and histogram-mode recorders"
            )
        if self.exact:
            self.samples.extend(other.samples)
            self.count += other.count
            return
        self.count += other.count
        self._sum += other._sum
        if other._min < self._min:
            self._min = other._min
        if other._max > self._max:
            self._max = other._max
        self._zeros += other._zeros
        buckets = self._buckets
        for index, count in other._buckets.items():
            buckets[index] = buckets.get(index, 0) + count

    def _order_values(self, ranks: Sequence[int]) -> Dict[int, float]:
        """Estimate the 0-based order statistics at ``ranks`` in one walk.

        Each estimate is the geometric midpoint of the log bucket holding
        that order statistic, clamped to the exact observed [min, max]; the
        result is therefore within ``HISTOGRAM_RELATIVE_ERROR`` of the true
        sample value.
        """
        wanted = sorted(set(ranks))
        out: Dict[int, float] = {}
        cumulative = self._zeros
        position = 0
        while position < len(wanted) and wanted[position] < cumulative:
            out[wanted[position]] = 0.0
            position += 1
        if position < len(wanted):
            low, high = self._min, self._max
            for index in sorted(self._buckets):
                cumulative += self._buckets[index]
                if position >= len(wanted) or wanted[position] >= cumulative:
                    continue
                estimate = _GAMMA ** index * _BUCKET_MID
                value = low if estimate < low else (high if estimate > high else estimate)
                while position < len(wanted) and wanted[position] < cumulative:
                    out[wanted[position]] = value
                    position += 1
                if position >= len(wanted):
                    break
        # Ranks beyond the recorded population (defensive; callers clamp).
        for rank in wanted[position:]:
            out[rank] = self._max if self.count else 0.0
        return out

    # ---------------------------------------------------------------- #
    # CDF extraction
    # ---------------------------------------------------------------- #

    def cdf(self, points: int = 100) -> List[Tuple[float, float]]:
        """Return ``points`` (latency, cumulative_fraction) pairs.

        Matches the presentation of the paper's Figure 11: a CDF of request
        latencies from which the p99 tail is read off.
        """
        if not self.count:
            return []
        total = self.count
        fractions = [step / points for step in range(1, points + 1)]
        ranks = [
            min(total - 1, max(0, int(round(fraction * total)) - 1))
            for fraction in fractions
        ]
        if self.exact:
            ordered = sorted(self.samples)
            return [
                (float(ordered[rank]), fraction)
                for rank, fraction in zip(ranks, fractions)
            ]
        values = self._order_values(ranks)
        return [(values[rank], fraction) for rank, fraction in zip(ranks, fractions)]

    def tail_cdf(self, start_fraction: float = 0.99, points: int = 50) -> List[Tuple[float, float]]:
        """CDF zoomed into the tail (Figure 11 plots the 99th percentile)."""
        if not self.count:
            return []
        fractions = [
            min(start_fraction + (1.0 - start_fraction) * step / points, 1.0)
            for step in range(points + 1)
        ]
        if self.exact:
            return [(self.p(fraction), fraction) for fraction in fractions]
        # One bucket walk for every interpolation rank of every fraction,
        # instead of a walk (and sort) per point.
        positions = [fraction * (self.count - 1) for fraction in fractions]
        ranks = set()
        for position in positions:
            ranks.add(int(math.floor(position)))
            ranks.add(int(math.ceil(position)))
        values = self._order_values(sorted(ranks))
        out: List[Tuple[float, float]] = []
        for position, fraction in zip(positions, fractions):
            lower = int(math.floor(position))
            upper = int(math.ceil(position))
            if lower == upper:
                out.append((values[lower], fraction))
            else:
                weight = position - lower
                out.append(
                    (values[lower] * (1.0 - weight) + values[upper] * weight, fraction)
                )
        return out


class UtilizationTracker:
    """Time-weighted busy accounting for a component with on/off phases."""

    def __init__(self) -> None:
        self._busy_since: Dict[str, int] = {}
        self.busy_time: Dict[str, int] = {}

    def mark_busy(self, key: str, now: int) -> None:
        """Open a busy interval for ``key`` (idempotent while open)."""
        if key not in self._busy_since:
            self._busy_since[key] = now

    def mark_idle(self, key: str, now: int) -> None:
        """Close ``key``'s open busy interval and accumulate its duration."""
        started = self._busy_since.pop(key, None)
        if started is not None:
            self.busy_time[key] = self.busy_time.get(key, 0) + (now - started)

    def busy_fraction(self, key: str, horizon: int) -> float:
        """Fraction of ``[0, horizon]`` that ``key`` spent busy (closed
        intervals only), clamped to 1.0."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time.get(key, 0) / horizon)

    def total_busy(self) -> int:
        """Sum of closed busy time across all tracked keys."""
        return sum(self.busy_time.values())
