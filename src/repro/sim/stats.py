"""Statistics primitives for the metrics layer.

Small, dependency-light accumulators:

* :func:`percentile` -- linear-interpolation percentile on a sorted copy,
* :class:`RunningStat` -- streaming count/mean/min/max/variance (Welford),
* :class:`LatencyRecorder` -- stores raw samples, provides percentiles and
  the CDF points needed for the Figure 11 tail-latency plots,
* :class:`UtilizationTracker` -- time-weighted busy fraction of a component.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.errors import SimulationError


def percentile(samples: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile; ``fraction`` in [0, 1]."""
    if not samples:
        raise SimulationError("percentile of empty sample set")
    if not 0.0 <= fraction <= 1.0:
        raise SimulationError(f"fraction out of range: {fraction}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return float(ordered[0])
    position = fraction * (len(ordered) - 1)
    lower = int(math.floor(position))
    upper = int(math.ceil(position))
    if lower == upper:
        return float(ordered[lower])
    weight = position - lower
    return float(ordered[lower] * (1.0 - weight) + ordered[upper] * weight)


class RunningStat:
    """Streaming count / mean / variance / extrema (Welford's algorithm)."""

    __slots__ = ("count", "mean", "_m2", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RunningStat(n={self.count}, mean={self.mean:.3f})"


class LatencyRecorder:
    """Raw-sample latency store with percentile and CDF extraction."""

    def __init__(self) -> None:
        self.samples: List[float] = []

    def record(self, latency: float) -> None:
        if latency < 0:
            raise SimulationError(f"negative latency: {latency}")
        self.samples.append(latency)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        if not self.samples:
            return 0.0
        return sum(self.samples) / len(self.samples)

    def p(self, fraction: float) -> float:
        return percentile(self.samples, fraction)

    @property
    def p99(self) -> float:
        return self.p(0.99)

    def cdf(self, points: int = 100) -> List[Tuple[float, float]]:
        """Return ``points`` (latency, cumulative_fraction) pairs.

        Matches the presentation of the paper's Figure 11: a CDF of request
        latencies from which the p99 tail is read off.
        """
        if not self.samples:
            return []
        ordered = sorted(self.samples)
        total = len(ordered)
        out: List[Tuple[float, float]] = []
        for step in range(1, points + 1):
            fraction = step / points
            index = min(total - 1, max(0, int(round(fraction * total)) - 1))
            out.append((float(ordered[index]), fraction))
        return out

    def tail_cdf(self, start_fraction: float = 0.99, points: int = 50) -> List[Tuple[float, float]]:
        """CDF zoomed into the tail (Figure 11 plots the 99th percentile)."""
        if not self.samples:
            return []
        out: List[Tuple[float, float]] = []
        for step in range(points + 1):
            fraction = start_fraction + (1.0 - start_fraction) * step / points
            fraction = min(fraction, 1.0)
            out.append((self.p(fraction), fraction))
        return out


class UtilizationTracker:
    """Time-weighted busy accounting for a component with on/off phases."""

    def __init__(self) -> None:
        self._busy_since: Dict[str, int] = {}
        self.busy_time: Dict[str, int] = {}

    def mark_busy(self, key: str, now: int) -> None:
        if key not in self._busy_since:
            self._busy_since[key] = now

    def mark_idle(self, key: str, now: int) -> None:
        started = self._busy_since.pop(key, None)
        if started is not None:
            self.busy_time[key] = self.busy_time.get(key, 0) + (now - started)

    def busy_fraction(self, key: str, horizon: int) -> float:
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time.get(key, 0) / horizon)

    def total_busy(self) -> int:
        return sum(self.busy_time.values())
