"""Steady-state detection: stop a measured phase once quantiles converge.

Long synthetic runs spend most of their events confirming quantiles that
stopped moving thousands of requests earlier.  :class:`ConvergenceMonitor`
watches a streaming :class:`~repro.sim.stats.LatencyRecorder` and reports
convergence when the cumulative p50 *and* p99 latencies move by less than a
relative tolerance across consecutive observation windows -- the same 1%
bound DESIGN.md §5 documents for the bucketed histogram itself, so stopping
early never adds error beyond what the recorder already guarantees.

The policy is a *value* with the same ergonomics as
:class:`~repro.sim.faults.FaultSchedule`: frozen, hashable, and
round-trippable through a small text grammar so a run spec can carry one in
its content digest::

    window 100; tolerance 0.01; patience 2; min 200

Clauses may appear in any order and any subset; omitted clauses take the
defaults above.  ``window`` is the number of completed requests between
quantile checks, ``tolerance`` the maximum relative p50/p99 delta that
counts as stable, ``patience`` the number of consecutive stable checks
required, and ``min`` a floor on completed requests before the monitor may
fire (guarding against lucky early agreement on a short prefix).

The device layer (see :meth:`repro.ssd.device.SsdDevice.run_trace`) calls
:meth:`ConvergenceMonitor.observe` after every completed request, halts
request fetch when it returns ``True``, and extrapolates throughput and
energy to the full requested horizon; quantiles are reported from the
simulated prefix unscaled.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import ConfigurationError
from repro.sim.stats import LatencyRecorder

DEFAULT_WINDOW = 100
DEFAULT_TOLERANCE = 0.01
DEFAULT_PATIENCE = 2
DEFAULT_MIN_REQUESTS = 200

_CLAUSE_RE = re.compile(
    r"^\s*(window|tolerance|patience|min)\s+([0-9.eE+-]+)\s*$"
)


@dataclass(frozen=True)
class EarlyStopPolicy:
    """When to declare a measured phase converged.

    Instances are immutable values; :meth:`parse` and :meth:`to_spec` make
    the policy round-trippable through the spec grammar so two policies
    that mean the same thing always serialise to the same canonical string
    (and therefore the same run-spec digest).
    """

    #: Completed requests between consecutive quantile checks.
    window: int = DEFAULT_WINDOW
    #: Maximum relative p50/p99 movement that still counts as stable.
    tolerance: float = DEFAULT_TOLERANCE
    #: Consecutive stable checks required before stopping.
    patience: int = DEFAULT_PATIENCE
    #: Minimum completed requests before the monitor may fire.
    min_requests: int = DEFAULT_MIN_REQUESTS

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ConfigurationError("early-stop window must be >= 1")
        if not 0.0 < self.tolerance < 1.0:
            raise ConfigurationError(
                "early-stop tolerance must be in (0, 1), got "
                f"{self.tolerance!r}"
            )
        if self.patience < 1:
            raise ConfigurationError("early-stop patience must be >= 1")
        if self.min_requests < 1:
            raise ConfigurationError("early-stop min must be >= 1")

    @classmethod
    def parse(cls, spec: str) -> "EarlyStopPolicy":
        """Parse ``"window W; tolerance T; patience P; min M"`` (any subset)."""
        values = {}
        for clause in str(spec).split(";"):
            if not clause.strip():
                continue
            match = _CLAUSE_RE.match(clause)
            if match is None:
                raise ConfigurationError(
                    f"unrecognised early-stop clause: {clause.strip()!r}"
                )
            key, raw = match.group(1), match.group(2)
            if key in values:
                raise ConfigurationError(
                    f"duplicate early-stop clause: {key!r}"
                )
            try:
                values[key] = float(raw) if key == "tolerance" else int(raw)
            except ValueError as error:
                raise ConfigurationError(
                    f"bad early-stop value for {key!r}: {raw!r}"
                ) from error
        return cls(
            window=values.get("window", DEFAULT_WINDOW),
            tolerance=values.get("tolerance", DEFAULT_TOLERANCE),
            patience=values.get("patience", DEFAULT_PATIENCE),
            min_requests=values.get("min", DEFAULT_MIN_REQUESTS),
        )

    def to_spec(self) -> str:
        """Canonical grammar string: all four clauses in fixed order."""
        return (
            f"window {self.window}; tolerance {self.tolerance:g}; "
            f"patience {self.patience}; min {self.min_requests}"
        )


class ConvergenceMonitor:
    """Streaming p50/p99 convergence detector over a latency recorder.

    The monitor samples the recorder's cumulative p50 and p99 every
    ``policy.window`` completions and counts consecutive checks where both
    quantiles moved by at most ``policy.tolerance`` relative to the previous
    check.  Once ``policy.patience`` consecutive stable checks have been
    seen *and* at least ``policy.min_requests`` requests completed,
    :meth:`observe` returns ``True`` exactly once per convergence.

    Cumulative (not per-window) quantiles are compared: each check folds the
    new window into the running histogram, so agreement means the estimate
    itself has stopped moving -- the property the §5 error bound is stated
    over -- rather than two noisy windows happening to agree.
    """

    __slots__ = ("policy", "recorder", "_previous", "_stable", "checks",
                 "converged")

    def __init__(self, policy: EarlyStopPolicy, recorder: LatencyRecorder):
        self.policy = policy
        self.recorder = recorder
        self._previous: Optional[Tuple[float, float]] = None
        self._stable = 0
        #: Number of quantile checks performed so far.
        self.checks = 0
        #: Latched true once convergence has been declared.
        self.converged = False

    def observe(self) -> bool:
        """Called after each completion; ``True`` when the run may stop."""
        if self.converged:
            return False
        count = self.recorder.count
        if count == 0 or count % self.policy.window != 0:
            return False
        current = (self.recorder.p(0.5), self.recorder.p(0.99))
        self.checks += 1
        if self._previous is not None:
            if self._within_tolerance(self._previous, current):
                self._stable += 1
            else:
                self._stable = 0
        self._previous = current
        if (self._stable >= self.policy.patience
                and count >= self.policy.min_requests):
            self.converged = True
            return True
        return False

    def _within_tolerance(self, previous: Tuple[float, float],
                          current: Tuple[float, float]) -> bool:
        """Both quantiles moved by at most ``tolerance``, relatively."""
        for before, after in zip(previous, current):
            if before == 0.0:
                if after != 0.0:
                    return False
                continue
            if abs(after - before) / before > self.policy.tolerance:
                return False
        return True
