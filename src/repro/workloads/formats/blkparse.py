"""blkparse-style text trace format.

``blktrace`` captures Linux block-layer events; ``blkparse`` renders them as
text lines of the shape

``  8,0  1  42  0.000104381  1234  Q  R  7680 + 8 [fio]``

(device ``major,minor``, CPU, sequence, time in seconds, PID, action, RWBS
flags, start sector, ``+``, sector count, process name).  Only *queue*
events (action ``Q``) become records -- they mark request arrival at the
block layer, one per request; all other actions (``D`` issue, ``C``
complete, ``I`` insert, merges, unplugs) and non-event lines (blkparse's
trailing per-CPU summary) are skipped.  Sectors are 512 bytes.  RWBS must
contain ``R`` or ``W``; discard/barrier-only records are skipped.
"""

from __future__ import annotations

import re
from typing import Optional, Sequence

from repro.errors import WorkloadError
from repro.hil.request import IoKind
from repro.workloads.formats.base import TraceFormat, TraceRecord

SECTOR_BYTES = 512
NS_PER_S = 1_000_000_000

#: Event lines start with a ``major,minor`` device token.
_DEVICE = re.compile(r"^\d+,\d+$")
#: Actions that denote one request arriving at the block layer.
_ARRIVAL_ACTIONS = frozenset("Q")
#: All blkparse per-event action codes we recognise (and, except Q, skip).
_EVENT_ACTIONS = frozenset("QDICMFGPSUTXBAR")


class BlkparseFormat(TraceFormat):
    """blkparse text output; queue (``Q``) events become records."""

    name = "blkparse"
    description = "blkparse text output (queue events, 512-byte sectors)"

    def sniff(self, sample_lines: Sequence[str]) -> bool:
        """Match when any sample line is a well-formed blkparse event."""
        for line in sample_lines:
            tokens = line.split()
            if len(tokens) >= 9 and _DEVICE.match(tokens[0]):
                try:
                    float(tokens[3])
                except ValueError:
                    return False
                return True
        return False

    def parse_line(self, line: str, row: int) -> Optional[TraceRecord]:
        """One blkparse event line to a record; non-Q lines are skipped."""
        tokens = line.split()
        if not tokens or not _DEVICE.match(tokens[0]):
            return None  # summary/continuation line, not an event
        if len(tokens) < 7:
            raise WorkloadError(
                f"blkparse event row needs at least 7 fields, got {len(tokens)}"
            )
        action = tokens[5]
        if action not in _ARRIVAL_ACTIONS:
            if set(action) <= _EVENT_ACTIONS:
                return None  # a real event, just not an arrival
            raise WorkloadError(f"unknown blkparse action {action!r}")
        if len(tokens) < 10 or tokens[8] != "+":
            raise WorkloadError(
                "queue event lacks 'sector + count' payload"
            )
        rwbs = tokens[6].upper()
        if "R" in rwbs:
            kind = IoKind.READ
        elif "W" in rwbs:
            kind = IoKind.WRITE
        else:
            return None  # discard/flush-only record: nothing to replay
        seconds = float(tokens[3])
        if seconds < 0:
            raise WorkloadError(f"negative timestamp {tokens[3]}")
        return TraceRecord(
            arrival_ns=int(round(seconds * NS_PER_S)),
            kind=kind,
            offset_bytes=int(tokens[7]) * SECTOR_BYTES,
            size_bytes=int(tokens[9]) * SECTOR_BYTES,
        )
