"""Shared infrastructure for streaming trace-format readers.

A *trace format* knows how to turn one text line of a trace file into a
:class:`TraceRecord` (or to skip it).  Everything else -- file opening with
transparent gzip, chunked line iteration, per-row validation, monotonicity
checking, and row-numbered error reporting -- is shared here so every format
behaves identically on malformed input.

Design rules (see docs/trace-formats.md):

* **Streaming.** Files are consumed line by line; a multi-gigabyte trace is
  never materialized.  Callers bound memory with a record ``limit``.
* **Row-numbered errors.** Every parse failure raises
  :class:`~repro.errors.WorkloadError` naming the file and the 1-based
  physical line number, so a broken row in a million-line trace is findable.
* **Strict monotonicity.** Records must arrive in non-decreasing timestamp
  order.  A streaming reader cannot sort without materializing the file, so
  out-of-order rows are an error rather than a silent reorder.
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import Iterator, NamedTuple, Optional, Sequence, Union

from repro.errors import WorkloadError
from repro.hil.request import IoKind

PathLike = Union[str, Path]

#: Upper bound on a record's byte offset: 2^32 sectors of 512 bytes (2 TiB),
#: the 32-bit-LBA address ceiling.  Every trace family the simulator replays
#: addresses volumes far below it, so an offset beyond the bound is a corrupt
#: row (concatenated digits, shifted columns) rather than a giant device --
#: rejecting it loudly beats silently folding a garbage LBA into the replay
#: footprint.
MAX_OFFSET_BYTES = (1 << 32) * 512


class TraceRecord(NamedTuple):
    """One parsed trace row in canonical units (nanoseconds and bytes).

    ``arrival_ns`` is the raw timestamp converted to nanoseconds but *not*
    normalized: MSR traces carry absolute Windows filetimes, fio logs carry
    milliseconds since job start.  Normalization (shifting the first arrival
    to zero) happens at replay time in
    :class:`~repro.workloads.replay.TraceWorkload`, so the canonical digest
    of a trace is independent of replay knobs.
    """

    arrival_ns: int
    kind: IoKind
    offset_bytes: int
    size_bytes: int


class TraceFormat:
    """Base class for trace file formats.

    Subclasses define :attr:`name`, :attr:`description`, implement
    :meth:`sniff` (format auto-detection from sample lines) and
    :meth:`parse_line` (one text line to one :class:`TraceRecord`, or
    ``None`` to skip the line).  The shared :func:`read_records` driver
    handles everything else.
    """

    #: Registry key and ``--format`` value for this format.
    name: str = ""
    #: One-line human description shown by ``venice-sim trace inspect``.
    description: str = ""

    def sniff(self, sample_lines: Sequence[str]) -> bool:
        """Return True when the sample lines look like this format."""
        raise NotImplementedError

    def parse_line(self, line: str, row: int) -> Optional[TraceRecord]:
        """Parse one line into a record; ``None`` skips the line.

        Implementations raise :class:`WorkloadError` (without file/row
        context -- the driver adds it) on rows that are recognisably of this
        format but malformed.
        """
        raise NotImplementedError


def open_trace_text(path: PathLike) -> io.TextIOBase:
    """Open a trace file for text reading, transparently gunzipping ``.gz``.

    Raises :class:`WorkloadError` when the file is missing or unreadable.
    """
    path = Path(path)
    try:
        if path.suffix == ".gz":
            return gzip.open(path, "rt", encoding="utf-8", errors="replace")
        return open(path, "r", encoding="utf-8", errors="replace")
    except OSError as error:
        raise WorkloadError(f"cannot open trace {path}: {error}")


def sample_lines(path: PathLike, count: int = 32) -> Sequence[str]:
    """First ``count`` non-blank lines of a trace file (for sniffing)."""
    lines = []
    with open_trace_text(path) as handle:
        try:
            for line in handle:
                stripped = line.strip()
                if stripped:
                    lines.append(stripped)
                if len(lines) >= count:
                    break
        except (OSError, EOFError, UnicodeError) as error:
            raise WorkloadError(f"cannot read trace {path}: {error}")
    return lines


def read_records(
    path: PathLike,
    fmt: TraceFormat,
    *,
    limit: Optional[int] = None,
) -> Iterator[TraceRecord]:
    """Stream validated records from ``path`` using format ``fmt``.

    Yields at most ``limit`` records (``None`` = all).  Validation applied
    to every record, each failure raising :class:`WorkloadError` with the
    file name and 1-based row number:

    * parse errors from the format (wrong field count, non-numeric fields,
      unknown I/O kinds),
    * out-of-range LBAs (negative offsets, or offsets beyond the 32-bit
      sector ceiling :data:`MAX_OFFSET_BYTES`) and non-positive sizes,
    * negative timestamps and non-monotonic (decreasing) timestamps,
    * undecodable/corrupt input (including truncated gzip members).

    An input that yields zero records (empty file, or nothing but skipped
    lines) is also an error: an empty trace cannot drive a simulation.
    """
    path = Path(path)
    if limit is not None and limit < 1:
        raise WorkloadError(f"record limit must be >= 1, got {limit}")
    yielded = 0
    last_arrival: Optional[int] = None
    with open_trace_text(path) as handle:
        row = 0
        while True:
            try:
                line = handle.readline()
            except (OSError, EOFError, UnicodeError) as error:
                raise WorkloadError(
                    f"{path}: row {row + 1}: unreadable input ({error})"
                )
            if not line:
                break
            row += 1
            if not line.strip():
                continue
            try:
                record = fmt.parse_line(line, row)
            except WorkloadError as error:
                raise WorkloadError(f"{path}: row {row}: {error}")
            except (ValueError, IndexError) as error:
                raise WorkloadError(
                    f"{path}: row {row}: malformed {fmt.name} row ({error})"
                )
            if record is None:
                continue
            if record.offset_bytes < 0:
                raise WorkloadError(
                    f"{path}: row {row}: out-of-range LBA "
                    f"(negative offset {record.offset_bytes})"
                )
            if record.offset_bytes >= MAX_OFFSET_BYTES:
                raise WorkloadError(
                    f"{path}: row {row}: out-of-range LBA (offset "
                    f"{record.offset_bytes} reaches the 32-bit sector "
                    f"ceiling of {MAX_OFFSET_BYTES} bytes)"
                )
            if record.size_bytes <= 0:
                raise WorkloadError(
                    f"{path}: row {row}: non-positive request size "
                    f"{record.size_bytes}"
                )
            if record.arrival_ns < 0:
                raise WorkloadError(
                    f"{path}: row {row}: negative timestamp {record.arrival_ns}"
                )
            if last_arrival is not None and record.arrival_ns < last_arrival:
                raise WorkloadError(
                    f"{path}: row {row}: non-monotonic timestamp "
                    f"({record.arrival_ns} ns after {last_arrival} ns); "
                    "sort the trace before replaying it"
                )
            last_arrival = record.arrival_ns
            yield record
            yielded += 1
            if limit is not None and yielded >= limit:
                return
    if yielded == 0:
        raise WorkloadError(f"{path}: trace contains no records")
