"""MSR Cambridge block-trace CSV format.

The SNIA-hosted MSR Cambridge traces (the paper's largest workload family:
hm_0, mds_0, proj_3, prxy_0, ...) are header-less CSV rows of

``Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime``

where ``Timestamp`` is a Windows filetime (100-nanosecond ticks since
1601-01-01), ``Type`` is ``Read``/``Write``, and ``Offset``/``Size`` are in
bytes.  ``ResponseTime`` (the recorded service time, also in ticks) is
ignored: replay re-derives service times from the simulated device.  A
leading header row naming the columns is tolerated and skipped.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import WorkloadError
from repro.hil.request import IoKind
from repro.workloads.formats.base import TraceFormat, TraceRecord

#: Windows filetime tick (100 ns) to nanoseconds.
FILETIME_TICK_NS = 100


class MsrFormat(TraceFormat):
    """MSR Cambridge ``Timestamp,Host,Disk,Type,Offset,Size,Response`` CSV."""

    name = "msr"
    description = "MSR Cambridge CSV (filetime ticks, byte offsets)"

    def sniff(self, sample_lines: Sequence[str]) -> bool:
        """Match 7-field CSV rows whose 4th field is Read/Write."""
        rows = 0
        for line in sample_lines:
            fields = line.split(",")
            if len(fields) != 7:
                return False
            if fields[3].strip().lower() in ("read", "write"):
                try:
                    int(fields[0]), int(fields[4]), int(fields[5])
                except ValueError:
                    return False
                rows += 1
            elif fields[0].strip().lower() != "timestamp":  # header row
                return False
        return rows > 0

    def parse_line(self, line: str, row: int) -> Optional[TraceRecord]:
        """One CSV row to a record; the optional header row is skipped."""
        fields = line.strip().split(",")
        if fields[0].strip().lower() == "timestamp":
            if row > 1:
                raise WorkloadError("header row in the middle of the trace")
            return None
        if len(fields) != 7:
            raise WorkloadError(
                f"MSR row needs 7 comma-separated fields, got {len(fields)}"
            )
        kind_text = fields[3].strip().lower()
        if kind_text not in ("read", "write"):
            raise WorkloadError(f"unknown MSR request type {fields[3]!r}")
        return TraceRecord(
            arrival_ns=int(fields[0]) * FILETIME_TICK_NS,
            kind=IoKind.READ if kind_text == "read" else IoKind.WRITE,
            offset_bytes=int(fields[4]),
            size_bytes=int(fields[5]),
        )
