"""Streaming readers for real block-trace file formats.

The paper evaluates nineteen *real* traces; this package lets the simulator
replay the actual archives instead of (or alongside) the synthetic Table 2
approximations.  Supported formats (see docs/trace-formats.md for the
grammars):

* ``msr`` -- MSR Cambridge CSV (SNIA archive; filetime ticks, byte offsets),
* ``fio-log`` -- fio per-I/O logs (``time, value, ddir, bs, offset``),
* ``blkparse`` -- blktrace/blkparse text output (queue events, sectors),
* ``venice-csv`` -- the simulator's own canonical CSV round-trip format.

All readers stream: files are parsed line by line (gzip transparently
decompressed), errors carry 1-based row numbers, and a canonical
format-independent SHA-256 digest (:func:`trace_digest`) identifies a
trace's *content* so run specs and the content-addressed result store stay
sound when traces enter the matrix.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple, Union

from repro.errors import WorkloadError
from repro.workloads.formats.base import (
    PathLike,
    TraceFormat,
    TraceRecord,
    open_trace_text,
    read_records,
    sample_lines,
)
from repro.workloads.formats.blkparse import BlkparseFormat
from repro.workloads.formats.fio import FioLogFormat
from repro.workloads.formats.msr import MsrFormat
from repro.workloads.formats.venice_csv import VeniceCsvFormat

#: Registered formats in sniffing order: the canonical CSV has an exact
#: header match, MSR and fio are field-count/type constrained, blkparse is
#: the loosest and sniffs last.
FORMATS: Dict[str, TraceFormat] = {
    fmt.name: fmt
    for fmt in (VeniceCsvFormat(), MsrFormat(), FioLogFormat(), BlkparseFormat())
}


def format_names() -> Tuple[str, ...]:
    """The registered trace format names, in sniffing order."""
    return tuple(FORMATS)


def format_by_name(name: str) -> TraceFormat:
    """Look up a registered format; raises :class:`WorkloadError` if unknown."""
    fmt = FORMATS.get(name)
    if fmt is None:
        raise WorkloadError(
            f"unknown trace format {name!r}; known: {', '.join(FORMATS)}"
        )
    return fmt


def detect_format(path: PathLike) -> TraceFormat:
    """Auto-detect the format of a trace file from its first lines.

    Raises :class:`WorkloadError` when the file is empty or no registered
    format recognises it.
    """
    lines = sample_lines(path)
    if not lines:
        raise WorkloadError(f"{Path(path)}: trace contains no records")
    for fmt in FORMATS.values():
        if fmt.sniff(lines):
            return fmt
    raise WorkloadError(
        f"{Path(path)}: unrecognised trace format (known formats: "
        f"{', '.join(FORMATS)})"
    )


def iter_trace_records(
    path: PathLike,
    fmt: Optional[Union[str, TraceFormat]] = None,
    *,
    limit: Optional[int] = None,
) -> Iterator[TraceRecord]:
    """Stream validated :class:`TraceRecord`\\ s from a trace file.

    ``fmt`` may be a format name, a :class:`TraceFormat`, or ``None`` to
    auto-detect.  At most ``limit`` records are yielded.
    """
    if fmt is None:
        fmt = detect_format(path)
    elif isinstance(fmt, str):
        fmt = format_by_name(fmt)
    return read_records(path, fmt, limit=limit)


# Digest results keyed by (resolved path, size, mtime_ns, format name):
# spec construction digests the same file once per matrix, not once per
# spec.  The format is part of the key because forcing a different parser
# over the same bytes is a different (possibly failing) record stream.
_DIGEST_CACHE: Dict[Tuple[str, int, int, str], str] = {}

#: Version tag mixed into every trace digest; bump when the canonical record
#: serialisation changes so stale spec digests cannot collide.
DIGEST_SCHEMA = "venice-trace-v1"


def trace_digest(
    path: PathLike, fmt: Optional[Union[str, TraceFormat]] = None
) -> str:
    """Canonical SHA-256 content digest of a trace file.

    The digest covers the *parsed records* (one ``arrival kind offset size``
    line per record), not the file bytes, so it is independent of the
    on-disk format: an MSR CSV, its gzipped copy, and its ``venice-sim
    trace convert`` output all share one digest.  Recording this digest in
    a :class:`~repro.experiments.spec.RunSpec` is what keeps the
    content-addressed result store sound when runs replay files from disk.

    Digesting requires one full streaming parse; results are memoized by
    (path, size, mtime) for the life of the process.
    """
    resolved = Path(path).resolve()
    try:
        stat = resolved.stat()
    except OSError as error:
        raise WorkloadError(f"cannot stat trace {resolved}: {error}")
    if fmt is None:
        fmt = detect_format(resolved)
    elif isinstance(fmt, str):
        fmt = format_by_name(fmt)
    key = (str(resolved), stat.st_size, stat.st_mtime_ns, fmt.name)
    cached = _DIGEST_CACHE.get(key)
    if cached is not None:
        return cached
    digest = hashlib.sha256(DIGEST_SCHEMA.encode("ascii"))
    for record in iter_trace_records(resolved, fmt):
        digest.update(
            b"%d %s %d %d\n"
            % (
                record.arrival_ns,
                record.kind.value.encode("ascii"),
                record.offset_bytes,
                record.size_bytes,
            )
        )
    value = digest.hexdigest()
    _DIGEST_CACHE[key] = value
    return value


#: Environment variable naming a directory of real trace files; the catalog
#: and spec layer prefer `$VENICE_TRACE_DIR/<workload><ext>` over synthetic
#: generation when such a file exists.
TRACE_DIR_ENV = "VENICE_TRACE_DIR"

#: Extensions probed (in order) when resolving a workload name to a file.
TRACE_EXTENSIONS = (
    ".csv",
    ".csv.gz",
    ".trace",
    ".trace.gz",
    ".txt",
    ".txt.gz",
    ".log",
    ".log.gz",
    ".blkparse",
    ".blkparse.gz",
)


def resolve_trace_path(
    workload: str, trace_dir: Optional[PathLike] = None
) -> Optional[Path]:
    """Find a real trace file for a workload name, if one is available.

    Looks for ``<trace_dir>/<workload><ext>`` for each registered extension;
    ``trace_dir`` defaults to the :data:`TRACE_DIR_ENV` environment variable.
    Returns ``None`` when no directory is configured or no file matches --
    the caller falls back to synthetic generation.
    """
    directory = trace_dir if trace_dir is not None else os.environ.get(TRACE_DIR_ENV)
    if not directory:
        return None
    base = Path(directory)
    for extension in TRACE_EXTENSIONS:
        candidate = base / f"{workload}{extension}"
        if candidate.is_file():
            return candidate
    return None


def trace_stem(path: PathLike) -> str:
    """Workload name for a trace file: the stem with ``.gz`` stripped first."""
    path = Path(path)
    if path.suffix == ".gz":
        path = path.with_suffix("")
    return path.stem


__all__ = [
    "FORMATS",
    "DIGEST_SCHEMA",
    "TRACE_DIR_ENV",
    "TRACE_EXTENSIONS",
    "TraceFormat",
    "TraceRecord",
    "detect_format",
    "format_by_name",
    "format_names",
    "iter_trace_records",
    "open_trace_text",
    "read_records",
    "resolve_trace_path",
    "sample_lines",
    "trace_digest",
    "trace_stem",
]
