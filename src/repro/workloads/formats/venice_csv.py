"""The simulator's own canonical CSV trace format.

``arrival_ns,kind,offset_bytes,size_bytes`` with a mandatory header row --
exactly what :func:`repro.workloads.trace.save_trace_csv` writes and
``venice-sim trace convert`` produces.  Because every field is already in
canonical units, this format round-trips losslessly: converting any
supported trace to venice CSV preserves its content digest.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import WorkloadError
from repro.hil.request import IoKind
from repro.workloads.formats.base import TraceFormat, TraceRecord

HEADER = "arrival_ns,kind,offset_bytes,size_bytes"


class VeniceCsvFormat(TraceFormat):
    """Canonical ``arrival_ns,kind,offset_bytes,size_bytes`` CSV."""

    name = "venice-csv"
    description = "canonical venice-sim CSV (nanoseconds, byte offsets)"

    def sniff(self, sample_lines: Sequence[str]) -> bool:
        """Match on the exact canonical header row."""
        return bool(sample_lines) and sample_lines[0].strip() == HEADER

    def parse_line(self, line: str, row: int) -> Optional[TraceRecord]:
        """One CSV row to a record; the header row is required and skipped."""
        stripped = line.strip()
        if row == 1:
            if stripped != HEADER:
                raise WorkloadError(
                    f"expected header {HEADER!r}, got {stripped!r}"
                )
            return None
        fields = stripped.split(",")
        if len(fields) != 4:
            raise WorkloadError(
                f"venice CSV row needs 4 fields, got {len(fields)}"
            )
        return TraceRecord(
            arrival_ns=int(fields[0]),
            kind=IoKind.from_str(fields[1]),
            offset_bytes=int(fields[2]),
            size_bytes=int(fields[3]),
        )
