"""fio per-I/O log format.

fio's ``write_lat_log`` / ``write_bw_log`` family records one row per I/O:

``time, value, data direction, block size, offset[, command priority]``

with ``time`` in milliseconds since job start, ``value`` a latency or
bandwidth sample (ignored here -- replay re-derives timing from the
simulated device), ``data direction`` 0 for reads and 1 for writes (2,
trim, is unsupported by the simulator and rejected), ``block size`` and
``offset`` in bytes.  Older four-column logs omit the offset and cannot be
replayed; they are rejected with a row-numbered error.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import WorkloadError
from repro.hil.request import IoKind
from repro.workloads.formats.base import TraceFormat, TraceRecord

NS_PER_MS = 1_000_000


class FioLogFormat(TraceFormat):
    """fio ``time, value, ddir, bs, offset`` per-I/O log."""

    name = "fio-log"
    description = "fio per-I/O log (time ms, value, direction, size, offset)"

    def sniff(self, sample_lines: Sequence[str]) -> bool:
        """Match comma-separated all-integer rows of 5 or 6 fields."""
        for line in sample_lines:
            fields = [field.strip() for field in line.split(",")]
            if len(fields) not in (5, 6):
                return False
            try:
                values = [int(field) for field in fields]
            except ValueError:
                return False
            if values[2] not in (0, 1, 2):
                return False
        return bool(sample_lines)

    def parse_line(self, line: str, row: int) -> Optional[TraceRecord]:
        """One log row to a record."""
        fields = [field.strip() for field in line.strip().split(",")]
        if len(fields) not in (5, 6):
            raise WorkloadError(
                f"fio log row needs 5 fields (time, value, ddir, bs, offset), "
                f"got {len(fields)}; four-column logs lack offsets and cannot "
                "be replayed"
            )
        time_ms, _value, ddir, size, offset = (int(field) for field in fields[:5])
        if ddir == 0:
            kind = IoKind.READ
        elif ddir == 1:
            kind = IoKind.WRITE
        else:
            raise WorkloadError(
                f"unsupported fio data direction {ddir} (only 0=read, 1=write)"
            )
        return TraceRecord(
            arrival_ns=time_ms * NS_PER_MS,
            kind=kind,
            offset_bytes=offset,
            size_bytes=size,
        )
