"""Workload substrate: traces, synthetic generators, and the paper's catalog.

The paper evaluates nineteen real-world traces (MSR Cambridge, YCSB,
Slacker, SYSTOR '17, YCSB RocksDB) plus six mixes.  The traces themselves
are not redistributable; the generators here synthesise traces matching the
published Table 2 / Table 3 characteristics (read fraction, average request
size, average inter-arrival time) with realistic size and address
distributions -- see DESIGN.md for the substitution argument.

When the real archives *are* available, :mod:`repro.workloads.formats`
parses them (MSR CSV, fio logs, blkparse text) as streams and
:class:`~repro.workloads.replay.TraceWorkload` replays them through the
same interface as the synthetic generators; pointing ``VENICE_TRACE_DIR``
at a directory of trace files makes the catalog prefer real traces with
synthetic fallback (docs/trace-formats.md).
"""

from repro.workloads.trace import Trace, trace_from_rows, load_trace_csv, save_trace_csv
from repro.workloads.synthetic import WorkloadSpec, SyntheticGenerator, AddressPattern
from repro.workloads.catalog import (
    WORKLOAD_CATALOG,
    workload_names,
    spec_by_name,
    generate_workload,
)
from repro.workloads.mixes import MIX_CATALOG, mix_names, generate_mix
from repro.workloads.ycsb import YcsbGenerator
from repro.workloads.replay import TraceWorkload
from repro.workloads.formats import (
    TraceRecord,
    detect_format,
    format_names,
    iter_trace_records,
    resolve_trace_path,
    trace_digest,
)

__all__ = [
    "Trace",
    "trace_from_rows",
    "load_trace_csv",
    "save_trace_csv",
    "WorkloadSpec",
    "SyntheticGenerator",
    "AddressPattern",
    "WORKLOAD_CATALOG",
    "workload_names",
    "spec_by_name",
    "generate_workload",
    "MIX_CATALOG",
    "mix_names",
    "generate_mix",
    "YcsbGenerator",
    "TraceWorkload",
    "TraceRecord",
    "detect_format",
    "format_names",
    "iter_trace_records",
    "resolve_trace_path",
    "trace_digest",
]
