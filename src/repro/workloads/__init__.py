"""Workload substrate: traces, synthetic generators, and the paper's catalog.

The paper evaluates nineteen real-world traces (MSR Cambridge, YCSB,
Slacker, SYSTOR '17, YCSB RocksDB) plus six mixes.  The traces themselves
are not redistributable; the generators here synthesise traces matching the
published Table 2 / Table 3 characteristics (read fraction, average request
size, average inter-arrival time) with realistic size and address
distributions -- see DESIGN.md for the substitution argument.
"""

from repro.workloads.trace import Trace, trace_from_rows, load_trace_csv, save_trace_csv
from repro.workloads.synthetic import WorkloadSpec, SyntheticGenerator, AddressPattern
from repro.workloads.catalog import (
    WORKLOAD_CATALOG,
    workload_names,
    spec_by_name,
    generate_workload,
)
from repro.workloads.mixes import MIX_CATALOG, mix_names, generate_mix
from repro.workloads.ycsb import YcsbGenerator

__all__ = [
    "Trace",
    "trace_from_rows",
    "load_trace_csv",
    "save_trace_csv",
    "WorkloadSpec",
    "SyntheticGenerator",
    "AddressPattern",
    "WORKLOAD_CATALOG",
    "workload_names",
    "spec_by_name",
    "generate_workload",
    "MIX_CATALOG",
    "mix_names",
    "generate_mix",
    "YcsbGenerator",
]
