"""Replay real trace files through the synthetic-generator interface.

:class:`TraceWorkload` is the adapter between the streaming format readers
(:mod:`repro.workloads.formats`) and the simulator: it exposes the same
``generate(count, footprint_bytes)`` surface as
:class:`~repro.workloads.synthetic.SyntheticGenerator`, so the catalog, the
run-spec layer, and the figure harness can swap a real trace in anywhere a
synthetic workload is accepted.

Replay transforms (all deterministic, all recorded in the run spec's
``trace_options`` so cached results stay sound):

* **Arrival normalization** -- the first replayed arrival is shifted to
  t=0 (MSR timestamps are absolute Windows filetimes).
* **Time warp** -- ``time_scale`` multiplies every inter-arrival gap
  (values < 1 compress the trace, > 1 stretch it).  The spec layer's
  pressure acceleration still applies on top, exactly as for synthetic
  traces.
* **LBA remapping** -- recorded offsets rarely fit the simulated device's
  footprint.  ``lba_policy="wrap"`` (default) folds offsets modulo the
  usable range, preserving locality structure; ``"scale"`` linearly rescales
  the trace's address span onto the footprint, preserving relative layout.
  Offsets and sizes are aligned to the 4 KiB sector granularity the
  synthetic generators use.
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.errors import WorkloadError
from repro.hil.request import IoRequest
from repro.workloads.formats import (
    TraceFormat,
    TraceRecord,
    iter_trace_records,
    trace_stem,
)
from repro.workloads.formats.base import PathLike
from repro.workloads.synthetic import SECTOR
from repro.workloads.trace import Trace

#: Valid values of the ``lba_policy`` replay knob.
LBA_POLICIES = ("wrap", "scale")


class TraceWorkload:
    """A real trace file, adapted to the synthetic-generator interface.

    Construct with a path (format auto-detected unless ``fmt`` is given) and
    replay knobs; :meth:`generate` then streams up to ``count`` records and
    materializes them as a :class:`~repro.workloads.trace.Trace` fitted to
    the requested footprint.
    """

    def __init__(
        self,
        path: PathLike,
        *,
        fmt: Optional[Union[str, TraceFormat]] = None,
        name: Optional[str] = None,
        time_scale: float = 1.0,
        lba_policy: str = "wrap",
    ) -> None:
        if time_scale <= 0:
            raise WorkloadError(f"time_scale must be positive: {time_scale}")
        if lba_policy not in LBA_POLICIES:
            raise WorkloadError(
                f"unknown lba_policy {lba_policy!r}; known: "
                f"{', '.join(LBA_POLICIES)}"
            )
        self.path = path
        self.fmt = fmt
        self.name = name or trace_stem(path)
        self.time_scale = float(time_scale)
        self.lba_policy = lba_policy

    # ------------------------------------------------------------------ #

    def records(self, limit: Optional[int] = None) -> List[TraceRecord]:
        """The first ``limit`` validated records of the trace file."""
        return list(iter_trace_records(self.path, self.fmt, limit=limit))

    def generate(self, count: int, footprint_bytes: int) -> Trace:
        """Replay up to ``count`` records into a footprint-fitted trace.

        Mirrors :meth:`SyntheticGenerator.generate
        <repro.workloads.synthetic.SyntheticGenerator.generate>`: the result
        is a :class:`Trace` whose offsets lie in ``[0, footprint_bytes)``,
        sizes are sector-aligned, and arrivals start at zero.  A file with
        fewer than ``count`` records replays in full; an empty file raises
        :class:`WorkloadError`.
        """
        if count < 1:
            raise WorkloadError("need at least one request")
        if footprint_bytes < SECTOR * 4:
            raise WorkloadError(f"footprint too small: {footprint_bytes}")
        records = self.records(limit=count)
        footprint = (footprint_bytes // SECTOR) * SECTOR

        base_arrival = records[0].arrival_ns
        scale = self._address_scale(records, footprint)

        requests: List[IoRequest] = []
        for record in records:
            size = min(
                footprint - SECTOR,
                max(SECTOR, -(-record.size_bytes // SECTOR) * SECTOR),
            )
            offset = self._remap_offset(record.offset_bytes, size, footprint, scale)
            arrival = int(round((record.arrival_ns - base_arrival) * self.time_scale))
            requests.append(
                IoRequest(
                    kind=record.kind,
                    offset_bytes=offset,
                    size_bytes=size,
                    arrival_ns=arrival,
                )
            )
        return Trace(self.name, requests)

    # ------------------------------------------------------------------ #

    def _address_scale(
        self, records: List[TraceRecord], footprint: int
    ) -> Optional[float]:
        """Linear factor for the ``scale`` policy (None under ``wrap``)."""
        if self.lba_policy != "scale":
            return None
        span = max(record.offset_bytes + record.size_bytes for record in records)
        if span <= footprint:
            return 1.0
        return footprint / span

    def _remap_offset(
        self, offset: int, size: int, footprint: int, scale: Optional[float]
    ) -> int:
        """Fit one recorded offset into ``[0, footprint - size]``."""
        if scale is not None:
            offset = int(offset * scale)
        aligned = (offset // SECTOR) * SECTOR
        limit = footprint - size
        if aligned > limit:
            if self.lba_policy == "wrap":
                aligned = aligned % (limit + SECTOR)
                aligned = (aligned // SECTOR) * SECTOR
            aligned = min(aligned, limit)
        return aligned
