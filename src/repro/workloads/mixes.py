"""The six mixed workloads (paper Table 3).

"To evaluate Venice under real-world scenarios, where multiple workloads
access the same SSD, we create mixed workloads by combining two or three
independent storage workloads."  Each constituent runs in its own NVMe
queue (queue_id tags the requester); the merged stream is time-rescaled to
hit the published mix inter-arrival intensity, which Table 3 reports as far
higher than the constituents' own (e.g. mix6 at 3 us).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.config.ssd_config import NS_PER_US
from repro.errors import WorkloadError
from repro.hil.request import IoRequest
from repro.workloads.catalog import generate_workload
from repro.workloads.trace import Trace


@dataclass(frozen=True)
class MixSpec:
    """One Table 3 row."""

    name: str
    constituents: Tuple[str, ...]
    description: str
    avg_interarrival_us: float

    def __post_init__(self) -> None:
        if len(self.constituents) < 2:
            raise WorkloadError(f"{self.name}: a mix needs >= 2 constituents")
        if self.avg_interarrival_us <= 0:
            raise WorkloadError(f"{self.name}: inter-arrival must be positive")


MIX_CATALOG: Dict[str, MixSpec] = {
    spec.name: spec
    for spec in [
        MixSpec(
            "mix1", ("src2_1", "proj_3"),
            "Both workloads are read-intensive", 5.8,
        ),
        MixSpec(
            "mix2", ("src2_1", "proj_3", "YCSB_D"),
            "All three workloads are read-intensive", 8.4,
        ),
        MixSpec(
            "mix3", ("prxy_0", "rsrch_0"),
            "Both workloads are write-intensive", 93,
        ),
        MixSpec(
            "mix4", ("prxy_0", "rsrch_0", "mds_0"),
            "All three workloads are write-intensive", 56,
        ),
        MixSpec(
            "mix5", ("prxy_0", "src2_1"),
            "prxy_0 is write-intensive and src2_1 is read-intensive", 5,
        ),
        MixSpec(
            "mix6", ("prxy_0", "src2_1", "usr_0"),
            "prxy_0 write-intensive, src2_1 read-intensive, usr_0 60/40", 3,
        ),
    ]
}


def mix_names() -> List[str]:
    """All six Table 3 mix names, in the paper's order."""
    return list(MIX_CATALOG)


def generate_mix(
    name: str,
    *,
    count_per_constituent: int,
    footprint_bytes: int,
    seed: int = 42,
    source: str = "synthetic",
) -> Trace:
    """Synthesize a Table 3 mix.

    Each constituent gets a disjoint slice of the footprint (independent
    volumes sharing the SSD) and its own queue id; the merged arrival
    stream is rescaled to the published mix intensity.  ``source`` is
    forwarded to :func:`~repro.workloads.catalog.generate_workload` per
    constituent; it defaults to ``"synthetic"`` (not ``"auto"``) because
    mixes are re-timed compositions -- run specs stay a pure function of
    their recorded fields even when ``VENICE_TRACE_DIR`` is set.
    """
    spec = MIX_CATALOG.get(name)
    if spec is None:
        raise WorkloadError(f"unknown mix {name!r}; known: {', '.join(MIX_CATALOG)}")

    slice_bytes = footprint_bytes // len(spec.constituents)
    if slice_bytes <= 0:
        raise WorkloadError("footprint too small to slice across constituents")

    merged: List[IoRequest] = []
    for queue_id, constituent in enumerate(spec.constituents):
        trace = generate_workload(
            constituent,
            count=count_per_constituent,
            footprint_bytes=slice_bytes,
            seed=seed + queue_id,
            source=source,
        )
        base = queue_id * slice_bytes
        for request in trace:
            merged.append(
                IoRequest(
                    kind=request.kind,
                    offset_bytes=base + (request.offset_bytes % slice_bytes),
                    size_bytes=request.size_bytes,
                    arrival_ns=request.arrival_ns,
                    queue_id=queue_id,
                )
            )

    merged.sort(key=lambda request: request.arrival_ns)
    raw = Trace(spec.name, merged)

    # Rescale the merged stream to the Table 3 intensity.
    current = raw.mean_interarrival_us
    if current > 0:
        factor = spec.avg_interarrival_us / current
        raw = raw.scaled_arrivals(factor, name=spec.name)
    return raw
