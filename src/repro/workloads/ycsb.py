"""YCSB-style key-value workload generator.

The Yahoo! Cloud Serving Benchmark core workloads draw keys from a zipfian
distribution (constant 0.99) over the key space and map each key to a
record; workload B is 95/5 read/update with zipfian keys, workload D reads
the *latest* inserted records.  This generator models the key -> LBA layer
explicitly (record size, key hashing into the device range, a moving insert
frontier for "latest" mode) so key-value workloads can be composed directly
rather than only through Table 2 marginals.
"""

from __future__ import annotations

import enum
from typing import List

from repro.config.ssd_config import KIB, NS_PER_US
from repro.errors import WorkloadError
from repro.hil.request import IoKind, IoRequest
from repro.sim.rng import DeterministicRng
from repro.workloads.trace import Trace


class KeyDistribution(enum.Enum):
    ZIPFIAN = "zipfian"  # workload B: hot keys anywhere
    LATEST = "latest"  # workload D: recency-skewed toward new inserts


class YcsbGenerator:
    """Key-value request generator with explicit key -> LBA mapping."""

    def __init__(
        self,
        *,
        record_count: int,
        record_size_bytes: int = 64 * KIB,
        read_fraction: float = 0.95,
        distribution: KeyDistribution = KeyDistribution.ZIPFIAN,
        zipf_skew: float = 0.99,
        mean_interarrival_us: float = 13.0,
        seed: int = 42,
    ) -> None:
        if record_count < 1:
            raise WorkloadError("record_count must be >= 1")
        if record_size_bytes < 512:
            raise WorkloadError("record_size_bytes unreasonably small")
        if not 0.0 <= read_fraction <= 1.0:
            raise WorkloadError("read_fraction out of [0,1]")
        self.record_count = record_count
        self.record_size_bytes = record_size_bytes
        self.read_fraction = read_fraction
        self.distribution = distribution
        self.zipf_skew = zipf_skew
        self.mean_interarrival_us = mean_interarrival_us
        self._rng = DeterministicRng(seed, stream="ycsb")
        self._insert_frontier = record_count  # next key for inserts (D)

    # ------------------------------------------------------------------ #

    def _key_to_offset(self, key: int) -> int:
        """Hash a key to a record-aligned device offset.

        Key-value stores do not lay keys out in key order; Fibonacci hashing
        spreads adjacent keys across the device like an LSM/hash layout.
        """
        spread = (key * 11400714819323198485) % (2**64)
        slot = spread % max(1, self.record_count)
        return slot * self.record_size_bytes

    def _draw_key(self) -> int:
        if self.distribution is KeyDistribution.LATEST:
            # Recency skew: zipfian over positions counted back from the
            # insert frontier (YCSB's "latest" distribution).
            back = self._rng.zipf_index(self.record_count, self.zipf_skew)
            return max(0, self._insert_frontier - 1 - back)
        return self._rng.zipf_index(self.record_count, self.zipf_skew)

    def generate(self, count: int, name: str = "ycsb") -> Trace:
        """Generate ``count`` key-value requests as a replayable trace.

        Reads draw keys from the configured distribution; writes update
        drawn keys (zipfian mode) or append at the moving insert frontier
        ("latest" mode), exactly as the YCSB core workloads do.
        """
        if count < 1:
            raise WorkloadError("need at least one request")
        requests: List[IoRequest] = []
        clock = 0.0
        mean_gap_ns = self.mean_interarrival_us * NS_PER_US
        for _ in range(count):
            is_read = self._rng.random() < self.read_fraction
            if is_read:
                key = self._draw_key()
            else:
                if self.distribution is KeyDistribution.LATEST:
                    key = self._insert_frontier
                    self._insert_frontier += 1
                else:
                    key = self._draw_key()
            requests.append(
                IoRequest(
                    kind=IoKind.READ if is_read else IoKind.WRITE,
                    offset_bytes=self._key_to_offset(key),
                    size_bytes=self.record_size_bytes,
                    arrival_ns=int(round(clock)),
                )
            )
            clock += self._rng.exponential_gap(mean_gap_ns)
        return Trace(name, requests)

    @property
    def footprint_bytes(self) -> int:
        """Device range the key space maps onto (records x record size)."""
        return self.record_count * self.record_size_bytes
