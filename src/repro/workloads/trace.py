"""Trace container with derived statistics and CSV round-tripping."""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Sequence, Union

from repro.config.ssd_config import NS_PER_US
from repro.errors import WorkloadError
from repro.hil.request import IoKind, IoRequest


@dataclass
class Trace:
    """An ordered list of I/O requests plus identification."""

    name: str
    requests: List[IoRequest]

    def __post_init__(self) -> None:
        if not self.requests:
            raise WorkloadError(f"trace {self.name!r} is empty")
        self.requests.sort(key=lambda request: request.arrival_ns)

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self):
        return iter(self.requests)

    # ------------------------------------------------------------------ #
    # Table 2-style characteristics
    # ------------------------------------------------------------------ #

    @property
    def read_fraction(self) -> float:
        """Fraction of requests that are reads (Table 2 'read %')."""
        return sum(1 for request in self.requests if request.is_read) / len(self)

    @property
    def mean_size_bytes(self) -> float:
        """Average request size in bytes (Table 2 'avg size')."""
        return sum(request.size_bytes for request in self.requests) / len(self)

    @property
    def mean_interarrival_ns(self) -> float:
        """Average inter-request gap in nanoseconds (0.0 below 2 requests)."""
        if len(self.requests) < 2:
            return 0.0
        span = self.requests[-1].arrival_ns - self.requests[0].arrival_ns
        return span / (len(self.requests) - 1)

    @property
    def mean_interarrival_us(self) -> float:
        """Average inter-request gap in microseconds (Table 2 units)."""
        return self.mean_interarrival_ns / NS_PER_US

    @property
    def duration_ns(self) -> int:
        """Arrival time of the last request."""
        return self.requests[-1].arrival_ns

    def characteristics(self) -> dict:
        """Table 2-style summary row (name, count, read %, size, gap)."""
        return {
            "name": self.name,
            "requests": len(self),
            "read_pct": round(100.0 * self.read_fraction, 1),
            "avg_size_kb": round(self.mean_size_bytes / 1024.0, 1),
            "avg_interarrival_us": round(self.mean_interarrival_us, 1),
        }

    def scaled_arrivals(self, factor: float, name: str = "") -> "Trace":
        """New trace with inter-arrival gaps scaled by ``factor`` (<1 is
        more intense).  Used to hit the Table 3 mix intensities."""
        if factor <= 0:
            raise WorkloadError(f"scale factor must be positive: {factor}")
        scaled = [
            IoRequest(
                kind=request.kind,
                offset_bytes=request.offset_bytes,
                size_bytes=request.size_bytes,
                arrival_ns=int(round(request.arrival_ns * factor)),
                queue_id=request.queue_id,
            )
            for request in self.requests
        ]
        return Trace(name or f"{self.name}@x{factor:.3g}", scaled)


def trace_from_rows(
    name: str, rows: Iterable[Sequence], *, time_unit_ns: int = 1
) -> Trace:
    """Build a trace from ``(arrival, kind, offset, size)`` rows."""
    requests = []
    for row in rows:
        if len(row) != 4:
            raise WorkloadError(f"trace row needs 4 fields, got {row!r}")
        arrival, kind, offset, size = row
        requests.append(
            IoRequest(
                kind=kind if isinstance(kind, IoKind) else IoKind.from_str(str(kind)),
                offset_bytes=int(offset),
                size_bytes=int(size),
                arrival_ns=int(arrival) * time_unit_ns,
            )
        )
    return Trace(name, requests)


def save_trace_csv(trace: Trace, path: Union[str, Path]) -> None:
    """Persist a trace as ``arrival_ns,kind,offset_bytes,size_bytes`` rows."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["arrival_ns", "kind", "offset_bytes", "size_bytes"])
        for request in trace.requests:
            writer.writerow(
                [
                    request.arrival_ns,
                    request.kind.value,
                    request.offset_bytes,
                    request.size_bytes,
                ]
            )


def load_trace_csv(path: Union[str, Path], name: str = "") -> Trace:
    """Load a trace saved by :func:`save_trace_csv`."""
    path = Path(path)
    rows = []
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != ["arrival_ns", "kind", "offset_bytes", "size_bytes"]:
            raise WorkloadError(f"unrecognised trace header {header!r} in {path}")
        for row in reader:
            rows.append((int(row[0]), row[1], int(row[2]), int(row[3])))
    return trace_from_rows(name or path.stem, rows)
