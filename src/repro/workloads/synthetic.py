"""Synthetic trace generation from published workload characteristics.

Table 2 publishes, per trace: read percentage, average request size, and
average inter-request arrival time.  The generator reproduces those
marginals exactly-in-expectation with the distribution shapes block traces
exhibit:

* Poisson arrivals (exponential gaps) at the published mean,
* lognormal request sizes (heavily right-skewed) at the published mean,
  rounded to the trace's sector granularity,
* addresses drawn from a configurable pattern -- uniform random over a
  working set, zipfian-hot (YCSB-like), or sequential runs with random
  jumps (enterprise volume scans).

What matters for the path-conflict phenomenon is the *spread of requests
across chips over time*, which these three marginals plus the address
pattern control; see DESIGN.md.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro.config.ssd_config import KIB, NS_PER_US
from repro.errors import WorkloadError
from repro.hil.request import IoKind, IoRequest
from repro.sim.rng import DeterministicRng
from repro.workloads.trace import Trace

SECTOR = 4 * KIB  # request sizes align to 4 KB, the smallest page evaluated


class AddressPattern(enum.Enum):
    RANDOM = "random"  # uniform over the working set
    ZIPFIAN = "zipfian"  # YCSB-style hot keys
    SEQUENTIAL_RUNS = "sequential"  # runs with random jumps


@dataclass(frozen=True)
class WorkloadSpec:
    """Table 2 row + distribution shape knobs.

    ``burst_mean`` / ``intra_burst_gap_us`` shape the arrival process as
    ON-OFF bursts: enterprise block traces (MSR Cambridge in particular) are
    famously bursty, with peak arrival rates orders of magnitude above the
    mean -- applications issue dependent batches of I/O.  Requests arrive in
    geometrically-sized bursts at ``intra_burst_gap_us`` spacing, separated
    by idle gaps sized so the *overall* mean inter-arrival time matches the
    published Table 2 value exactly-in-expectation.  Burstiness is what
    exposes path conflicts; a Poisson stream at these mean rates would
    leave the fabric nearly idle.
    """

    name: str
    read_pct: float
    avg_size_kb: float
    avg_interarrival_us: float
    source: str = "synthetic"
    pattern: AddressPattern = AddressPattern.RANDOM
    working_set_fraction: float = 0.8  # of the target footprint
    sequential_run_length: int = 8  # requests per run for SEQUENTIAL_RUNS
    size_sigma: float = 0.6  # lognormal shape
    zipf_skew: float = 0.99
    burst_mean: float = 64.0  # mean requests per burst (geometric)
    intra_burst_gap_us: float = 1.0  # spacing inside a burst
    burst_extent_bytes: int = 2 << 20  # hot extent each burst clusters on

    def __post_init__(self) -> None:
        if not 0.0 <= self.read_pct <= 100.0:
            raise WorkloadError(f"{self.name}: read_pct out of [0,100]")
        if self.avg_size_kb <= 0:
            raise WorkloadError(f"{self.name}: avg size must be positive")
        if self.avg_interarrival_us <= 0:
            raise WorkloadError(f"{self.name}: inter-arrival must be positive")
        if not 0.0 < self.working_set_fraction <= 1.0:
            raise WorkloadError(f"{self.name}: working set fraction out of (0,1]")
        if self.burst_mean < 1.0:
            raise WorkloadError(f"{self.name}: burst_mean must be >= 1")
        if self.intra_burst_gap_us < 0.0:
            raise WorkloadError(f"{self.name}: intra-burst gap must be >= 0")
        if self.burst_extent_bytes < SECTOR:
            raise WorkloadError(f"{self.name}: burst extent below one sector")

    @property
    def read_fraction(self) -> float:
        """The published read percentage as a [0, 1] fraction."""
        return self.read_pct / 100.0

    def intensified(self, factor: float, name: Optional[str] = None) -> "WorkloadSpec":
        """Spec with inter-arrival time scaled by ``factor``."""
        return replace(
            self,
            name=name or f"{self.name}-x{1 / factor:.2g}",
            avg_interarrival_us=self.avg_interarrival_us * factor,
        )


class SyntheticGenerator:
    """Generates traces from a :class:`WorkloadSpec`."""

    def __init__(self, spec: WorkloadSpec, seed: int = 42) -> None:
        self.spec = spec
        self._rng = DeterministicRng(seed, stream=f"workload:{spec.name}")

    # ------------------------------------------------------------------ #

    def _draw_size(self) -> int:
        raw = self._rng.lognormal(self.spec.avg_size_kb * KIB, self.spec.size_sigma)
        sectors = max(1, round(raw / SECTOR))
        return sectors * SECTOR

    def _draw_kind(self) -> IoKind:
        return (
            IoKind.READ
            if self._rng.random() < self.spec.read_fraction
            else IoKind.WRITE
        )

    def _aligned(self, offset: int) -> int:
        return (offset // SECTOR) * SECTOR

    def _next_gap_ns(self, burst_state: dict) -> float:
        """ON-OFF bursty gap process preserving the Table 2 mean.

        Within a burst: fixed ``intra_burst_gap_us`` spacing.  Between
        bursts: an exponential idle gap whose mean tops the overall mean
        inter-arrival time back up to the published value.  Degenerates to
        plain Poisson when the published mean is at or below the intra-burst
        spacing (the trace is already a continuous burst).
        """
        spec = self.spec
        mean_ns = spec.avg_interarrival_us * NS_PER_US
        intra_ns = spec.intra_burst_gap_us * NS_PER_US
        if mean_ns <= intra_ns or spec.burst_mean <= 1.0:
            # Continuous-burst regime: still rotate hot extents occasionally.
            if self._rng.random() < 1.0 / spec.burst_mean:
                burst_state["extent_base"] = None
            return self._rng.exponential_gap(mean_ns)
        if burst_state["remaining"] > 0:
            burst_state["remaining"] -= 1
            return intra_ns
        # Start a new burst: geometric size with the configured mean, and a
        # fresh hot extent (bursts are spatially local: an application
        # touches one file/extent, not the whole volume).
        size = 1
        continue_probability = 1.0 - 1.0 / spec.burst_mean
        while self._rng.random() < continue_probability:
            size += 1
        burst_state["remaining"] = size - 1
        burst_state["extent_base"] = None
        # Idle gap mean chosen so E[gap] over the whole stream == mean_ns:
        # a burst of B requests contributes (B-1) intra gaps + 1 idle gap.
        idle_mean = spec.burst_mean * (mean_ns - intra_ns) + intra_ns
        return self._rng.exponential_gap(idle_mean)

    def _pick_extent(self, working_set: int, burst_state: dict) -> int:
        """Extent-aligned base of the current burst's hot region."""
        extent = min(self.spec.burst_extent_bytes, working_set)
        extent = max(SECTOR, (extent // SECTOR) * SECTOR)
        buckets = max(1, working_set // extent)
        if self.spec.pattern is AddressPattern.ZIPFIAN:
            bucket = self._rng.zipf_index(buckets, self.spec.zipf_skew)
            # Hash-spread the hot extents across the footprint (key-value
            # stores do not keep hot keys adjacent).
            bucket = (bucket * 2654435761) % buckets
        else:
            bucket = self._rng.randint(0, buckets - 1)
        burst_state["extent_base"] = bucket * extent
        burst_state["extent_size"] = extent
        return burst_state["extent_base"]

    def generate(self, count: int, footprint_bytes: int) -> Trace:
        """``count`` requests over a ``footprint_bytes`` address range."""
        if count < 1:
            raise WorkloadError("need at least one request")
        if footprint_bytes < SECTOR * 4:
            raise WorkloadError(f"footprint too small: {footprint_bytes}")
        spec = self.spec
        working_set = max(SECTOR * 2, int(footprint_bytes * spec.working_set_fraction))

        requests: List[IoRequest] = []
        clock = 0.0
        burst_state = {"remaining": 0, "extent_base": None, "extent_size": SECTOR}
        sequential_cursor = self._aligned(self._rng.randint(0, working_set - SECTOR))
        run_remaining = 0

        for index in range(count):
            if index > 0:
                clock += self._next_gap_ns(burst_state)
            if burst_state["extent_base"] is None:
                self._pick_extent(working_set, burst_state)

            size = self._draw_size()
            max_offset = max(0, working_set - size)

            if spec.pattern is AddressPattern.SEQUENTIAL_RUNS:
                if run_remaining <= 0:
                    sequential_cursor = self._aligned(
                        self._rng.randint(0, max(0, max_offset))
                    )
                    run_remaining = spec.sequential_run_length
                offset = min(sequential_cursor, max_offset)
                sequential_cursor = self._aligned(offset + size)
                if sequential_cursor >= working_set:
                    sequential_cursor = 0
                run_remaining -= 1
            else:
                # RANDOM and ZIPFIAN draw uniformly inside the burst's hot
                # extent; the patterns differ in how extents are chosen.
                base = burst_state["extent_base"]
                extent = burst_state["extent_size"]
                span = max(SECTOR, extent - min(size, extent))
                offset = base + self._aligned(self._rng.randint(0, span - 1))
                offset = min(offset, max_offset)

            requests.append(
                IoRequest(
                    kind=self._draw_kind(),
                    offset_bytes=offset,
                    size_bytes=size,
                    arrival_ns=int(round(clock)),
                )
            )

        return Trace(spec.name, requests)
