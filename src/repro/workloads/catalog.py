"""The nineteen evaluated workloads (paper Table 2).

Every row transcribes the published characteristics:
``(read %, average request size KB, average inter-request arrival time us)``.
Address patterns follow the trace families' known behaviour: MSR Cambridge
volumes are dominated by small random I/O with some sequential runs in the
scan-heavy volumes (src*/proj/web), YCSB B/D are zipfian key-value reads,
Slacker (jenkins/postgres) mixes sequential container pulls with random DB
pages, SYSTOR '17 LUNs are virtual-desktop volumes (random), and the YCSB
RocksDB ssd-* traces are LSM-tree I/O (large sequential compaction reads
in ssd-00, small zipfian point reads in ssd-10).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.errors import WorkloadError
from repro.workloads.formats import resolve_trace_path
from repro.workloads.formats.base import PathLike
from repro.workloads.replay import TraceWorkload
from repro.workloads.synthetic import AddressPattern, SyntheticGenerator, WorkloadSpec
from repro.workloads.trace import Trace


def _spec(
    name: str,
    read_pct: float,
    avg_size_kb: float,
    avg_interarrival_us: float,
    source: str,
    pattern: AddressPattern = AddressPattern.RANDOM,
    **kwargs,
) -> WorkloadSpec:
    return WorkloadSpec(
        name=name,
        read_pct=read_pct,
        avg_size_kb=avg_size_kb,
        avg_interarrival_us=avg_interarrival_us,
        source=source,
        pattern=pattern,
        **kwargs,
    )


WORKLOAD_CATALOG: Dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in [
        # MSR Cambridge [122]
        _spec("hm_0", 36, 8.8, 58, "msr"),
        _spec("mds_0", 12, 9.6, 268, "msr"),
        _spec("proj_3", 95, 9.6, 19, "msr"),
        _spec("prxy_0", 3, 7.2, 242, "msr"),
        _spec("rsrch_0", 9, 9.6, 129, "msr"),
        _spec("src1_0", 56, 43.2, 49, "msr", AddressPattern.SEQUENTIAL_RUNS),
        _spec("src2_1", 98, 59.2, 50, "msr", AddressPattern.SEQUENTIAL_RUNS),
        _spec("usr_0", 40, 22.8, 98, "msr"),
        _spec("wdev_0", 20, 9.2, 162, "msr"),
        _spec("web_1", 54, 29.6, 67, "msr", AddressPattern.SEQUENTIAL_RUNS),
        # YCSB [123]
        _spec("YCSB_B", 99, 65.7, 13, "ycsb", AddressPattern.ZIPFIAN),
        _spec("YCSB_D", 99, 62, 14, "ycsb", AddressPattern.ZIPFIAN),
        # Slacker [124]
        _spec("jenkins", 94, 33.4, 615, "slacker", AddressPattern.SEQUENTIAL_RUNS),
        _spec("postgres", 82, 13.3, 382, "slacker"),
        # SYSTOR '17 [125]
        _spec("LUN0", 76, 20.4, 218, "systor"),
        _spec("LUN2", 73, 16, 320, "systor"),
        _spec("LUN3", 7, 7.7, 3127, "systor"),
        # YCSB RocksDB [126]
        _spec("ssd-00", 91, 90, 5, "rocksdb", AddressPattern.SEQUENTIAL_RUNS),
        _spec("ssd-10", 99, 11.5, 2, "rocksdb", AddressPattern.ZIPFIAN),
    ]
}


def workload_names() -> List[str]:
    """All nineteen Table 2 trace names, in the paper's order."""
    return list(WORKLOAD_CATALOG)


def spec_by_name(name: str) -> WorkloadSpec:
    """Look up a Table 2 workload spec; unknown names raise."""
    spec = WORKLOAD_CATALOG.get(name)
    if spec is None:
        raise WorkloadError(
            f"unknown workload {name!r}; known: {', '.join(WORKLOAD_CATALOG)}"
        )
    return spec


def generate_workload(
    name: str,
    *,
    count: int,
    footprint_bytes: int,
    seed: int = 42,
    source: Union[str, PathLike] = "auto",
) -> Trace:
    """Produce one of the Table 2 workloads, real-trace-preferring.

    ``source`` selects where the requests come from:

    * ``"auto"`` (default) -- replay the real trace file
      ``$VENICE_TRACE_DIR/<name>.<ext>`` when one exists (see
      :func:`repro.workloads.formats.resolve_trace_path`), else synthesise
      from the published Table 2 characteristics,
    * ``"synthetic"`` -- always synthesise (the run-spec layer pins this
      unless the spec itself records a trace file, so cached results never
      depend on the environment at execution time),
    * any other value -- treat it as a path to a trace file and replay it.

    Synthetic generation requires ``name`` to be a catalog entry; replay
    accepts any name (it only labels the resulting trace).
    """
    if source == "auto":
        resolved: Optional[PathLike] = resolve_trace_path(name)
    elif source == "synthetic":
        resolved = None
    else:
        resolved = source
    if resolved is not None:
        return TraceWorkload(resolved, name=name).generate(count, footprint_bytes)
    generator = SyntheticGenerator(spec_by_name(name), seed=seed)
    return generator.generate(count, footprint_bytes)
