"""Per-run metric collection and the RunResult record."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.config.ssd_config import NS_PER_S
from repro.errors import SimulationError
from repro.hil.request import IoRequest
from repro.sim.stats import LatencyRecorder, exact_stats_default


@dataclass
class RunResult:
    """Everything one simulation run produces, ready for the figure code.

    ``latency_histogram`` is an optional
    :meth:`~repro.sim.stats.LatencyRecorder.to_payload` snapshot of the
    run's full latency distribution; fleet member runs carry it (via the
    ``export_histogram`` device kwarg) so cross-device percentiles can be
    computed by merging recorders instead of re-simulating.  ``None`` --
    the default -- is omitted from :meth:`to_dict` entirely, keeping
    ordinary results byte-identical to pre-fleet versions.

    ``tenant_histograms`` is the per-tenant analogue (tenant id, as a
    string key, to recorder payload), exported by QoS-bearing fleet
    members (the ``export_tenant_histograms`` device kwarg) so the fleet
    roll-up can chart victim-vs-burst percentiles by merging per-tenant
    recorders across devices.  Same contract: ``None`` is omitted from
    :meth:`to_dict`, keeping QoS-free results byte-identical.
    """

    design: str
    config_name: str
    workload: str
    requests_completed: int
    execution_time_ns: int
    iops: float
    mean_latency_ns: float
    p99_latency_ns: float
    conflict_fraction: float  # fraction of requests that hit a path conflict
    read_fraction: float
    energy_mj: float = 0.0
    average_power_mw: float = 0.0
    latency_cdf: List[Tuple[float, float]] = field(default_factory=list)
    tail_cdf: List[Tuple[float, float]] = field(default_factory=list)
    extra: Dict[str, float] = field(default_factory=dict)
    latency_histogram: Optional[Dict[str, object]] = None
    tenant_histograms: Optional[Dict[str, Dict[str, object]]] = None

    def speedup_over(self, baseline: "RunResult") -> float:
        """Speedup in overall execution time over a baseline run (§5)."""
        if self.execution_time_ns <= 0:
            raise SimulationError("run has no execution time")
        return baseline.execution_time_ns / self.execution_time_ns

    def to_dict(self) -> Dict[str, object]:
        """Lossless plain-data form (JSON-safe); ``from_dict`` inverts it.

        The ``latency_histogram`` key appears only when the run exported
        one: omitting the ``None`` default keeps every pre-existing store
        entry and result payload bit-identical to a version of the library
        without fleet support.
        """
        payload: Dict[str, object] = {
            "design": self.design,
            "config_name": self.config_name,
            "workload": self.workload,
            "requests_completed": self.requests_completed,
            "execution_time_ns": self.execution_time_ns,
            "iops": self.iops,
            "mean_latency_ns": self.mean_latency_ns,
            "p99_latency_ns": self.p99_latency_ns,
            "conflict_fraction": self.conflict_fraction,
            "read_fraction": self.read_fraction,
            "energy_mj": self.energy_mj,
            "average_power_mw": self.average_power_mw,
            "latency_cdf": [list(point) for point in self.latency_cdf],
            "tail_cdf": [list(point) for point in self.tail_cdf],
            "extra": dict(self.extra),
        }
        if self.latency_histogram is not None:
            payload["latency_histogram"] = dict(self.latency_histogram)
        if self.tenant_histograms is not None:
            payload["tenant_histograms"] = {
                tenant: dict(histogram)
                for tenant, histogram in self.tenant_histograms.items()
            }
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RunResult":
        """Rebuild a result from ``to_dict`` output (e.g. a store entry)."""
        histogram = payload.get("latency_histogram")
        tenant_histograms = payload.get("tenant_histograms")
        return cls(
            design=str(payload["design"]),
            config_name=str(payload["config_name"]),
            workload=str(payload["workload"]),
            requests_completed=int(payload["requests_completed"]),
            execution_time_ns=int(payload["execution_time_ns"]),
            iops=float(payload["iops"]),
            mean_latency_ns=float(payload["mean_latency_ns"]),
            p99_latency_ns=float(payload["p99_latency_ns"]),
            conflict_fraction=float(payload["conflict_fraction"]),
            read_fraction=float(payload["read_fraction"]),
            energy_mj=float(payload["energy_mj"]),
            average_power_mw=float(payload["average_power_mw"]),
            latency_cdf=[tuple(point) for point in payload["latency_cdf"]],
            tail_cdf=[tuple(point) for point in payload["tail_cdf"]],
            extra={str(k): float(v) for k, v in dict(payload["extra"]).items()},
            latency_histogram=dict(histogram) if histogram is not None else None,
            tenant_histograms=(
                {
                    str(tenant): dict(entry)
                    for tenant, entry in dict(tenant_histograms).items()
                }
                if tenant_histograms is not None
                else None
            ),
        )

    def throughput_normalized_to(self, reference: "RunResult") -> float:
        if reference.iops <= 0:
            raise SimulationError("reference run has zero IOPS")
        return self.iops / reference.iops


class MetricsCollector:
    """Accumulates per-request results during a run.

    ``exact_stats`` selects the latency-recorder mode: ``False`` (the
    default) streams samples into O(1)-memory log-bucketed histograms whose
    percentiles/CDF carry the documented 1% relative bound; ``True`` keeps
    every raw sample for bit-exact percentiles.  ``None`` defers to the
    ``VENICE_EXACT_STATS`` environment switch.

    ``track_tenants`` additionally streams each tenant-tagged request's
    latency into a per-tenant recorder (same mode), so QoS-bearing fleet
    members can export per-tenant histograms; off (the default) the tenant
    tag is ignored and results are unchanged.
    """

    def __init__(
        self,
        exact_stats: Optional[bool] = None,
        track_tenants: bool = False,
    ) -> None:
        self.exact_stats = (
            exact_stats_default() if exact_stats is None else bool(exact_stats)
        )
        self.latencies = LatencyRecorder(exact=self.exact_stats)
        self.read_latencies = LatencyRecorder(exact=self.exact_stats)
        self.write_latencies = LatencyRecorder(exact=self.exact_stats)
        self.track_tenants = bool(track_tenants)
        self.tenant_latencies: Dict[int, LatencyRecorder] = {}
        self.requests_completed = 0
        self.reads_completed = 0
        self.conflicted_requests = 0
        self.waited_requests = 0
        self.first_arrival_ns: Optional[int] = None
        self.last_completion_ns: int = 0

    def record_request(self, request: IoRequest) -> None:
        latency = request.latency_ns
        if latency is None:
            raise SimulationError(f"recording incomplete request {request!r}")
        self.requests_completed += 1
        self.latencies.record(latency)
        if self.track_tenants and request.tenant is not None:
            recorder = self.tenant_latencies.get(request.tenant)
            if recorder is None:
                recorder = LatencyRecorder(exact=self.exact_stats)
                self.tenant_latencies[request.tenant] = recorder
            recorder.record(latency)
        if request.is_read:
            self.reads_completed += 1
            self.read_latencies.record(latency)
        else:
            self.write_latencies.record(latency)
        if request.path_conflict:
            self.conflicted_requests += 1
        if request.waited_for_path:
            self.waited_requests += 1
        if self.first_arrival_ns is None or request.arrival_ns < self.first_arrival_ns:
            self.first_arrival_ns = request.arrival_ns
        assert request.completed_ns is not None
        if request.completed_ns > self.last_completion_ns:
            self.last_completion_ns = request.completed_ns

    # ------------------------------------------------------------------ #

    @property
    def execution_time_ns(self) -> int:
        """Overall execution time: first arrival to last completion."""
        if self.first_arrival_ns is None:
            return 0
        return self.last_completion_ns - self.first_arrival_ns

    @property
    def iops(self) -> float:
        horizon = self.execution_time_ns
        if horizon <= 0:
            return 0.0
        return self.requests_completed * NS_PER_S / horizon

    @property
    def conflict_fraction(self) -> float:
        if self.requests_completed == 0:
            return 0.0
        return self.conflicted_requests / self.requests_completed

    def finalize(
        self,
        design: str,
        config_name: str,
        workload: str,
        *,
        energy_mj: float = 0.0,
        average_power_mw: float = 0.0,
        with_cdf: bool = False,
        with_histogram: bool = False,
        extra: Optional[Dict[str, float]] = None,
        allow_empty: bool = False,
    ) -> RunResult:
        histogram = self.latencies.to_payload() if with_histogram else None
        # Emitted only when tenant tracking was armed *and* recorded
        # something: QoS-free runs keep the key out of their payloads.
        tenant_histograms = (
            {
                str(tenant): self.tenant_latencies[tenant].to_payload()
                for tenant in sorted(self.tenant_latencies)
            }
            if with_histogram and self.tenant_latencies
            else None
        )
        if self.requests_completed == 0:
            # Zero completions is a simulation bug on a healthy device, but
            # a legitimate outcome of a faulted run where every request
            # blocked on a failed component: ``allow_empty`` produces an
            # all-zero result so failure sweeps can chart a total stall.
            if not allow_empty:
                raise SimulationError("finalize with no completed requests")
            return RunResult(
                design=design,
                config_name=config_name,
                workload=workload,
                requests_completed=0,
                execution_time_ns=0,
                iops=0.0,
                mean_latency_ns=0.0,
                p99_latency_ns=0.0,
                conflict_fraction=0.0,
                read_fraction=0.0,
                energy_mj=energy_mj,
                average_power_mw=average_power_mw,
                extra=dict(extra or {}),
                latency_histogram=histogram,
                tenant_histograms=tenant_histograms,
            )
        return RunResult(
            design=design,
            config_name=config_name,
            workload=workload,
            requests_completed=self.requests_completed,
            execution_time_ns=self.execution_time_ns,
            iops=self.iops,
            mean_latency_ns=self.latencies.mean,
            p99_latency_ns=self.latencies.p99,
            conflict_fraction=self.conflict_fraction,
            read_fraction=(
                self.reads_completed / self.requests_completed
            ),
            energy_mj=energy_mj,
            average_power_mw=average_power_mw,
            latency_cdf=self.latencies.cdf() if with_cdf else [],
            tail_cdf=self.latencies.tail_cdf() if with_cdf else [],
            extra=dict(extra or {}),
            latency_histogram=histogram,
            tenant_histograms=tenant_histograms,
        )
