"""Run metrics: the five quantities the paper reports (§5 Metrics).

1. performance as speedup in overall execution time over Baseline SSD,
2. SSD throughput in IOPS,
3. tail latency at the 99th percentile,
4. power / energy consumption,
5. power and area overheads (in :mod:`repro.power`).
"""

from repro.metrics.collector import MetricsCollector, RunResult

__all__ = ["MetricsCollector", "RunResult"]
