"""Transaction service pipeline (fabric-agnostic).

The pipeline realises the Figure 3 service timeline for every design:

* READ:    [path: CMD] -> [die: tR] -> [path: data out] -> [ECC decode]
* PROGRAM: [ECC encode] -> [path: CMD + data in] -> [die: tPROG]
* ERASE:   [path: CMD] -> [die: tBERS]

The die is acquired before the command is sent (a command to a busy die
would just sit in the chip's queue) and held through the flash operation;
path resources are held only during CMD/data phases, which is exactly what
creates the path-conflict window the paper studies.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.config.ssd_config import SsdConfig
from repro.controller.ecc import EccEngine
from repro.controller.transaction import FlashTransaction, TransactionKind
from repro.errors import SimulationError
from repro.interconnect.base import Fabric, TransferOutcome
from repro.nand.array import FlashArray
from repro.sim.engine import Engine


class TransactionPipeline:
    """Drives flash transactions end to end over a given fabric."""

    def __init__(
        self,
        engine: Engine,
        config: SsdConfig,
        array: FlashArray,
        fabric: Fabric,
        ecc: Optional[EccEngine] = None,
        strict_reads: bool = False,
    ) -> None:
        self.engine = engine
        self.config = config
        self.array = array
        self.fabric = fabric
        self.ecc = ecc if ecc is not None else EccEngine(config.ecc_latency_ns)
        self.strict_reads = strict_reads
        self.transactions_completed = 0
        self.reads_completed = 0
        self.programs_completed = 0
        self.erases_completed = 0
        # Operations serviced by a failed die (fault injection): reads take
        # the full re-read ladder (1 + ecc.max_retries sense passes, the FC
        # "retries the read process" with shifted reference voltages);
        # programs/erases take one status-fail retry (x2).  See DESIGN.md §7.
        self.degraded_ops = 0

    # ------------------------------------------------------------------ #

    def service(self, transaction: FlashTransaction) -> Generator:
        """Process generator: drive one transaction to completion.

        The hot read/program phases live inline rather than in ``yield
        from`` sub-generators: a delegating frame is re-traversed on every
        resume, which is pure overhead on the simulator's hottest path.
        Erases are rare enough to stay delegated.
        """
        engine = self.engine
        transaction.issued_at = engine.now
        kind = transaction.kind
        if kind is TransactionKind.READ:
            die = self.array.die_for(transaction.primary)
            command = transaction.to_command()
            die_requested = engine.now
            die_lease = yield die.resource.acquire()
            transaction.die_wait_ns += engine.now - die_requested

            # Command phase on the path; the die is held so the chip starts
            # the sensing operation as soon as the command lands.
            outcome = yield from self.fabric.transfer(
                transaction.chip, 0, include_command=True
            )
            self._absorb(transaction, outcome)

            operation_ns = die.operation_latency_ns(command)
            if die.failed:
                operation_ns *= 1 + self.ecc.max_retries
                self.degraded_ops += 1
            yield operation_ns
            die.apply_command(command, strict_reads=self.strict_reads)
            die_lease.release()

            # Data-out phase: a second path traversal (Venice reserves a
            # second circuit here; the baseline re-arbitrates the channel).
            outcome = yield from self.fabric.transfer(
                transaction.chip, transaction.payload_bytes, include_command=False
            )
            self._absorb(transaction, outcome)

            decode = self.ecc.decode_latency_ns(transaction.plane_count)
            if decode:
                yield decode
            self.reads_completed += 1
        elif kind is TransactionKind.PROGRAM:
            die = self.array.die_for(transaction.primary)
            command = transaction.to_command()

            encode = self.ecc.encode_latency_ns(transaction.plane_count)
            if encode:
                yield encode

            die_requested = engine.now
            die_lease = yield die.resource.acquire()
            transaction.die_wait_ns += engine.now - die_requested

            outcome = yield from self.fabric.transfer(
                transaction.chip, transaction.payload_bytes, include_command=True
            )
            self._absorb(transaction, outcome)

            operation_ns = die.operation_latency_ns(command)
            if die.failed:
                operation_ns *= 2
                self.degraded_ops += 1
            yield operation_ns
            die.apply_command(command)
            die_lease.release()
            self.programs_completed += 1
        elif kind is TransactionKind.ERASE:
            yield from self._service_erase(transaction)
            self.erases_completed += 1
        else:  # pragma: no cover - exhaustive enum
            raise SimulationError(f"unknown transaction kind {transaction.kind}")
        transaction.completed_at = self.engine.now
        self.transactions_completed += 1
        return transaction

    # ------------------------------------------------------------------ #

    def _absorb(self, transaction: FlashTransaction, outcome: TransferOutcome) -> None:
        transaction.waited_for_path = transaction.waited_for_path or outcome.waited
        transaction.path_conflict = transaction.path_conflict or outcome.conflicted
        transaction.hops_used = max(transaction.hops_used, outcome.hops)

    def _service_erase(self, transaction: FlashTransaction) -> Generator:
        die = self.array.die_for(transaction.primary)
        command = transaction.to_command()

        die_requested = self.engine.now
        die_lease = yield die.resource.acquire()
        transaction.die_wait_ns += self.engine.now - die_requested

        outcome = yield from self.fabric.transfer(
            transaction.chip, 0, include_command=True
        )
        self._absorb(transaction, outcome)

        operation_ns = die.operation_latency_ns(command)
        if die.failed:
            operation_ns *= 2
            self.degraded_ops += 1
        yield operation_ns
        die.apply_command(command)
        die_lease.release()
