"""Flash controller layer: transactions and their service pipeline.

The flash controller (paper §2.2) sits between the FTL and the flash chips:
it issues commands over the communication fabric, runs the ECC/randomizer
pipeline, and serialises die occupancy.  The transaction service processes
here are fabric-agnostic -- the same pipeline drives all six designs.
"""

from repro.controller.transaction import (
    FlashTransaction,
    TransactionKind,
    TransactionSource,
)
from repro.controller.pipeline import TransactionPipeline
from repro.controller.ecc import EccEngine
from repro.controller.randomizer import DataRandomizer

__all__ = [
    "FlashTransaction",
    "TransactionKind",
    "TransactionSource",
    "TransactionPipeline",
    "EccEngine",
    "DataRandomizer",
]
