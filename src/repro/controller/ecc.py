"""ECC engine model.

The flash controller ECC-encodes write data and decodes/corrects read data
(paper §2.2).  At the simulation's transaction granularity the pipeline cost
is a fixed per-page latency; the engine also models the (rare) decode-retry
path -- "the FC retries the read process if ECC decoding fails" -- with a
deterministic pseudo-random failure injector so the retry machinery is
exercised by tests without perturbing benchmark runs (rate defaults to 0).
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.sim.rng import DeterministicRng


class EccEngine:
    """Fixed-latency ECC encode/decode with optional failure injection."""

    def __init__(
        self,
        latency_ns: int,
        *,
        decode_failure_rate: float = 0.0,
        max_retries: int = 3,
        seed: int = 42,
    ) -> None:
        if latency_ns < 0:
            raise ConfigurationError("ECC latency must be >= 0")
        if not 0.0 <= decode_failure_rate < 1.0:
            raise ConfigurationError("decode_failure_rate out of [0, 1)")
        if max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        self.latency_ns = latency_ns
        self.decode_failure_rate = decode_failure_rate
        self.max_retries = max_retries
        self._rng = DeterministicRng(seed, stream="ecc")
        self.encodes = 0
        self.decodes = 0
        self.decode_retries = 0
        self.uncorrectable = 0
        # Transient read-error bursts (fault injection): a LIFO of the rates
        # that were active before each begin_burst, so nested bursts restore
        # deterministically.
        self._burst_stack: list = []
        self.bursts_started = 0

    def begin_burst(self, rate: float) -> None:
        """Enter a read-error burst: raise the decode-failure rate to ``rate``.

        The previous rate is pushed so :meth:`end_burst` restores it; bursts
        nest LIFO.  Rate draws come from the engine's deterministic ECC
        stream, so a burst perturbs latency reproducibly (same schedule +
        same seed = same retries).
        """
        if not 0.0 <= rate < 1.0:
            raise ConfigurationError(f"burst rate out of [0, 1): {rate}")
        self._burst_stack.append(self.decode_failure_rate)
        self.decode_failure_rate = rate
        self.bursts_started += 1

    def end_burst(self) -> None:
        """Leave the most recent burst, restoring the prior failure rate."""
        if not self._burst_stack:
            raise ConfigurationError("end_burst without a matching begin_burst")
        self.decode_failure_rate = self._burst_stack.pop()

    def encode_latency_ns(self, pages: int = 1) -> int:
        """Encoding cost charged before a program's data transfer."""
        self.encodes += pages
        return self.latency_ns * pages

    def decode_latency_ns(self, pages: int = 1) -> int:
        """Decoding cost charged after a read's data transfer.

        Includes any injected decode retries: each retry costs one extra
        decode pass.  Uncorrectable pages (retries exhausted) are counted
        but still returned to the host -- the simulator models latency, not
        data loss.
        """
        total = 0
        for _ in range(pages):
            self.decodes += 1
            passes = 1
            while (
                self.decode_failure_rate > 0.0
                and passes <= self.max_retries
                and self._rng.random() < self.decode_failure_rate
            ):
                self.decode_retries += 1
                passes += 1
            if passes > self.max_retries and self.decode_failure_rate > 0.0:
                self.uncorrectable += 1
            total += self.latency_ns * passes
        return total
