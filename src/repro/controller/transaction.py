"""Flash transactions: the unit of work between FTL and flash chips."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.nand.address import ChipAddress, PhysicalPageAddress
from repro.nand.commands import FlashCommand, FlashCommandKind

_transaction_ids = itertools.count()


class TransactionKind(enum.Enum):
    READ = "read"
    PROGRAM = "program"
    ERASE = "erase"

    @property
    def command_kind(self) -> FlashCommandKind:
        return FlashCommandKind(self.value)


class TransactionSource(enum.Enum):
    HOST = "host"  # created for a host I/O request
    GC = "gc"  # created by garbage collection (valid-page migration)
    WEAR = "wear"  # created by wear-leveling block swaps
    PRECONDITION = "precondition"  # timing-free preconditioning


@dataclass
class FlashTransaction:
    """One die-level operation travelling through the SSD.

    ``addresses`` carries one entry per plane (multi-plane operations bundle
    several same-offset pages, §2.1).  ``payload_bytes`` is the total data
    moved over the fabric -- page size times plane count for reads/programs,
    zero for erases.
    """

    kind: TransactionKind
    addresses: List[PhysicalPageAddress]
    payload_bytes: int
    source: TransactionSource = TransactionSource.HOST
    transaction_id: int = field(default_factory=lambda: next(_transaction_ids))
    # filled in by the pipeline
    issued_at: Optional[int] = None
    completed_at: Optional[int] = None
    waited_for_path: bool = False
    path_conflict: bool = False
    die_wait_ns: int = 0
    hops_used: int = 0

    def __post_init__(self) -> None:
        if not self.addresses:
            raise ConfigurationError("transaction needs at least one address")
        if self.payload_bytes < 0:
            raise ConfigurationError("negative payload")
        first = self.addresses[0]
        for address in self.addresses:
            if address.chip != first.chip or address.die != first.die:
                raise ConfigurationError(
                    "all addresses of a transaction must target one die"
                )

    @property
    def primary(self) -> PhysicalPageAddress:
        return self.addresses[0]

    @property
    def chip(self) -> ChipAddress:
        return self.primary.chip

    @property
    def plane_count(self) -> int:
        return len(self.addresses)

    @property
    def is_multi_plane(self) -> bool:
        return len(self.addresses) > 1

    @property
    def latency_ns(self) -> Optional[int]:
        if self.issued_at is None or self.completed_at is None:
            return None
        return self.completed_at - self.issued_at

    def to_command(self) -> FlashCommand:
        return FlashCommand(self.kind.command_kind, list(self.addresses))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        a = self.primary
        return (
            f"Txn#{self.transaction_id}({self.kind.value}, "
            f"chip=({a.chip.channel},{a.chip.way}), planes={self.plane_count}, "
            f"src={self.source.value})"
        )
