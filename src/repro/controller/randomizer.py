"""Data randomizer model.

Flash controllers scramble write data to avoid worst-case cell interference
patterns and descramble on reads (paper §2.2).  Randomization is an XOR with
a seeded pseudo-random sequence: zero added latency in modern controllers
(it is pipelined with the transfer), so the model tracks invocations and
provides the actual scrambling transform for protocol-level tests.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class DataRandomizer:
    """LFSR-sequence XOR scrambler keyed by physical page address."""

    POLYNOMIAL = 0x80000057  # x^32 + x^7 + x^5 + x^3 + x^2 + x + 1 (Fibonacci form)

    def __init__(self, base_seed: int = 0xACE1) -> None:
        if base_seed == 0:
            raise ConfigurationError("randomizer seed must be non-zero")
        self.base_seed = base_seed
        self.scrambles = 0
        self.descrambles = 0

    def _keystream(self, seed: int, length: int) -> bytes:
        state = seed & 0xFFFFFFFF or 1
        out = bytearray()
        for _ in range(length):
            byte = 0
            for _ in range(8):
                lsb = state & 1
                state >>= 1
                if lsb:
                    state ^= self.POLYNOMIAL
                byte = (byte << 1) | lsb
            out.append(byte)
        return bytes(out)

    def page_seed(self, page_flat_index: int) -> int:
        """Per-page seed so repeated data lands as different cell patterns."""
        mixed = (self.base_seed ^ (page_flat_index * 0x9E3779B1)) & 0xFFFFFFFF
        return mixed or 1

    def scramble(self, data: bytes, page_flat_index: int) -> bytes:
        self.scrambles += 1
        key = self._keystream(self.page_seed(page_flat_index), len(data))
        return bytes(a ^ b for a, b in zip(data, key))

    def descramble(self, data: bytes, page_flat_index: int) -> bytes:
        self.descrambles += 1
        key = self._keystream(self.page_seed(page_flat_index), len(data))
        return bytes(a ^ b for a, b in zip(data, key))
