"""Host I/O request representation."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import WorkloadError

_request_ids = itertools.count()


class IoKind(enum.Enum):
    READ = "read"
    WRITE = "write"

    @classmethod
    def from_str(cls, text: str) -> "IoKind":
        normalized = text.strip().lower()
        if normalized in ("r", "read", "rd", "0"):
            return cls.READ
        if normalized in ("w", "write", "wr", "1"):
            return cls.WRITE
        raise WorkloadError(f"unknown I/O kind {text!r}")


@dataclass
class IoRequest:
    """One host I/O request as replayed from a trace."""

    kind: IoKind
    offset_bytes: int
    size_bytes: int
    arrival_ns: int
    queue_id: int = 0
    #: Fleet tenant that issued this request (None outside fleet fan-out).
    #: Identity, not service state: ``reset_service_state`` keeps it.
    tenant: Optional[int] = None
    request_id: int = field(default_factory=lambda: next(_request_ids))
    # filled during service
    submitted_ns: Optional[int] = None
    completed_ns: Optional[int] = None
    transactions_total: int = 0
    path_conflict: bool = False
    waited_for_path: bool = False

    def __post_init__(self) -> None:
        if self.offset_bytes < 0:
            raise WorkloadError(f"negative offset {self.offset_bytes}")
        if self.size_bytes <= 0:
            raise WorkloadError(f"non-positive size {self.size_bytes}")
        if self.arrival_ns < 0:
            raise WorkloadError(f"negative arrival time {self.arrival_ns}")

    def reset_service_state(self) -> None:
        """Clear per-run mutable state so one trace can replay on several
        devices (the figure harness runs every design over the same trace)."""
        self.submitted_ns = None
        self.completed_ns = None
        self.transactions_total = 0
        self.path_conflict = False
        self.waited_for_path = False

    @property
    def is_read(self) -> bool:
        return self.kind is IoKind.READ

    @property
    def latency_ns(self) -> Optional[int]:
        """End-to-end latency from arrival to completion."""
        if self.completed_ns is None:
            return None
        return self.completed_ns - self.arrival_ns

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"IoRequest#{self.request_id}({self.kind.value}, off={self.offset_bytes}, "
            f"size={self.size_bytes}, t={self.arrival_ns})"
        )
