"""Trace-replay host process.

Replays a workload trace against the device: each request is posted to its
submission queue at its recorded arrival time, and the device is notified
through a doorbell callback -- mirroring how NVMe hosts ring a doorbell
register after posting.  Multi-queue traces (the Table 3 mixes run two or
three concurrent workloads) round-robin over queue pairs by requester.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional, Sequence

from repro.errors import WorkloadError
from repro.hil.nvme import NvmeQueuePair
from repro.hil.request import IoRequest
from repro.sim.engine import Engine


class TraceReplayHost:
    """Submits a time-ordered request list to NVMe queue pairs."""

    def __init__(
        self,
        engine: Engine,
        queue_pairs: List[NvmeQueuePair],
        doorbell: Callable[[], None],
    ) -> None:
        if not queue_pairs:
            raise WorkloadError("host needs at least one queue pair")
        self.engine = engine
        self.queue_pairs = queue_pairs
        self.doorbell = doorbell
        self.requests_submitted = 0
        self.finished = False

    def replay(
        self,
        requests: Sequence[IoRequest],
        stop: Optional[Callable[[], bool]] = None,
    ) -> Generator:
        """Process generator: submit every request at its arrival time.

        ``stop`` is polled before each submission (and while backing off on
        a full submission queue): once it returns ``True`` the host stops
        submitting, which is how steady-state early-stop ends a run -- a
        halted device no longer fetches, so continuing to submit would spin
        on full queues forever.
        """
        ordered = sorted(requests, key=lambda request: request.arrival_ns)
        for request in ordered:
            if stop is not None and stop():
                break
            delay = request.arrival_ns - self.engine.now
            if delay > 0:
                yield delay
            queue = self.queue_pairs[request.queue_id % len(self.queue_pairs)]
            while not queue.submit(request):
                # SQ full: a real host would retry on the next doorbell
                # interrupt; back off one microsecond.
                if stop is not None and stop():
                    self.finished = True
                    return
                yield 1_000
            request.submitted_ns = self.engine.now
            self.requests_submitted += 1
            self.doorbell()
        self.finished = True
