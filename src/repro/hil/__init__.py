"""Host Interface Layer: NVMe-style multi-queue submission/completion.

Modern SSDs expose multiple I/O queues directly to the host over NVMe
(paper §2.2).  The model provides submission/completion queue pairs, a
trace-replay host process that submits requests at their recorded arrival
times, and a dispatcher that enforces the device queue depth.
"""

from repro.hil.request import IoRequest, IoKind
from repro.hil.nvme import NvmeQueuePair, CompletionRecord
from repro.hil.host import TraceReplayHost

__all__ = [
    "IoRequest",
    "IoKind",
    "NvmeQueuePair",
    "CompletionRecord",
    "TraceReplayHost",
]
