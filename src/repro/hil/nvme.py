"""NVMe-style submission/completion queue pairs.

NVMe "directly exposes multiple SSD I/O queues to the host" (paper §2.2):
the host posts requests to a Submission Queue; the device fetches them,
services them, and posts a Completion Queue entry the host consumes.  The
model keeps the doorbell/fetch mechanics and per-queue accounting while the
device layer decides fetch order and concurrency.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from repro.errors import ConfigurationError
from repro.hil.request import IoRequest


@dataclass
class CompletionRecord:
    """One completion queue entry."""

    request: IoRequest
    completed_ns: int

    @property
    def latency_ns(self) -> int:
        return self.completed_ns - self.request.arrival_ns


class NvmeQueuePair:
    """One submission queue + completion queue pair."""

    def __init__(self, queue_id: int, depth: int = 1024) -> None:
        if depth < 1:
            raise ConfigurationError("queue depth must be >= 1")
        self.queue_id = queue_id
        self.depth = depth
        self._submission: Deque[IoRequest] = deque()
        self.completions: List[CompletionRecord] = []
        self.submitted = 0
        self.fetched = 0
        self.completed = 0
        self.full_rejections = 0

    # ------------------------------------------------------------------ #

    def submit(self, request: IoRequest) -> bool:
        """Host posts a request; False if the SQ is full (host must retry)."""
        if len(self._submission) >= self.depth:
            self.full_rejections += 1
            return False
        request.queue_id = self.queue_id
        self._submission.append(request)
        self.submitted += 1
        return True

    def fetch(self) -> Optional[IoRequest]:
        """Device fetches the head submission entry."""
        if not self._submission:
            return None
        self.fetched += 1
        return self._submission.popleft()

    def complete(self, request: IoRequest, now_ns: int) -> CompletionRecord:
        """Device posts a completion entry."""
        request.completed_ns = now_ns
        record = CompletionRecord(request=request, completed_ns=now_ns)
        self.completions.append(record)
        self.completed += 1
        return record

    # ------------------------------------------------------------------ #

    @property
    def pending(self) -> int:
        return len(self._submission)

    @property
    def in_flight(self) -> int:
        return self.fetched - self.completed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"NvmeQueuePair(q{self.queue_id}, pending={self.pending}, "
            f"in_flight={self.in_flight})"
        )
