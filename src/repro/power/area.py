"""Area overhead model (paper §6.6, Table 4).

Reproduces the paper's arithmetic:

* a Venice router synthesises to 614 um^2 of logic, but its 40 I/O pins at
  ~0.2 mm pad size with ~0.2 mm spacing make it occupy ~8 mm^2 of PCB --
  8% of a typical 100 mm^2 NAND flash chip,
* each mesh link occupies ~0.04x a shared channel's area (shorter, thinner
  wires with lower pitch),
* an 8x8 mesh needs 112 links versus 8 shared channels, so total link area
  is ``1 - (112 x 0.04) / (8 x 1) = 44%`` *lower* than the baseline bus
  area (the footnote-7 equation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.config.ssd_config import SsdConfig
from repro.errors import ConfigurationError
from repro.interconnect.topology import MeshTopology


@dataclass(frozen=True)
class AreaModel:
    """Area constants from Table 4 and §6.6."""

    router_logic_um2: float = 614.0
    router_io_pins: int = 40
    pad_size_mm: float = 0.2
    pad_spacing_mm: float = 0.2
    flash_chip_area_mm2: float = 100.0
    link_area_vs_channel: float = 0.04  # one link / one shared channel
    channel_area_unit: float = 1.0

    def __post_init__(self) -> None:
        if self.router_io_pins < 4:
            raise ConfigurationError("a mesh router needs at least 4 I/O pins")

    # ------------------------------------------------------------------ #

    #: Staggered (two-row) pad placement shortens the effective edge pitch
    #: by sqrt(2); with it, 40 pins at 0.2 mm pads + 0.2 mm spacing give the
    #: paper's ~8 mm^2 router footprint.
    PAD_STAGGER_FACTOR = math.sqrt(2.0)

    def router_pcb_area_mm2(self) -> float:
        """PCB footprint of one router chip, dominated by its I/O pads.

        Pads ring the die perimeter in staggered rows: ``pins/4`` pads per
        side at ``(pad + spacing) / stagger`` effective pitch.
        """
        pads_per_side = math.ceil(self.router_io_pins / 4)
        pitch_mm = (self.pad_size_mm + self.pad_spacing_mm) / self.PAD_STAGGER_FACTOR
        side_mm = pads_per_side * pitch_mm
        return side_mm * side_mm

    def router_overhead_fraction(self) -> float:
        """Router PCB area as a fraction of one flash chip (paper: 8%)."""
        return self.router_pcb_area_mm2() / self.flash_chip_area_mm2

    def total_link_area_vs_bus(self, rows: int, cols: int, channels: int) -> float:
        """Total mesh-link area relative to the baseline's channel area.

        Footnote 7: ``(#links x link_area) / (#channels x channel_area)``.
        """
        links = MeshTopology(rows, cols).edge_count
        return (links * self.link_area_vs_channel * self.channel_area_unit) / (
            channels * self.channel_area_unit
        )

    def link_area_saving_fraction(self, rows: int, cols: int, channels: int) -> float:
        """``1 - ratio``: how much *less* area the links need (paper: 44%)."""
        return 1.0 - self.total_link_area_vs_bus(rows, cols, channels)


def venice_area_report(config: SsdConfig, model: AreaModel = AreaModel()) -> Dict[str, float]:
    """The Table 4 area column for a given SSD configuration."""
    rows, cols = config.mesh_rows, config.mesh_cols
    channels = config.geometry.channels
    links = MeshTopology(rows, cols).edge_count
    return {
        "router_logic_um2": model.router_logic_um2,
        "router_pcb_area_mm2": model.router_pcb_area_mm2(),
        "router_overhead_of_flash_chip": model.router_overhead_fraction(),
        "routers_total": float(rows * cols),
        "links_total": float(links),
        "link_area_vs_channel": model.link_area_vs_channel,
        "total_link_area_vs_bus": model.total_link_area_vs_bus(rows, cols, channels),
        "link_area_saving_fraction": model.link_area_saving_fraction(
            rows, cols, channels
        ),
    }
