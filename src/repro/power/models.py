"""Power constants and the per-run energy accountant.

Energy of a run (§6.4): ``E = P_avg x T_exec``, decomposed as

* flash operation energy -- read/program/erase power during the operation
  (values in the Samsung Z-SSD class; flash operations dominate SSD power,
  which is why all designs sit within a few percent of each other),
* interconnect energy -- shared-channel power during channel-busy time for
  the bus designs; per-link and per-router power during circuit/packet-busy
  time for the mesh designs (Table 4: link 1.08 mW, router 0.241 mW; a
  shared channel bus burns ~10x a link due to its capacitive load),
* static controller + DRAM power over the whole run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.config.ssd_config import NS_PER_S
from repro.errors import ConfigurationError
from repro.interconnect.base import FabricStats


@dataclass(frozen=True)
class PowerModel:
    """Component power in milliwatts."""

    # Flash operations, per active die (Z-SSD class).
    read_mw: float = 40.0
    program_mw: float = 55.0
    erase_mw: float = 45.0
    # Interconnect (Table 4): shared channel vs mesh link vs router.
    channel_active_mw: float = 10.8  # link is "90% less power" than the bus
    link_active_mw: float = 1.08
    router_active_mw: float = 0.241
    # Always-on controller + DRAM.
    static_mw: float = 850.0

    def __post_init__(self) -> None:
        for name in (
            "read_mw",
            "program_mw",
            "erase_mw",
            "channel_active_mw",
            "link_active_mw",
            "router_active_mw",
            "static_mw",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")


@dataclass
class EnergyBreakdown:
    """Per-component energy of one run, in millijoules."""

    flash_read_mj: float = 0.0
    flash_program_mj: float = 0.0
    flash_erase_mj: float = 0.0
    channel_mj: float = 0.0
    link_mj: float = 0.0
    router_mj: float = 0.0
    static_mj: float = 0.0
    components: Dict[str, float] = field(default_factory=dict)

    @property
    def total_mj(self) -> float:
        return (
            self.flash_read_mj
            + self.flash_program_mj
            + self.flash_erase_mj
            + self.channel_mj
            + self.link_mj
            + self.router_mj
            + self.static_mj
        )

    def average_power_mw(self, execution_time_ns: int) -> float:
        if execution_time_ns <= 0:
            return 0.0
        return self.total_mj * NS_PER_S / execution_time_ns / 1_000.0 * 1_000.0


def _mw_ns_to_mj(milliwatts: float, nanoseconds: float) -> float:
    """mW x ns -> mJ (1 mW for 1 s is 1 mJ)."""
    return milliwatts * nanoseconds / NS_PER_S


class EnergyAccountant:
    """Computes a run's energy from operation counts and fabric accounting."""

    def __init__(self, model: PowerModel = PowerModel()) -> None:
        self.model = model

    def account(
        self,
        *,
        reads: int,
        programs: int,
        erases: int,
        read_ns: int,
        program_ns: int,
        erase_ns: int,
        fabric_stats: FabricStats,
        execution_time_ns: int,
    ) -> EnergyBreakdown:
        """Energy of one run.

        ``reads/programs/erases`` are die-operation counts; the per-op
        latencies come from the active NAND timing preset.
        """
        model = self.model
        breakdown = EnergyBreakdown(
            flash_read_mj=_mw_ns_to_mj(model.read_mw, reads * read_ns),
            flash_program_mj=_mw_ns_to_mj(model.program_mw, programs * program_ns),
            flash_erase_mj=_mw_ns_to_mj(model.erase_mw, erases * erase_ns),
            channel_mj=_mw_ns_to_mj(
                model.channel_active_mw, fabric_stats.channel_busy_ns
            ),
            link_mj=_mw_ns_to_mj(model.link_active_mw, fabric_stats.link_hop_busy_ns),
            router_mj=_mw_ns_to_mj(
                model.router_active_mw, fabric_stats.router_active_ns
            ),
            static_mj=_mw_ns_to_mj(model.static_mw, execution_time_ns),
        )
        breakdown.components = {
            "flash": breakdown.flash_read_mj
            + breakdown.flash_program_mj
            + breakdown.flash_erase_mj,
            "interconnect": breakdown.channel_mj
            + breakdown.link_mj
            + breakdown.router_mj,
            "static": breakdown.static_mj,
        }
        return breakdown
