"""Power, energy, and area models (paper §6.4, §6.6, Table 4).

The component constants come from the paper's own measurements (HDL
synthesis at UMC 65 nm for the router, ORION 3.0 for links, Samsung Z-SSD
SZ985 for flash operations): router 0.241 mW, link 1.08 mW per 4 KB page
transfer (90% below a shared channel bus), router 614 um^2 / ~8 mm^2 with
I/O pads (8% of a 100 mm^2 flash chip), link area 0.04x a shared channel.
"""

from repro.power.models import PowerModel, EnergyAccountant, EnergyBreakdown
from repro.power.area import AreaModel, venice_area_report

__all__ = [
    "PowerModel",
    "EnergyAccountant",
    "EnergyBreakdown",
    "AreaModel",
    "venice_area_report",
]
