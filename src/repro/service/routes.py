"""The HTTP surface of the control plane.

Routing is deliberately tiny -- five endpoints, stdlib only:

==========================  =====================================================
``GET  /``                  embedded HTML dashboard (:mod:`repro.service.dashboard`)
``GET  /health``            liveness + pool/store/job-count statistics
``POST /v1/runs``           submit a run/sweep/fleet payload; job id = spec digest
``GET  /v1/runs/<job_id>``  one job's full record (result included when done)
``GET  /v1/jobs``           every job's summary, newest first
==========================  =====================================================

Handlers return :class:`Response` values; the
:class:`ServiceRequestHandler` glue writes them out.  Client errors are
*structured*: a malformed submission body answers 400 with the exact
:func:`~repro.experiments.runner.make_spec` /
:class:`~repro.errors.ConfigurationError` message, machine-readable under
``{"error": {"type", "message"}}``.
"""

from __future__ import annotations

import json
import traceback
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler
from typing import TYPE_CHECKING, Optional, Tuple

from repro.errors import ReproError, ServiceError
from repro.service.dashboard import dashboard_html
from repro.service.schema import job_from_payload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.service.server import SimulationService

#: Maximum accepted ``POST /v1/runs`` body, bytes.  Far above any real
#: submission (payloads are a handful of names and knobs); bounds memory
#: against a misbehaving client.
MAX_BODY_BYTES = 1 << 20


@dataclass(frozen=True)
class Response:
    """One materialised HTTP response (status, body, content type)."""

    status: int
    body: bytes
    content_type: str = "application/json"
    extra_headers: Tuple[Tuple[str, str], ...] = field(default=())


def json_response(status: int, payload: object) -> Response:
    """Serialise ``payload`` (non-JSON scalars via ``str``) as a response."""
    text = json.dumps(payload, indent=1, default=str)
    return Response(status=status, body=(text + "\n").encode("utf-8"))


def error_response(status: int, kind: str, message: str) -> Response:
    """The structured error envelope every failure path shares."""
    return json_response(
        status, {"error": {"type": kind, "message": message}}
    )


def handle_get(app: "SimulationService", path: str) -> Response:
    """Dispatch one GET by path."""
    if path in ("/", "/index.html"):
        return Response(
            status=200,
            body=dashboard_html().encode("utf-8"),
            content_type="text/html; charset=utf-8",
        )
    if path == "/health":
        return json_response(200, app.health())
    if path == "/v1/jobs":
        return json_response(200, {"jobs": app.job_store.list()})
    if path.startswith("/v1/runs/"):
        job_id = path[len("/v1/runs/"):]
        record = app.job_store.get(job_id)
        if record is None:
            return error_response(
                404, "not-found", f"no job {job_id[:64]!r}"
            )
        return json_response(200, record)
    return error_response(404, "not-found", f"no route for GET {path}")


def handle_post(app: "SimulationService", path: str, body: bytes) -> Response:
    """Dispatch one POST by path (``/v1/runs`` is the only target)."""
    if path != "/v1/runs":
        return error_response(404, "not-found", f"no route for POST {path}")
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        return error_response(
            400, "invalid-json", f"request body is not valid JSON: {error}"
        )
    try:
        job = job_from_payload(payload)
    except ServiceError:  # pragma: no cover - server-side invariant
        raise
    except ReproError as error:
        # The make_spec / schema validation message, verbatim: the 400 is
        # as actionable as the CLI error would have been.
        return error_response(400, type(error).__name__, str(error))
    record, created = app.submit(job)
    return json_response(
        201 if created else 200,
        {
            "job_id": job.job_id,
            "created": created,
            "kind": record["kind"],
            "label": record["label"],
            "state": record["state"],
        },
    )


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Thin stdlib glue: socket I/O in, :class:`Response` out.

    One instance per request (the threading server gives each its own
    thread); all state lives on the service attached to ``self.server``.
    """

    server_version = "venice-sim"
    protocol_version = "HTTP/1.1"

    @property
    def app(self) -> "SimulationService":
        """The resident service this request operates on."""
        return self.server.app  # type: ignore[attr-defined]

    def _write(self, response: Response) -> None:
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(response.body)))
        for name, value in response.extra_headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(response.body)

    def _guarded(self, produce) -> None:
        """Run one handler; any unexpected failure becomes a clean 500."""
        try:
            response = produce()
        except Exception:  # noqa: BLE001 - a handler bug must not kill the daemon
            response = error_response(
                500, "internal", traceback.format_exc(limit=4)
            )
        try:
            self._write(response)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass  # client hung up first; nothing to answer

    def _read_body(self) -> Optional[bytes]:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            # Drain before answering 413: responding while the client is
            # still writing deadlocks once both socket buffers fill.
            remaining = length
            while remaining > 0:
                chunk = self.rfile.read(min(remaining, 1 << 16))
                if not chunk:
                    break
                remaining -= len(chunk)
            return None
        return self.rfile.read(length)

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        """Serve one GET."""
        self._guarded(lambda: handle_get(self.app, self.path))

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        """Serve one POST."""
        body = self._read_body()
        if body is None:
            self._guarded(
                lambda: error_response(
                    413, "too-large",
                    f"request body exceeds {MAX_BODY_BYTES} bytes",
                )
            )
            return
        self._guarded(lambda: handle_post(self.app, self.path, body))

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Route access logs through the service (quiet by default)."""
        self.app.log(f"{self.address_string()} {format % args}")
