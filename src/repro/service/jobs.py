"""Persistent job records and their state machine.

A *job* is one accepted ``POST /v1/runs`` submission: a validated spec
set plus bookkeeping.  Its lifecycle is the four-state machine

::

    (submit)          (start)           (finish)
    --------> queued ---------> running ---------> done
                ^                  |    \\
                |     (adopt)      |     \\ (fail)
                +------------------+      --------> failed

``adopt`` is the restart transition: a daemon that died mid-job leaves
the record in ``running``; the next boot moves every such orphan back to
``queued`` and re-enqueues it, so no accepted job is ever lost.  ``done``
and ``failed`` are terminal -- nothing leaves them, which is what makes a
duplicate submission of a finished job a pure read.

:func:`next_state` is the machine as a pure function (the Hypothesis
property tests drive it directly); :class:`JobStore` enforces the same
transitions in SQL with guarded ``UPDATE ... WHERE state = ?`` statements,
so concurrent HTTP handlers and worker threads can never race a record
into an illegal state.
"""

from __future__ import annotations

import json
import sqlite3
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import ServiceError

#: Every state a job record can be in, in lifecycle order.
JOB_STATES = ("queued", "running", "done", "failed")

#: States nothing ever leaves.
TERMINAL_STATES = ("done", "failed")

#: Every event the machine accepts.  ``submit`` creates (``None`` ->
#: ``queued``); the rest move existing records.
JOB_EVENTS = ("submit", "start", "finish", "fail", "adopt")

#: ``(state, event) -> state`` for every *legal* transition.  ``None`` is
#: the not-yet-submitted pre-state.  ``adopt`` on a queued job is a legal
#: no-op: re-adoption scans are idempotent, a record already back in the
#: queue stays there.
_TRANSITIONS: Dict[Tuple[Optional[str], str], str] = {
    (None, "submit"): "queued",
    ("queued", "start"): "running",
    ("queued", "adopt"): "queued",
    ("running", "finish"): "done",
    ("running", "fail"): "failed",
    ("running", "adopt"): "queued",
}

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    job_id       TEXT PRIMARY KEY,
    kind         TEXT NOT NULL,
    label        TEXT NOT NULL,
    payload      TEXT NOT NULL,
    state        TEXT NOT NULL,
    submitted_at REAL NOT NULL,
    started_at   REAL,
    finished_at  REAL,
    attempts     INTEGER NOT NULL DEFAULT 0,
    simulated    INTEGER,
    error        TEXT,
    result       TEXT
)
"""

_BUSY_TIMEOUT_MS = 5_000


def next_state(state: Optional[str], event: str) -> str:
    """Apply one event to the pure state machine.

    Returns the successor state; raises
    :class:`~repro.errors.ServiceError` when the transition is illegal
    (unknown event, event on a terminal state, ``start`` on a running
    job, ``submit`` on an existing one, ...).  This function *is* the
    specification the persistent store implements -- the property tests
    in the service battery drive arbitrary event interleavings through it
    and assert it can never be walked into an undefined state.
    """
    if event not in JOB_EVENTS:
        raise ServiceError(f"unknown job event {event!r}")
    if state is not None and state not in JOB_STATES:
        raise ServiceError(f"unknown job state {state!r}")
    try:
        return _TRANSITIONS[(state, event)]
    except KeyError:
        raise ServiceError(
            f"illegal job transition: {event!r} in state {state!r}"
        )


class JobStore:
    """The persistent job table (SQLite, WAL) next to the result store.

    Every method opens its own short-lived connection, so the store is
    safe to call from any number of HTTP handler threads and worker
    threads concurrently -- SQLite serializes the writes, and the guarded
    ``UPDATE`` statements turn the state machine's legality rules into
    compare-and-swap semantics: :meth:`start` on an already-running job
    simply reports ``False`` instead of double-dispatching it.

    Because the table lives in the service state directory (next to the
    content-addressed result store), a restarted daemon sees exactly the
    jobs its predecessor accepted; :meth:`adopt_orphans` is the restart
    half of the crash-safety story.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self._connect() as conn:
            conn.execute(_SCHEMA)

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(
            str(self.path), timeout=_BUSY_TIMEOUT_MS / 1000.0
        )
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute(f"PRAGMA busy_timeout={_BUSY_TIMEOUT_MS}")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.row_factory = sqlite3.Row
        return conn

    # -- submit ---------------------------------------------------------- #

    def submit(self, job_id: str, kind: str, label: str, payload: dict) -> bool:
        """Record a new job as ``queued``; returns ``True`` when created.

        ``INSERT OR IGNORE`` on the primary key makes concurrent duplicate
        submissions race-free: exactly one caller creates the record, every
        other caller observes it already exists (and the existing record --
        whatever state it has reached -- is authoritative).  This is the
        idempotency half of the acceptance criteria: N clients POSTing one
        spec concurrently yield one queued job, hence one simulation.
        """
        with self._connect() as conn:
            cursor = conn.execute(
                "INSERT OR IGNORE INTO jobs "
                "(job_id, kind, label, payload, state, submitted_at) "
                "VALUES (?, ?, ?, ?, 'queued', ?)",
                (job_id, kind, label, json.dumps(payload), time.time()),
            )
            return cursor.rowcount == 1

    # -- worker-side transitions ----------------------------------------- #

    def start(self, job_id: str) -> bool:
        """``queued -> running``; ``False`` when the job was not claimable.

        The guarded update is the claim: of N worker threads dispatched
        the same id, exactly one flips the state and runs the job.
        """
        with self._connect() as conn:
            cursor = conn.execute(
                "UPDATE jobs SET state='running', started_at=?, "
                "attempts=attempts+1 WHERE job_id=? AND state='queued'",
                (time.time(), job_id),
            )
            return cursor.rowcount == 1

    def finish(self, job_id: str, result: dict, simulated: int) -> None:
        """``running -> done`` with the result payload and the number of
        simulations the job actually performed (0 = fully cache-served)."""
        self._terminate(
            job_id,
            "done",
            # default=str: fleet roll-ups may carry Paths or numpy-free but
            # non-JSON scalars; the CLI serializes the same payloads the
            # same way.
            result=json.dumps(result, default=str),
            simulated=simulated,
        )

    def fail(self, job_id: str, error: str) -> None:
        """``running -> failed`` with the captured error detail."""
        self._terminate(job_id, "failed", error=error)

    def _terminate(
        self,
        job_id: str,
        state: str,
        *,
        result: Optional[str] = None,
        simulated: Optional[int] = None,
        error: Optional[str] = None,
    ) -> None:
        with self._connect() as conn:
            cursor = conn.execute(
                "UPDATE jobs SET state=?, finished_at=?, result=?, "
                "simulated=?, error=? WHERE job_id=? AND state='running'",
                (state, time.time(), result, simulated, error, job_id),
            )
            if cursor.rowcount != 1:
                record = self.get(job_id)
                raise ServiceError(
                    f"illegal job transition: "
                    f"{'finish' if state == 'done' else 'fail'!r} on job "
                    f"{job_id[:12]} in state "
                    f"{record['state'] if record else None!r}"
                )

    # -- restart adoption ------------------------------------------------ #

    def adopt_orphans(self) -> List[str]:
        """Move every ``running`` record back to ``queued``; return the ids.

        A record in ``running`` at boot can only mean the previous daemon
        died mid-job (a live daemon owns its running set exclusively).
        Re-queueing it is always safe: results are content-addressed, so
        whatever the dead worker already simulated is served from the
        store and the remainder re-executes -- byte-identical overall.
        """
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT job_id FROM jobs WHERE state='running' "
                "ORDER BY submitted_at"
            ).fetchall()
            conn.execute(
                "UPDATE jobs SET state='queued', started_at=NULL "
                "WHERE state='running'"
            )
        return [row["job_id"] for row in rows]

    def queued_ids(self) -> List[str]:
        """Every queued job id, oldest first (the boot-time work list)."""
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT job_id FROM jobs WHERE state='queued' "
                "ORDER BY submitted_at"
            ).fetchall()
        return [row["job_id"] for row in rows]

    # -- reads ----------------------------------------------------------- #

    @staticmethod
    def _record(row: sqlite3.Row, *, with_payload: bool) -> Dict[str, object]:
        record: Dict[str, object] = {
            "job_id": row["job_id"],
            "kind": row["kind"],
            "label": row["label"],
            "state": row["state"],
            "submitted_at": row["submitted_at"],
            "started_at": row["started_at"],
            "finished_at": row["finished_at"],
            "attempts": row["attempts"],
            "simulated": row["simulated"],
            "error": row["error"],
        }
        if with_payload:
            record["payload"] = json.loads(row["payload"])
            record["result"] = (
                json.loads(row["result"]) if row["result"] else None
            )
        return record

    def get(self, job_id: str) -> Optional[Dict[str, object]]:
        """One full job record (payload and result included), or ``None``."""
        with self._connect() as conn:
            row = conn.execute(
                "SELECT * FROM jobs WHERE job_id=?", (job_id,)
            ).fetchone()
        return self._record(row, with_payload=True) if row else None

    def list(self) -> List[Dict[str, object]]:
        """Every job's summary (no payload/result bodies), newest first."""
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT * FROM jobs ORDER BY submitted_at DESC, job_id"
            ).fetchall()
        return [self._record(row, with_payload=False) for row in rows]

    def counts(self) -> Dict[str, int]:
        """``{state: count}`` over every state (zeros included)."""
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"
            ).fetchall()
        counts = {state: 0 for state in JOB_STATES}
        for row in rows:
            counts[row["state"]] = row["n"]
        return counts
