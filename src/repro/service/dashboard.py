"""The embedded single-file dashboard served at ``GET /``.

One self-contained HTML page -- no external assets, no CDN, nothing to
install -- that polls the JSON API the service already exposes
(``/health``, ``/v1/jobs``, ``/v1/runs/<id>``) and renders:

* a service header (uptime, worker pool, store backend, cache counters),
* the job table (state, kind, label, attempts, simulations performed),
* throughput and p99-latency bar charts over the most recent completed
  runs, drawn as inline SVG.

The page is deliberately read-only: submissions go through ``POST
/v1/runs`` (curl, scripts, CI), the dashboard just watches.  Keeping it a
single Python string means the daemon has no static-file path handling --
and the service smoke test can assert the exact page the server embeds.
"""

from __future__ import annotations

#: How many completed jobs the charts fetch full results for per refresh.
#: Summaries are one request; results are one request per job, so this
#: bounds dashboard traffic on a long-lived state directory.
CHART_JOB_LIMIT = 25

_PAGE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>venice-sim service</title>
<style>
  body { font-family: ui-monospace, Menlo, Consolas, monospace;
         margin: 2rem auto; max-width: 72rem; color: #222; }
  h1 { font-size: 1.3rem; } h2 { font-size: 1.05rem; margin-top: 2rem; }
  table { border-collapse: collapse; width: 100%; font-size: 0.85rem; }
  th, td { text-align: left; padding: 0.3rem 0.6rem;
           border-bottom: 1px solid #ddd; }
  th { border-bottom: 2px solid #999; }
  .state-queued  { color: #8a6d00; } .state-running { color: #0b61a4; }
  .state-done    { color: #1a7f37; } .state-failed  { color: #b42318; }
  #meta { font-size: 0.85rem; color: #555; }
  .bar-iops { fill: #4a90d9; } .bar-p99 { fill: #d9774a; }
  .axis { font-size: 10px; fill: #555; }
  svg { background: #fafafa; border: 1px solid #e5e5e5; }
</style>
</head>
<body>
<h1>venice-sim service</h1>
<p id="meta">connecting&hellip;</p>
<h2>Throughput (IOPS) and p99 latency (&micro;s) &mdash; completed runs</h2>
<div id="charts"><svg id="chart-iops" width="560" height="220"></svg>
<svg id="chart-p99" width="560" height="220"></svg></div>
<h2>Jobs</h2>
<table id="jobs"><thead><tr>
<th>state</th><th>kind</th><th>label</th><th>job id</th>
<th>attempts</th><th>simulated</th>
</tr></thead><tbody></tbody></table>
<script>
"use strict";
const CHART_JOB_LIMIT = __CHART_JOB_LIMIT__;

async function getJSON(path) {
  const response = await fetch(path);
  if (!response.ok) throw new Error(path + " -> " + response.status);
  return response.json();
}

function renderMeta(health) {
  const pool = health.pool, store = health.store, session = health.session;
  document.getElementById("meta").textContent =
    "pid " + health.pid + " | up " + Math.round(health.uptime_seconds) +
    "s | workers " + pool.workers + " (busy " + pool.busy + ", backlog " +
    pool.backlog + ") | store " + store.backend + ": " +
    store.results + " results | session: " + session.simulations +
    " simulated, " + session.cache_hits + " cache hits, " +
    session.jobs_done + " done, " + session.jobs_failed + " failed";
}

function renderJobs(jobs) {
  const body = document.querySelector("#jobs tbody");
  body.textContent = "";
  for (const job of jobs) {
    const row = body.insertRow();
    row.insertCell().appendChild(stateCell(job.state));
    row.insertCell().textContent = job.kind;
    row.insertCell().textContent = job.label;
    row.insertCell().textContent = job.job_id.slice(0, 12);
    row.insertCell().textContent = job.attempts;
    row.insertCell().textContent =
      job.simulated === null ? "-" : job.simulated;
  }
}

function stateCell(state) {
  const span = document.createElement("span");
  span.className = "state-" + state;
  span.textContent = state;
  return span;
}

// One (label, iops, p99 microseconds) point per completed simulation,
// whatever the job kind wrapped it in.
function pointsFrom(record) {
  const result = record.result;
  if (!result) return [];
  if (record.kind === "fleet") {
    return [{ label: record.label, iops: result.aggregate_iops,
              p99us: result.latency.p99_ns / 1000 }];
  }
  const runs = record.kind === "run" ? [result] : result.runs;
  return runs.map((run) => ({
    label: run.label, iops: run.result.iops,
    p99us: run.result.p99_latency_ns / 1000 }));
}

function drawBars(svgId, points, key, barClass) {
  const svg = document.getElementById(svgId);
  svg.textContent = "";
  if (!points.length) return;
  const width = 560, height = 220, pad = 28;
  const peak = Math.max(...points.map((p) => p[key])) || 1;
  const slot = (width - pad) / points.length;
  points.forEach((point, i) => {
    const h = (point[key] / peak) * (height - 2 * pad);
    const bar = document.createElementNS("http://www.w3.org/2000/svg", "rect");
    bar.setAttribute("class", barClass);
    bar.setAttribute("x", pad + i * slot + 2);
    bar.setAttribute("y", height - pad - h);
    bar.setAttribute("width", Math.max(2, slot - 4));
    bar.setAttribute("height", h);
    const title =
      document.createElementNS("http://www.w3.org/2000/svg", "title");
    title.textContent = point.label + ": " + point[key].toFixed(1);
    bar.appendChild(title);
    svg.appendChild(bar);
  });
  const axis = document.createElementNS("http://www.w3.org/2000/svg", "text");
  axis.setAttribute("class", "axis");
  axis.setAttribute("x", 4); axis.setAttribute("y", 14);
  axis.textContent = key + " (peak " + peak.toFixed(1) + ")";
  svg.appendChild(axis);
}

async function refresh() {
  try {
    const health = await getJSON("/health");
    renderMeta(health);
    const jobs = (await getJSON("/v1/jobs")).jobs;
    renderJobs(jobs);
    const done = jobs.filter((j) => j.state === "done")
                     .slice(0, CHART_JOB_LIMIT);
    const records =
      await Promise.all(done.map((j) => getJSON("/v1/runs/" + j.job_id)));
    const points = records.flatMap(pointsFrom);
    drawBars("chart-iops", points, "iops", "bar-iops");
    drawBars("chart-p99", points, "p99us", "bar-p99");
  } catch (error) {
    document.getElementById("meta").textContent = "unreachable: " + error;
  }
}

refresh();
setInterval(refresh, 2000);
</script>
</body>
</html>
"""


def dashboard_html() -> str:
    """The complete dashboard page as a string (UTF-8, self-contained)."""
    return _PAGE.replace("__CHART_JOB_LIMIT__", str(CHART_JOB_LIMIT))
