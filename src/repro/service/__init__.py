"""Simulation-as-a-service: the ``venice-sim serve`` control plane.

Everything before this package is a one-shot CLI invocation; this package
makes the simulator a *resident system*.  ``venice-sim serve --state DIR``
boots a stdlib :class:`~http.server.ThreadingHTTPServer` control plane
that accepts run/fleet/sweep specifications over JSON, executes them on
the existing executor + content-addressed result store, and survives
restarts: job metadata lives in a SQLite table next to the store, so a
daemon killed mid-sweep re-adopts its queued and running jobs on the next
boot and finishes them byte-identically.

The module split mirrors the request path:

* :mod:`repro.service.schema`   -- JSON payload -> validated :class:`Job`
  (submission is a pure function of the payload; the job id *is* the spec
  digest, so duplicate submissions are idempotent for free);
* :mod:`repro.service.jobs`     -- the persistent job table and its
  queued -> running -> done|failed state machine;
* :mod:`repro.service.routes`   -- the HTTP API surface (``/v1/runs``,
  ``/v1/jobs``, ``/health``, the dashboard);
* :mod:`repro.service.server`   -- the daemon: HTTP front end plus the
  background worker pool that drains jobs through
  :func:`~repro.experiments.executor.execute_specs`;
* :mod:`repro.service.dashboard` -- the embedded single-file HTML
  dashboard served at ``/``.

See ``docs/service.md`` for the API table and restart semantics.
"""

from repro.service.jobs import (
    JOB_EVENTS,
    JOB_STATES,
    TERMINAL_STATES,
    JobStore,
    next_state,
)
from repro.service.schema import Job, job_from_payload, job_from_record
from repro.service.server import (
    DISCOVERY_FILE,
    ServiceConfig,
    SimulationService,
    read_discovery,
)

__all__ = [
    "DISCOVERY_FILE",
    "JOB_EVENTS",
    "JOB_STATES",
    "TERMINAL_STATES",
    "Job",
    "JobStore",
    "ServiceConfig",
    "SimulationService",
    "job_from_payload",
    "job_from_record",
    "next_state",
    "read_discovery",
]
