"""``POST /v1/runs`` payloads: validation and canonicalisation.

Submission is a **pure function of the JSON body**: every field resolves
through :func:`~repro.experiments.runner.make_spec` (or
:func:`~repro.fleet.spec.make_fleet_spec`) at acceptance time, exactly the
way the one-shot CLI resolves its flags, and the resulting canonical spec
dicts are what the job table persists.  Consequences:

* the job id *is* the spec content digest (run jobs), or the sha256 of
  the ordered member digests (sweep/fleet jobs) -- resubmitting the same
  payload maps onto the same job, so duplicate submissions are idempotent
  with no extra machinery;
* a restarted daemon re-executes from the persisted canonical specs, not
  from the original request body, so execution cannot depend on the
  environment at execution time;
* validation errors are ordinary library errors
  (:class:`~repro.errors.ConfigurationError` and friends) carrying the
  same messages ``make_spec`` raises everywhere else; the HTTP layer maps
  them to structured 400 responses.

Three payload kinds are accepted (``"kind"`` defaults to ``"run"``):

========  ===========================================================
``run``   one (design, preset, workload) simulation
``sweep``  the cross product of ``designs`` x ``workloads``
``fleet``  one multi-SSD fleet (devices, tenants, placement, sample,
           QoS policy, burst clause)
========  ===========================================================
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.experiments.runner import ExperimentScale, make_spec
from repro.experiments.spec import RunSpec
from repro.fleet.spec import FleetSpec
from repro.ssd.factory import design_names
from repro.workloads.mixes import mix_names

#: Payload kinds the service accepts.
JOB_KINDS = ("run", "sweep", "fleet")

_COMMON_KEYS = {
    "kind", "preset", "requests", "seed", "faults", "warmup", "early_stop",
}
_KEYS_BY_KIND = {
    "run": _COMMON_KEYS | {"design", "workload"},
    "sweep": _COMMON_KEYS | {"designs", "workloads"},
    # Fleet members carry their own digests; the sweep-amortization knobs
    # (warmup/early_stop) are single-device machinery and are rejected here.
    "fleet": (_COMMON_KEYS - {"warmup", "early_stop"}) | {
        "design", "designs", "workload", "devices", "tenants", "placement",
        "sample", "qos", "burst",
    },
}


@dataclass(frozen=True)
class Job:
    """One validated submission, ready to queue and execute.

    ``specs`` are the member :class:`~repro.experiments.spec.RunSpec`\\ s
    in execution order; ``fleet`` is set only for fleet jobs (its members
    are exactly ``specs``).  ``canonical`` is the payload the job table
    persists -- re-executable without the original request body.
    """

    job_id: str
    kind: str
    label: str
    specs: Tuple[RunSpec, ...]
    canonical: Dict[str, object] = field(compare=False)
    fleet: Optional[FleetSpec] = field(default=None, compare=False)


def _reject_unknown_keys(payload: Mapping[str, object], kind: str) -> None:
    unknown = sorted(set(payload) - _KEYS_BY_KIND[kind])
    if unknown:
        raise ConfigurationError(
            f"unknown field(s) for a {kind!r} submission: "
            f"{', '.join(unknown)} (accepted: "
            f"{', '.join(sorted(_KEYS_BY_KIND[kind]))})"
        )


def _str_field(
    payload: Mapping[str, object], key: str, default: Optional[str]
) -> Optional[str]:
    value = payload.get(key, default)
    if value is None or isinstance(value, str):
        return value
    raise ConfigurationError(
        f"field {key!r} must be a string, got {type(value).__name__}"
    )


def _int_field(
    payload: Mapping[str, object], key: str, default: int, minimum: int
) -> int:
    value = payload.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(
            f"field {key!r} must be an integer, got {type(value).__name__}"
        )
    if value < minimum:
        raise ConfigurationError(
            f"field {key!r} must be >= {minimum}, got {value}"
        )
    return value


def _list_field(
    payload: Mapping[str, object], key: str, default: Sequence[str]
) -> List[str]:
    value = payload.get(key)
    if value is None:
        return list(default)
    if not isinstance(value, list) or not value or not all(
        isinstance(item, str) for item in value
    ):
        raise ConfigurationError(
            f"field {key!r} must be a non-empty list of strings"
        )
    return list(value)


def _scale_for(payload: Mapping[str, object]) -> ExperimentScale:
    """The same requests/seed -> scale mapping the CLI applies."""
    requests = _int_field(payload, "requests", 600, 1)
    seed = _int_field(payload, "seed", 42, 0)
    return ExperimentScale(
        requests=requests,
        requests_per_mix_constituent=max(50, requests // 3),
        seed=seed,
    )


def _amortization(payload: Mapping[str, object]) -> Dict[str, Optional[str]]:
    return {
        "faults": _str_field(payload, "faults", None),
        "warmup": _str_field(payload, "warmup", None),
        "early_stop": _str_field(payload, "early_stop", None),
    }


def _digest_of(parts: Dict[str, object]) -> str:
    canonical = json.dumps(parts, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def job_from_payload(payload: object) -> Job:
    """Validate one ``POST /v1/runs`` body into a :class:`Job`.

    Raises :class:`~repro.errors.ConfigurationError` (or another library
    error, e.g. a :class:`~repro.errors.WorkloadError` for an unreadable
    trace file) with a client-actionable message on any malformed field;
    the HTTP layer turns those into structured 400 responses verbatim.
    """
    if not isinstance(payload, Mapping):
        raise ConfigurationError(
            f"the request body must be a JSON object, got "
            f"{type(payload).__name__}"
        )
    kind = payload.get("kind", "run")
    if kind not in JOB_KINDS:
        raise ConfigurationError(
            f"unknown job kind {kind!r} (choose from {', '.join(JOB_KINDS)})"
        )
    _reject_unknown_keys(payload, kind)
    preset = _str_field(payload, "preset", "performance-optimized")
    scale = _scale_for(payload)
    knobs = _amortization(payload)
    if kind == "run":
        return _run_job(payload, preset, scale, knobs)
    if kind == "sweep":
        return _sweep_job(payload, preset, scale, knobs)
    return _fleet_job(payload, preset, scale, knobs)


def _run_job(
    payload: Mapping[str, object],
    preset: str,
    scale: ExperimentScale,
    knobs: Dict[str, Optional[str]],
) -> Job:
    design = _str_field(payload, "design", "venice")
    workload = _str_field(payload, "workload", "hm_0")
    spec = make_spec(
        design,
        preset,
        workload,
        scale,
        mix=workload in mix_names(),
        **knobs,
    )
    return Job(
        job_id=spec.digest,
        kind="run",
        label=spec.label(),
        specs=(spec,),
        canonical={"kind": "run", "specs": [spec.to_dict()]},
    )


def _sweep_job(
    payload: Mapping[str, object],
    preset: str,
    scale: ExperimentScale,
    knobs: Dict[str, Optional[str]],
) -> Job:
    designs = _list_field(payload, "designs", design_names())
    workloads = _list_field(payload, "workloads", ["hm_0"])
    specs = tuple(
        make_spec(
            design,
            preset,
            workload,
            scale,
            mix=workload in mix_names(),
            **knobs,
        )
        for workload in workloads
        for design in designs
    )
    job_id = _digest_of(
        {"kind": "sweep", "specs": [spec.digest for spec in specs]}
    )
    return Job(
        job_id=job_id,
        kind="sweep",
        label=(
            f"sweep[{len(designs)} designs x {len(workloads)} workloads]"
            f"/{specs[0].preset}"
        ),
        specs=specs,
        canonical={
            "kind": "sweep", "specs": [spec.to_dict() for spec in specs],
        },
    )


def _fleet_job(
    payload: Mapping[str, object],
    preset: str,
    scale: ExperimentScale,
    knobs: Dict[str, Optional[str]],
) -> Job:
    from repro.fleet.spec import make_fleet_spec

    if "designs" in payload and "design" in payload:
        raise ConfigurationError(
            "give either 'design' (replicated) or 'designs' (per member), "
            "not both"
        )
    workload = _str_field(payload, "workload", "hm_0")
    devices = _int_field(payload, "devices", 2, 1)
    explicit = (
        _list_field(payload, "designs", ())
        if "designs" in payload
        else None
    )
    fleet = make_fleet_spec(
        explicit if explicit else _str_field(payload, "design", "venice"),
        preset,
        workload,
        scale,
        devices=len(explicit) if explicit else devices,
        placement=_str_field(payload, "placement", "round-robin"),
        tenants=_int_field(payload, "tenants", 8, 1),
        sample=_int_field(payload, "sample", 0, 0),
        qos=_str_field(payload, "qos", "") or "",
        burst=_str_field(payload, "burst", "") or "",
        mix=workload in mix_names(),
        faults=[knobs["faults"]] * (len(explicit) if explicit else devices)
        if knobs["faults"]
        else None,
    )
    canonical: Dict[str, object] = {
        "kind": "fleet",
        "members": [member.to_dict() for member in fleet.members],
        "placement": fleet.placement,
        "tenants": fleet.tenants,
        "sample": fleet.sample,
    }
    if fleet.qos:
        # Keys omitted when unset so pre-QoS job records are unchanged.
        canonical["qos"] = fleet.qos
    if fleet.burst:
        canonical["burst"] = fleet.burst
    return Job(
        job_id=fleet.digest,
        kind="fleet",
        label=fleet.label(),
        specs=fleet.members,
        canonical=canonical,
        fleet=fleet,
    )


def job_from_record(job_id: str, canonical: Mapping[str, object]) -> Job:
    """Rebuild an executable :class:`Job` from its persisted canonical form.

    This is what a restarted daemon executes re-adopted jobs from: the
    specs come back exactly as accepted (``RunSpec.from_dict`` is the
    lossless inverse of ``to_dict``), so adoption can never change what a
    job simulates.
    """
    kind = str(canonical["kind"])
    if kind == "fleet":
        fleet = FleetSpec(
            members=tuple(
                RunSpec.from_dict(member) for member in canonical["members"]
            ),
            placement=str(canonical["placement"]),
            tenants=int(canonical["tenants"]),
            sample=int(canonical["sample"]),
            # .get: records persisted before QoS existed have no such keys.
            qos=str(canonical.get("qos") or ""),
            burst=str(canonical.get("burst") or ""),
        )
        return Job(
            job_id=job_id,
            kind=kind,
            label=fleet.label(),
            specs=fleet.members,
            canonical=dict(canonical),
            fleet=fleet,
        )
    specs = tuple(RunSpec.from_dict(spec) for spec in canonical["specs"])
    label = (
        specs[0].label() if kind == "run" else f"sweep[{len(specs)} specs]"
    )
    return Job(
        job_id=job_id,
        kind=kind,
        label=label,
        specs=specs,
        canonical=dict(canonical),
    )
