"""The resident daemon: HTTP front end plus the background worker pool.

:class:`SimulationService` owns everything ``venice-sim serve`` boots:

* a :class:`~http.server.ThreadingHTTPServer` running the routes in
  :mod:`repro.service.routes` (one thread per in-flight request),
* ``jobs`` worker threads draining accepted job ids from an in-process
  queue and executing them through the existing
  :func:`~repro.experiments.executor.execute_specs` /
  :func:`~repro.fleet.run.run_fleet` stack against the shared
  content-addressed :class:`~repro.experiments.store.ResultStore`,
* the persistent :class:`~repro.service.jobs.JobStore` both halves agree
  through.

Crash safety is a composition, not a feature: the job table knows what
was accepted (and survives the process), the result store knows what was
simulated (content-addressed, also survives), so :meth:`start` merely
moves orphaned ``running`` records back to ``queued`` and re-enqueues
every queued id.  Re-execution pulls whatever the dead daemon already
finished straight from the store and simulates only the remainder --
which is why a SIGKILLed sweep, restarted, converges on results
byte-identical to an uninterrupted run.

After binding, the daemon writes ``service.json`` (host, resolved port,
pid) into the state directory; with ``--port 0`` that file is how clients
and the test battery discover the ephemeral port.
"""

from __future__ import annotations

import json
import os
import queue
import threading
import time
import traceback
import sys
from dataclasses import dataclass
from http.server import ThreadingHTTPServer
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.errors import ExecutionError, ServiceError
from repro.experiments.executor import SerialExecutor, execute_specs
from repro.experiments.store import ResultStore
from repro.service.jobs import JobStore
from repro.service.routes import ServiceRequestHandler
from repro.service.schema import Job, job_from_record

#: Name of the discovery file written into the state directory after bind.
DISCOVERY_FILE = "service.json"

_WORKER_JOIN_TIMEOUT_S = 5.0


@dataclass(frozen=True)
class ServiceConfig:
    """Everything ``venice-sim serve`` resolves from its flags.

    ``port=0`` binds an OS-assigned ephemeral port (read it back from
    ``service.json`` or :attr:`SimulationService.port`).  ``timeout`` is
    the per-spec execution timeout in seconds, ``None`` for no limit.
    """

    state_dir: Path
    host: str = "127.0.0.1"
    port: int = 0
    jobs: int = 2
    store_backend: str = "auto"
    timeout: Optional[float] = None
    verbose: bool = False


class _Server(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the service for its handlers."""

    daemon_threads = True
    # Restarting on the same --state dir must not fail on a lingering
    # TIME_WAIT socket from the previous daemon.
    allow_reuse_address = True

    def __init__(self, address, handler, app: "SimulationService") -> None:
        self.app = app
        super().__init__(address, handler)


class SimulationService:
    """One resident control plane over one state directory.

    The state directory is the whole identity of a service: the job table
    (``service.sqlite3``) and the result store (``store/``) live inside
    it, and any daemon pointed at the same directory serves the same jobs
    and the same cache.  Start order: :meth:`start` (bind + adopt +
    spawn workers), then :meth:`serve_forever` on the main thread;
    :meth:`shutdown` unwinds both.
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.state_dir = Path(config.state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.job_store = JobStore(self.state_dir / "service.sqlite3")
        self.store_dir = self.state_dir / "store"
        # Resolve "auto" once at boot so every per-job store opens the
        # same layout even if files appear mid-flight.
        self.store_backend = ResultStore(
            self.store_dir, backend=config.store_backend
        ).backend_name
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        self._workers: Tuple[threading.Thread, ...] = ()
        self._httpd: Optional[_Server] = None
        self._lock = threading.Lock()
        self._serving = threading.Event()
        self._busy = 0
        self._session = {
            "simulations": 0, "cache_hits": 0, "jobs_done": 0,
            "jobs_failed": 0,
        }
        self._started_at = time.time()
        self.adopted: Tuple[str, ...] = ()

    # -- lifecycle -------------------------------------------------------- #

    def start(self) -> None:
        """Bind, adopt orphans, re-enqueue queued work, spawn the pool."""
        self.adopted = tuple(self.job_store.adopt_orphans())
        for job_id in self.adopted:
            self.log(f"adopted orphaned job {job_id[:12]} back to queued")
        try:
            self._httpd = _Server(
                (self.config.host, self.config.port),
                ServiceRequestHandler,
                self,
            )
        except OSError as error:
            raise ServiceError(
                f"cannot bind {self.config.host}:{self.config.port}: {error}"
            )
        self._workers = tuple(
            threading.Thread(
                target=self._worker, name=f"venice-sim-worker-{index}",
                daemon=True,
            )
            for index in range(max(1, self.config.jobs))
        )
        for worker in self._workers:
            worker.start()
        # Enqueue after the workers exist, oldest first, so a backlog
        # left by a dead daemon starts draining immediately.
        for job_id in self.job_store.queued_ids():
            self._queue.put(job_id)
        self._write_discovery()
        self.log(
            f"serving on http://{self.host}:{self.port} "
            f"({len(self._workers)} workers, store={self.store_backend})"
        )

    def serve_forever(self) -> None:
        """Block the calling thread on the HTTP loop until shutdown."""
        if self._httpd is None:
            raise ServiceError("service not started; call start() first")
        self._serving.set()
        try:
            self._httpd.serve_forever(poll_interval=0.2)
        finally:
            self._serving.clear()

    def shutdown(self) -> None:
        """Stop accepting requests and wind the worker pool down.

        Safe to call more than once.  In-flight jobs get a bounded grace
        period; anything still running when the process exits is exactly
        the crash case the next boot's adoption pass repairs.
        """
        if self._httpd is not None:
            if self._serving.is_set():
                # BaseServer.shutdown() blocks on serve_forever's exit
                # event; calling it on a bound-but-not-serving server
                # would wait forever.
                self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        for _ in self._workers:
            self._queue.put(None)
        for worker in self._workers:
            worker.join(timeout=_WORKER_JOIN_TIMEOUT_S)
        self._workers = ()

    @property
    def host(self) -> str:
        """The bound host (valid after :meth:`start`)."""
        if self._httpd is None:
            raise ServiceError("service not started; call start() first")
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port -- the resolved one when configured as 0."""
        if self._httpd is None:
            raise ServiceError("service not started; call start() first")
        return self._httpd.server_address[1]

    def _write_discovery(self) -> None:
        payload = {
            "host": self.host,
            "port": self.port,
            "pid": os.getpid(),
            "started_at": self._started_at,
        }
        path = self.state_dir / DISCOVERY_FILE
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, indent=1) + "\n")
        os.replace(tmp, path)

    def log(self, message: str) -> None:
        """One stderr line per event when ``--verbose``; silent otherwise."""
        if self.config.verbose:
            print(f"[venice-sim serve] {message}", file=sys.stderr)

    # -- submission (called from HTTP handler threads) --------------------- #

    def submit(self, job: Job) -> Tuple[Dict[str, object], bool]:
        """Accept one validated job; returns ``(record, created)``.

        ``INSERT OR IGNORE`` in the job table decides who created the
        record; only the creating caller enqueues, so N concurrent
        duplicate submissions dispatch the job exactly once and every
        caller reads back the same record under the same id.
        """
        created = self.job_store.submit(
            job.job_id, job.kind, job.label, job.canonical
        )
        if created:
            self._queue.put(job.job_id)
            self.log(f"queued {job.kind} job {job.job_id[:12]} ({job.label})")
        record = self.job_store.get(job.job_id)
        if record is None:  # pragma: no cover - the insert just succeeded
            raise ServiceError(f"job {job.job_id[:12]} vanished after submit")
        return record, created

    # -- execution (worker threads) ---------------------------------------- #

    def _worker(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            # The guarded claim: a stale or duplicate queue entry (the job
            # already ran, or another worker holds it) is dropped here.
            if not self.job_store.start(job_id):
                continue
            with self._lock:
                self._busy += 1
            try:
                self._execute(job_id)
            finally:
                with self._lock:
                    self._busy -= 1

    def _execute(self, job_id: str) -> None:
        record = self.job_store.get(job_id)
        if record is None:  # pragma: no cover - ids come from the table
            raise ServiceError(f"no record for claimed job {job_id[:12]}")
        # A fresh store per job makes `simulated` a pure delta: every
        # write this store performs belongs to this job.
        store = ResultStore(self.store_dir, backend=self.store_backend)
        executor = SerialExecutor(timeout=self.config.timeout)
        try:
            # Rebuild inside the guard: a corrupt persisted record must
            # fail its job, not kill the worker thread.
            job = job_from_record(job_id, record["payload"])
            result = self._result_payload(job, store, executor)
        except Exception:  # noqa: BLE001 - a failed job must not kill a worker
            self.job_store.fail(job_id, traceback.format_exc(limit=8))
            with self._lock:
                self._session["jobs_failed"] += 1
            self.log(f"job {job_id[:12]} failed")
            return
        counters = store.counters()
        self.job_store.finish(job_id, result, simulated=counters["writes"])
        with self._lock:
            self._session["jobs_done"] += 1
            self._session["simulations"] += counters["writes"]
            self._session["cache_hits"] += counters["hits"]
        self.log(
            f"job {job_id[:12]} done "
            f"({counters['writes']} simulated, {counters['hits']} cached)"
        )

    @staticmethod
    def _result_payload(job: Job, store: ResultStore, executor) -> dict:
        # Execute member specs one at a time: `execute_specs` only persists
        # results after its whole batch completes, so batching a sweep
        # would leave a SIGKILLed daemon with zero durable progress.
        # Per-member calls write each cell to the store as it finishes --
        # the crash window restart adoption converges from.  Dedup and
        # cache hits behave identically; like the batch form, a failed
        # member is collected and every healthy member still runs.
        members = (
            list(job.fleet.active_members())
            if job.fleet is not None
            else job.specs
        )
        results = {}
        failures = []
        for spec in members:
            try:
                results.update(
                    execute_specs([spec], executor=executor, store=store)
                )
            except ExecutionError as error:
                failures.extend(error.failures)
        if failures:
            raise ExecutionError(failures)
        if job.kind == "fleet":
            from repro.fleet.run import run_fleet

            # Every active member is now cached, so this is pure roll-up.
            return run_fleet(job.fleet, executor=executor, store=store)
        runs = [
            {
                "digest": spec.digest,
                "label": spec.label(),
                "result": results[spec].to_dict(),
            }
            for spec in job.specs
        ]
        if job.kind == "run":
            return {"experiment": "run", **runs[0]}
        return {"experiment": "sweep", "runs": runs}

    # -- observability ------------------------------------------------------ #

    def health(self) -> Dict[str, object]:
        """The ``/health`` payload: liveness plus pool/store/job statistics."""
        with self._lock:
            busy = self._busy
            session = dict(self._session)
        store = ResultStore(self.store_dir, backend=self.store_backend)
        return {
            "status": "ok",
            "pid": os.getpid(),
            "uptime_seconds": time.time() - self._started_at,
            "host": self.host,
            "port": self.port,
            "jobs": self.job_store.counts(),
            "adopted_on_boot": len(self.adopted),
            "pool": {
                "workers": len(self._workers),
                "busy": busy,
                "backlog": self._queue.qsize(),
            },
            "store": {
                "backend": self.store_backend,
                "results": len(store),
            },
            "session": session,
        }


def read_discovery(state_dir: Union[str, Path]) -> Dict[str, object]:
    """Parse ``service.json`` from a state directory.

    Raises :class:`~repro.errors.ServiceError` when no daemon has written
    one -- the caller is probably pointing at the wrong ``--state``.
    """
    path = Path(state_dir) / DISCOVERY_FILE
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        raise ServiceError(
            f"no {DISCOVERY_FILE} in {state_dir}; is the daemon running "
            "with this --state directory?"
        )
    except (OSError, ValueError) as error:
        raise ServiceError(f"unreadable {path}: {error}")
