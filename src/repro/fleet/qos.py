"""Dispatcher-level QoS policies: shaping, fairness, and admission.

The fleet dispatcher of :mod:`repro.fleet.member` merges every tenant's
open-loop stream into one arrival-sorted global stream and hands it to the
placement policy.  Without QoS the merge is strictly arrival-ordered, so a
noisy neighbour -- a tenant offering far more than its share -- inflates
every other tenant's queueing delay (the *victim p99*).  This module is
the scheduling layer between the merge and the placement dispatch.

A policy is a pure value named by its canonical spec string
(:func:`canonical_qos`), which is what a member
:class:`~repro.experiments.spec.RunSpec` carries in its ``qos`` field --
and therefore in its content digest.  Four policies exist:

* ``none`` -- the empty policy; canonicalises to the empty string, so a
  spec without QoS digests (and caches) identically to one built before
  this module existed;
* ``token-bucket:<rate>,<burst>`` -- per-tenant token-bucket *shaping*:
  each tenant's requests are released at most ``rate`` per second after an
  initial ``burst``-deep bucket drains; excess requests are delayed, never
  dropped, so a bursting tenant's surplus queues against its own bucket
  instead of against its neighbours;
* ``wfq:<w0,w1,...>`` -- weighted fair queueing: requests are reordered by
  per-tenant virtual finish times (weights cycle when the fleet has more
  tenants than weights) and re-assigned onto the *original* arrival
  instants, so the aggregate injection pattern is preserved exactly while
  a heavy tenant's surplus drifts behind light tenants' requests;
* ``slo:<p99_us>,<admit>`` -- SLO-aware admission control: a deterministic
  fluid model of the dispatcher backlog predicts each request's queueing
  wait; when the prediction exceeds ``p99_us`` the dispatcher sheds
  requests, but only from tenants currently exceeding their fair share
  (the bursting tenant first) and never below the ``admit`` fraction of
  any tenant's offered load.

Every policy is a deterministic function of (spec, tenant count, seed) and
of the merged stream it is applied to -- never of execution order -- so
each member device independently reconstructs the identical schedule
inside its worker process, exactly like placement.

See docs/qos.md for the narrative guide and DESIGN.md §13 for the
engineering notes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.config.ssd_config import NS_PER_S
from repro.errors import ConfigurationError

#: Bucket depth used when ``token-bucket:<rate>`` omits the burst term.
DEFAULT_BUCKET_BURST = 8.0

#: Admitted fraction used when ``slo:<p99_us>`` omits the admit floor.
DEFAULT_SLO_ADMIT = 0.5

#: One entry of the merged tenant stream, as built by
#: :func:`repro.fleet.member.member_requests`: ``(arrival_ns, tenant, k,
#: kind, offset, size, queue)``.  Policies only interpret the first three
#: fields (the deterministic total order) and carry the rest through.
Entry = Tuple


def _positive_float(text: str, what: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise ConfigurationError(f"bad {what} {text!r} in qos spec")
    if not value > 0 or not math.isfinite(value):
        raise ConfigurationError(f"{what} must be a positive finite number, got {text!r}")
    return value


def canonical_qos(text: str) -> str:
    """Normalise a QoS policy spec to its canonical form.

    ``none`` (and the empty string) canonicalise to ``""`` -- the strict
    no-op -- so specs without QoS keep their pre-QoS digests.  Numbers
    normalise through ``format(x, 'g')`` (``token-bucket:2000.0,8`` ==
    ``token-bucket:2000,8``), the token-bucket burst and the SLO admit
    floor gain their defaults when omitted, and unknown policies raise
    :class:`~repro.errors.ConfigurationError`.  Canonicalisation is what
    makes equal policies digest -- and therefore cache -- identically.
    """
    raw = text.strip().lower()
    if raw in ("", "none"):
        return ""
    if raw.startswith("token-bucket:"):
        body = raw[len("token-bucket:"):]
        parts = [part.strip() for part in body.split(",") if part.strip()]
        if not 1 <= len(parts) <= 2:
            raise ConfigurationError(
                f"bad token-bucket spec {text!r}; expected "
                "'token-bucket:<rate>[,<burst>]'"
            )
        rate = _positive_float(parts[0], "token rate")
        burst = (
            _positive_float(parts[1], "bucket burst")
            if len(parts) == 2
            else DEFAULT_BUCKET_BURST
        )
        if burst < 1.0:
            raise ConfigurationError(
                f"bucket burst must be >= 1 token, got {burst:g}"
            )
        return f"token-bucket:{rate:g},{burst:g}"
    if raw.startswith("wfq:"):
        body = raw[len("wfq:"):]
        parts = [part.strip() for part in body.split(",") if part.strip()]
        if not parts:
            raise ConfigurationError(
                f"bad wfq spec {text!r}; expected 'wfq:<w0,w1,...>'"
            )
        weights = [_positive_float(part, "wfq weight") for part in parts]
        return "wfq:" + ",".join(f"{weight:g}" for weight in weights)
    if raw.startswith("slo:"):
        body = raw[len("slo:"):]
        parts = [part.strip() for part in body.split(",") if part.strip()]
        if not 1 <= len(parts) <= 2:
            raise ConfigurationError(
                f"bad slo spec {text!r}; expected 'slo:<p99_us>[,<admit>]'"
            )
        p99_us = _positive_float(parts[0], "slo p99 target")
        admit = (
            _positive_float(parts[1], "admit floor")
            if len(parts) == 2
            else DEFAULT_SLO_ADMIT
        )
        if admit > 1.0:
            raise ConfigurationError(
                f"admit floor is a fraction in (0, 1], got {admit:g}"
            )
        return f"slo:{p99_us:g},{admit:g}"
    raise ConfigurationError(
        f"unknown qos policy {text!r}; known: none, "
        "token-bucket:<rate>[,<burst>], wfq:<w0,w1,...>, "
        "slo:<p99_us>[,<admit>]"
    )


def qos_names() -> List[str]:
    """The QoS policy family names, for CLI help and ``list``."""
    return [
        "none",
        "token-bucket:<rate>,<burst>",
        "wfq:<w0,w1,...>",
        "slo:<p99_us>,<admit>",
    ]


@dataclass
class QosDecision:
    """What a policy did to the merged stream.

    ``entries`` is the rescheduled stream, re-sorted by the deterministic
    ``(arrival, tenant, k)`` total order; ``shed`` maps tenant id to the
    number of requests admission control dropped (empty for shaping and
    fairness policies, which never drop).
    """

    entries: List[Entry]
    shed: Dict[int, int] = field(default_factory=dict)


class QosPolicy:
    """Base class: reschedule the merged tenant stream at dispatch time.

    Subclasses implement :meth:`apply`, a pure function of the entry list
    (arrival-sorted, see :data:`Entry`): it may delay entries (shaping),
    reorder them over the original arrival instants (fairness), or drop
    them (admission control), and must be deterministic so every fleet
    member reconstructs the identical schedule independently.
    """

    def __init__(self, tenants: int) -> None:
        if tenants < 1:
            raise ConfigurationError(f"qos needs >= 1 tenant, got {tenants}")
        self.tenants = tenants

    def apply(self, entries: Sequence[Entry]) -> QosDecision:
        """Reschedule ``entries``; return the decision (new list, sheds)."""
        raise NotImplementedError

    def to_spec(self) -> str:
        """The policy's canonical spec string."""
        raise NotImplementedError


class NoQos(QosPolicy):
    """The identity policy: dispatch strictly in arrival order."""

    def apply(self, entries):
        """Return the stream unchanged (fresh list, no sheds)."""
        return QosDecision(list(entries))

    def to_spec(self):
        """Canonical spec: the empty string (strict no-op)."""
        return ""


class TokenBucketQos(QosPolicy):
    """Per-tenant token-bucket shaping: delay a tenant's excess, drop nothing.

    Each tenant owns a bucket of ``burst`` tokens refilled at ``rate``
    tokens per second.  A request arriving to a non-empty bucket is
    released immediately; otherwise its release is pushed to the instant
    its token accrues, and per-tenant releases stay monotone (a request
    never overtakes its predecessor's release).  Tenants offering less
    than ``rate`` are untouched -- which is exactly the isolation claim
    the ``qos sweep`` measures: the victim's curve flattens because the
    bursting tenant's surplus now queues against its own bucket.
    """

    def __init__(self, tenants: int, rate: float, burst: float) -> None:
        super().__init__(tenants)
        if rate <= 0:
            raise ConfigurationError(f"token rate must be > 0, got {rate}")
        if burst < 1.0:
            raise ConfigurationError(f"bucket burst must be >= 1, got {burst}")
        self.rate = rate
        self.burst = burst

    def apply(self, entries):
        """Release each entry when its tenant's bucket has a token."""
        interval = NS_PER_S / self.rate  # ns per token
        state: Dict[int, Tuple[float, int]] = {}  # tenant -> (tokens, last_ns)
        out: List[Entry] = []
        for entry in entries:
            arrival, tenant = entry[0], entry[1]
            tokens, last = state.get(tenant, (self.burst, arrival))
            # The bucket refills in real time, but a request that arrives
            # behind an already-committed release queues from that release.
            start = arrival if arrival > last else last
            tokens = min(self.burst, tokens + (start - last) / interval)
            if tokens >= 1.0:
                release = start
                tokens -= 1.0
            else:
                release = start + int(math.ceil((1.0 - tokens) * interval))
                tokens = 0.0
            state[tenant] = (tokens, release)
            out.append((release,) + tuple(entry[1:]))
        out.sort(key=lambda entry: entry[:3])
        return QosDecision(out)

    def to_spec(self):
        """Canonical spec: ``token-bucket:<rate>,<burst>``."""
        return f"token-bucket:{self.rate:g},{self.burst:g}"


class WeightedFairQueueingQos(QosPolicy):
    """Weighted fair queueing over tenant streams at dispatch time.

    Each request gets a per-tenant virtual finish time
    ``vf_k = max(arrival_k, vf_{k-1}) + cost(tenant)`` where the service
    cost is the stream's nominal per-tenant inter-arrival gap scaled by
    ``mean_weight / weight(tenant)`` -- a tenant with twice the weight
    accrues virtual time half as fast.  Requests are then re-assigned, in
    virtual-finish order, onto the *sorted multiset of original arrival
    instants*: the aggregate injection pattern (count, instants, span) is
    preserved exactly, only *which tenant's request* occupies each instant
    changes, and within a tenant the original order is kept (virtual
    finishes are strictly increasing per tenant).  Weights cycle when the
    fleet has more tenants than weights (``wfq:4,1`` alternates).
    """

    def __init__(self, tenants: int, weights: Sequence[float]) -> None:
        super().__init__(tenants)
        if not weights or any(weight <= 0 for weight in weights):
            raise ConfigurationError(
                f"wfq weights must be positive, got {list(weights)}"
            )
        self.weights = tuple(float(weight) for weight in weights)

    def weight_for(self, tenant: int) -> float:
        """The weight serving ``tenant`` (weights cycle)."""
        return self.weights[tenant % len(self.weights)]

    def apply(self, entries):
        """Reorder by virtual finish over the original arrival instants."""
        n = len(entries)
        if n <= 1:
            return QosDecision(list(entries))
        slots = sorted(entry[0] for entry in entries)
        span = slots[-1] - slots[0]
        # Nominal per-tenant service gap of the merged stream; the unit of
        # virtual time, so weights express relative -- not absolute -- rates.
        base_gap = max(1.0, span / (n - 1)) * self.tenants
        mean_weight = sum(
            self.weight_for(tenant) for tenant in range(self.tenants)
        ) / self.tenants
        finish: Dict[int, float] = {}
        keyed = []
        for entry in entries:
            tenant = entry[1]
            cost = base_gap * mean_weight / self.weight_for(tenant)
            vf = max(float(entry[0]), finish.get(tenant, 0.0)) + cost
            finish[tenant] = vf
            keyed.append((vf, entry))
        keyed.sort(key=lambda pair: (pair[0], pair[1][1], pair[1][2]))
        out = [
            (slots[index],) + tuple(entry[1:])
            for index, (_vf, entry) in enumerate(keyed)
        ]
        out.sort(key=lambda entry: entry[:3])
        return QosDecision(out)

    def to_spec(self):
        """Canonical spec: ``wfq:<w0,w1,...>``."""
        return "wfq:" + ",".join(f"{weight:g}" for weight in self.weights)


class SloAdmissionQos(QosPolicy):
    """SLO-aware admission control: shed the over-share tenant's excess.

    A deterministic fluid model walks the merged stream in arrival order:
    the dispatcher backlog grows by one per admitted request and drains at
    the stream's *nominal* capacity (``tenants x`` the median per-tenant
    offered rate -- the median makes the estimate robust to one bursting
    outlier).  When a request's predicted queueing wait
    (``backlog / capacity``) exceeds the ``p99_us`` target, it is shed --
    but only if its tenant currently exceeds its ``1/tenants`` fair share
    of everything offered so far (the bursting tenant sheds first, victims
    pass through), and never below the ``admit`` fraction of that tenant's
    total offered load.  Sheds are real drops: the requests vanish from
    every member's dispatch stream, and the per-tenant shed counts are
    reported in the decision.
    """

    def __init__(self, tenants: int, p99_us: float, admit: float) -> None:
        super().__init__(tenants)
        if p99_us <= 0:
            raise ConfigurationError(f"slo target must be > 0 us, got {p99_us}")
        if not 0 < admit <= 1:
            raise ConfigurationError(
                f"admit floor must be in (0, 1], got {admit}"
            )
        self.p99_us = p99_us
        self.admit = admit

    def _capacity(self, entries: Sequence[Entry]) -> float:
        """Nominal drain rate, requests/ns: tenants x median tenant rate."""
        span = max(1, entries[-1][0] - entries[0][0])
        offered: Dict[int, int] = {}
        for entry in entries:
            offered[entry[1]] = offered.get(entry[1], 0) + 1
        rates = sorted(count / span for count in offered.values())
        median = rates[len(rates) // 2]
        return max(self.tenants * median, 1.0 / span)

    def apply(self, entries):
        """Walk the fluid backlog; shed over-share excess past the target."""
        if not entries:
            return QosDecision([])
        capacity = self._capacity(entries)
        limit_ns = self.p99_us * 1000.0
        offered: Dict[int, int] = {}
        for entry in entries:
            offered[entry[1]] = offered.get(entry[1], 0) + 1
        max_shed = {
            tenant: count - int(math.ceil(self.admit * count))
            for tenant, count in offered.items()
        }
        backlog = 0.0
        previous = entries[0][0]
        seen: Dict[int, int] = {}
        shed: Dict[int, int] = {}
        total_seen = 0
        out: List[Entry] = []
        for entry in entries:
            arrival, tenant = entry[0], entry[1]
            backlog = max(0.0, backlog - (arrival - previous) * capacity)
            previous = arrival
            seen[tenant] = seen.get(tenant, 0) + 1
            total_seen += 1
            over_share = seen[tenant] * self.tenants > total_seen
            if (
                backlog / capacity > limit_ns
                and over_share
                and shed.get(tenant, 0) < max_shed[tenant]
            ):
                shed[tenant] = shed.get(tenant, 0) + 1
                continue
            backlog += 1.0
            out.append(entry)
        return QosDecision(out, shed)

    def to_spec(self):
        """Canonical spec: ``slo:<p99_us>,<admit>``."""
        return f"slo:{self.p99_us:g},{self.admit:g}"


def build_qos(spec: str, tenants: int, seed: int = 42) -> QosPolicy:
    """Instantiate the policy named by ``spec`` for ``tenants`` tenants.

    ``spec`` is canonicalised first, so aliases, number formats, and
    omitted defaults are accepted everywhere a policy is named.  ``seed``
    is accepted for signature symmetry with
    :func:`~repro.fleet.placement.build_placement`; every current policy
    is seed-free (fully determined by its spec and the stream).
    """
    del seed  # all current policies are seed-free
    canonical = canonical_qos(spec)
    if not canonical:
        return NoQos(tenants)
    if canonical.startswith("token-bucket:"):
        rate, burst = canonical[len("token-bucket:"):].split(",")
        return TokenBucketQos(tenants, float(rate), float(burst))
    if canonical.startswith("wfq:"):
        weights = [float(part) for part in canonical[len("wfq:"):].split(",")]
        return WeightedFairQueueingQos(tenants, weights)
    rate_part = canonical[len("slo:"):].split(",")
    return SloAdmissionQos(tenants, float(rate_part[0]), float(rate_part[1]))
