"""Host-side placement policies: which SSD of a fleet serves which I/O.

A fleet's dispatcher maps every request of the global tenant stream onto
one (or, for striping, several) member devices.  Policies are pure values:
a policy is fully described by its canonical spec string
(:func:`canonical_placement`), which is what a fleet member descriptor --
and therefore every member :class:`~repro.experiments.spec.RunSpec`
digest -- carries.  Three policies exist:

* ``round-robin`` -- request *k* of the merged stream goes to device
  ``k % N``: perfect request-count balance, no locality,
* ``stripe:<bytes>`` -- classic RAID-0 LBA striping over the fleet address
  space with a configurable stripe size; requests crossing stripe
  boundaries split into per-device fragments (uneven at the boundaries),
* ``hash-tenant`` -- every request of a tenant lands on one device chosen
  by a seeded stable hash of the tenant id: tenant affinity, imbalance
  under skewed tenant populations.

Policies are deterministic functions of their spec, the fleet shape, and
the seed -- never of execution order -- so member devices can each rebuild
the dispatch decision independently inside worker processes.
"""

from __future__ import annotations

import hashlib
from typing import Iterator, List, Tuple

from repro.errors import ConfigurationError

#: Default stripe size when ``stripe`` is given without a byte count.
DEFAULT_STRIPE_BYTES = 256 * 1024

#: Smallest accepted stripe (one sector).
MIN_STRIPE_BYTES = 512

_SIZE_SUFFIXES = {
    "kib": 1024,
    "k": 1024,
    "mib": 1024 * 1024,
    "m": 1024 * 1024,
    "gib": 1024 * 1024 * 1024,
    "g": 1024 * 1024 * 1024,
}

#: One fragment of a dispatched request: (device index, device-local
#: offset, fragment size in bytes).
Fragment = Tuple[int, int, int]


def _parse_stripe_bytes(text: str) -> int:
    """Parse a stripe size (plain bytes or KiB/MiB/GiB suffixed)."""
    raw = text.strip().lower()
    factor = 1
    for suffix, multiplier in _SIZE_SUFFIXES.items():
        if raw.endswith(suffix):
            raw = raw[: -len(suffix)]
            factor = multiplier
            break
    try:
        value = int(raw) * factor
    except ValueError:
        raise ConfigurationError(f"bad stripe size {text!r}")
    if value < MIN_STRIPE_BYTES:
        raise ConfigurationError(
            f"stripe size must be >= {MIN_STRIPE_BYTES} bytes, got {value}"
        )
    return value


def canonical_placement(text: str) -> str:
    """Normalise a placement spec to its canonical form.

    Aliases collapse (``rr`` == ``round-robin``, ``hash`` ==
    ``hash-tenant``), stripe sizes normalise to plain bytes (``stripe:256KiB``
    == ``stripe:262144``), and a bare ``stripe`` gets the default size.
    Canonicalisation is what makes equal policies digest -- and therefore
    cache -- identically.  Unknown policies raise
    :class:`~repro.errors.ConfigurationError`.
    """
    raw = text.strip().lower()
    if raw in ("round-robin", "rr"):
        return "round-robin"
    if raw in ("hash-tenant", "hash"):
        return "hash-tenant"
    if raw == "stripe":
        return f"stripe:{DEFAULT_STRIPE_BYTES}"
    if raw.startswith("stripe:"):
        return f"stripe:{_parse_stripe_bytes(raw[len('stripe:'):])}"
    raise ConfigurationError(
        f"unknown placement policy {text!r}; known: round-robin, "
        "stripe[:BYTES], hash-tenant"
    )


def placement_names() -> List[str]:
    """The placement policy family names, for CLI help and ``list``."""
    return ["round-robin", "stripe:<bytes>", "hash-tenant"]


class PlacementPolicy:
    """Base class: dispatch one request to member-device fragments.

    Subclasses implement :meth:`place`; everything else (canonical spec,
    device count) is shared.  ``place`` yields :data:`Fragment` tuples
    whose local offsets live in the *global* fleet coordinate space for
    non-striped policies (the caller folds them into the device footprint)
    and in stripe-folded device-local space for striping.
    """

    def __init__(self, devices: int) -> None:
        if devices < 1:
            raise ConfigurationError(f"a fleet needs >= 1 device, got {devices}")
        self.devices = devices

    def place(
        self, ordinal: int, tenant: int, offset_bytes: int, size_bytes: int
    ) -> Iterator[Fragment]:
        """Yield the ``(device, local_offset, size)`` fragments of one request.

        ``ordinal`` is the request's index in the merged, arrival-sorted
        global stream; ``tenant`` its tenant id; ``offset_bytes`` its
        offset in the global fleet address space.
        """
        raise NotImplementedError

    def to_spec(self) -> str:
        """The policy's canonical spec string."""
        raise NotImplementedError


class RoundRobinPlacement(PlacementPolicy):
    """Request ``k`` of the merged stream goes to device ``k % N``."""

    def place(self, ordinal, tenant, offset_bytes, size_bytes):
        """One fragment: the whole request, on device ``ordinal % N``."""
        yield (ordinal % self.devices, offset_bytes, size_bytes)

    def to_spec(self):
        """Canonical spec: ``round-robin``."""
        return "round-robin"


class HashTenantPlacement(PlacementPolicy):
    """All of a tenant's requests land on one stably-hashed device."""

    def __init__(self, devices: int, seed: int = 42) -> None:
        super().__init__(devices)
        self.seed = seed

    def device_for_tenant(self, tenant: int) -> int:
        """The device serving ``tenant`` (seeded sha256, not ``hash()``--
        Python's string hash is salted per process and would break
        cross-process determinism)."""
        digest = hashlib.sha256(f"{self.seed}:{tenant}".encode()).digest()
        return int.from_bytes(digest[:8], "big") % self.devices

    def place(self, ordinal, tenant, offset_bytes, size_bytes):
        """One fragment: the whole request, on the tenant's home device."""
        yield (self.device_for_tenant(tenant), offset_bytes, size_bytes)

    def to_spec(self):
        """Canonical spec: ``hash-tenant``."""
        return "hash-tenant"


class LbaStripingPlacement(PlacementPolicy):
    """RAID-0 striping of the global LBA space across member devices.

    Stripe ``s`` (global bytes ``[s*B, (s+1)*B)``) lives on device
    ``s % N`` at device-local offset ``(s // N) * B + intra-stripe
    offset``.  A request crossing stripe boundaries splits into one
    fragment per stripe -- the first and last fragments are *uneven*
    (shorter than ``B``) whenever the request is not stripe-aligned, which
    is exactly the boundary behaviour the fleet edge-case tests pin down.
    """

    def __init__(self, devices: int, stripe_bytes: int) -> None:
        super().__init__(devices)
        if stripe_bytes < MIN_STRIPE_BYTES:
            raise ConfigurationError(
                f"stripe size must be >= {MIN_STRIPE_BYTES}, got {stripe_bytes}"
            )
        self.stripe_bytes = stripe_bytes

    def place(self, ordinal, tenant, offset_bytes, size_bytes):
        """Split the request at stripe boundaries; one fragment per stripe."""
        stripe = self.stripe_bytes
        offset = offset_bytes
        remaining = size_bytes
        while remaining > 0:
            index = offset // stripe
            within = offset - index * stripe
            take = min(remaining, stripe - within)
            local = (index // self.devices) * stripe + within
            yield (index % self.devices, local, take)
            offset += take
            remaining -= take

    def to_spec(self):
        """Canonical spec: ``stripe:<bytes>``."""
        return f"stripe:{self.stripe_bytes}"


def build_placement(spec: str, devices: int, seed: int = 42) -> PlacementPolicy:
    """Instantiate the policy named by ``spec`` for a fleet of ``devices``.

    ``spec`` is canonicalised first, so aliases and size suffixes are
    accepted everywhere a placement is named.
    """
    canonical = canonical_placement(spec)
    if canonical == "round-robin":
        return RoundRobinPlacement(devices)
    if canonical == "hash-tenant":
        return HashTenantPlacement(devices, seed)
    return LbaStripingPlacement(
        devices, _parse_stripe_bytes(canonical[len("stripe:"):])
    )
