"""Fleet execution and metric roll-up: aggregate a multi-SSD array.

:func:`run_fleet` pushes a :class:`~repro.fleet.spec.FleetSpec`'s member
specs through the ordinary
:func:`~repro.experiments.executor.execute_specs` stack (dedup, ``--jobs``
fan-out, content-addressed store) and reduces the member
:class:`~repro.metrics.collector.RunResult`\\ s into one fleet payload:

* **aggregate throughput** -- total completed requests over the fleet
  makespan (the slowest member's execution window), plus the sum of
  per-device IOPS as the embarrassingly-parallel upper bound;
* **cross-device latency** -- per-device streaming histograms
  (:meth:`~repro.sim.stats.LatencyRecorder.to_payload`) merged into one
  recorder, so fleet p50/p99/p999 carry the same documented 1% relative
  bound as single-device percentiles (exact mode merges raw samples);
* **skew/imbalance** -- max/mean request imbalance and the coefficient of
  variation across member devices, the dispatcher-quality metrics;
* **per-tenant latency** -- when members exported per-tenant histograms
  (QoS/burst fleets do), each tenant's recorders merge across devices into
  per-tenant p50/p99 roll-ups -- the noisy-neighbour visibility the QoS
  isolation sweep charts.

:func:`run_fleet_sweep` charts those metrics against device count and
placement policy in one deduplicated executor pass.  Reducers never
simulate, so both entry points are cache-replayable: a warm-store re-run
performs zero simulations and emits byte-identical JSON.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Union

from repro.config.ssd_config import NS_PER_S, DesignKind
from repro.errors import ConfigurationError
from repro.experiments.executor import execute_specs
from repro.experiments.spec import ExperimentScale, RunSpec
from repro.fleet.placement import canonical_placement
from repro.fleet.spec import FleetSpec, make_fleet_spec
from repro.metrics.collector import RunResult
from repro.sim.stats import LatencyRecorder

#: Default device counts of a fleet scaling sweep.
DEFAULT_DEVICE_COUNTS = (1, 2, 4)

#: Default placement policies of a placement sweep.
DEFAULT_PLACEMENTS = ("round-robin",)


def merge_latency_payloads(
    payloads: Sequence[Optional[Dict[str, object]]]
) -> Optional[LatencyRecorder]:
    """Merge per-device latency payloads into one recorder (None if none).

    Skips members that exported no histogram (e.g. store entries written
    before histogram export existed); mixing exact- and histogram-mode
    payloads raises, matching :meth:`LatencyRecorder.merge`.
    """
    merged: Optional[LatencyRecorder] = None
    for payload in payloads:
        if payload is None:
            continue
        recorder = LatencyRecorder.from_payload(payload)
        if merged is None:
            merged = recorder
        else:
            merged.merge(recorder)
    return merged


def merge_tenant_payloads(
    results: Sequence[RunResult],
) -> Dict[str, LatencyRecorder]:
    """Merge per-tenant histogram payloads across member results.

    Returns ``{tenant_id: merged recorder}`` over every tenant any member
    reported (tenant keys are strings, as serialised); empty when no
    member exported tenant histograms -- which is how QoS-free fleet
    payloads stay byte-identical.
    """
    per_tenant: Dict[str, List[Dict[str, object]]] = {}
    for result in results:
        if not result.tenant_histograms:
            continue
        for tenant, payload in result.tenant_histograms.items():
            per_tenant.setdefault(tenant, []).append(payload)
    merged: Dict[str, LatencyRecorder] = {}
    for tenant in sorted(per_tenant, key=int):
        recorder = merge_latency_payloads(per_tenant[tenant])
        if recorder is not None:
            merged[tenant] = recorder
    return merged


def _imbalance_stats(counts: Sequence[int]) -> Dict[str, float]:
    """Skew metrics over per-device completed-request counts."""
    total = sum(counts)
    mean = total / len(counts) if counts else 0.0
    if mean <= 0:
        return {"max_over_mean": 0.0, "cv": 0.0, "min": 0.0, "max": 0.0}
    variance = sum((count - mean) ** 2 for count in counts) / len(counts)
    return {
        "max_over_mean": max(counts) / mean,
        "cv": math.sqrt(variance) / mean,
        "min": float(min(counts)),
        "max": float(max(counts)),
    }


def _confidence_interval(values: Sequence[float]) -> Dict[str, float]:
    """95% normal-approximation CI for the mean of per-device values.

    With one sampled device the spread is unknowable, so the half-width
    is reported as 0.0 -- the caller still sees the point estimate.
    """
    k = len(values)
    mean = sum(values) / k if k else 0.0
    if k < 2:
        return {"mean": mean, "half_width": 0.0, "lo": mean, "hi": mean}
    variance = sum((value - mean) ** 2 for value in values) / (k - 1)
    half = 1.96 * math.sqrt(variance / k)
    return {"mean": mean, "half_width": half, "lo": mean - half, "hi": mean + half}


def roll_up(
    members: Sequence[RunSpec],
    results: Dict[RunSpec, RunResult],
    population: Optional[int] = None,
) -> Dict[str, object]:
    """Reduce member results into the fleet-level metrics cell.

    Pure function of the results (never simulates), shared by
    :func:`run_fleet` and :func:`run_fleet_sweep`.

    With ``population`` (the full device count behind a sampled run),
    extensive totals -- completed requests, aggregate IOPS, summed device
    IOPS -- are scaled by ``population / len(members)``, and a ``"sample"``
    block reports 95% confidence intervals for per-device IOPS and p99
    across the simulated representatives.  Intensive metrics (latency
    quantiles, imbalance) are reported over the sample as-is.
    """
    member_results = [results[spec] for spec in members]
    completed = [result.requests_completed for result in member_results]
    total_completed = sum(completed)
    makespan_ns = max(
        (result.execution_time_ns for result in member_results), default=0
    )
    merged = merge_latency_payloads(
        [result.latency_histogram for result in member_results]
    )
    if merged is not None and merged.count:
        latency = {
            "count": merged.count,
            "mean_ns": merged.mean,
            "p50_ns": merged.p(0.50),
            "p99_ns": merged.p99,
            "p999_ns": merged.p999,
            "max_ns": merged.maximum,
        }
    else:
        latency = {
            "count": 0, "mean_ns": 0.0, "p50_ns": 0.0,
            "p99_ns": 0.0, "p999_ns": 0.0, "max_ns": 0.0,
        }
    per_device: List[Dict[str, object]] = [
        {
            "design": result.design,
            "config": result.config_name,
            "requests_completed": result.requests_completed,
            "iops": result.iops,
            "mean_latency_ns": result.mean_latency_ns,
            "p99_latency_ns": result.p99_latency_ns,
            "execution_time_ns": result.execution_time_ns,
            "stalled": result.extra.get("requests_stalled", 0.0),
        }
        for result in member_results
    ]
    simulated = len(members)
    factor = 1.0
    if population is not None and population > simulated:
        factor = population / simulated
    payload: Dict[str, object] = {
        "devices": population if population is not None else simulated,
        "requests_completed": int(round(total_completed * factor)),
        "makespan_ns": makespan_ns,
        "aggregate_iops": (
            total_completed * factor * NS_PER_S / makespan_ns
            if makespan_ns > 0
            else 0.0
        ),
        "sum_device_iops": (
            sum(result.iops for result in member_results) * factor
        ),
        "latency": latency,
        "imbalance": _imbalance_stats(completed),
        "per_device": per_device,
    }
    tenant_recorders = merge_tenant_payloads(member_results)
    if tenant_recorders:
        # Key omitted when no member exported per-tenant histograms, so
        # QoS-free fleet payloads are unchanged.
        payload["tenant_latency"] = {
            tenant: {
                "count": recorder.count,
                "mean_ns": recorder.mean,
                "p50_ns": recorder.p(0.50),
                "p99_ns": recorder.p99,
                "max_ns": recorder.maximum,
            }
            for tenant, recorder in tenant_recorders.items()
        }
    if population is not None:
        payload["sample"] = {
            "devices_simulated": simulated,
            "scale_factor": factor,
            "confidence": 0.95,
            "iops_per_device_ci": _confidence_interval(
                [result.iops for result in member_results]
            ),
            "p99_ns_ci": _confidence_interval(
                [result.p99_latency_ns for result in member_results]
            ),
        }
    return payload


def run_fleet(
    fleet: FleetSpec,
    *,
    executor=None,
    store=None,
) -> Dict[str, object]:
    """Execute a fleet and return its rolled-up metrics payload.

    Member specs go through
    :func:`~repro.experiments.executor.execute_specs`, so ``--jobs`` and
    ``--cache`` behave exactly as for the paper figures: parallel results
    are bit-identical to serial ones, and a warm store serves everything
    without simulating.

    A fleet with ``sample=K`` simulates only its K stratified
    representatives and extrapolates the totals (with confidence
    intervals), so a 1000-device fleet costs the same order of time as a
    K-device one.
    """
    active = list(fleet.active_members())
    sampled = len(active) < fleet.devices
    results = execute_specs(active, executor=executor, store=store)
    payload: Dict[str, object] = {
        "experiment": "fleet-run",
        "fleet_digest": fleet.digest,
        "placement": fleet.placement,
        "tenants": fleet.tenants,
        "workload": fleet.members[0].workload,
        "preset": fleet.members[0].preset,
        "member_designs": [member.design for member in fleet.members],
    }
    if fleet.qos:
        # Keys omitted for QoS-free fleets: pre-QoS payloads unchanged.
        payload["qos"] = fleet.qos
    if fleet.burst:
        payload["burst"] = fleet.burst
    if sampled:
        payload["sampled_member_indices"] = list(fleet.sampled_indices())
    payload.update(
        roll_up(active, results, population=fleet.devices if sampled else None)
    )
    return payload


def sweep_fleet_specs(
    design: Union[str, DesignKind],
    preset: str,
    workload: str,
    scale: ExperimentScale,
    device_counts: Sequence[int] = DEFAULT_DEVICE_COUNTS,
    placements: Sequence[str] = DEFAULT_PLACEMENTS,
    *,
    tenants: int = 1,
    sample: int = 0,
    qos: str = "",
    burst: str = "",
    mix: bool = False,
    **device_kwargs,
) -> Dict[str, Dict[int, FleetSpec]]:
    """The fleet grid of one sweep: ``{placement: {device_count: spec}}``.

    One homogeneous fleet per (placement, count) cell; duplicate counts
    collapse, placements canonicalise.  Raises on an empty axis.
    ``sample`` is clamped per cell (a 2-device fleet under ``sample=32``
    simulates both members exactly).
    """
    counts = list(dict.fromkeys(int(count) for count in device_counts))
    names = list(dict.fromkeys(canonical_placement(p) for p in placements))
    if not counts or not names:
        raise ConfigurationError("sweep needs >= 1 device count and placement")
    if any(count < 1 for count in counts):
        raise ConfigurationError(f"device counts must be >= 1, got {counts}")
    if sample < 0:
        raise ConfigurationError(f"sample must be >= 0, got {sample}")
    return {
        name: {
            count: make_fleet_spec(
                design,
                preset,
                workload,
                scale,
                devices=count,
                placement=name,
                tenants=tenants,
                sample=min(int(sample), count) if sample else 0,
                qos=qos,
                burst=burst,
                mix=mix,
                **device_kwargs,
            )
            for count in counts
        }
        for name in names
    }


def run_fleet_sweep(
    design: Union[str, DesignKind] = "venice",
    preset: str = "performance-optimized",
    workload: str = "hm_0",
    scale: Optional[ExperimentScale] = None,
    device_counts: Sequence[int] = DEFAULT_DEVICE_COUNTS,
    placements: Sequence[str] = DEFAULT_PLACEMENTS,
    *,
    tenants: int = 1,
    sample: int = 0,
    qos: str = "",
    burst: str = "",
    mix: bool = False,
    executor=None,
    store=None,
    **device_kwargs,
) -> Dict[str, object]:
    """Throughput/p99 versus device count and placement policy.

    Builds the full grid of fleets, executes every member spec in **one**
    deduplicated pass (cells sharing members simulate them once), and
    reduces each cell with :func:`roll_up`.  The returned payload is
    ``{"curve": {placement: {count: cell}}}`` plus identification; byte
    -identical across serial/parallel execution and across warm-cache
    re-runs.  ``sample=K`` simulates K stratified representatives per
    cell and extrapolates the rest (cells with <= K devices run exact).
    """
    scale = scale or ExperimentScale()
    grid = sweep_fleet_specs(
        design,
        preset,
        workload,
        scale,
        device_counts,
        placements,
        tenants=tenants,
        sample=sample,
        qos=qos,
        burst=burst,
        mix=mix,
        **device_kwargs,
    )
    all_specs = [
        spec
        for cells in grid.values()
        for fleet in cells.values()
        for spec in fleet.active_members()
    ]
    results = execute_specs(all_specs, executor=executor, store=store)
    curve: Dict[str, Dict[int, Dict[str, object]]] = {
        placement: {
            count: roll_up(
                fleet.active_members(),
                results,
                population=(
                    fleet.devices
                    if len(fleet.active_members()) < fleet.devices
                    else None
                ),
            )
            for count, fleet in cells.items()
        }
        for placement, cells in grid.items()
    }
    first = next(iter(grid.values()))
    payload: Dict[str, object] = {
        "experiment": "fleet-sweep",
        "design": next(iter(first.values())).members[0].design,
        "preset": preset,
        "workload": workload,
        "tenants": tenants,
        "device_counts": sorted(next(iter(grid.values()))),
        "placements": list(grid),
        "curve": curve,
    }
    if sample:
        # Key omitted in exact mode so pre-sampling payloads are unchanged.
        payload["sample"] = sample
    first_fleet = next(iter(first.values()))
    if first_fleet.qos:
        # Keys omitted for QoS-free sweeps: pre-QoS payloads unchanged.
        payload["qos"] = first_fleet.qos
    if first_fleet.burst:
        payload["burst"] = first_fleet.burst
    return payload
