"""Fleet specifications: N member run specs behind one content address.

A :class:`FleetSpec` is to a fleet what a
:class:`~repro.experiments.spec.RunSpec` is to a single device: a frozen,
declarative value naming everything needed to reproduce the whole
multi-SSD run.  It is deliberately *thin*: all the simulation identity
lives in the member ``RunSpec``\\ s (each of which carries its fleet
member descriptor -- shape, tenants, placement -- in its own digest), and
the fleet digest is simply the content-address of the ordered member
digests plus the placement policy and tenant count.  Consequences:

* member devices are ordinary specs, so they deduplicate, fan out across
  ``--jobs`` worker processes, and persist in the ordinary
  content-addressed result store -- a warm-cache fleet re-run performs
  zero simulations;
* traces and fault schedules compose for free: a member spec may be
  trace-backed or carry a fault schedule like any other spec (kill one
  device's links mid-run and watch the fleet p99 move).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence, Tuple, Union

from repro.config.ssd_config import DesignKind
from repro.errors import ConfigurationError
from repro.experiments.spec import ExperimentScale, RunSpec, Scalar, make_spec
from repro.fleet.member import FleetMember, canonical_burst
from repro.fleet.placement import canonical_placement
from repro.fleet.qos import canonical_qos
from repro.sim.faults import FaultSchedule
from repro.sim.rng import DeterministicRng


def sample_member_indices(devices: int, sample: int, seed: int) -> Tuple[int, ...]:
    """Stratified member sample: one representative per contiguous stratum.

    The device order is split into ``sample`` equal-width strata and one
    member is drawn uniformly from each, so the sample spans the placement
    order (round-robin shards, tenant assignments) instead of clustering.
    Deterministic in ``seed`` via the ``"fleet-sample"`` RNG stream --
    the same fleet spec always simulates the same representatives.
    """
    if not 1 <= sample <= devices:
        raise ConfigurationError(
            f"sample must be in [1, {devices}], got {sample}"
        )
    rng = DeterministicRng(seed, stream="fleet-sample")
    indices = []
    for stratum in range(sample):
        lo = stratum * devices // sample
        hi = (stratum + 1) * devices // sample
        indices.append(lo + rng.randint(0, hi - lo - 1))
    return tuple(indices)


@dataclass(frozen=True)
class FleetSpec:
    """One fully-specified fleet run, by value.

    ``members`` are the per-device :class:`~repro.experiments.spec.RunSpec`\\ s
    in device order (mixed designs/presets allowed); ``placement`` and
    ``tenants`` are recorded redundantly for inspection -- they are already
    folded into every member's descriptor, hence into every member digest.
    Use :func:`make_fleet_spec` rather than the constructor: it builds
    consistent member descriptors and validates the shape.
    """

    members: Tuple[RunSpec, ...]
    placement: str
    tenants: int
    #: Simulate only this many stratified representative members (0 = all).
    sample: int = 0
    #: Dispatcher QoS policy (canonical; empty = arrival-order dispatch).
    #: Recorded redundantly like ``placement``: it already rides every
    #: member spec's ``qos`` field, hence every member digest.
    qos: str = ""
    #: Adversarial burst clause (canonical ``<tenant>x<factor>``; empty =
    #: fair share).  Already folded into every member descriptor.
    burst: str = ""

    def __post_init__(self) -> None:
        if not self.members:
            raise ConfigurationError("a fleet needs at least one member")
        object.__setattr__(
            self, "placement", canonical_placement(self.placement)
        )
        if self.tenants < 1:
            raise ConfigurationError(
                f"a fleet needs >= 1 tenant, got {self.tenants}"
            )
        if self.sample < 0 or self.sample > len(self.members):
            raise ConfigurationError(
                f"sample must be in [0, {len(self.members)}], "
                f"got {self.sample}"
            )
        object.__setattr__(self, "qos", canonical_qos(self.qos))
        object.__setattr__(
            self, "burst", canonical_burst(self.burst, self.tenants)
        )

    @property
    def devices(self) -> int:
        """Number of member devices."""
        return len(self.members)

    @property
    def digest(self) -> str:
        """Content address: sha256 over member digests + placement + tenants.

        Any change to any member (design, preset, workload, scale, faults,
        trace content, fleet shape) or to the dispatch policy changes the
        fleet digest; two fleets built from identical parts share one.
        """
        payload = {
            "members": [member.digest for member in self.members],
            "placement": self.placement,
            "tenants": self.tenants,
        }
        if self.sample:
            # Key omitted when 0 so pre-sampling digests are unchanged.
            payload["sample"] = self.sample
        if self.qos:
            # Keys omitted when empty so pre-QoS digests are unchanged.
            payload["qos"] = self.qos
        if self.burst:
            payload["burst"] = self.burst
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def sampled_indices(self) -> Tuple[int, ...]:
        """Member indices the sampled mode simulates (all when exact)."""
        if not self.sample or self.sample >= self.devices:
            return tuple(range(self.devices))
        return sample_member_indices(
            self.devices, self.sample, self.members[0].scale.seed
        )

    def active_members(self) -> Tuple[RunSpec, ...]:
        """The member specs actually simulated under the sampling knob."""
        return tuple(self.members[index] for index in self.sampled_indices())

    def label(self) -> str:
        """Human-readable one-line description of the fleet."""
        unique = list(dict.fromkeys(member.design for member in self.members))
        if len(unique) == 1:
            designs = unique[0]
        else:
            designs = ",".join(member.design for member in self.members)
        sampled = f" sample={self.sample}" if self.sample else ""
        qos = f" qos={self.qos}" if self.qos else ""
        burst = f" burst={self.burst}" if self.burst else ""
        return (
            f"fleet[{self.devices}x({designs})] "
            f"{self.placement} tenants={self.tenants}{sampled}{qos}{burst}"
        )


def make_fleet_spec(
    designs: Union[str, DesignKind, Sequence[Union[str, DesignKind]]],
    preset: str,
    workload: str,
    scale: Optional[ExperimentScale] = None,
    *,
    devices: Optional[int] = None,
    placement: str = "round-robin",
    tenants: int = 1,
    sample: int = 0,
    qos: str = "",
    burst: str = "",
    mix: bool = False,
    trace: Optional[str] = None,
    trace_options: Optional[Mapping[str, Scalar]] = None,
    faults: Union[
        None,
        Mapping[int, Union[str, FaultSchedule]],
        Sequence[Union[str, FaultSchedule, None]],
    ] = None,
    **device_kwargs: Scalar,
) -> FleetSpec:
    """Build a normalised :class:`FleetSpec` (the preferred constructor).

    ``designs`` is either one design (replicated across ``devices``
    members, default 1) or an explicit per-member sequence (mixed fabrics
    allowed; ``devices``, if also given, must agree).  All members share
    ``preset``, ``workload``, ``scale``, and ``device_kwargs``; per-member
    *fault schedules* come from ``faults`` -- a ``{member_index: schedule}``
    mapping or a per-member sequence -- so a degraded device can sit inside
    an otherwise healthy fleet.  Every member spec automatically carries
    ``export_histogram=True`` (the roll-up merges per-device latency
    histograms) and its fleet member descriptor.

    ``sample=K`` (0 = exact) asks fleet execution to simulate only K
    stratified representative members and extrapolate fleet totals from
    them with confidence intervals -- see
    :func:`~repro.fleet.run.roll_up`.  The full member list is still
    built (identity and digests cover every device); sampling is an
    execution-time projection, so ``sample=0`` is bit-identical to fleets
    built before the knob existed.

    ``qos`` names a dispatcher QoS policy
    (:func:`~repro.fleet.qos.canonical_qos` grammar) and ``burst`` an
    adversarial burst clause (``<tenant>x<factor>``, folded into every
    member descriptor).  Either being set automatically arms
    ``export_tenant_histograms`` on every member (overridable through
    ``device_kwargs``), so the roll-up can chart per-tenant percentiles.
    Both empty -- the default -- is a strict no-op: descriptors, member
    digests, the fleet digest, and results are byte-identical to a fleet
    built before QoS existed.
    """
    if isinstance(designs, (str, DesignKind)):
        count = 1 if devices is None else int(devices)
        member_designs = [designs] * count
    else:
        member_designs = list(designs)
        if devices is not None and int(devices) != len(member_designs):
            raise ConfigurationError(
                f"devices={devices} disagrees with {len(member_designs)} "
                "explicit member designs"
            )
    if not member_designs:
        raise ConfigurationError("a fleet needs at least one member")
    count = len(member_designs)

    member_faults: list = [None] * count
    if faults is not None:
        if isinstance(faults, Mapping):
            for index, schedule in faults.items():
                if not 0 <= int(index) < count:
                    raise ConfigurationError(
                        f"fault schedule for member {index} outside fleet "
                        f"of {count}"
                    )
                member_faults[int(index)] = schedule
        else:
            if len(faults) != count:
                raise ConfigurationError(
                    f"{len(faults)} fault schedules for {count} members"
                )
            member_faults = list(faults)

    placement = canonical_placement(placement)
    qos = canonical_qos(qos)
    burst = canonical_burst(burst, tenants)
    if (qos or burst) and "export_tenant_histograms" not in device_kwargs:
        # Per-tenant roll-ups are the point of a QoS/burst fleet; arm the
        # export unless the caller explicitly decided otherwise.  The kwarg
        # is digest-joining, and QoS-free fleets never reach this branch,
        # so their digests are unchanged.
        device_kwargs["export_tenant_histograms"] = True
    members = tuple(
        make_spec(
            design,
            preset,
            workload,
            scale,
            mix=mix,
            trace=trace,
            trace_options=trace_options,
            faults=member_faults[index],
            fleet=FleetMember(
                index=index,
                devices=count,
                tenants=tenants,
                placement=placement,
                burst=burst,
            ).to_spec(),
            qos=qos,
            export_histogram=True,
            **device_kwargs,
        )
        for index, design in enumerate(member_designs)
    )
    return FleetSpec(
        members=members,
        placement=placement,
        tenants=tenants,
        sample=int(sample),
        qos=qos,
        burst=burst,
    )
