"""Fleet-scale simulation: multi-SSD arrays behind a host dispatcher.

The paper evaluates one SSD; this package composes N independent
:class:`~repro.ssd.device.SsdDevice` simulations (any of the five fabrics,
mixed allowed) into a *fleet* behind a host-level dispatcher:

* :mod:`repro.fleet.placement` -- pluggable placement policies
  (round-robin, LBA striping with configurable stripe size,
  hash-by-tenant);
* :mod:`repro.fleet.member` -- the canonical fleet member descriptor a
  member run spec carries in its digest (including the optional
  adversarial burst clause), and the deterministic open-loop tenant
  traffic fan-out it implies;
* :mod:`repro.fleet.qos` -- dispatcher QoS policies applied to the merged
  tenant stream before placement (per-tenant token-bucket shaping,
  weighted fair queueing, SLO-aware admission control);
* :mod:`repro.fleet.spec` -- :class:`FleetSpec`: N member
  :class:`~repro.experiments.spec.RunSpec`\\ s plus placement, content-
  addressed by member digests;
* :mod:`repro.fleet.run` -- execution through the ordinary
  executor/store stack and the fleet-level metric roll-up (aggregate
  throughput, cross-device p50/p99/p999 via merged streaming histograms,
  per-device skew), plus the device-count x placement sweep.

``venice-sim fleet run|sweep`` is the CLI surface; docs/fleet.md the
narrative documentation; DESIGN.md §8 the engineering notes.
"""

from repro.fleet.member import FleetMember, canonical_burst, member_requests
from repro.fleet.placement import (
    DEFAULT_STRIPE_BYTES,
    HashTenantPlacement,
    LbaStripingPlacement,
    PlacementPolicy,
    RoundRobinPlacement,
    build_placement,
    canonical_placement,
    placement_names,
)
from repro.fleet.qos import (
    NoQos,
    QosDecision,
    QosPolicy,
    SloAdmissionQos,
    TokenBucketQos,
    WeightedFairQueueingQos,
    build_qos,
    canonical_qos,
    qos_names,
)
from repro.fleet.run import (
    DEFAULT_DEVICE_COUNTS,
    DEFAULT_PLACEMENTS,
    merge_latency_payloads,
    merge_tenant_payloads,
    roll_up,
    run_fleet,
    run_fleet_sweep,
    sweep_fleet_specs,
)
from repro.fleet.spec import FleetSpec, make_fleet_spec, sample_member_indices

__all__ = [
    "DEFAULT_DEVICE_COUNTS",
    "DEFAULT_PLACEMENTS",
    "DEFAULT_STRIPE_BYTES",
    "FleetMember",
    "FleetSpec",
    "HashTenantPlacement",
    "LbaStripingPlacement",
    "NoQos",
    "PlacementPolicy",
    "QosDecision",
    "QosPolicy",
    "RoundRobinPlacement",
    "SloAdmissionQos",
    "TokenBucketQos",
    "WeightedFairQueueingQos",
    "build_placement",
    "build_qos",
    "canonical_burst",
    "canonical_placement",
    "canonical_qos",
    "make_fleet_spec",
    "member_requests",
    "merge_latency_payloads",
    "merge_tenant_payloads",
    "placement_names",
    "qos_names",
    "roll_up",
    "run_fleet",
    "run_fleet_sweep",
    "sample_member_indices",
    "sweep_fleet_specs",
]
