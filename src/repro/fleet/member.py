"""Fleet member descriptors and the tenant traffic fan-out.

A *fleet member descriptor* is the canonical string a member
:class:`~repro.experiments.spec.RunSpec` carries in its ``fleet`` field
(and therefore in its content digest).  It names everything a worker
process needs to rebuild, **independently and deterministically**, this
device's share of the fleet's traffic:

``member <index>/<devices>; tenants <T>; placement <policy>[; burst <t>x<F>]``

The optional ``burst`` clause marks tenant ``t`` as an *adversarial burst
tenant*: it offers ``F`` times its fair share (``F x`` the request count,
arrival gaps compressed ``F x``, so its stream spans the same wall-clock
window at ``F x`` the rate) while every other tenant is untouched.  A
factor of 1 canonicalises to the empty clause, so burst-free descriptors
-- and therefore every pre-burst member digest -- are unchanged.

Traffic model (open loop): the spec's ordinary workload -- a Table 2
trace, a Table 3 mix, or a replayed real trace, *after* the usual pressure
acceleration -- becomes the per-tenant arrival pattern.  Each of the ``T``
tenants replays a rotated slice of that base pattern (gaps preserved,
wrapped cyclically when a tenant needs more requests than the base holds),
shifted by a seeded per-tenant phase and remapped into the tenant's
private slice of the global fleet address space (``devices x footprint``
bytes).  The merged stream is dispatched by the placement policy; this
member keeps its fragments and folds their offsets into its own footprint.

Scaling invariants:

* total fleet traffic is ``devices x len(base)`` requests, so per-device
  load matches a single-device run of the same spec at any fleet size;
* a one-device, one-tenant, round-robin member is the identity transform:
  its request list is bit-identical to the base trace (regression-tested),
  so a single-device fleet reproduces the plain run exactly;
* tenants whose share rounds to zero requests simply contribute nothing
  (thousands of tenants over a small request budget is legal), and a
  member whose dispatch share is empty yields an all-zero result.

Every quantity above is a pure function of (descriptor, spec workload,
scale, seed): no execution-time environment, no cross-member
communication.  That is what lets fleet members fan out across ``--jobs``
worker processes and share the content-addressed result store.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.fleet.placement import build_placement, canonical_placement
from repro.fleet.qos import build_qos
from repro.hil.request import IoRequest
from repro.sim.rng import DeterministicRng
from repro.workloads.trace import Trace

_MEMBER_RE = re.compile(
    r"^\s*member\s+(\d+)\s*/\s*(\d+)\s*;"
    r"\s*tenants\s+(\d+)\s*;"
    r"\s*placement\s+(\S+?)\s*"
    r"(?:;\s*burst\s+(\S+)\s*)?$",
    re.IGNORECASE,
)

_BURST_RE = re.compile(r"^\s*(\d+)\s*x\s*([0-9.]+)\s*$", re.IGNORECASE)


def canonical_burst(text: str, tenants: int) -> str:
    """Normalise a burst clause (``<tenant>x<factor>``) to canonical form.

    A factor of 1 -- the fair share -- canonicalises to the empty string,
    the strict no-op, so burst-free descriptors keep pre-burst digests.
    The tenant index must name one of the fleet's ``tenants`` and the
    factor must be >= 1 (bursts amplify; use fewer tenants to shrink).
    """
    raw = text.strip()
    if not raw:
        return ""
    match = _BURST_RE.match(raw)
    if match is None:
        raise ConfigurationError(
            f"bad burst clause {text!r}; expected '<tenant>x<factor>'"
        )
    tenant = int(match.group(1))
    try:
        factor = float(match.group(2))
    except ValueError:
        raise ConfigurationError(f"bad burst factor in {text!r}")
    if not 0 <= tenant < tenants:
        raise ConfigurationError(
            f"burst tenant {tenant} outside the fleet's {tenants} tenant(s)"
        )
    if factor < 1.0:
        raise ConfigurationError(
            f"burst factor must be >= 1, got {factor:g}"
        )
    if factor == 1.0:
        return ""
    return f"{tenant}x{factor:g}"


@dataclass(frozen=True)
class FleetMember:
    """One device's slot in a fleet: index, shape, tenants, placement.

    Use :meth:`parse` / :meth:`to_spec` to round-trip the canonical
    grammar; construction validates the shape eagerly so a bad descriptor
    fails at spec-construction time, not inside a worker process.
    """

    index: int
    devices: int
    tenants: int
    placement: str
    #: Optional adversarial burst clause, canonical ``<tenant>x<factor>``
    #: (empty = every tenant at fair share; strict no-op).
    burst: str = ""

    def __post_init__(self) -> None:
        if self.devices < 1:
            raise ConfigurationError(
                f"a fleet needs >= 1 device, got {self.devices}"
            )
        if not 0 <= self.index < self.devices:
            raise ConfigurationError(
                f"member index {self.index} outside fleet of {self.devices}"
            )
        if self.tenants < 1:
            raise ConfigurationError(
                f"a fleet needs >= 1 tenant, got {self.tenants}"
            )
        object.__setattr__(
            self, "placement", canonical_placement(self.placement)
        )
        object.__setattr__(
            self, "burst", canonical_burst(self.burst, self.tenants)
        )

    @classmethod
    def parse(cls, text: str) -> "FleetMember":
        """Parse a member descriptor string (grammar above; docs/fleet.md)."""
        match = _MEMBER_RE.match(text)
        if match is None:
            raise ConfigurationError(
                f"bad fleet member descriptor {text!r}; expected "
                "'member <i>/<n>; tenants <t>; placement <policy>"
                "[; burst <t>x<f>]'"
            )
        return cls(
            index=int(match.group(1)),
            devices=int(match.group(2)),
            tenants=int(match.group(3)),
            placement=match.group(4),
            burst=match.group(5) or "",
        )

    def to_spec(self) -> str:
        """The canonical descriptor string (what spec digests carry).

        The burst clause appears only when set, so burst-free descriptors
        are byte-identical to pre-burst ones.
        """
        spec = (
            f"member {self.index}/{self.devices}; "
            f"tenants {self.tenants}; placement {self.placement}"
        )
        if self.burst:
            spec += f"; burst {self.burst}"
        return spec

    def burst_parts(self) -> Tuple[Optional[int], float]:
        """The burst clause as ``(tenant, factor)`` (``(None, 1.0)`` unset)."""
        if not self.burst:
            return None, 1.0
        tenant, factor = self.burst.split("x")
        return int(tenant), float(factor)


def _tenant_phase(tenants: int, tenant: int, duration_ns: int, seed: int) -> int:
    """Deterministic arrival phase of one tenant's stream.

    A single tenant replays unshifted (phase 0) so the one-device,
    one-tenant fleet is the identity transform; with several tenants each
    draws a uniform start offset in ``[0, duration]`` from its own named
    RNG stream, de-synchronising the per-tenant copies of the base
    arrival pattern.
    """
    if tenants == 1 or duration_ns <= 0:
        return 0
    rng = DeterministicRng(seed, stream=f"fleet-tenant-{tenant}")
    return rng.randint(0, duration_ns)


def member_requests(
    member: FleetMember,
    base: Trace,
    footprint_bytes: int,
    queue_pairs: int,
    seed: int,
    qos: str = "",
) -> List[IoRequest]:
    """This member's dispatched share of the fleet's tenant traffic.

    Deterministically fans the ``base`` trace out across
    ``member.tenants`` open-loop tenant streams (the descriptor's burst
    clause amplifies its adversarial tenant), reschedules the merged
    global stream through the ``qos`` policy
    (:func:`repro.fleet.qos.build_qos`; empty = dispatch in arrival
    order), dispatches it through the member's placement policy, and
    returns the fragments owned by ``member.index`` as fresh
    arrival-sorted :class:`~repro.hil.request.IoRequest` objects with
    device-local offsets and their tenant tags.  May return an empty list
    (more devices than requests, or a hash placement that routed every
    tenant elsewhere).
    """
    if footprint_bytes <= 0:
        raise ConfigurationError(
            f"footprint must be positive, got {footprint_bytes}"
        )
    requests = base.requests
    length = len(requests)
    duration = base.duration_ns
    # Seam gap between cyclic repetitions of the base pattern: the mean
    # inter-arrival gap, so a wrapped stream stays rate-stationary.
    seam_gap = max(1, duration // max(1, length - 1))
    total = member.devices * length
    tenants = member.tenants
    global_space = member.devices * footprint_bytes
    slice_bytes = global_space // tenants
    if slice_bytes <= 0:
        raise ConfigurationError(
            f"{tenants} tenants cannot share a {global_space}-byte fleet "
            "address space (>= 1 byte per tenant required)"
        )
    base_count = total // tenants
    remainder = total % tenants
    rotation = max(1, length // tenants)
    queues = max(1, queue_pairs)

    burst_tenant, burst_factor = member.burst_parts()

    # (arrival, tenant, k) is a deterministic total order: the merged
    # stream sorts identically however tenants are generated.
    merged = []
    for tenant in range(tenants):
        count = base_count + (1 if tenant < remainder else 0)
        bursting = tenant == burst_tenant and burst_factor > 1.0
        if bursting:
            count = max(1, int(round(count * burst_factor)))
        if count == 0:
            continue
        phase = _tenant_phase(tenants, tenant, duration, seed)
        start = (tenant * rotation) % length
        start_arrival = requests[start].arrival_ns
        slice_base = tenant * slice_bytes
        for k in range(count):
            position = start + k
            cycle, j = divmod(position, length)
            request = requests[j]
            delta = (
                cycle * (duration + seam_gap)
                + request.arrival_ns
                - start_arrival
            )
            if bursting:
                # F x the requests squeezed into the same wall-clock
                # window: the burst tenant offers F x its fair rate.
                delta = int(delta / burst_factor)
            arrival = phase + delta
            merged.append(
                (
                    arrival,
                    tenant,
                    k,
                    request.kind,
                    slice_base + (request.offset_bytes % slice_bytes),
                    request.size_bytes,
                    (request.queue_id + tenant) % queues,
                )
            )
    merged.sort(key=lambda entry: entry[:3])

    if qos:
        merged = build_qos(qos, tenants, seed).apply(merged).entries

    policy = build_placement(member.placement, member.devices, seed)
    mine: List[IoRequest] = []
    for ordinal, (arrival, tenant, _k, kind, offset, size, queue) in enumerate(
        merged
    ):
        for device, local, fragment_size in policy.place(
            ordinal, tenant, offset, size
        ):
            if device != member.index:
                continue
            mine.append(
                IoRequest(
                    kind=kind,
                    # Fold into the device footprint: non-striped policies
                    # hand back global-space offsets, and striping's fold
                    # can overhang by a partial stripe when the footprint
                    # is not stripe-aligned (uneven boundary stripes).
                    offset_bytes=local % footprint_bytes,
                    size_bytes=fragment_size,
                    arrival_ns=arrival,
                    queue_id=queue,
                    tenant=tenant,
                )
            )
    return mine
