"""Venice (ISCA 2023) reproduction: SSD parallelism via conflict-free accesses.

Public API surface:

* configuration -- :func:`repro.config.performance_optimized`,
  :func:`repro.config.cost_optimized`,
* device -- :class:`repro.ssd.SsdDevice` with a
  :class:`repro.config.DesignKind` selecting the communication fabric,
* workloads -- :func:`repro.workloads.generate_workload` (Table 2 catalog),
  :func:`repro.workloads.generate_mix` (Table 3),
* experiments -- :mod:`repro.experiments` regenerates every paper figure.

Quickstart::

    from repro import DesignKind, SsdDevice, performance_optimized
    from repro.workloads import generate_workload

    config = performance_optimized(blocks_per_plane=64, pages_per_block=64)
    trace = generate_workload("hm_0", count=500,
                              footprint_bytes=config.geometry.capacity_bytes // 2)
    device = SsdDevice(config, DesignKind.VENICE)
    result = device.run_trace(trace.requests, "hm_0")
    print(result.iops, result.p99_latency_ns)
"""

from repro.config import (
    DesignKind,
    SsdConfig,
    performance_optimized,
    cost_optimized,
    preset_by_name,
)
from repro.metrics import RunResult
from repro.ssd import SsdDevice

__version__ = "0.6.0"

__all__ = [
    "DesignKind",
    "SsdConfig",
    "performance_optimized",
    "cost_optimized",
    "preset_by_name",
    "RunResult",
    "SsdDevice",
    "__version__",
]
