"""Content-addressed result store: ``RunResult``\\ s keyed by spec digest.

Each entry is one JSON file named ``<sha256(spec)>.json`` holding both the
spec (for integrity checking and offline inspection) and the result.  The
store is what lets fig9/10/13/14 share one simulated matrix, and what makes
a repeated ``venice-sim matrix --cache DIR`` invocation perform zero new
simulations.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Optional, Union

from repro.errors import ConfigurationError, SimulationError
from repro.experiments.spec import RunSpec
from repro.metrics.collector import RunResult

_SCHEMA_VERSION = 1


class ResultStore:
    """Persist run results under a directory, addressed by spec content.

    ``hits`` / ``misses`` / ``writes`` counters make cache behaviour
    observable (the acceptance tests assert a warm store serves everything).
    A small in-memory layer avoids re-parsing JSON for repeat lookups within
    one process.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self._memory: Dict[str, RunResult] = {}

    def path_for(self, spec: RunSpec) -> Path:
        return self.directory / f"{spec.digest}.json"

    def get(self, spec: RunSpec) -> Optional[RunResult]:
        digest = spec.digest
        cached = self._memory.get(digest)
        if cached is not None:
            self.hits += 1
            return cached
        path = self.path_for(spec)
        if not path.exists():
            self.misses += 1
            return None
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            schema = payload.get("schema")
            if schema != _SCHEMA_VERSION:
                raise SimulationError(
                    f"store entry {path.name} has schema {schema!r}, this "
                    f"version writes {_SCHEMA_VERSION}; delete the cache "
                    "directory"
                )
            # Compare content identities rather than raw spec dicts: the
            # digest excludes trace_path, so a result cached from one trace
            # location stays valid when the same file is read from another.
            stored_spec = RunSpec.from_dict(payload["spec"])
            if stored_spec.digest != spec.digest:
                raise SimulationError(
                    f"store entry {path.name} does not match its spec "
                    f"({spec.label()}); delete the cache directory"
                )
            result = RunResult.from_dict(payload["result"])
        except SimulationError:
            raise
        except (ValueError, KeyError, TypeError, ConfigurationError) as error:
            raise SimulationError(
                f"store entry {path.name} is corrupt ({error}); delete the "
                "cache directory"
            )
        self._memory[digest] = result
        self.hits += 1
        return result

    def put(self, spec: RunSpec, result: RunResult) -> Path:
        digest = spec.digest
        path = self.path_for(spec)
        payload = {
            "schema": _SCHEMA_VERSION,
            "digest": digest,
            "spec": spec.to_dict(),
            "result": result.to_dict(),
        }
        # Write-then-rename so a crashed run never leaves a torn entry.
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, indent=1), encoding="utf-8")
        os.replace(tmp, path)
        self._memory[digest] = result
        self.writes += 1
        return path

    def __contains__(self, spec: RunSpec) -> bool:
        return spec.digest in self._memory or self.path_for(spec).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))

    def stats(self) -> Dict[str, object]:
        """Observability snapshot: on-disk contents plus session counters.

        Walks the directory (result entries are ``*.json`` at the top
        level; device checkpoints live under ``checkpoints/``, written by
        :class:`~repro.sim.checkpoint.CheckpointStore` when warm-up
        amortization is on) and reports entry counts and byte totals
        alongside this process's hit/miss/write counters.
        """
        entries = list(self.directory.glob("*.json"))
        checkpoint_dir = self.directory / "checkpoints"
        checkpoint_files = (
            sorted(checkpoint_dir.glob("*.json"))
            if checkpoint_dir.is_dir()
            else []
        )
        return {
            "directory": str(self.directory),
            "entries": len(entries),
            "bytes": sum(path.stat().st_size for path in entries),
            "checkpoints": len(checkpoint_files),
            "checkpoint_bytes": sum(
                path.stat().st_size for path in checkpoint_files
            ),
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
        }
