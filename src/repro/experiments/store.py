"""Content-addressed result store: ``RunResult``\\ s keyed by spec digest.

Each entry holds both the spec (for integrity checking and offline
inspection) and the result, serialized as one JSON document.  The store is
what lets fig9/10/13/14 share one simulated matrix, and what makes a
repeated ``venice-sim matrix --cache DIR`` invocation perform zero new
simulations.

The *layout* of the entries on disk is pluggable (:class:`StoreBackend`):

* ``flat`` -- one ``<digest>.json`` file per entry at the top of the store
  directory (the historical layout; still the default for new stores);
* ``sharded`` -- entries under ``objects/<digest[:2]>/``, so million-entry
  stores never put a million files in one directory;
* ``sqlite`` -- a single ``store.sqlite3`` database in WAL mode with
  busy-timeout retry, safe for many concurrent writer processes (the
  work-queue workers of :mod:`repro.experiments.worker`).

:class:`ResultStore` is the only consumer-facing class: it owns the JSON
schema, the digest integrity check, and the hit/miss/write counters, and
delegates raw text storage to the backend.  :meth:`ResultStore.verify`
makes the store self-healing: entries whose content no longer matches
their digest key are *quarantined* (moved aside, never served) instead of
poisoning every later sweep.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from repro.errors import ConfigurationError, SimulationError
from repro.experiments.spec import RunSpec
from repro.metrics.collector import RunResult

_SCHEMA_VERSION = 1

#: Recognised backend names, in the order ``venice-sim list`` prints them.
BACKEND_NAMES = ("flat", "sharded", "sqlite")

_SQLITE_FILENAME = "store.sqlite3"
_SHARD_DIRNAME = "objects"
_QUARANTINE_DIRNAME = "quarantine"

#: How many times a SQLite write is retried when another process holds the
#: write lock past the busy timeout (each attempt already waits up to
#: ``_SQLITE_BUSY_TIMEOUT_MS`` inside SQLite itself).
_SQLITE_WRITE_RETRIES = 8
_SQLITE_BUSY_TIMEOUT_MS = 5_000


class StoreBackend(ABC):
    """Raw text storage keyed by spec digest, one layout per subclass.

    Backends know nothing about specs or results: they map a hex digest to
    a JSON text blob durably and atomically (a reader never observes a torn
    entry, even with concurrent writers on a shared filesystem).  The
    quarantine area is part of the interface so :meth:`ResultStore.verify`
    can move a corrupt entry aside regardless of layout.
    """

    #: Canonical backend name (``flat`` / ``sharded`` / ``sqlite``).
    name: str = ""

    def __init__(self, directory: Path) -> None:
        self.directory = directory

    @abstractmethod
    def read(self, digest: str) -> Optional[str]:
        """Return the entry text for ``digest``, or ``None`` when absent."""

    @abstractmethod
    def write(self, digest: str, text: str) -> None:
        """Durably store ``text`` under ``digest`` (atomic replace)."""

    @abstractmethod
    def delete(self, digest: str) -> None:
        """Remove the entry for ``digest`` (no-op when absent)."""

    @abstractmethod
    def digests(self) -> Iterator[str]:
        """Iterate the digests of every stored entry (sorted)."""

    @abstractmethod
    def bytes_used(self) -> int:
        """Total payload bytes currently stored."""

    @abstractmethod
    def quarantine(self, digest: str) -> None:
        """Move the entry for ``digest`` into the quarantine area.

        A quarantined entry is never served by :meth:`read` again, but its
        bytes are preserved for post-mortem inspection until
        :meth:`ResultStore.gc` purges them.
        """

    @abstractmethod
    def quarantined(self) -> List[str]:
        """Digests currently held in the quarantine area (sorted)."""

    @abstractmethod
    def purge_quarantine(self) -> int:
        """Drop all quarantined entries; return bytes reclaimed."""

    @abstractmethod
    def compact(self) -> int:
        """Rewrite storage in its most compact form; return bytes saved."""

    def location(self, digest: str) -> str:
        """Human-readable location of an entry (diagnostics only)."""
        return f"{self.directory}[{digest[:12]}]"

    def __len__(self) -> int:
        return sum(1 for _ in self.digests())


def _atomic_write_text(path: Path, text: str) -> None:
    """Write-then-rename so a crashed writer never leaves a torn file.

    The temp name carries the writer's pid: two processes writing the same
    digest concurrently each rename their *own* complete file into place,
    and either final content is a valid, complete entry.
    """
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


def _purge_tree(root: Path) -> int:
    """Delete every file under ``root``; return bytes reclaimed."""
    reclaimed = 0
    if not root.is_dir():
        return 0
    for path in sorted(root.rglob("*")):
        if path.is_file():
            reclaimed += path.stat().st_size
            path.unlink()
    for path in sorted(root.rglob("*"), reverse=True):
        if path.is_dir():
            path.rmdir()
    return reclaimed


class _FileBackend(StoreBackend):
    """Shared machinery for the two file-per-entry layouts."""

    def _path(self, digest: str) -> Path:
        raise NotImplementedError

    def _entry_paths(self) -> List[Path]:
        raise NotImplementedError

    def read(self, digest: str) -> Optional[str]:
        path = self._path(digest)
        if not path.exists():
            return None
        return path.read_text(encoding="utf-8")

    def write(self, digest: str, text: str) -> None:
        path = self._path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        _atomic_write_text(path, text)

    def delete(self, digest: str) -> None:
        path = self._path(digest)
        if path.exists():
            path.unlink()

    def digests(self) -> Iterator[str]:
        for path in self._entry_paths():
            yield path.stem

    def bytes_used(self) -> int:
        return sum(path.stat().st_size for path in self._entry_paths())

    def quarantine(self, digest: str) -> None:
        path = self._path(digest)
        if not path.exists():
            return
        target_dir = self.directory / _QUARANTINE_DIRNAME
        target_dir.mkdir(parents=True, exist_ok=True)
        os.replace(path, target_dir / f"{digest}.json")

    def quarantined(self) -> List[str]:
        target_dir = self.directory / _QUARANTINE_DIRNAME
        if not target_dir.is_dir():
            return []
        return sorted(path.stem for path in target_dir.glob("*.json"))

    def purge_quarantine(self) -> int:
        return _purge_tree(self.directory / _QUARANTINE_DIRNAME)

    def compact(self) -> int:
        """Re-serialize every parseable entry in minified JSON form."""
        saved = 0
        for path in self._entry_paths():
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue  # verify/repair owns corrupt entries, not compact
            compacted = json.dumps(
                payload, sort_keys=True, separators=(",", ":")
            )
            before = path.stat().st_size
            if len(compacted.encode("utf-8")) < before:
                _atomic_write_text(path, compacted)
                saved += before - path.stat().st_size
        return saved

    def location(self, digest: str) -> str:
        return str(self._path(digest))


class FlatDirBackend(_FileBackend):
    """The historical layout: ``<store>/<digest>.json``."""

    name = "flat"

    def _path(self, digest: str) -> Path:
        return self.directory / f"{digest}.json"

    def _entry_paths(self) -> List[Path]:
        return sorted(self.directory.glob("*.json"))


class ShardedBackend(_FileBackend):
    """Entries fanned out as ``<store>/objects/<digest[:2]>/<digest>.json``.

    256-way fan-out keeps directory sizes flat even for stores holding the
    results of million-cell fleet sweeps, where a single flat directory
    makes every lookup and listing progressively slower.
    """

    name = "sharded"

    def __init__(self, directory: Path) -> None:
        super().__init__(directory)
        (directory / _SHARD_DIRNAME).mkdir(parents=True, exist_ok=True)

    def _path(self, digest: str) -> Path:
        return self.directory / _SHARD_DIRNAME / digest[:2] / f"{digest}.json"

    def _entry_paths(self) -> List[Path]:
        root = self.directory / _SHARD_DIRNAME
        return sorted(root.glob("*/*.json"))

    def compact(self) -> int:
        saved = super().compact()
        # Shard directories emptied by deletions are themselves removable.
        root = self.directory / _SHARD_DIRNAME
        for shard in sorted(root.glob("*")):
            if shard.is_dir() and not any(shard.iterdir()):
                shard.rmdir()
        return saved


class SqliteBackend(StoreBackend):
    """Single-file SQLite layout with concurrent-writer safety.

    WAL journaling lets readers proceed while a writer commits; the busy
    timeout plus a bounded retry loop absorbs write-lock contention between
    worker processes on one host.  Every write is a single upsert
    transaction, so a reader (or a crash) can never observe a torn entry.
    """

    name = "sqlite"

    def __init__(self, directory: Path) -> None:
        super().__init__(directory)
        self.path = directory / _SQLITE_FILENAME
        with self._connect() as conn:
            conn.execute(
                "CREATE TABLE IF NOT EXISTS entries ("
                " digest TEXT PRIMARY KEY,"
                " payload TEXT NOT NULL,"
                " quarantined INTEGER NOT NULL DEFAULT 0)"
            )
        self._conn: Optional[sqlite3.Connection] = None

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(
            str(self.path), timeout=_SQLITE_BUSY_TIMEOUT_MS / 1000.0
        )
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute(f"PRAGMA busy_timeout={_SQLITE_BUSY_TIMEOUT_MS}")
        conn.execute("PRAGMA synchronous=NORMAL")
        return conn

    def _connection(self) -> sqlite3.Connection:
        if self._conn is None:
            self._conn = self._connect()
        return self._conn

    def _execute_with_retry(self, sql: str, params=()) -> None:
        """Run one write statement, retrying past transient lock errors."""
        for attempt in range(_SQLITE_WRITE_RETRIES):
            try:
                with self._connection() as conn:
                    conn.execute(sql, params)
                return
            except sqlite3.OperationalError as error:
                if "locked" not in str(error) and "busy" not in str(error):
                    raise
                # Reset the connection: a writer that died mid-transaction
                # can leave this handle wedged on some filesystems.
                self.close()
                time.sleep(0.05 * (attempt + 1))
        raise SimulationError(
            f"sqlite store {self.path} stayed locked after "
            f"{_SQLITE_WRITE_RETRIES} retries"
        )

    def close(self) -> None:
        """Drop the cached connection (safe to call repeatedly)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def read(self, digest: str) -> Optional[str]:
        row = self._connection().execute(
            "SELECT payload FROM entries WHERE digest=? AND quarantined=0",
            (digest,),
        ).fetchone()
        return row[0] if row else None

    def write(self, digest: str, text: str) -> None:
        self._execute_with_retry(
            "INSERT INTO entries (digest, payload, quarantined) "
            "VALUES (?, ?, 0) ON CONFLICT(digest) DO UPDATE SET "
            "payload=excluded.payload, quarantined=0",
            (digest, text),
        )

    def delete(self, digest: str) -> None:
        self._execute_with_retry(
            "DELETE FROM entries WHERE digest=?", (digest,)
        )

    def digests(self) -> Iterator[str]:
        rows = self._connection().execute(
            "SELECT digest FROM entries WHERE quarantined=0 ORDER BY digest"
        ).fetchall()
        for (digest,) in rows:
            yield digest

    def bytes_used(self) -> int:
        row = self._connection().execute(
            "SELECT COALESCE(SUM(LENGTH(payload)), 0) FROM entries "
            "WHERE quarantined=0"
        ).fetchone()
        return int(row[0])

    def quarantine(self, digest: str) -> None:
        self._execute_with_retry(
            "UPDATE entries SET quarantined=1 WHERE digest=?", (digest,)
        )

    def quarantined(self) -> List[str]:
        rows = self._connection().execute(
            "SELECT digest FROM entries WHERE quarantined=1 ORDER BY digest"
        ).fetchall()
        return [digest for (digest,) in rows]

    def purge_quarantine(self) -> int:
        row = self._connection().execute(
            "SELECT COALESCE(SUM(LENGTH(payload)), 0) FROM entries "
            "WHERE quarantined=1"
        ).fetchone()
        self._execute_with_retry("DELETE FROM entries WHERE quarantined=1")
        return int(row[0])

    def compact(self) -> int:
        """VACUUM the database file back down after deletions."""
        before = self.path.stat().st_size if self.path.exists() else 0
        # VACUUM cannot run inside a transaction; use a dedicated
        # autocommit connection.
        self.close()
        conn = self._connect()
        try:
            conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
            conn.execute("VACUUM")
        finally:
            conn.close()
        after = self.path.stat().st_size if self.path.exists() else 0
        return max(0, before - after)

    def location(self, digest: str) -> str:
        return f"{self.path}[{digest[:12]}]"

    def __len__(self) -> int:
        row = self._connection().execute(
            "SELECT COUNT(*) FROM entries WHERE quarantined=0"
        ).fetchone()
        return int(row[0])


_BACKENDS = {
    FlatDirBackend.name: FlatDirBackend,
    ShardedBackend.name: ShardedBackend,
    SqliteBackend.name: SqliteBackend,
}


def detect_backend(directory: Union[str, Path]) -> str:
    """Infer the layout an existing store directory uses.

    A ``store.sqlite3`` file marks a SQLite store, an ``objects/``
    directory marks a sharded store, anything else (including a fresh
    empty directory) is the flat layout -- so plain ``ResultStore(DIR)``
    keeps reading every store any prior version wrote.
    """
    directory = Path(directory)
    if (directory / _SQLITE_FILENAME).exists():
        return SqliteBackend.name
    if (directory / _SHARD_DIRNAME).is_dir():
        return ShardedBackend.name
    return FlatDirBackend.name


class ResultStore:
    """Persist run results under a directory, addressed by spec content.

    ``hits`` / ``misses`` / ``writes`` counters make cache behaviour
    observable (the acceptance tests assert a warm store serves everything).
    A small in-memory layer avoids re-parsing JSON for repeat lookups within
    one process.

    ``backend`` picks the on-disk layout (``flat`` / ``sharded`` /
    ``sqlite``); the default ``auto`` detects what an existing directory
    already uses and falls back to ``flat`` for new stores.  Opening a
    store with a backend that contradicts the directory's existing layout
    raises, so two processes can never split one store across layouts.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        backend: str = "auto",
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        detected = detect_backend(self.directory)
        if backend == "auto":
            backend = detected
        elif backend not in _BACKENDS:
            raise ConfigurationError(
                f"unknown store backend {backend!r} "
                f"(choose from {', '.join(BACKEND_NAMES)})"
            )
        elif backend != detected and len(self._probe(detected)) > 0:
            raise ConfigurationError(
                f"store {self.directory} already uses the {detected!r} "
                f"layout; refusing to open it as {backend!r}"
            )
        self.backend: StoreBackend = _BACKENDS[backend](self.directory)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self._memory: Dict[str, RunResult] = {}

    def _probe(self, backend_name: str) -> StoreBackend:
        return _BACKENDS[backend_name](self.directory)

    @property
    def backend_name(self) -> str:
        """The active layout's canonical name."""
        return self.backend.name

    def path_for(self, spec: RunSpec) -> Path:
        """Filesystem path of a spec's entry (file backends only).

        The SQLite backend has no per-entry file; callers that need a
        diagnostic string should prefer :meth:`StoreBackend.location`.
        """
        if isinstance(self.backend, _FileBackend):
            return self.backend._path(spec.digest)
        return Path(self.backend.location(spec.digest))

    # -- entry (de)serialization ---------------------------------------- #

    def _decode(self, digest: str, text: str) -> RunResult:
        """Parse one entry, enforcing schema and content identity."""
        name = self.backend.location(digest)
        try:
            payload = json.loads(text)
            schema = payload.get("schema")
            if schema != _SCHEMA_VERSION:
                raise SimulationError(
                    f"store entry {name} has schema {schema!r}, this "
                    f"version writes {_SCHEMA_VERSION}; delete the cache "
                    "directory or run `venice-sim store verify --repair`"
                )
            # Compare content identities rather than raw spec dicts: the
            # digest excludes trace_path, so a result cached from one trace
            # location stays valid when the same file is read from another.
            stored_spec = RunSpec.from_dict(payload["spec"])
            if stored_spec.digest != digest:
                raise SimulationError(
                    f"store entry {name} does not match its digest key; "
                    "run `venice-sim store verify --repair`"
                )
            return RunResult.from_dict(payload["result"])
        except SimulationError:
            raise
        except (ValueError, KeyError, TypeError, ConfigurationError) as error:
            raise SimulationError(
                f"store entry {name} is corrupt ({error}); run "
                "`venice-sim store verify --repair`"
            )

    def _encode(self, spec: RunSpec, result: RunResult) -> str:
        payload = {
            "schema": _SCHEMA_VERSION,
            "digest": spec.digest,
            "spec": spec.to_dict(),
            "result": result.to_dict(),
        }
        return json.dumps(payload, indent=1)

    # -- the cache interface -------------------------------------------- #

    def get(self, spec: RunSpec) -> Optional[RunResult]:
        digest = spec.digest
        cached = self._memory.get(digest)
        if cached is not None:
            self.hits += 1
            return cached
        text = self.backend.read(digest)
        if text is None:
            self.misses += 1
            return None
        result = self._decode(digest, text)
        self._memory[digest] = result
        self.hits += 1
        return result

    def put(self, spec: RunSpec, result: RunResult) -> Path:
        digest = spec.digest
        self.backend.write(digest, self._encode(spec, result))
        self._memory[digest] = result
        self.writes += 1
        return self.path_for(spec)

    def __contains__(self, spec: RunSpec) -> bool:
        return (
            spec.digest in self._memory
            or self.backend.read(spec.digest) is not None
        )

    def __len__(self) -> int:
        return len(self.backend)

    # -- maintenance ----------------------------------------------------- #

    def verify(self, repair: bool = False) -> Dict[str, object]:
        """Check every entry's integrity; optionally quarantine failures.

        An entry fails when its JSON does not parse, its schema is foreign,
        its stored spec's recomputed content digest mismatches the digest
        key it is filed under, or its result payload does not rebuild.
        With ``repair=True`` failing entries are moved to the quarantine
        area (they are re-simulated on the next sweep, exactly like cache
        misses); without it they are only reported.  Returns a report dict
        with ``checked`` / ``ok`` / ``corrupt`` / ``quarantined`` keys.
        """
        corrupt: List[Dict[str, str]] = []
        checked = 0
        for digest in list(self.backend.digests()):
            checked += 1
            text = self.backend.read(digest)
            if text is None:  # pragma: no cover - raced deletion
                continue
            try:
                self._decode(digest, text)
            except SimulationError as error:
                corrupt.append({"digest": digest, "error": str(error)})
                self._memory.pop(digest, None)
                if repair:
                    self.backend.quarantine(digest)
        return {
            "backend": self.backend_name,
            "checked": checked,
            "ok": checked - len(corrupt),
            "corrupt": corrupt,
            "quarantined": len(corrupt) if repair else 0,
        }

    def gc(self) -> Dict[str, object]:
        """Drop quarantined entries and stale temp files; report bytes freed.

        Also sweeps write-then-rename temp files older than an hour --
        debris a SIGKILLed writer can leave behind -- while leaving fresh
        ones alone (they may belong to a live writer mid-rename).
        """
        reclaimed = self.backend.purge_quarantine()
        removed_tmp = 0
        cutoff = time.time() - 3600.0
        for tmp in sorted(self.directory.rglob("*.tmp")):
            try:
                if tmp.stat().st_mtime < cutoff:
                    reclaimed += tmp.stat().st_size
                    tmp.unlink()
                    removed_tmp += 1
            except OSError:  # pragma: no cover - raced deletion
                continue
        return {
            "backend": self.backend_name,
            "reclaimed_bytes": reclaimed,
            "temp_files_removed": removed_tmp,
        }

    def compact(self) -> Dict[str, object]:
        """Rewrite storage compactly (minify JSON / VACUUM the database)."""
        saved = self.backend.compact()
        return {"backend": self.backend_name, "saved_bytes": saved}

    def counters(self) -> Dict[str, int]:
        """Just this session's hit/miss/write counters -- no disk access.

        :meth:`stats` walks the backend (entry counts, byte totals), which
        is the right tool for ``venice-sim store stats`` but too heavy for
        a polling caller.  The service control plane samples this on every
        ``/health`` request and after every job to report how much work the
        content-addressed cache absorbed.
        """
        return {"hits": self.hits, "misses": self.misses, "writes": self.writes}

    def stats(self) -> Dict[str, object]:
        """Observability snapshot: on-disk contents plus session counters.

        Reports entry counts and byte totals (device checkpoints live
        under ``checkpoints/``, written by
        :class:`~repro.sim.checkpoint.CheckpointStore` when warm-up
        amortization is on) alongside this process's hit/miss/write
        counters.
        """
        checkpoint_dir = self.directory / "checkpoints"
        checkpoint_files = (
            sorted(checkpoint_dir.glob("*.json"))
            if checkpoint_dir.is_dir()
            else []
        )
        return {
            "directory": str(self.directory),
            "backend": self.backend_name,
            "entries": len(self.backend),
            "bytes": self.backend.bytes_used(),
            "quarantined": len(self.backend.quarantined()),
            "checkpoints": len(checkpoint_files),
            "checkpoint_bytes": sum(
                path.stat().st_size for path in checkpoint_files
            ),
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
        }
