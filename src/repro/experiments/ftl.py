"""Sustained-write experiments: write cliffs, WA-vs-OP, and GC x faults.

The paper's §8 discussion argues Venice's path diversity matters precisely
when internal garbage-collection traffic collides with host transfers on
shared paths -- but its figures only exercise the read-dominated
path-conflict story.  This module opens the sustained-write scenario space
the discussion points at, as three result families beyond the paper:

* **write cliff** -- throughput / p99 / GC stall time versus fill level
  under sustained random writes: as the preconditioned fill approaches the
  device's host-usable capacity, host allocations start stalling on forced
  GC and throughput falls off a cliff;
* **WA versus OP** -- write amplification against the over-provisioning
  knob, per fabric: more spare area means fewer valid pages per GC victim,
  hence fewer internal copies per host write (WA is monotone decreasing in
  OP);
* **GC x faults** -- the composition cell: with the device in GC steady
  state *and* a dead link, does Venice keep p999 flat where the baseline
  tail blows up?

Every cell is an ordinary :class:`~repro.experiments.spec.RunSpec`: the
warm-up (``fill F; churn C``) rides the spec's ``warmup`` field and is paid
once per (design, warm-up, knobs) via the checkpoint store, the
over-provisioning knob rides ``device_kwargs`` (digest-joining, strict
no-op when absent), and execution flows through
:func:`~repro.experiments.executor.execute_specs` so warm re-runs perform
zero simulations.

Scale note: the sweep defaults to a deliberately small per-plane capacity
(:func:`sustained_scale`) so a few hundred measured requests represent a
meaningful fraction of the array and actually push planes across the GC
watermarks -- at paper scale the same physics needs millions of requests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.config.ssd_config import DesignKind
from repro.experiments.executor import execute_specs
from repro.experiments.faults import (
    SWEEP_DESIGNS,
    degradation_links,
    link_fault_schedule,
)
from repro.experiments.spec import (
    ExperimentScale,
    RunSpec,
    build_config,
    matrix_specs,
)
from repro.metrics.collector import RunResult
from repro.sim.checkpoint import CheckpointStore
from repro.sim.stats import LatencyRecorder

#: Fill levels of the default write-cliff curve: two points on the flat
#: shoulder, one at the knee, one past it.
DEFAULT_FILL_LEVELS = (0.5, 0.7, 0.85, 0.9)

#: Over-provisioning levels of the default WA curve (0.07 is the config
#: default; 0.35 gives GC so much slack it never has to run).
DEFAULT_OP_LEVELS = (0.07, 0.2, 0.35)

#: Fill level of the WA-vs-OP curve (on the cliff's knee at the default OP).
DEFAULT_WA_FILL = 0.85

#: Fraction of the fill overwritten by the churn stage (GC steady state).
DEFAULT_CHURN = 0.35

#: The write-heaviest Table-2 trace (3% reads): sustained random writes.
DEFAULT_WORKLOAD = "prxy_0"


def sustained_scale(
    requests: int = 600,
    seed: int = 42,
    blocks_per_plane: int = 16,
    pages_per_block: int = 8,
) -> ExperimentScale:
    """The sweep's default scale: small planes so writes bite.

    With 16 blocks of 8 pages per plane, one erased reserve block is 6.25%
    of a plane and 600 requests of the default workload write roughly 10%
    of the array -- enough to cross the GC watermarks at high fill without
    making a 35-cell sweep take hours.
    """
    return ExperimentScale(
        requests=requests,
        requests_per_mix_constituent=max(40, requests // 6),
        blocks_per_plane=blocks_per_plane,
        pages_per_block=pages_per_block,
        seed=seed,
    )


def _warmup(fill: float, churn: float) -> str:
    """The warm-up grammar string of one sustained-write cell."""
    if churn > 0.0:
        return f"fill {fill:g}; churn {churn:g}"
    return f"fill {fill:g}"


def write_cliff_specs(
    preset: str,
    workload: str,
    scale: ExperimentScale,
    fill_levels: Sequence[float] = DEFAULT_FILL_LEVELS,
    churn: float = DEFAULT_CHURN,
    designs: Sequence[DesignKind] = SWEEP_DESIGNS,
) -> Dict[float, Tuple[RunSpec, ...]]:
    """The write-cliff matrix: ``{fill: specs-at-that-fill}``.

    Every design at a given fill shares the warm-up recipe (hence the
    per-design checkpoint), and fills are deduplicated in input order.
    """
    plan: Dict[float, Tuple[RunSpec, ...]] = {}
    for fill in dict.fromkeys(float(f) for f in fill_levels):
        plan[fill] = matrix_specs(
            preset, (workload,), scale, designs, warmup=_warmup(fill, churn)
        )
    return plan


def wa_op_specs(
    preset: str,
    workload: str,
    scale: ExperimentScale,
    fill: float = DEFAULT_WA_FILL,
    churn: float = DEFAULT_CHURN,
    op_levels: Sequence[float] = DEFAULT_OP_LEVELS,
    designs: Sequence[DesignKind] = SWEEP_DESIGNS,
) -> Dict[float, Tuple[RunSpec, ...]]:
    """The WA-vs-OP matrix: ``{over_provisioning: specs-at-that-op}``.

    The knob rides ``device_kwargs`` so each level is a distinct digest
    (and a distinct checkpoint: more spare area changes what the warm-up
    itself does to the array).
    """
    plan: Dict[float, Tuple[RunSpec, ...]] = {}
    for op in dict.fromkeys(float(level) for level in op_levels):
        plan[op] = matrix_specs(
            preset,
            (workload,),
            scale,
            designs,
            warmup=_warmup(fill, churn),
            over_provisioning=op,
        )
    return plan


def gc_fault_specs(
    preset: str,
    workload: str,
    scale: ExperimentScale,
    fill: float,
    churn: float = DEFAULT_CHURN,
    designs: Sequence[DesignKind] = SWEEP_DESIGNS,
    faulted_links: int = 1,
    seed: int = 42,
) -> Tuple[List[tuple], Dict[str, Dict[str, RunSpec]]]:
    """The GC x faults composition cells: clean vs faulted, per design.

    Returns ``(links, {design: {"clean": spec, "faulted": spec}})``.  Both
    specs of a design share warm-up and device kwargs -- and therefore one
    checkpoint -- and both export the latency histogram so the reduction
    can read p999 off the full distribution.
    """
    config = build_config(preset, scale)
    links = degradation_links(
        config.mesh_rows, config.mesh_cols, faulted_links, seed
    )
    schedule = link_fault_schedule(links)
    cells: Dict[str, Dict[str, RunSpec]] = {}
    for faults in (None, schedule.to_spec() or None):
        specs = matrix_specs(
            preset,
            (workload,),
            scale,
            designs,
            warmup=_warmup(fill, churn),
            faults=faults,
            export_histogram=True,
        )
        key = "clean" if faults is None else "faulted"
        for spec in specs:
            cells.setdefault(spec.design, {})[key] = spec
    return links, cells


def _p999_ns(result: RunResult) -> float:
    """p999 from an exported latency histogram (0.0 when unavailable)."""
    payload = result.latency_histogram
    if not payload:
        return 0.0
    return LatencyRecorder.from_payload(payload).p999


def _cell(result: RunResult) -> Dict[str, float]:
    """The per-cell reduction shared by the cliff and WA curves.

    The sustained-write extras are emitted only when the write machinery
    engaged, so quiet cells (low fill, high OP) default to zero stalls and
    a write amplification of exactly 1.0.
    """
    extra = result.extra
    return {
        "iops": result.iops,
        "p99_latency_ns": result.p99_latency_ns,
        "mean_latency_ns": result.mean_latency_ns,
        "write_amplification": extra.get("write_amplification", 1.0),
        "gc_stall_ns": extra.get("gc_stall_ns", 0.0),
        "gc_write_stalls": extra.get("gc_write_stalls", 0.0),
        "gc_blocks_reclaimed": extra.get("gc_blocks_reclaimed", 0.0),
        "host_pages_written": extra.get("host_pages_written", 0.0),
        "gc_pages_written": extra.get("gc_pages_written", 0.0),
    }


def run_ftl_sweep(
    preset: str = "performance-optimized",
    workload: str = DEFAULT_WORKLOAD,
    scale: Optional[ExperimentScale] = None,
    fill_levels: Sequence[float] = DEFAULT_FILL_LEVELS,
    op_levels: Sequence[float] = DEFAULT_OP_LEVELS,
    wa_fill: float = DEFAULT_WA_FILL,
    churn: float = DEFAULT_CHURN,
    designs: Sequence[DesignKind] = SWEEP_DESIGNS,
    seed: int = 42,
    faulted_links: int = 1,
    *,
    executor=None,
    store=None,
    checkpoints: Optional[CheckpointStore] = None,
) -> Dict[str, object]:
    """Execute the sustained-write sweep and reduce it to curve payloads.

    Returns a payload with three sections -- ``write_cliff`` (per design,
    a list of cells ordered by fill level), ``wa_op`` (per design, a list
    of cells ordered by over-provisioning), and ``gc_faults`` (per design,
    clean/faulted cells plus their p999 ratio) -- and a ``checkpoints``
    section recording how the warm-up amortization behaved (every cell of
    a design at one warm-up recipe restores the same snapshot, so hits
    grow with matrix width while warm-up simulations stay one per recipe).

    All three sections execute as a single batch through
    :func:`~repro.experiments.executor.execute_specs`: shared specs
    deduplicate, a result store serves warm cells without simulating, and
    checkpoints are computed in one pre-pass.
    """
    scale = scale or sustained_scale(seed=seed)
    cliff_plan = write_cliff_specs(
        preset, workload, scale, fill_levels, churn, designs
    )
    wa_plan = wa_op_specs(
        preset, workload, scale, wa_fill, churn, op_levels, designs
    )
    gc_fill = max(cliff_plan) if cliff_plan else DEFAULT_WA_FILL
    links, gc_plan = gc_fault_specs(
        preset, workload, scale, gc_fill, churn, designs, faulted_links, seed
    )
    all_specs = [spec for specs in cliff_plan.values() for spec in specs]
    all_specs += [spec for specs in wa_plan.values() for spec in specs]
    all_specs += [
        spec for cells in gc_plan.values() for spec in cells.values()
    ]
    if checkpoints is None:
        checkpoints = CheckpointStore(
            store.directory / "checkpoints" if store is not None else None
        )
    results = execute_specs(
        all_specs, executor=executor, store=store, checkpoints=checkpoints
    )

    write_cliff: Dict[str, List[Dict[str, float]]] = {}
    for fill in sorted(cliff_plan):
        for spec in cliff_plan[fill]:
            cell = _cell(results[spec])
            cell["fill"] = fill
            write_cliff.setdefault(spec.design, []).append(cell)

    wa_op: Dict[str, List[Dict[str, float]]] = {}
    for op in sorted(wa_plan):
        for spec in wa_plan[op]:
            cell = _cell(results[spec])
            cell["over_provisioning"] = op
            wa_op.setdefault(spec.design, []).append(cell)

    gc_faults: Dict[str, Dict[str, object]] = {}
    for design, cells in gc_plan.items():
        reduced: Dict[str, object] = {}
        for key, spec in cells.items():
            result = results[spec]
            entry = _cell(result)
            entry["p999_latency_ns"] = _p999_ns(result)
            reduced[key] = entry
        clean_p999 = reduced["clean"]["p999_latency_ns"]
        faulted_p999 = reduced["faulted"]["p999_latency_ns"]
        reduced["p999_ratio"] = (
            faulted_p999 / clean_p999 if clean_p999 > 0 else 0.0
        )
        gc_faults[design] = reduced

    return {
        "experiment": "ftl-sweep",
        "preset": preset,
        "workload": workload,
        "seed": seed,
        "churn": churn,
        "designs": [design.value for design in designs],
        "fill_levels": sorted(cliff_plan),
        "op_levels": sorted(wa_plan),
        "wa_fill": wa_fill,
        "gc_fill": gc_fill,
        "faulted_links": faulted_links,
        "links": [[list(a), list(b)] for a, b in links],
        "write_cliff": write_cliff,
        "wa_op": wa_op,
        "gc_faults": gc_faults,
        "checkpoints": {
            "hits": checkpoints.hits,
            "misses": checkpoints.misses,
            "writes": checkpoints.writes,
        },
    }
