"""Crash-safe filesystem work queue: spec digests as task ids.

The queue is a directory any number of ``venice-sim worker`` processes --
potentially on several hosts sharing a filesystem -- cooperate through.
There is no broker and no daemon: every transition is an atomic filesystem
operation, so a worker (or the whole host) dying at *any* instruction
leaves the queue in a state the next participant repairs.

Layout under the queue directory::

    queue.json            frozen queue config (result store binding, lease
                          and retry policy), written once at creation
    tasks/<digest>.json   immutable task bodies: the full RunSpec payload
    claims/<digest>.json  one per leased task: owner id, attempt number,
                          lease length, expiry -- created with O_EXCL so
                          exactly one claimant wins; the owner heartbeats
                          by bumping the file's mtime
    retry/<digest>.json   retry bookkeeping: attempt count, next-eligible
                          time (exponential backoff), recent errors
    done/<digest>.json    completion markers (the result itself lives in
                          the content-addressed result store)
    dead/<digest>.json    dead-letter entries after ``max_attempts``
                          failures, with the captured tracebacks
    reclaim/              rename tombstones used to serialize reapers

Liveness is mtime-based: a claim whose mtime is older than its lease
length is presumed orphaned (its worker was SIGKILLed, lost power, or
hung), and :meth:`WorkQueue.reap` atomically reclaims it -- the rename into
``reclaim/`` succeeds for exactly one reaper, which then counts the lost
lease as a failed attempt and re-opens the task (or dead-letters it).

Because task ids *are* spec content digests and results land in the
content-addressed store, re-running an interrupted sweep is idempotent:
tasks whose results already exist complete without simulating, tasks that
died mid-run re-execute from their spec, and the final results are
byte-identical to an uninterrupted serial run.
"""

from __future__ import annotations

import errno
import json
import os
import socket
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.errors import QueueError
from repro.experiments.spec import RunSpec
from repro.experiments.store import ResultStore

_CONFIG_FILENAME = "queue.json"
_CONFIG_SCHEMA = 1

#: How many recent error tracebacks a retry record / dead letter keeps.
_ERROR_HISTORY = 5


def default_owner_id() -> str:
    """A worker identity unique across hosts, processes, and restarts."""
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:8]}"


def _atomic_write_json(path: Path, payload: dict) -> None:
    """Write-then-rename publication (readers never see a torn file)."""
    tmp = path.with_name(f"{path.name}.{os.getpid()}.{uuid.uuid4().hex[:6]}.tmp")
    tmp.write_text(json.dumps(payload, indent=1), encoding="utf-8")
    os.replace(tmp, path)


def _read_json(path: Path) -> Optional[dict]:
    """Parse a queue file; ``None`` when missing or torn mid-publication."""
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None


@dataclass(frozen=True)
class Task:
    """A leased unit of work: one spec, owned by one worker, one attempt."""

    digest: str
    spec: RunSpec
    attempt: int
    owner: str


class WorkQueue:
    """A shared-directory task queue with leases, retries, and dead letters.

    One process (the sweep front end) enqueues specs; any number of worker
    processes claim, heartbeat, and execute them through the ordinary
    executor/store stack.  The queue's result-store binding and
    lease/retry policy are frozen into ``queue.json`` at creation so every
    participant -- including workers started later on other hosts -- agrees
    on where results go and when a silent worker is declared dead.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        store_dir: Optional[Union[str, Path]] = None,
        store_backend: str = "auto",
        lease_seconds: float = 30.0,
        max_attempts: int = 3,
        retry_delay: float = 1.0,
        retry_backoff: float = 2.0,
    ) -> None:
        self.directory = Path(directory)
        self.tasks_dir = self.directory / "tasks"
        self.claims_dir = self.directory / "claims"
        self.retry_dir = self.directory / "retry"
        self.done_dir = self.directory / "done"
        self.dead_dir = self.directory / "dead"
        self.reclaim_dir = self.directory / "reclaim"
        for sub in (
            self.tasks_dir,
            self.claims_dir,
            self.retry_dir,
            self.done_dir,
            self.dead_dir,
            self.reclaim_dir,
        ):
            sub.mkdir(parents=True, exist_ok=True)
        config_path = self.directory / _CONFIG_FILENAME
        existing = _read_json(config_path)
        if existing is not None:
            if existing.get("schema") != _CONFIG_SCHEMA:
                raise QueueError(
                    f"queue {self.directory} has config schema "
                    f"{existing.get('schema')!r}; this version speaks "
                    f"{_CONFIG_SCHEMA}"
                )
            self.store_dir = Path(existing["store_dir"])
            self.store_backend = str(existing["store_backend"])
            self.lease_seconds = float(existing["lease_seconds"])
            self.max_attempts = int(existing["max_attempts"])
            self.retry_delay = float(existing["retry_delay"])
            self.retry_backoff = float(existing["retry_backoff"])
            if store_dir is not None and Path(store_dir).resolve() != (
                self.store_dir.resolve()
            ):
                raise QueueError(
                    f"queue {self.directory} is bound to store "
                    f"{self.store_dir}; refusing to target {store_dir}"
                )
        else:
            if lease_seconds <= 0:
                raise QueueError(
                    f"lease_seconds must be > 0, got {lease_seconds}"
                )
            if max_attempts < 1:
                raise QueueError(
                    f"max_attempts must be >= 1, got {max_attempts}"
                )
            self.store_dir = Path(
                store_dir if store_dir is not None else self.directory / "store"
            )
            # Resolve "auto" now so every later participant opens the same
            # layout even if the store directory is still empty today.
            probe = ResultStore(self.store_dir, backend=store_backend)
            self.store_backend = probe.backend_name
            self.lease_seconds = float(lease_seconds)
            self.max_attempts = int(max_attempts)
            self.retry_delay = float(retry_delay)
            self.retry_backoff = float(retry_backoff)
            _atomic_write_json(
                config_path,
                {
                    "schema": _CONFIG_SCHEMA,
                    "store_dir": str(self.store_dir),
                    "store_backend": self.store_backend,
                    "lease_seconds": self.lease_seconds,
                    "max_attempts": self.max_attempts,
                    "retry_delay": self.retry_delay,
                    "retry_backoff": self.retry_backoff,
                },
            )

    # -- paths ----------------------------------------------------------- #

    def _task_path(self, digest: str) -> Path:
        return self.tasks_dir / f"{digest}.json"

    def _claim_path(self, digest: str) -> Path:
        return self.claims_dir / f"{digest}.json"

    def _retry_path(self, digest: str) -> Path:
        return self.retry_dir / f"{digest}.json"

    def _done_path(self, digest: str) -> Path:
        return self.done_dir / f"{digest}.json"

    def _dead_path(self, digest: str) -> Path:
        return self.dead_dir / f"{digest}.json"

    def result_store(self) -> ResultStore:
        """Open the result store this queue is bound to."""
        return ResultStore(self.store_dir, backend=self.store_backend)

    # -- enqueue --------------------------------------------------------- #

    def enqueue(self, spec: RunSpec) -> bool:
        """Add one task; idempotent by digest.  Returns True when new.

        A spec whose task file already exists (from this invocation or a
        previous crashed one) is left untouched -- the digest *is* the
        task identity, which is what makes re-running an interrupted sweep
        free of duplicated work.
        """
        digest = spec.digest
        path = self._task_path(digest)
        if path.exists():
            return False
        _atomic_write_json(
            path, {"schema": _CONFIG_SCHEMA, "digest": digest, "spec": spec.to_dict()}
        )
        return True

    def enqueue_specs(self, specs: Sequence[RunSpec]) -> int:
        """Enqueue a batch; returns how many were new."""
        return sum(self.enqueue(spec) for spec in specs)

    def spec_for(self, digest: str) -> RunSpec:
        """Rebuild the spec a task id names."""
        payload = _read_json(self._task_path(digest))
        if payload is None:
            raise QueueError(f"queue has no task {digest[:12]}")
        return RunSpec.from_dict(payload["spec"])

    # -- claim / lease lifecycle ----------------------------------------- #

    def _attempts_so_far(self, digest: str) -> int:
        record = _read_json(self._retry_path(digest))
        return int(record["attempts"]) if record else 0

    def _eligible(self, digest: str, now: float) -> bool:
        if self._done_path(digest).exists():
            return False
        if self._dead_path(digest).exists():
            return False
        if self._claim_path(digest).exists():
            return False
        record = _read_json(self._retry_path(digest))
        if record and float(record.get("not_before", 0.0)) > now:
            return False
        return True

    def claim(self, owner: str) -> Optional[Task]:
        """Lease the next eligible task for ``owner``; None when drained.

        The claim file is created with ``O_CREAT | O_EXCL`` -- the one
        atomic-exclusive primitive every shared filesystem provides -- so
        when several workers race for the same digest exactly one wins and
        the rest move on to the next candidate.
        """
        now = time.time()
        for path in sorted(self.tasks_dir.glob("*.json")):
            digest = path.stem
            if not self._eligible(digest, now):
                continue
            attempt = self._attempts_so_far(digest) + 1
            claim_path = self._claim_path(digest)
            try:
                fd = os.open(
                    claim_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
                )
            except FileExistsError:
                continue  # lost the race for this task
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(
                    {
                        "owner": owner,
                        "attempt": attempt,
                        "lease_seconds": self.lease_seconds,
                        "claimed_at": now,
                        "expires_at": now + self.lease_seconds,
                    },
                    handle,
                    indent=1,
                )
            try:
                spec = self.spec_for(digest)
            except QueueError:  # pragma: no cover - task raced away
                claim_path.unlink()
                continue
            return Task(digest=digest, spec=spec, attempt=attempt, owner=owner)
        return None

    def heartbeat(self, task: Task) -> None:
        """Extend a lease by bumping the claim file's mtime.

        Raises :class:`~repro.errors.QueueError` when the claim is gone or
        owned by someone else -- the worker lost its lease (a reaper
        declared it dead while it was stalled) and must abandon the task
        rather than double-write it.
        """
        claim = _read_json(self._claim_path(task.digest))
        if claim is None or claim.get("owner") != task.owner:
            raise QueueError(
                f"lease on {task.digest[:12]} lost (now "
                f"{'unclaimed' if claim is None else claim.get('owner')!r})"
            )
        os.utime(self._claim_path(task.digest))

    def _release_claim(self, task: Task) -> None:
        try:
            self._claim_path(task.digest).unlink()
        except FileNotFoundError:  # pragma: no cover - reaper raced us
            pass

    def complete(self, task: Task) -> None:
        """Mark a leased task done (its result is already in the store)."""
        _atomic_write_json(
            self._done_path(task.digest),
            {
                "owner": task.owner,
                "attempt": task.attempt,
                "completed_at": time.time(),
            },
        )
        self._release_claim(task)

    def fail(self, task: Task, error: str) -> bool:
        """Record a failed attempt; returns True when the task dead-letters.

        Retries get exponential backoff (``retry_delay * retry_backoff **
        (attempt - 1)``); after ``max_attempts`` the task moves to the
        dead-letter list with its spec and the captured tracebacks, where
        :meth:`dead_letters` and ``venice-sim queue status`` surface it.
        """
        digest = task.digest
        record = _read_json(self._retry_path(digest)) or {
            "attempts": 0,
            "errors": [],
        }
        attempts = int(record["attempts"]) + 1
        errors = (list(record.get("errors", [])) + [error])[-_ERROR_HISTORY:]
        if attempts >= self.max_attempts:
            _atomic_write_json(
                self._dead_path(digest),
                {
                    "digest": digest,
                    "spec": task.spec.to_dict(),
                    "attempts": attempts,
                    "errors": errors,
                    "dead_since": time.time(),
                },
            )
            _atomic_write_json(
                self._retry_path(digest),
                {"attempts": attempts, "errors": errors},
            )
            self._release_claim(task)
            return True
        delay = self.retry_delay * (self.retry_backoff ** (attempts - 1))
        _atomic_write_json(
            self._retry_path(digest),
            {
                "attempts": attempts,
                "not_before": time.time() + delay,
                "errors": errors,
            },
        )
        self._release_claim(task)
        return False

    # -- reaping --------------------------------------------------------- #

    def _lease_expired(self, claim_path: Path, now: float) -> bool:
        try:
            mtime = claim_path.stat().st_mtime
        except FileNotFoundError:
            return False
        return now - mtime > self.lease_seconds

    def reap(self) -> List[str]:
        """Reclaim every expired lease; returns the reclaimed digests.

        Reclamation is serialized by an atomic rename into ``reclaim/``:
        when several workers reap concurrently, exactly one wins each
        claim file, charges the lost lease as a failed attempt, and
        re-opens (or dead-letters) the task.  A worker that was merely
        stalled past its lease discovers the loss at its next heartbeat
        and abandons the task instead of double-reporting it.
        """
        now = time.time()
        reclaimed: List[str] = []
        for claim_path in sorted(self.claims_dir.glob("*.json")):
            if not self._lease_expired(claim_path, now):
                continue
            digest = claim_path.stem
            tombstone = self.reclaim_dir / (
                f"{digest}.{uuid.uuid4().hex[:8]}.json"
            )
            try:
                os.rename(claim_path, tombstone)
            except OSError as error:
                if error.errno in (errno.ENOENT, errno.ESTALE):
                    continue  # another reaper won
                raise  # pragma: no cover - unexpected filesystem failure
            claim = _read_json(tombstone) or {}
            owner = claim.get("owner", "unknown")
            attempt = int(claim.get("attempt", self._attempts_so_far(digest) + 1))
            try:
                spec = self.spec_for(digest)
            except QueueError:  # pragma: no cover - task file lost
                tombstone.unlink()
                continue
            self.fail(
                Task(digest=digest, spec=spec, attempt=attempt, owner=owner),
                f"lease expired: owner {owner!r} went silent for more than "
                f"{self.lease_seconds:g}s (attempt {attempt})",
            )
            tombstone.unlink()
            reclaimed.append(digest)
        return reclaimed

    # -- observability ---------------------------------------------------- #

    def dead_letters(self) -> Dict[str, dict]:
        """Dead-lettered tasks: digest -> {spec, attempts, errors}."""
        letters: Dict[str, dict] = {}
        for path in sorted(self.dead_dir.glob("*.json")):
            payload = _read_json(path)
            if payload is not None:
                letters[path.stem] = payload
        return letters

    def status(self) -> Dict[str, object]:
        """Counts of every task state plus the queue's frozen policy."""
        now = time.time()
        tasks = {path.stem for path in self.tasks_dir.glob("*.json")}
        done = {path.stem for path in self.done_dir.glob("*.json")}
        dead = {path.stem for path in self.dead_dir.glob("*.json")}
        claims = sorted(self.claims_dir.glob("*.json"))
        expired = sum(
            1 for path in claims if self._lease_expired(path, now)
        )
        claimed = {path.stem for path in claims}
        backoff = 0
        for digest in tasks - done - dead - claimed:
            record = _read_json(self._retry_path(digest))
            if record and float(record.get("not_before", 0.0)) > now:
                backoff += 1
        ready = len(tasks - done - dead - claimed) - backoff
        return {
            "directory": str(self.directory),
            "store_dir": str(self.store_dir),
            "store_backend": self.store_backend,
            "lease_seconds": self.lease_seconds,
            "max_attempts": self.max_attempts,
            "tasks": len(tasks),
            "done": len(done),
            "claimed": len(claims),
            "expired_leases": expired,
            "in_backoff": backoff,
            "ready": max(0, ready),
            "dead": len(dead),
        }

    def drained(self, digests: Sequence[str]) -> bool:
        """True when every listed task is done or dead-lettered."""
        return all(
            self._done_path(digest).exists()
            or self._dead_path(digest).exists()
            for digest in digests
        )
